// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7) plus ablations of the design choices called out in
// DESIGN.md. Quality metrics (recall, precision, sizes) are attached to
// the benchmark output via b.ReportMetric, so one `go test -bench=.
// -benchmem` run reports both the performance and the fidelity side of the
// reproduction. Traces are kept small enough for iteration; cmd/experiments
// runs the full-size versions.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/akg"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dygraph"
	"repro/internal/eval"
	"repro/internal/minhash"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/tracegen"
)

const benchTraceLen = 24000

// cache generated traces across benchmark iterations.
var traceCache = map[string]struct {
	msgs []stream.Message
	gt   tracegen.GroundTruth
}{}

func cachedTrace(profile string, n int) ([]stream.Message, *tracegen.GroundTruth) {
	key := fmt.Sprintf("%s-%d", profile, n)
	if c, ok := traceCache[key]; ok {
		return c.msgs, &c.gt
	}
	var cfg tracegen.Config
	switch profile {
	case "es":
		cfg = tracegen.ESConfig(42, n)
	case "gt":
		cfg = tracegen.GroundTruthConfig(42, n)
	default:
		cfg = tracegen.TWConfig(42, n)
	}
	msgs, gt := tracegen.Generate(cfg)
	traceCache[key] = struct {
		msgs []stream.Message
		gt   tracegen.GroundTruth
	}{msgs, gt}
	c := traceCache[key]
	return c.msgs, &c.gt
}

func runEval(b *testing.B, cfg detect.Config, profile string) eval.Result {
	b.Helper()
	msgs, gt := cachedTrace(profile, benchTraceLen)
	res, _, err := eval.Run(cfg, msgs, gt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// ---- Table 1 / Section 7.1: ground-truth study ----

func BenchmarkTable1GroundTruth(b *testing.B) {
	var last eval.Result
	for i := 0; i < b.N; i++ {
		last = runEval(b, detect.Config{}, "gt")
	}
	b.ReportMetric(last.Recall, "recall")
	b.ReportMetric(last.Precision, "precision")
	b.ReportMetric(last.MeanLatency, "latency_quanta")
}

// ---- Figures 7–10: recall/precision sweeps ----

func sweepBench(b *testing.B, profile, metric string) {
	for _, delta := range []int{80, 160, 240} {
		for _, beta := range []float64{0.10, 0.20, 0.25} {
			b.Run(fmt.Sprintf("delta=%d/beta=%.2f", delta, beta), func(b *testing.B) {
				var last eval.Result
				for i := 0; i < b.N; i++ {
					last = runEval(b, detect.Config{
						Delta: delta,
						AKG:   akg.Config{Beta: beta},
					}, profile)
				}
				if metric == "recall" {
					b.ReportMetric(last.Recall, "recall")
				} else {
					b.ReportMetric(last.Precision, "precision")
				}
			})
		}
	}
}

func BenchmarkFig7RecallTW(b *testing.B)     { sweepBench(b, "tw", "recall") }
func BenchmarkFig8RecallES(b *testing.B)     { sweepBench(b, "es", "recall") }
func BenchmarkFig9PrecisionTW(b *testing.B)  { sweepBench(b, "tw", "precision") }
func BenchmarkFig10PrecisionES(b *testing.B) { sweepBench(b, "es", "precision") }

// ---- Section 7.2.4: event quality ----

func BenchmarkQualityMetrics(b *testing.B) {
	var last eval.Result
	for i := 0; i < b.N; i++ {
		last = runEval(b, detect.Config{}, "es")
	}
	b.ReportMetric(last.AvgClusterSize, "avg_cluster_size")
	b.ReportMetric(last.AvgRank, "avg_rank")
}

// ---- Table 3 / Section 7.3: SCP vs offline biconnected clustering ----

// BenchmarkTable3Schemes times the offline BC recompute performed after
// every quantum on the same AKG the SCP engine maintains incrementally,
// and reports how many clusters each side produced.
func BenchmarkTable3Schemes(b *testing.B) {
	msgs, _ := cachedTrace("gt", benchTraceLen)
	var scpClusters, bcClusters int
	for i := 0; i < b.N; i++ {
		scpClusters, bcClusters = 0, 0
		d := detect.New(detect.Config{})
		err := d.Run(stream.NewSliceSource(msgs), func(res *detect.QuantumResult) {
			scpClusters += d.AKG().Engine().ClusterCount()
			for _, c := range baseline.BiconnectedComponents(d.AKG().Engine().Graph()) {
				if len(c.Nodes) >= 3 {
					bcClusters++
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(scpClusters), "scp_cluster_instances")
	b.ReportMetric(float64(bcClusters), "bc_cluster_instances")
}

// ---- Table 4 / Section 7.4: message processing rate ----

func throughputBench(b *testing.B, profile string, delta int) {
	msgs, _ := cachedTrace(profile, benchTraceLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := detect.New(detect.Config{Delta: delta})
		if err := d.Run(stream.NewSliceSource(msgs), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	msgsPerSec := float64(len(msgs)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(msgsPerSec, "msgs/sec")
}

func BenchmarkTable4ThroughputTW(b *testing.B) {
	for _, delta := range []int{120, 160, 200} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			throughputBench(b, "tw", delta)
		})
	}
}

func BenchmarkTable4ThroughputES(b *testing.B) {
	for _, delta := range []int{120, 160, 200} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			throughputBench(b, "es", delta)
		})
	}
}

// ---- Section 7.4: AKG reduction ----

func BenchmarkAKGReduction(b *testing.B) {
	msgs, _ := cachedTrace("tw", benchTraceLen)
	var akgEdges, ckgEdges float64
	for i := 0; i < b.N; i++ {
		akgEdges, ckgEdges = 0, 0
		d := detect.New(detect.Config{TrackCKG: true})
		err := d.Run(stream.NewSliceSource(msgs), func(res *detect.QuantumResult) {
			akgEdges += float64(res.AKGEdges)
			ckgEdges += float64(res.CKGEdges)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if ckgEdges > 0 {
		b.ReportMetric(100*akgEdges/ckgEdges, "akg_edges_pct_of_ckg")
	}
}

// ---- Ablations ----

// BenchmarkAblationMinHash compares the Min-Hash candidate screen against
// exact all-pairs Jaccard and against the sketch-only decision rule.
func BenchmarkAblationMinHash(b *testing.B) {
	msgs, gt := cachedTrace("tw", benchTraceLen)
	for _, mode := range []struct {
		name string
		cfg  akg.Config
	}{
		{"screen+exact", akg.Config{}},
		{"exact-only", akg.Config{NoMinHashScreen: true}},
		{"sketch-only", akg.Config{MinHashOnly: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last eval.Result
			for i := 0; i < b.N; i++ {
				res, _, err := eval.Run(detect.Config{AKG: mode.cfg}, msgs, gt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Recall, "recall")
		})
	}
}

// BenchmarkAblationIncrementalVsCanonical isolates the paper's central
// performance claim: maintaining SCP clusters incrementally vs
// recomputing the canonical clustering from scratch after every batch of
// graph updates (what a snapshot-based technique such as [2] must do).
func BenchmarkAblationIncrementalVsCanonical(b *testing.B) {
	const nodes, ops = 300, 4000
	type op struct {
		add  bool
		a, b dygraph.NodeID
	}
	rng := rand.New(rand.NewSource(9))
	script := make([]op, ops)
	for i := range script {
		script[i] = op{
			add: rng.Float64() < 0.7,
			a:   dygraph.NodeID(rng.Intn(nodes)),
			b:   dygraph.NodeID(rng.Intn(nodes)),
		}
	}
	const batch = 50 // quantum-sized update batches

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			en := core.NewEngine(core.Hooks{})
			for j, o := range script {
				if o.add {
					en.AddEdge(o.a, o.b, 1)
				} else {
					en.RemoveEdge(o.a, o.b)
				}
				_ = j
			}
		}
	})
	b.Run("canonical-per-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := dygraph.New()
			for j, o := range script {
				if o.add {
					g.AddEdge(o.a, o.b, 1)
				} else {
					g.RemoveEdge(o.a, o.b)
				}
				if j%batch == batch-1 {
					core.Canonical(g) // global recompute each "quantum"
				}
			}
		}
	})
}

// BenchmarkAblationAKG compares clustering on the reduced AKG (burstiness
// gate on) against admitting every keyword (τ=1), the "no AKG reduction"
// arm: the same stream, orders of magnitude more graph work.
func BenchmarkAblationAKG(b *testing.B) {
	msgs, gt := cachedTrace("tw", benchTraceLen/2)
	for _, mode := range []struct {
		name string
		tau  int
	}{
		{"akg-tau4", 4},
		{"full-tau1", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last eval.Result
			for i := 0; i < b.N; i++ {
				res, _, err := eval.Run(detect.Config{
					AKG: akg.Config{Tau: mode.tau},
				}, msgs, gt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Recall, "recall")
			b.ReportMetric(float64(last.ReportedEvents), "reported_events")
		})
	}
}

// BenchmarkAblationSketchSize sweeps the Min-Hash sketch size p.
func BenchmarkAblationSketchSize(b *testing.B) {
	msgs, gt := cachedTrace("tw", benchTraceLen)
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var last eval.Result
			for i := 0; i < b.N; i++ {
				res, _, err := eval.Run(detect.Config{
					AKG: akg.Config{P: p},
				}, msgs, gt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Recall, "recall")
		})
	}
}

// ---- Micro-benchmarks of the core data structures ----

func BenchmarkEngineAddEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pairs := make([][2]dygraph.NodeID, 4096)
	for i := range pairs {
		pairs[i] = [2]dygraph.NodeID{
			dygraph.NodeID(rng.Intn(500)),
			dygraph.NodeID(rng.Intn(500)),
		}
	}
	b.ResetTimer()
	en := core.NewEngine(core.Hooks{})
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		en.AddEdge(p[0], p[1], 1)
	}
}

// BenchmarkEngineChurn measures sustained add/remove mixes at the steady
// state of a random-pair workload. A random-pair churn equilibrates at
// edge density p_add/(p_add+p_remove), so the mix is tuned to ~12% —
// average degree ≈ 7, matching the sparse AKGs the detector actually
// builds (Section 7.4 reports average degree < 6).
func BenchmarkEngineChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	en := core.NewEngine(core.Hooks{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := dygraph.NodeID(rng.Intn(64))
		c := dygraph.NodeID(rng.Intn(64))
		if rng.Float64() < 0.12 {
			en.AddEdge(a, c, 1)
		} else {
			en.RemoveEdge(a, c)
		}
	}
}

func BenchmarkCanonicalRecompute(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := dygraph.New()
	for i := 0; i < 2000; i++ {
		g.AddEdge(dygraph.NodeID(rng.Intn(300)), dygraph.NodeID(rng.Intn(300)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Canonical(g)
	}
}

func BenchmarkBiconnectedComponents(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := dygraph.New()
	for i := 0; i < 2000; i++ {
		g.AddEdge(dygraph.NodeID(rng.Intn(300)), dygraph.NodeID(rng.Intn(300)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BiconnectedComponents(g)
	}
}

func BenchmarkMinHashAdd(b *testing.B) {
	s := minhash.New(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkMinHashSharesValue(b *testing.B) {
	s1 := minhash.New(8, 1)
	s2 := minhash.New(8, 1)
	for i := uint64(0); i < 1000; i++ {
		s1.Add(i)
		s2.Add(i + 500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minhash.SharesValue(s1, s2)
	}
}

func BenchmarkTokenize(b *testing.B) {
	msg := "Breaking: massive 5.9 earthquake struck eastern Turkey, #earthquake reports say https://example.com @newsdesk"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textproc.Tokenize(msg)
	}
}

func BenchmarkDetectorIngest(b *testing.B) {
	msgs, _ := cachedTrace("tw", benchTraceLen)
	d := repro.NewDetector(repro.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Ingest(msgs[i%len(msgs)])
	}
	b.StopTimer()
	b.ReportMetric(float64(d.AKG().NodeCount()), "akg_nodes")
}

// BenchmarkParallelIngest compares the serial pipeline against
// RunParallel's tokenise-on-workers variant (Section 7.3's parallel
// processing claim).
func BenchmarkParallelIngest(b *testing.B) {
	msgs, _ := cachedTrace("tw", benchTraceLen)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := detect.New(detect.Config{})
				if err := d.RunParallel(stream.NewSliceSource(msgs), workers, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(msgs))*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}
