// Command loadharness drives the adversarial load harness: it
// materializes a deterministic traffic plan per scenario (uniform
// control, zipf-hot skew, flash-crowd keyword flood, and disk-pressure
// — benign traffic over an injected mid-run ENOSPC window), replays it
// over HTTP against a server — an in-process instance by default, or an
// external one via -url — and emits per-tenant SLO metrics as JSON:
// ingest-to-SSE latency percentiles, query latency percentiles, shed
// and error counts, and the plan SHA-256 that proves two runs sent
// byte-identical traffic. The disk-pressure scenario needs the
// in-process server (it injects storage faults through the pool's
// filesystem seam) and gates on graceful degradation: zero non-503 5xx,
// Retry-After on every shed, reads serving throughout, in-process
// recovery once space frees.
//
// Usage (in-process, the CI smoke and `make bench-load` path):
//
//	loadharness -seed 1 -tenants 8 -batches 512 -admission-frac 0.8 -out BENCH_load.json
//
// Against a running server (tune its flags independently):
//
//	loadharness -url http://localhost:8080 -scenarios zipf-hot
//
// The batch size doubles as the in-process detector's quantum size Δ so
// each accepted batch is acknowledged by exactly one SSE event; when
// driving an external server, start it with -delta equal to
// -batch-size or the ingest-to-SSE pairing (and the harness itself)
// fails loudly rather than reporting garbage.
//
// Exit status: 0 when every hard SLO gate passes (no 5xx under skew,
// Retry-After on every shed, no lost SSE acknowledgements), 1 on a
// hard violation — or, with -strict-slo, on a cold-tenant latency
// violation too (off by default: wall-clock bounds flake on loaded CI
// runners; the JSON always carries the verdict either way).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/loadharness"
	"repro/internal/server"
	"repro/internal/vfs"
)

type output struct {
	Seed      int64                            `json:"seed"`
	Tenants   int                              `json:"tenants"`
	Batches   int                              `json:"batches"`
	BatchSize int                              `json:"batch_size"`
	Runs      []*loadharness.Report            `json:"runs"`
	SLO       map[string]loadharness.SLOResult `json:"slo,omitempty"`
	Pass      bool                             `json:"pass"`
}

func main() {
	var (
		seed      = flag.Int64("seed", 1, "plan seed: fixes the traffic byte-for-byte")
		tenants   = flag.Int("tenants", 4, "tenant population per scenario")
		batches   = flag.Int("batches", 0, "total batch budget per scenario (0 = 64 per tenant)")
		batchSize = flag.Int("batch-size", 8, "messages per ingest POST; equals the in-process detector's Δ")
		queryEvr  = flag.Int("query-every", 4, "one GET query per tenant every N batches (-1 disables)")
		scenarios = flag.String("scenarios", "uniform,zipf-hot,flash-flood,disk-pressure",
			"comma-separated scenario list; slo gates need uniform to run first as the control")
		outPath = flag.String("out", "", "write the JSON report here (empty = stdout)")
		urlFlag = flag.String("url", "", "drive an external server at this base URL instead of an in-process one")

		workers  = flag.Int("workers", 1, "in-process pool: scheduler workers (1 makes backlog, and thus shedding, reproducible)")
		queue    = flag.Int("queue", 16, "in-process pool: per-tenant queue depth in batches")
		queueM   = flag.Int("queue-msgs", 100000, "in-process pool: per-tenant queue bound in messages")
		admFrac  = flag.Float64("admission-frac", 0.8, "in-process pool: queue-depth shed threshold (0 disables)")
		rateLim  = flag.Float64("rate-limit", 0, "in-process pool: per-tenant msgs/sec token bucket (0 disables)")
		rateBur  = flag.Int("rate-burst", 0, "in-process pool: token bucket burst (0 = one second of rate)")
		retain   = flag.Int("retain", 0, "in-process pool: finished events retained live (0 = unlimited)")
		archDir  = flag.String("archive-dir", "", "in-process pool: archive directory (empty disables; give the flood a Bloom sidecar to inflate)")
		sloFloor = flag.Float64("slo-floor-ms", 250, "cold-tenant p99 bound floor in ms (absorbs sub-ms-baseline noise)")
		strict   = flag.Bool("strict-slo", false, "exit 1 on cold-tenant latency violations, not just hard gate violations")
	)
	flag.Parse()

	list := strings.Split(*scenarios, ",")
	doc := output{Seed: *seed, Tenants: *tenants, Batches: *batches, BatchSize: *batchSize,
		SLO: map[string]loadharness.SLOResult{}, Pass: true}
	var uniform *loadharness.Report
	hardFail, timingFail := false, false

	for _, name := range list {
		sc := loadharness.Scenario(strings.TrimSpace(name))
		plan, err := loadharness.BuildPlan(loadharness.Config{
			Scenario:  sc,
			Seed:      *seed,
			Tenants:   *tenants,
			Batches:   *batches,
			BatchSize: *batchSize,
			QueryEvery: func() int {
				if *queryEvr < 0 {
					return -1
				}
				return *queryEvr
			}(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadharness:", err)
			os.Exit(2)
		}

		if sc == loadharness.ScenarioDiskPressure && *urlFlag != "" {
			fmt.Fprintf(os.Stderr, "loadharness: %s needs an in-process server (storage fault injection); skipping under -url\n", sc)
			continue
		}

		baseURL := *urlFlag
		var shutdown func()
		var pool *server.Pool
		var ffs *vfs.FaultFS
		var walDir string
		if baseURL == "" {
			cfg := server.PoolConfig{
				Detector: detect.Config{
					Delta: *batchSize,
					AKG:   akg.Config{Tau: 3, Beta: 0.2, Window: 5},
				},
				Workers:       *workers,
				QueueDepth:    *queue,
				QueueMessages: *queueM,
				AdmissionFrac: *admFrac,
				RateLimit:     *rateLim,
				RateBurst:     *rateBur,
				RetainEvents:  *retain,
				ArchiveDir:    archiveDirFor(*archDir, string(sc)),
			}
			if sc == loadharness.ScenarioDiskPressure {
				// The fault window needs a WAL to fill and a fault layer
				// to fill it with; fast probes keep the run short.
				tmp, err := os.MkdirTemp("", "loadharness-wal-*")
				if err != nil {
					fmt.Fprintln(os.Stderr, "loadharness: wal dir:", err)
					os.Exit(1)
				}
				//repro:vfs-exempt harness-local scratch and report files; tenant I/O goes through the injected fault FS
				defer os.RemoveAll(tmp) //nolint:errcheck // best-effort temp cleanup
				walDir = tmp
				ffs = vfs.NewFaultFS(nil)
				cfg.WALDir = walDir
				cfg.FS = ffs
				cfg.StorageRetryBackoff = time.Millisecond
				cfg.DegradedProbeInterval = 10 * time.Millisecond
			}
			baseURL, pool, shutdown, err = startInProc(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadharness: start server:", err)
				os.Exit(1)
			}
		}

		fmt.Fprintf(os.Stderr, "loadharness: scenario %s: %d tenants, %d batches × %d msgs (plan %.12s…)\n",
			sc, plan.Config.Tenants, plan.Config.Batches, plan.Config.BatchSize, plan.Digest)
		ctx, cancel := context.WithCancel(context.Background())
		pcErr := make(chan error, 1)
		if sc == loadharness.ScenarioDiskPressure {
			pc := &loadharness.PressureController{
				Pool: pool, FFS: ffs, PathSubstring: walDir,
				AfterAccepted: uint64(2 * plan.Config.Tenants),
			}
			go func() { pcErr <- pc.Run(ctx) }()
		} else {
			pcErr <- nil
		}
		rep, err := (&loadharness.Runner{Plan: plan, BaseURL: baseURL}).Run(ctx)
		// The recovery probe can land after the last batch; let the
		// controller observe it (its stage timeouts bound the wait)
		// before tearing the context down.
		werr := <-pcErr
		cancel()
		if shutdown != nil {
			shutdown()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadharness: run:", err)
			os.Exit(1)
		}
		if werr != nil && werr != context.Canceled {
			fmt.Fprintln(os.Stderr, "loadharness:", werr)
			hardFail = true
		}
		doc.Runs = append(doc.Runs, rep)
		if sc == loadharness.ScenarioUniform {
			uniform = rep
			continue
		}
		var res loadharness.SLOResult
		if sc == loadharness.ScenarioDiskPressure {
			res = loadharness.CheckDiskPressureSLO(rep)
		} else if uniform == nil {
			fmt.Fprintf(os.Stderr, "loadharness: %s ran without a uniform control; skipping SLO gates\n", sc)
			continue
		} else {
			res = loadharness.CheckSLO(rep, uniform, *sloFloor)
		}
		doc.SLO[string(sc)] = res
		if !res.Pass {
			doc.Pass = false
			for _, v := range res.Violations {
				fmt.Fprintln(os.Stderr, "loadharness: SLO:", v)
			}
		}
		if rep.Totals.HTTP5xx > 0 || rep.Totals.ShedNoRetryAfter > 0 ||
			rep.Totals.OtherErrors > 0 || rep.Totals.SSELost > 0 ||
			(sc == loadharness.ScenarioDiskPressure && !res.Pass) {
			hardFail = true
		} else if !res.Pass {
			timingFail = true
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadharness: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*outPath, enc, 0o644); err != nil { //repro:vfs-exempt harness-local scratch and report files; tenant I/O goes through the injected fault FS
		fmt.Fprintln(os.Stderr, "loadharness: write:", err)
		os.Exit(1)
	} else {
		fmt.Fprintln(os.Stderr, "loadharness: wrote", *outPath)
	}

	if hardFail || (timingFail && *strict) {
		os.Exit(1)
	}
}

// startInProc assembles a real pool behind a loopback listener and
// returns its base URL, the pool itself (the disk-pressure controller
// watches its metrics), and a shutdown function that drains the pool.
// Each scenario gets a fresh instance so queue state, token buckets and
// archive contents never leak across runs.
func startInProc(cfg server.PoolConfig) (string, *server.Pool, func(), error) {
	pool, err := server.NewPool(cfg)
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: server.NewHandler(pool)}
	go srv.Serve(ln) //nolint:errcheck // exits on Close below
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close() // SSE streams never go idle; a graceful Shutdown would wait them out
		pool.BeginShutdown()
		if err := pool.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "loadharness: pool shutdown:", err)
		}
	}
	return "http://" + ln.Addr().String(), pool, shutdown, nil
}

// archiveDirFor keeps per-scenario archives apart under the given root
// (empty root = archiving off).
func archiveDirFor(root, scenario string) string {
	if root == "" {
		return ""
	}
	dir := root + string(os.PathSeparator) + scenario
	if err := os.MkdirAll(dir, 0o755); err != nil { //repro:vfs-exempt harness-local scratch and report files; tenant I/O goes through the injected fault FS
		fmt.Fprintln(os.Stderr, "loadharness: archive dir:", err)
		os.Exit(1)
	}
	return dir
}
