// Command tracegen writes a synthetic microblog trace as JSONL plus its
// ground-truth event log as JSON, for use with cmd/eventdetect or external
// tooling.
//
// Usage:
//
//	tracegen -profile tw -n 100000 -seed 42 -out trace.jsonl -gt gt.json
//
// Profiles: tw (general, low event density), es (event-specific, ≈3×
// density), gt (ground-truth study mix with below-burst events).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stream"
	"repro/internal/tracegen"
)

func main() {
	var (
		profile = flag.String("profile", "tw", "trace profile: tw, es or gt")
		n       = flag.Int("n", 100000, "total messages")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "trace.jsonl", "trace output path")
		gtOut   = flag.String("gt", "", "ground-truth output path (default: <out>.gt.json)")
	)
	flag.Parse()

	var cfg tracegen.Config
	switch *profile {
	case "tw":
		cfg = tracegen.TWConfig(*seed, *n)
	case "es":
		cfg = tracegen.ESConfig(*seed, *n)
	case "gt":
		cfg = tracegen.GroundTruthConfig(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	msgs, gt := tracegen.Generate(cfg)

	f, err := os.Create(*out) //repro:vfs-exempt CLI output file; not the server storage layer
	if err != nil {
		fatal(err)
	}
	if err := stream.WriteJSONL(f, msgs); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	gtPath := *gtOut
	if gtPath == "" {
		gtPath = *out + ".gt.json"
	}
	gf, err := os.Create(gtPath) //repro:vfs-exempt CLI output file; not the server storage layer
	if err != nil {
		fatal(err)
	}
	if err := gt.WriteJSON(gf); err != nil {
		fatal(err)
	}
	if err := gf.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %d messages to %s\n", len(msgs), *out)
	fmt.Printf("wrote %d ground-truth events to %s\n", len(gt.Events), gtPath)
	for _, k := range []tracegen.Kind{tracegen.Real, tracegen.Spurious, tracegen.BelowBurst, tracegen.Discussion} {
		fmt.Printf("  %-12s %d\n", k.String(), len(gt.OfKind(k)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
