// Command eventdetect runs the streaming event detector over a trace and
// prints discovered events as they emerge, one line per report, in arrival
// order — the paper's real-time discovery loop.
//
// Usage:
//
//	eventdetect -in trace.jsonl                  # read a JSONL trace
//	eventdetect -synth tw -n 100000 -seed 42     # generate and run
//
// Tunables mirror Table 2: -delta (quantum size), -tau (high state
// threshold), -beta (EC threshold), -w (window quanta).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

func main() {
	var (
		in    = flag.String("in", "", "JSONL trace path (mutually exclusive with -synth)")
		synth = flag.String("synth", "", "generate a trace instead: tw, es or gt")
		n     = flag.Int("n", 100000, "messages when generating")
		seed  = flag.Int64("seed", 42, "seed when generating")
		delta = flag.Int("delta", 160, "quantum size Δ in messages")
		tau   = flag.Int("tau", 4, "high state threshold τ (users/quantum)")
		beta  = flag.Float64("beta", 0.20, "edge correlation threshold β")
		w     = flag.Int("w", 30, "window length in quanta")
		top   = flag.Int("top", 3, "reports to print per quantum")
		quiet = flag.Bool("quiet", false, "only print the final event history")
	)
	flag.Parse()

	var src stream.Source
	switch {
	case *in != "" && *synth != "":
		fmt.Fprintln(os.Stderr, "eventdetect: -in and -synth are mutually exclusive")
		os.Exit(2)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = stream.NewJSONLReader(f)
	case *synth != "":
		var cfg tracegen.Config
		switch *synth {
		case "tw":
			cfg = tracegen.TWConfig(*seed, *n)
		case "es":
			cfg = tracegen.ESConfig(*seed, *n)
		case "gt":
			cfg = tracegen.GroundTruthConfig(*seed, *n)
		default:
			fmt.Fprintf(os.Stderr, "eventdetect: unknown profile %q\n", *synth)
			os.Exit(2)
		}
		msgs, _ := tracegen.Generate(cfg)
		src = stream.NewSliceSource(msgs)
	default:
		fmt.Fprintln(os.Stderr, "eventdetect: need -in or -synth")
		os.Exit(2)
	}

	d := repro.NewDetector(repro.Config{
		Delta: *delta,
		AKG:   repro.GraphConfig{Tau: *tau, Beta: *beta, Window: *w},
	})

	err := d.Run(src, func(res *repro.QuantumResult) {
		if *quiet {
			return
		}
		for i, r := range res.Reports {
			if i == *top {
				break
			}
			tag := ""
			if r.Born == res.Quantum {
				tag = " NEW"
			} else if r.Evolved {
				tag = " evolved"
			}
			fmt.Printf("q%-5d rank %8.1f  ev%-4d%s  %s\n",
				res.Quantum, r.Rank, r.EventID, tag, strings.Join(r.Keywords, " "))
		}
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%d messages processed; event history:\n", d.Processed())
	for _, ev := range d.AllEvents() {
		if !ev.Reported {
			continue
		}
		spurious := ""
		if ev.Spurious() {
			spurious = " (post-hoc spurious)"
		}
		fmt.Printf("event %-4d %-7v q%d..q%d peak %8.1f%s: %s\n",
			ev.ID, ev.State, ev.BornQuantum, ev.LastQuantum, ev.PeakRank,
			spurious, strings.Join(ev.Keywords, " "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eventdetect:", err)
	os.Exit(1)
}
