// Command repro-lint is the repo's custom static-analysis vettool: it
// enforces the replay-determinism, durability-seam and retryable-API
// invariants that generic linters cannot know about (docs/DETERMINISM.md).
//
// Run it standalone over package patterns — it delegates loading to
// the go command by re-invoking itself as a vettool:
//
//	go build -o bin/repro-lint ./cmd/repro-lint
//	bin/repro-lint ./...
//
// or wire it into go vet directly (what `make lint` and CI do):
//
//	go vet -vettool=bin/repro-lint ./...
//
// Individual analyzers can be switched off (-maporder=false); findings
// are suppressed in source with //repro:<directive> <reason> comments,
// where every suppression must carry a reason and unused suppressions
// are themselves findings.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	analysis.Main(suite.Analyzers())
}
