package main

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/dygraph"
	"repro/internal/stream"
	"repro/internal/tablefmt"
	"repro/internal/tracegen"
)

// runAKGStats reproduces the Section 7.4 reduction analysis: how much
// smaller the AKG is than the full CKG over the same window, what fraction
// of keywords ever show burstiness, the average AKG degree and average
// cluster size. Paper figures: AKG edges < 2% of CKG edges, < 5% of nodes
// bursty, average degree < 6, average cluster size < 7.
func runAKGStats() {
	msgs, _ := tracegen.Generate(tracegen.TWConfig(*flagSeed, *flagN))
	d := detect.New(detect.Config{TrackCKG: true})

	var (
		quanta         int
		nodeRatioSum   float64
		edgeRatioSum   float64
		degreeSum      float64
		degreeN        int
		clusterSizeSum float64
		clusterN       int
		peakCKGNodes   int
		peakCKGEdges   int
		peakAKGNodes   int
		peakAKGEdges   int
		ckgEdgeSamples float64
		akgEdgeSamples float64
		ckgNodeSamples float64
		akgNodeSamples float64
	)
	err := d.Run(stream.NewSliceSource(msgs), func(res *detect.QuantumResult) {
		quanta++
		if res.CKGNodes > 0 {
			nodeRatioSum += float64(res.AKGNodes) / float64(res.CKGNodes)
		}
		if res.CKGEdges > 0 {
			edgeRatioSum += float64(res.AKGEdges) / float64(res.CKGEdges)
		}
		ckgNodeSamples += float64(res.CKGNodes)
		akgNodeSamples += float64(res.AKGNodes)
		ckgEdgeSamples += float64(res.CKGEdges)
		akgEdgeSamples += float64(res.AKGEdges)
		if res.CKGNodes > peakCKGNodes {
			peakCKGNodes = res.CKGNodes
		}
		if res.CKGEdges > peakCKGEdges {
			peakCKGEdges = res.CKGEdges
		}
		if res.AKGNodes > peakAKGNodes {
			peakAKGNodes = res.AKGNodes
		}
		if res.AKGEdges > peakAKGEdges {
			peakAKGEdges = res.AKGEdges
		}
		g := d.AKG().Engine().Graph()
		g.ForEachNode(func(n dygraph.NodeID) {
			degreeSum += float64(g.Degree(n))
			degreeN++
		})
		for _, c := range d.AKG().Engine().Clusters() {
			clusterSizeSum += float64(c.NodeCount())
			clusterN++
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	t := tablefmt.New("AKG vs CKG reduction (§7.4)", "Metric", "Measured", "Paper")
	t.Row("AKG nodes / CKG nodes (avg)", fmt.Sprintf("%.2f%%", 100*nodeRatioSum/float64(quanta)), "<5%")
	t.Row("AKG edges / CKG edges (avg)", fmt.Sprintf("%.2f%%", 100*edgeRatioSum/float64(quanta)), "<2%")
	t.Row("avg AKG degree", fmt.Sprintf("%.2f", safeDiv(degreeSum, float64(degreeN))), "<6")
	t.Row("avg cluster size", fmt.Sprintf("%.2f", safeDiv(clusterSizeSum, float64(clusterN))), "<7")
	t.Row("peak CKG size", fmt.Sprintf("%d nodes / %d edges", peakCKGNodes, peakCKGEdges), "—")
	t.Row("peak AKG size", fmt.Sprintf("%d nodes / %d edges", peakAKGNodes, peakAKGEdges), "—")
	fmt.Println(t)
	fmt.Printf("windowed totals: CKG carried %.0f node-quanta / %.0f edge-quanta; AKG %.0f / %.0f\n",
		ckgNodeSamples, ckgEdgeSamples, akgNodeSamples, akgEdgeSamples)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
