package main

import (
	"fmt"
	"sync"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/stream"
	"repro/internal/tablefmt"
	"repro/internal/tracegen"
)

var (
	sweepDeltas = []int{80, 120, 160, 200, 240}
	sweepBetas  = []float64{0.10, 0.15, 0.20, 0.25}
)

func traceFor(profile string) ([]stream.Message, tracegen.GroundTruth) {
	switch profile {
	case "es":
		return tracegen.Generate(tracegen.ESConfig(*flagSeed, *flagN))
	default:
		return tracegen.Generate(tracegen.TWConfig(*flagSeed, *flagN))
	}
}

// runSweep reproduces Figures 7–10: recall/precision as a function of
// quantum size Δ (one x tick per Δ) for each EC threshold β (one series
// per β), on the TW or ES trace. The paper's trends: recall rises with
// larger Δ and smaller β; precision improves mildly in the same
// direction.
func runSweep(metric, profile string) {
	msgs, gt := traceFor(profile)
	xs := make([]string, len(sweepDeltas))
	for i, d := range sweepDeltas {
		xs[i] = fmt.Sprintf("Δ=%d", d)
	}
	// Independent detector runs parallelise perfectly: each goroutine gets
	// its own Detector over the shared read-only trace.
	series := make([]tablefmt.Series, len(sweepBetas))
	var wg sync.WaitGroup
	errs := make(chan error, len(sweepBetas)*len(sweepDeltas))
	for bi, beta := range sweepBetas {
		series[bi] = tablefmt.Series{
			Label: fmt.Sprintf("β=%.2f", beta),
			Y:     make([]float64, len(sweepDeltas)),
		}
		for di, delta := range sweepDeltas {
			wg.Add(1)
			go func(bi, di int, beta float64, delta int) {
				defer wg.Done()
				cfg := detect.Config{
					Delta: delta,
					AKG:   akg.Config{Beta: beta},
				}
				res, _, err := eval.Run(cfg, msgs, &gt)
				if err != nil {
					errs <- err
					return
				}
				if metric == "recall" {
					series[bi].Y[di] = res.Recall
				} else {
					series[bi].Y[di] = res.Precision
				}
			}(bi, di, beta, delta)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Println("error:", err)
		return
	}
	name := map[string]string{
		"recall-tw":    "Figure 7: Recall, Time-Window trace",
		"recall-es":    "Figure 8: Recall, Event-Specific trace",
		"precision-tw": "Figure 9: Precision, Time-Window trace",
		"precision-es": "Figure 10: Precision, Event-Specific trace",
	}[metric+"-"+profile]
	fmt.Println(tablefmt.Figure(name, metric, xs, series))
}

// runQuality reproduces the Section 7.2.4 analysis: average cluster size
// and average rank across the same parameter grid. Paper findings: size
// stays ~6.2–6.9 keywords except at β=0.1 where it jumps ~50%; average
// rank drops 20–30% as parameters relax.
func runQuality() {
	for _, profile := range []string{"tw", "es"} {
		msgs, gt := traceFor(profile)
		t := tablefmt.New(
			fmt.Sprintf("Event quality (§7.2.4), %s trace", profile),
			"Δ", "β", "events", "avg size", "avg rank")
		type cell struct {
			delta  int
			beta   float64
			events int
			size   float64
			rank   float64
		}
		cells := make([]cell, 0, len(sweepBetas)*len(sweepDeltas))
		for _, beta := range sweepBetas {
			for _, delta := range sweepDeltas {
				cells = append(cells, cell{delta: delta, beta: beta})
			}
		}
		var wg sync.WaitGroup
		for i := range cells {
			wg.Add(1)
			go func(c *cell) {
				defer wg.Done()
				cfg := detect.Config{Delta: c.delta, AKG: akg.Config{Beta: c.beta}}
				res, _, err := eval.Run(cfg, msgs, &gt)
				if err != nil {
					return
				}
				c.events = res.ReportedEvents
				c.size = res.AvgClusterSize
				c.rank = res.AvgRank
			}(&cells[i])
		}
		wg.Wait()
		var base *cell
		for i, c := range cells {
			t.Row(c.delta, c.beta, c.events, c.size, c.rank)
			if c.delta == 160 && c.beta == 0.20 {
				base = &cells[i]
			}
		}
		fmt.Println(t)
		if base != nil {
			fmt.Printf("nominal (Δ=160, β=0.20): avg size %.2f, avg rank %.1f\n\n",
				base.size, base.rank)
		}
	}
}
