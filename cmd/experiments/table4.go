package main

import (
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/stream"
	"repro/internal/tablefmt"
	"repro/internal/tracegen"
)

// runTable4 reproduces the Section 7.4 throughput table: messages
// processed per second for quantum sizes Δ ∈ {120, 160, 200}, on both the
// TW and ES traces. Paper shape: TW throughput far exceeds ES (event-heavy
// streams build more clusters), and throughput falls as Δ grows (larger
// quanta admit more low-quality keywords, producing clusters that are
// processed and later discarded).
func runTable4() {
	deltas := []int{120, 160, 200}
	headers := []string{"Trace Type"}
	for _, d := range deltas {
		headers = append(headers, fmt.Sprintf("Δ=%d", d))
	}
	t := tablefmt.New("Table 4: message processing rate (msgs/second)", headers...)

	for _, profile := range []struct {
		label string
		gen   func() []stream.Message
	}{
		{"Time Window Based Trace", func() []stream.Message {
			m, _ := tracegen.Generate(tracegen.TWConfig(*flagSeed, *flagN))
			return m
		}},
		{"Event Specific Trace", func() []stream.Message {
			m, _ := tracegen.Generate(tracegen.ESConfig(*flagSeed, *flagN))
			return m
		}},
	} {
		msgs := profile.gen()
		row := []any{profile.label}
		for _, delta := range deltas {
			d := detect.New(detect.Config{Delta: delta})
			src := stream.NewSliceSource(msgs)
			start := time.Now()
			if err := d.Run(src, nil); err != nil {
				fmt.Println("error:", err)
				return
			}
			elapsed := time.Since(start).Seconds()
			row = append(row, fmt.Sprintf("%.0f", float64(len(msgs))/elapsed))
		}
		t.Row(row...)
	}
	fmt.Println(t)
	fmt.Println("(absolute rates are hardware-bound; the paper reports 4160–5185 msg/s")
	fmt.Println(" on TW and 1160–1410 on ES — the TW ≫ ES ordering and the decline with")
	fmt.Println(" growing Δ are the reproduction targets)")
}
