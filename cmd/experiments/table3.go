package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/detect"
	"repro/internal/dygraph"
	"repro/internal/eval"
	"repro/internal/rank"
	"repro/internal/stream"
	"repro/internal/tablefmt"
	"repro/internal/tracegen"
)

// clusterLite is a scheme-agnostic cluster snapshot.
type clusterLite struct {
	nodes []dygraph.NodeID
	edges []dygraph.Edge
}

// schemeStats accumulates Table 3 metrics for one clustering scheme using
// a methodology applied identically to all schemes: per quantum, every
// cluster passing the standard reporting filters (minimum rank for its
// size, ≥1 noun keyword) is a reported cluster instance; instances are
// grouped into events by ground-truth identity (or by keyword fingerprint
// when they match nothing).
type schemeStats struct {
	name             string
	clusterInstances int
	distinct         map[string]struct{} // distinct clusters by fingerprint
	eventKeys        map[string]struct{} // distinct reported events
	realGT           map[int]struct{}    // matched real ground-truth ids
	fpEvents         map[string]struct{} // reported events matching nothing real
	rankSum, sizeSum float64
	reported         int
	exactOverlap     int // instances identical to some SCP cluster, same quantum
}

func newSchemeStats(name string) *schemeStats {
	return &schemeStats{
		name:      name,
		distinct:  make(map[string]struct{}),
		eventKeys: make(map[string]struct{}),
		realGT:    make(map[int]struct{}),
		fpEvents:  make(map[string]struct{}),
	}
}

func fingerprint(nodes []dygraph.NodeID) string {
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "%d,", n)
	}
	return b.String()
}

// runTable3 reproduces Section 7.3 / Table 3: the SCP clusters maintained
// incrementally vs biconnected components recomputed offline on exactly
// the same AKG after every quantum (the Bansal et al. [2] style
// comparator), with and without bridge edges reported as size-2 clusters.
func runTable3() {
	msgs, gt := tracegen.Generate(tracegen.GroundTruthConfig(*flagSeed, *flagN))
	cfg := detect.Config{}
	d := detect.New(cfg)
	akgCfg := d.AKG().Config()

	// Ground-truth keyword ownership for event matching.
	kwOwner := make(map[string]int)
	gtKind := make(map[int]tracegen.Kind)
	for _, g := range gt.Events {
		gtKind[g.ID] = g.Kind
		for _, kw := range g.Keywords {
			kwOwner[kw] = g.ID
		}
	}

	scp := newSchemeStats("SCP Clusters")
	bc := newSchemeStats("Bi-connected Clusters")
	bce := newSchemeStats("Bi-connected + Edges")
	var bcTime time.Duration
	var offlineEventHasSC, offlineEventTotal int

	record := func(s *schemeStats, c clusterLite, scpSets map[string]struct{}) {
		s.clusterInstances++
		fp := fingerprint(c.nodes)
		s.distinct[fp] = struct{}{}
		if scpSets != nil {
			if _, ok := scpSets[fp]; ok {
				s.exactOverlap++
			}
		}
		// Reporting filters, identical for every scheme.
		score := rank.ScoreParts(c.nodes, c.edges,
			func(n dygraph.NodeID) float64 { return float64(d.AKG().Support(n)) },
			func(a, b dygraph.NodeID) float64 {
				w, _ := d.AKG().Engine().Graph().Weight(a, b)
				return w
			})
		if score < rank.MinScore(len(c.nodes), akgCfg.Tau, akgCfg.Beta) && len(c.nodes) >= 3 {
			return
		}
		hasNoun := false
		for _, n := range c.nodes {
			if d.NounSeen(n) {
				hasNoun = true
			}
		}
		if !hasNoun {
			return
		}
		s.reported++
		s.rankSum += score
		s.sizeSum += float64(len(c.nodes))
		// Event identity: best ground-truth match or fingerprint.
		overlap := make(map[int]int)
		for _, n := range c.nodes {
			if id, ok := kwOwner[d.Interner().Word(n)]; ok {
				overlap[id]++
			}
		}
		bestID, best := 0, 0
		for id, k := range overlap {
			if k > best || (k == best && id < bestID) {
				bestID, best = id, k
			}
		}
		if best >= eval.MinOverlap {
			key := fmt.Sprintf("gt%d", bestID)
			s.eventKeys[key] = struct{}{}
			if gtKind[bestID] == tracegen.Real {
				s.realGT[bestID] = struct{}{}
			} else {
				s.fpEvents[key] = struct{}{}
			}
		} else {
			s.eventKeys[fp] = struct{}{}
			s.fpEvents[fp] = struct{}{}
		}
	}

	start := time.Now()
	err := d.Run(stream.NewSliceSource(msgs), func(res *detect.QuantumResult) {
		eng := d.AKG().Engine()
		// SCP clusters: read straight off the engine.
		scpSets := make(map[string]struct{})
		var scpClusters []clusterLite
		for _, c := range eng.Clusters() {
			cl := clusterLite{nodes: c.Nodes(), edges: c.Edges()}
			scpClusters = append(scpClusters, cl)
			scpSets[fingerprint(cl.nodes)] = struct{}{}
		}
		for _, cl := range scpClusters {
			record(scp, cl, nil)
		}
		// Offline recompute on the very same graph.
		t0 := time.Now()
		comps := baseline.BiconnectedComponents(eng.Graph())
		bcTime += time.Since(t0)
		for _, comp := range comps {
			cl := clusterLite{nodes: comp.Nodes, edges: comp.Edges}
			if len(comp.Nodes) >= 3 {
				record(bc, cl, scpSets)
				record(bce, cl, scpSets)
				// Does this offline event cluster contain a short cycle?
				offlineEventTotal++
				if hasShortCycle(cl) {
					offlineEventHasSC++
				}
			} else {
				record(bce, cl, scpSets)
			}
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := time.Since(start)
	scpTime := total - bcTime

	realTotal := len(gt.OfKind(tracegen.Real))
	t := tablefmt.New("Table 3: performance of different clustering schemes",
		"", scp.name, bc.name, bce.name)
	row := func(label string, f func(*schemeStats) any) {
		t.Row(label, f(scp), f(bc), f(bce))
	}
	row("Events Discovered", func(s *schemeStats) any { return len(s.eventKeys) })
	row("Precision", func(s *schemeStats) any {
		if len(s.eventKeys) == 0 {
			return 0.0
		}
		return float64(len(s.eventKeys)-len(s.fpEvents)) / float64(len(s.eventKeys))
	})
	row("Recall", func(s *schemeStats) any {
		if realTotal == 0 {
			return 0.0
		}
		return float64(len(s.realGT)) / float64(realTotal)
	})
	row("Avg. Rank", func(s *schemeStats) any {
		if s.reported == 0 {
			return 0.0
		}
		return s.rankSum / float64(s.reported)
	})
	row("Avg. Cluster Size", func(s *schemeStats) any {
		if s.reported == 0 {
			return 0.0
		}
		return s.sizeSum / float64(s.reported)
	})
	fmt.Println(t)

	// Section 7.3 companion statistics.
	ac := pct(len(bce.distinct)-len(scp.distinct), len(scp.distinct))
	acNoEdges := pct(len(bc.distinct)-len(scp.distinct), len(scp.distinct))
	ae := pct(len(bce.eventKeys)-len(scp.eventKeys), len(scp.eventKeys))
	aeNoEdges := pct(len(bc.eventKeys)-len(scp.eventKeys), len(scp.eventKeys))
	fmt.Printf("additional distinct clusters offline (Ac): %+.1f%% with edges, %+.1f%% without (paper: +276%%, −5.1%%)\n", ac, acNoEdges)
	fmt.Printf("additional events offline (AE): %+.1f%% with edges, %+.1f%% without (paper: −11.1%%, −17.1%%)\n", ae, aeNoEdges)
	if bc.clusterInstances > 0 {
		fmt.Printf("offline clusters exactly matching an SCP cluster: %.1f%% (paper: 74.5%%)\n",
			100*float64(bc.exactOverlap)/float64(bc.clusterInstances))
	}
	if offlineEventTotal > 0 {
		fmt.Printf("offline event clusters containing a short cycle: %.1f%% (paper: no event cluster without one)\n",
			100*float64(offlineEventHasSC)/float64(offlineEventTotal))
	}
	fmt.Printf("time: full SCP pipeline %v; offline BC recompute added %v on top\n",
		scpTime.Round(time.Millisecond), bcTime.Round(time.Millisecond))
	fmt.Println("(the paper's 46% clustering-speed advantage is measured at the graph level —")
	fmt.Println(" see BenchmarkAblationIncrementalVsCanonical, which isolates incremental SCP")
	fmt.Println(" maintenance from a per-quantum global recompute on identical update streams)")
}

func pct(delta, base int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(delta) / float64(base)
}

// hasShortCycle reports whether any edge of the cluster lies on a cycle of
// length ≤ 4 within the cluster.
func hasShortCycle(c clusterLite) bool {
	adj := make(map[dygraph.NodeID]map[dygraph.NodeID]struct{})
	for _, e := range c.edges {
		if adj[e.U] == nil {
			adj[e.U] = map[dygraph.NodeID]struct{}{}
		}
		if adj[e.V] == nil {
			adj[e.V] = map[dygraph.NodeID]struct{}{}
		}
		adj[e.U][e.V] = struct{}{}
		adj[e.V][e.U] = struct{}{}
	}
	for _, e := range c.edges {
		for x := range adj[e.U] {
			if x == e.V {
				continue
			}
			if _, ok := adj[e.V][x]; ok {
				return true // triangle
			}
			for y := range adj[e.V] {
				if y == e.U || y == x {
					continue
				}
				if _, ok := adj[x][y]; ok {
					return true // 4-cycle
				}
			}
		}
	}
	return false
}
