// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on synthetic traces with exact ground truth.
//
// Usage:
//
//	experiments [-n 80000] [-seed 42] <experiment ...>
//
// Experiments:
//
//	table1    ground-truth study: headlines vs discovered clusters (§7.1)
//	table2    nominal parameter values (§7.2.1)
//	fig7      recall sweep, Time-Window trace (Δ × β)
//	fig8      recall sweep, Event-Specific trace
//	fig9      precision sweep, Time-Window trace
//	fig10     precision sweep, Event-Specific trace
//	quality   event-quality analysis: avg cluster size / avg rank (§7.2.4)
//	table3    SCP vs biconnected vs BC+edges clustering schemes (§7.3)
//	table4    message processing rate per quantum size (§7.4)
//	akgstats  AKG-vs-CKG size reduction (§7.4)
//	all       everything above, in order
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data); the shapes — who wins, directions of trends, rough factors — are
// the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
)

var (
	flagN    = flag.Int("n", 80000, "trace length in messages")
	flagSeed = flag.Int64("seed", 42, "trace generator seed")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, a := range args {
		if a == "all" {
			args = []string{"table1", "table2", "fig7", "fig8", "fig9",
				"fig10", "quality", "table3", "table4", "akgstats"}
			break
		}
	}
	for _, name := range args {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("################ %s ################\n\n", name)
		fn()
		fmt.Println()
	}
}

var experiments = map[string]func(){
	"table1":   runTable1,
	"table2":   runTable2,
	"fig7":     func() { runSweep("recall", "tw") },
	"fig8":     func() { runSweep("recall", "es") },
	"fig9":     func() { runSweep("precision", "tw") },
	"fig10":    func() { runSweep("precision", "es") },
	"quality":  runQuality,
	"table3":   runTable3,
	"table4":   runTable4,
	"akgstats": runAKGStats,
}
