package main

import (
	"fmt"
	"strings"

	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/tablefmt"
	"repro/internal/tracegen"
)

// runTable1 reproduces the Section 7.1 ground-truth study and Table 1: a
// mixed trace stands in for the 18-hour Twitter download, and the injected
// ground-truth log plays the role of the concurrent Google News headlines.
// The paper found 31 of 33 above-threshold events and ~6× additional local
// events; here every headline's fate is exact.
func runTable1() {
	msgs, gt := tracegen.Generate(tracegen.GroundTruthConfig(*flagSeed, *flagN))
	res, d, err := eval.Run(detect.Config{}, msgs, &gt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	real := len(gt.OfKind(tracegen.Real))
	below := len(gt.OfKind(tracegen.BelowBurst))
	fmt.Printf("trace: %d msgs; %d headline events total: %d above burst threshold, %d below\n",
		len(msgs), real+below, real, below)
	fmt.Printf("(the %d below-burst headlines mirror the paper's 27 headlines whose\n"+
		" keywords never reached τ and are excluded from recall, as in §7.1)\n\n", below)

	t := tablefmt.New("Table 1: ground truth vs events discovered via SCP",
		"Headline (injected)", "Discovered cluster", "Latency (quanta)")
	for _, o := range res.Outcomes {
		discovered := "— MISSED —"
		lat := "-"
		if o.Detected {
			// Show the matched cluster's keyword set.
			for _, ev := range d.AllEvents() {
				if len(o.EventIDs) > 0 && ev.ID == o.EventIDs[0] {
					discovered = strings.Join(ev.Keywords, " ")
				}
			}
			lat = fmt.Sprintf("%d", o.LatencyQuanta)
		}
		t.Row(o.GT.Headline, discovered, lat)
	}
	fmt.Println(t)

	extra := 0
	for _, ev := range d.AllEvents() {
		if ev.Reported {
			extra++
		}
	}
	extra -= res.TruePositives
	fmt.Printf("events found: %d/%d above-threshold headlines (paper: 31/33)\n",
		res.RealDetected, res.RealTotal)
	fmt.Printf("additional reported events beyond headline matches: %d (paper: ~6× headline count, incl. local events)\n", extra)
	fmt.Printf("mean detection latency: %.1f quanta after event onset\n", res.MeanLatency)
}

// runTable2 prints the Table 2 nominal values and tunable ranges actually
// used by this implementation.
func runTable2() {
	t := tablefmt.New("Table 2: nominal parameter values",
		"Parameter", "Nominal value", "Tunable range")
	t.Row("Quantum size Δ", "160 msgs", "80–240 msgs")
	t.Row("High state threshold τ", "4 user ids/quantum", "(fixed, as in paper)")
	t.Row("EC threshold β", "0.20", "0.10–0.25")
	t.Row("Window length w", "30 quanta", "20–40 quanta")
	t.Row("Min-Hash size p", "min(τ/2β, 1/β)", "≥2")
	fmt.Println(t)
}
