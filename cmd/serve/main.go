// Command serve runs the event-discovery pipeline as a multi-tenant
// HTTP/JSON service: POST message batches per tenant, query live events
// and correlations, or subscribe to the SSE stream for per-quantum push
// notifications. See docs/ARCHITECTURE.md for the design.
//
// Usage:
//
//	serve -addr :8080 -checkpoints ./ckpt
//
// Ingest and query:
//
//	curl -XPOST localhost:8080/v1/demo/messages -d '[{"id":1,"user":7,"time":0,"text":"earthquake struck eastern turkey"}]'
//	curl localhost:8080/v1/demo/events
//	curl -N localhost:8080/v1/demo/stream
//
// Reads are wait-free: after every quantum the apply step publishes an
// immutable epoch snapshot, and all query endpoints resolve against the
// latest snapshot instead of locking the detector — query latency is
// independent of ingest load. Ingest is applied by a fixed -workers
// sized scheduler shared across tenants (round-robin, one batch per
// turn), so tenants-per-process scales past the goroutine-per-tenant
// limit and a hot tenant cannot starve the rest.
//
// On SIGINT/SIGTERM the server drains in-flight requests and ingest
// queues and checkpoints every tenant; a restart with the same
// -checkpoints directory resumes each stream bit-identically.
//
// With -wal-dir set, every accepted batch is write-ahead logged before
// it is acknowledged and the detector is snapshotted every
// -snapshot-every quanta, so even a kill -9 loses nothing: restart with
// the same -wal-dir and recovery (snapshot + tail replay) resumes
// bit-identically. With -archive-dir set, events evicted by -retain are
// persisted to a queryable on-disk archive (GET /v1/{tenant}/archive)
// instead of discarded. With -archive-compact-interval set, a background
// compactor incrementally merges small archive segments and rewrites
// cold v1 JSONL segments into the v2 columnar format (zone-map
// predicate skipping, several-fold smaller on disk); -archive-migrate
// performs that rewrite once, offline, and exits. See
// docs/PERSISTENCE.md. GET /v1/{tenant}/query
// answers one time-travel request across live and archived events with
// LIMIT pushdown and cursor pagination; see docs/QUERY.md.
//
// Overload protection: -rate-limit caps each tenant's sustained ingest
// rate (token bucket, burst via -rate-burst) and -admission-frac sheds
// ingest once a tenant's backlog crosses that fraction of its queue
// bounds. Shed requests get 429 + Retry-After before the WAL ever sees
// the batch; per-tenant shed/accept counters are on GET /metrics. See
// docs/OPERATIONS.md for tuning and the load harness that validates
// these limits under adversarial skew.
//
// Flag values are validated at startup; nonsensical settings (zero
// quantum size, negative fsync cadence, ...) exit with a message
// naming every offending flag.
//
// Tunables mirror Table 2: -delta (quantum size), -tau (high state
// threshold), -beta (EC threshold), -w (window quanta).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/akg"
	"repro/internal/archive"
	"repro/internal/detect"
	"repro/internal/server"
)

// migrateArchives is the -archive-migrate one-shot mode: open every
// tenant archive under dir, drive compaction to completion — merging
// runs of small sealed segments and rewriting every cold v1 JSONL
// segment into the v2 columnar format — print per-tenant stats, and
// return the process exit code. Tenants that fail are reported and
// skipped so one corrupt directory does not block the rest.
func migrateArchives(dir string, opt archive.Options) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve: archive-migrate:", err)
		return 1
	}
	code, migrated := 0, 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		l, err := archive.Open(filepath.Join(dir, name), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: archive-migrate: tenant %s: %v\n", name, err)
			code = 1
			continue
		}
		st, cerr := l.CompactAll()
		columnar := l.ColumnarSegmentCount()
		if closeErr := l.Close(); cerr == nil {
			cerr = closeErr
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "serve: archive-migrate: tenant %s: %v\n", name, cerr)
			code = 1
			continue
		}
		fmt.Printf("archive-migrate: tenant=%s compactions=%d segments_in=%d records=%d bytes_reclaimed=%d columnar_segments=%d\n",
			name, st.Compactions, st.SegmentsIn, st.Records, st.BytesReclaimed, columnar)
		migrated++
	}
	fmt.Printf("archive-migrate: done tenants=%d\n", migrated)
	return code
}

// buildInfo extracts the module path, Go toolchain and VCS revision
// baked into the binary, for the structured startup line.
func buildInfo() (path, goVersion, revision string) {
	path, goVersion, revision = "unknown", runtime.Version(), "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	path, goVersion = bi.Main.Path, bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if s.Value != "" && len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		ckpt    = flag.String("checkpoints", "", "checkpoint directory (empty disables persistence)")
		queue   = flag.Int("queue", 64, "per-tenant ingest queue depth in batches")
		queueM  = flag.Int("queue-msgs", 100000, "per-tenant ingest queue bound in messages")
		maxT    = flag.Int("max-tenants", 1024, "tenant limit")
		retain  = flag.Int("retain", 0, "finished events kept per tenant (0 = unlimited)")
		workers = flag.Int("workers", 0, "shared scheduler worker count (0 = GOMAXPROCS)")
		rateLim = flag.Float64("rate-limit", 0,
			"per-tenant sustained ingest rate limit in messages/second "+
				"(0 disables; excess is shed with 429 + Retry-After)")
		rateBur = flag.Int("rate-burst", 0,
			"per-tenant ingest burst capacity in messages (0 = one second of -rate-limit)")
		admFrac = flag.Float64("admission-frac", 0,
			"shed ingest once a tenant's backlog reaches this fraction of its "+
				"queue bounds, with 429 + Retry-After before the WAL sees the batch "+
				"(0 disables; e.g. 0.8)")
		snapRH = flag.Int("snapshot-rank-history", 0, "rank-history entries kept in published epoch snapshots (0 = full history)")
		grace  = flag.Duration("grace", 30*time.Second, "graceful shutdown budget")

		walDir  = flag.String("wal-dir", "", "write-ahead log directory (empty disables crash durability)")
		walSeg  = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
		walSync = flag.Int("wal-sync", 0, "fsync the WAL every N appends (0 = rely on the page cache)")
		walGC   = flag.Duration("wal-group-commit-interval", 0,
			"cross-tenant WAL group commit flush interval (0 disables; e.g. 2ms). "+
				"Acks wait for the shared flush+fsync: power-safe durability at a "+
				"fraction of the per-append fsync cost; overrides -wal-sync")
		snapEvr = flag.Int("snapshot-every", 256, "WAL snapshot cadence in quanta")
		stRetry = flag.Int("storage-retries", 3,
			"inline retry turns on a transient storage IO error before the "+
				"tenant degrades to read-only (-1 disables inline retries)")
		stBack = flag.Duration("storage-retry-backoff", 5*time.Millisecond,
			"first storage-retry backoff (doubles per turn, capped at 32x)")
		degProbe = flag.Duration("degraded-probe-interval", time.Second,
			"degradation supervisor probe cadence: how often fail-stopped "+
				"WALs are reopened and degraded tenants' devices write-probed; "+
				"also the Retry-After hint on degraded-shed responses")
		archDir = flag.String("archive-dir", "", "evicted-event archive directory (empty discards evicted events)")
		archSeg = flag.Int("archive-segment-events", 512, "archive segment rotation by record count")
		archBkt = flag.Int("archive-bucket-quanta", 1024, "archive segment rotation by quantum span")
		archBlk = flag.Int("archive-block-events", 256,
			"records per block inside v2 columnar archive segments — the unit "+
				"of zone-map predicate skipping and of decode work")
		archBpk = flag.Int("archive-bloom-bits-per-key", 0,
			"archive keyword Bloom filter sizing in bits per record "+
				"(0 = legacy fixed 8192-bit filters; 10 gives ~1% false positives)")
		archComp = flag.Duration("archive-compact-interval", 0,
			"background archive compaction cadence (0 disables; e.g. 30s). Each "+
				"tick merges runs of small sealed segments or rewrites one cold v1 "+
				"JSONL segment per tenant into the v2 columnar format")
		archMigrate = flag.Bool("archive-migrate", false,
			"one-shot mode: compact every tenant archive under -archive-dir "+
				"fully into the v2 columnar format, print per-tenant stats, and exit")

		pprofAddr = flag.String("pprof-addr", "",
			"listen address for net/http/pprof diagnostics (empty disables; "+
				"e.g. localhost:6060 — keep it off public interfaces)")

		telemetry = flag.Bool("telemetry", true,
			"per-stage latency histograms and request tracing "+
				"(GET /metrics?format=prometheus, GET /debug/requests)")
		traceRing = flag.Int("trace-ring", 64,
			"slowest traced requests retained per tenant for GET /debug/requests "+
				"(0 disables request tracing, keeping the histograms)")
		slowReqMs = flag.Int("slow-request-ms", 0,
			"only requests at least this slow enter the trace ring "+
				"(0 = every traced request competes for a slot)")

		delta = flag.Int("delta", 160, "quantum size Δ in messages")
		qtime = flag.Int64("qtime", 0, "time-based quantum length (0 = message count)")
		tau   = flag.Int("tau", 4, "high state threshold τ (users/quantum)")
		beta  = flag.Float64("beta", 0.20, "edge correlation threshold β")
		w     = flag.Int("w", 30, "window length in quanta")
	)
	flag.Parse()

	// Fail fast on nonsensical tunables: a zero quantum size or a
	// negative fsync cadence would otherwise be silently "corrected" (or
	// worse, obeyed) deep inside the pool. Every violation is reported,
	// not just the first.
	var bad []string
	req := func(ok bool, msg string) {
		if !ok {
			bad = append(bad, msg)
		}
	}
	req(*delta > 0, "-delta must be a positive message count")
	req(*qtime >= 0, "-qtime must be non-negative (0 = message-count quanta)")
	req(*tau >= 1, "-tau must be at least 1 user per quantum")
	req(*beta > 0 && *beta <= 1, "-beta must be in (0,1]")
	req(*w > 0, "-w must be a positive quantum count")
	req(*queue > 0, "-queue must be a positive batch count")
	req(*queueM > 0, "-queue-msgs must be a positive message count")
	req(*maxT > 0, "-max-tenants must be positive")
	req(*retain >= 0, "-retain must be non-negative (0 = unlimited)")
	req(*workers >= 0, "-workers must be non-negative (0 = GOMAXPROCS)")
	req(*rateLim >= 0, "-rate-limit must be non-negative (0 = unlimited)")
	req(*rateBur >= 0, "-rate-burst must be non-negative (0 = one second of -rate-limit)")
	req(*admFrac >= 0 && *admFrac <= 1, "-admission-frac must be in [0,1] (0 = disabled)")
	req(*snapRH >= 0, "-snapshot-rank-history must be non-negative (0 = full history)")
	req(*grace >= 0, "-grace must be non-negative")
	req(*walSeg > 0, "-wal-segment-bytes must be positive")
	req(*walSync >= 0, "-wal-sync must be non-negative (0 = page cache)")
	req(*walGC >= 0, "-wal-group-commit-interval must be non-negative (0 = disabled)")
	req(*snapEvr > 0, "-snapshot-every must be a positive quantum count")
	req(*stRetry >= -1, "-storage-retries must be -1 (disabled) or a turn count")
	req(*stBack > 0, "-storage-retry-backoff must be positive")
	req(*degProbe > 0, "-degraded-probe-interval must be positive")
	req(*archSeg > 0, "-archive-segment-events must be positive")
	req(*archBkt > 0, "-archive-bucket-quanta must be positive")
	req(*archBlk > 0, "-archive-block-events must be positive")
	req(*archBpk >= 0 && *archBpk <= 64,
		"-archive-bloom-bits-per-key must be in [0,64] (0 = legacy sizing)")
	req(*archComp >= 0, "-archive-compact-interval must be non-negative (0 = disabled)")
	req(!*archMigrate || *archDir != "", "-archive-migrate requires -archive-dir")
	req(*traceRing >= 0, "-trace-ring must be non-negative (0 = tracing off)")
	req(*slowReqMs >= 0, "-slow-request-ms must be non-negative (0 = trace everything)")
	if len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "serve: invalid flag:", msg)
		}
		os.Exit(2)
	}

	if *archMigrate {
		os.Exit(migrateArchives(*archDir, archive.Options{
			SegmentEvents:   *archSeg,
			BucketQuanta:    *archBkt,
			BlockEvents:     *archBlk,
			BloomBitsPerKey: *archBpk,
		}))
	}

	// The pool treats a negative ring size as "tracing off"; the flag
	// spells that 0, with 0 itself never meaning "use the default".
	ringSize := *traceRing
	if ringSize == 0 {
		ringSize = -1
	}
	// Same for retries: 0 on the command line means "no retries", which
	// the pool spells negative (its 0 selects the default budget).
	retries := *stRetry
	if retries == 0 {
		retries = -1
	}

	srv, err := server.New(server.Config{
		Addr:          *addr,
		ShutdownGrace: *grace,
		Pool: server.PoolConfig{
			Detector: detect.Config{
				Delta:       *delta,
				QuantumTime: *qtime,
				AKG:         akg.Config{Tau: *tau, Beta: *beta, Window: *w},
			},
			QueueDepth:          *queue,
			QueueMessages:       *queueM,
			RetainEvents:        *retain,
			CheckpointDir:       *ckpt,
			MaxTenants:          *maxT,
			Workers:             *workers,
			SnapshotRankHistory: *snapRH,
			RateLimit:           *rateLim,
			RateBurst:           *rateBur,
			AdmissionFrac:       *admFrac,

			WALDir:                 *walDir,
			WALSegmentBytes:        *walSeg,
			WALSyncEvery:           *walSync,
			WALGroupCommitInterval: *walGC,
			SnapshotEvery:          *snapEvr,
			StorageRetries:         retries,
			StorageRetryBackoff:    *stBack,
			DegradedProbeInterval:  *degProbe,
			ArchiveDir:             *archDir,
			ArchiveSegmentEvents:   *archSeg,
			ArchiveBucketQuanta:    *archBkt,
			ArchiveBlockEvents:     *archBlk,
			ArchiveBloomBitsPerKey: *archBpk,
			ArchiveCompactInterval: *archComp,

			ObsDisabled:          !*telemetry,
			TraceRingSize:        ringSize,
			SlowRequestThreshold: time.Duration(*slowReqMs) * time.Millisecond,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	modPath, goVersion, revision := buildInfo()
	logger.Info("starting",
		"module", modPath,
		"go", goVersion,
		"revision", revision,
		"addr", *addr,
		"workers", *workers,
		"delta", *delta,
		"tau", *tau,
		"beta", *beta,
		"window", *w,
		"wal", *walDir != "",
		"group_commit", walGC.String(),
		"archive", *archDir != "",
		"archive_compact_interval", archComp.String(),
		"checkpoints", *ckpt != "",
		"rate_limit", *rateLim,
		"admission_frac", *admFrac,
		"telemetry", *telemetry,
		"trace_ring", *traceRing,
		"slow_request_ms", *slowReqMs,
	)
	if tenants := srv.Pool.Names(); len(tenants) > 0 {
		logger.Info("restored tenants", "count", len(tenants), "tenants", tenants)
	}
	if *pprofAddr != "" {
		// The pprof import registers on http.DefaultServeMux, which the
		// API server does not use — the diagnostics surface stays on its
		// own listener, off by default.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		logger.Info("shutting down", "phase", "draining queues and checkpointing")
		if err := srv.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}
