package repro_test

import (
	"bytes"
	"fmt"

	"repro"
)

// burst returns n messages from n distinct users all posting text — the
// shape of a real-world event hitting a microblog stream.
func burst(startUser, n int, text string) []repro.Message {
	out := make([]repro.Message, n)
	for i := range out {
		out[i] = repro.Message{
			ID:   uint64(i + 1),
			User: uint64(startUser + i),
			Time: int64(i),
			Text: text,
		}
	}
	return out
}

// Example feeds a burst of messages through the streaming detector and
// prints the event it discovers. Zero-valued Config fields take the
// paper's Table 2 nominal parameters; here the quantum and thresholds
// are shrunk so one burst forms one quantum.
func Example() {
	d := repro.NewDetector(repro.Config{
		Delta: 8,
		AKG:   repro.GraphConfig{Tau: 3, Beta: 0.2, Window: 5},
	})
	for _, m := range burst(0, 8, "earthquake struck eastern turkey") {
		if res := d.Ingest(m); res != nil {
			for _, r := range res.Reports {
				fmt.Printf("quantum %d: event %d %v rank=%.0f support=%d\n",
					r.Quantum, r.EventID, r.Keywords, r.Rank, r.Support)
			}
		}
	}
	// Output:
	// quantum 1: event 1 [earthquake eastern struck turkey] rank=32 support=8
}

// ExampleEngine drives the generic short-cycle-property cluster engine
// directly on a dynamic graph — the non-text usage Section 8 of the
// paper anticipates (IP networks, telecom graphs, business analytics).
// A triangle is densely connected, so it forms a cluster; removing one
// of its edges leaves no short cycle and the cluster dissolves.
func ExampleEngine() {
	eng := repro.NewEngine(repro.Hooks{
		OnFormed:    func(c *repro.Cluster) { fmt.Println("formed:", c.Nodes()) },
		OnDissolved: func(id repro.ClusterID) { fmt.Println("dissolved") },
	})
	eng.AddEdge(1, 2, 0.9)
	eng.AddEdge(2, 3, 0.8)
	eng.AddEdge(1, 3, 0.7) // closes the triangle
	fmt.Println("clusters:", eng.ClusterCount())
	eng.RemoveEdge(1, 3)
	fmt.Println("clusters:", eng.ClusterCount())
	// Output:
	// formed: [1 2 3]
	// clusters: 1
	// dissolved
	// clusters: 0
}

// ExampleDetector_Save checkpoints a detector mid-stream and restores
// it: the restored detector continues the stream exactly where the
// saved one stopped, producing bit-identical event histories.
func ExampleDetector_Save() {
	cfg := repro.Config{Delta: 8, AKG: repro.GraphConfig{Tau: 3, Beta: 0.2, Window: 5}}
	msgs := burst(0, 16, "storm warning on the coast")

	d := repro.NewDetector(cfg)
	for _, m := range msgs[:10] { // 1 full quantum + 2 buffered messages
		d.Ingest(m)
	}
	var ckpt bytes.Buffer
	if err := d.Save(&ckpt); err != nil {
		panic(err)
	}

	restored, err := repro.LoadDetector(&ckpt)
	if err != nil {
		panic(err)
	}
	for _, m := range msgs[10:] {
		restored.Ingest(m)
	}
	for _, ev := range restored.AllEvents() {
		fmt.Printf("event %d %v state=%v quanta=%d..%d\n",
			ev.ID, ev.Keywords, ev.State, ev.BornQuantum, ev.LastQuantum)
	}
	// Output:
	// event 1 [coast storm warning] state=live quanta=1..2
}
