# Developer entry points. CI runs the same checks as `make check`.
.PHONY: build test lint check bench bench-serving bench-ingest bench-query bench-archive bench-load bench-obs bench-smoke fuzz-smoke

build:
	go build ./...

test:
	go test ./...

# Static gates: formatting (fails on any unformatted file, matching the
# CI gate — bare `gofmt -l` exits 0 even when it lists files; `|| exit`
# also propagates gofmt's own failure, which the bare substitution
# swallows), vet, and the repo's custom invariant suite (repro-lint:
# determinism, durability-seam and retryable-API checks — see
# docs/DETERMINISM.md).
lint:
	@out="$$(gofmt -l .)" || exit; if [ -n "$$out" ]; then \
		echo "gofmt needs running on:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go build -o bin/repro-lint ./cmd/repro-lint
	go vet -vettool=bin/repro-lint ./...

check: lint
	go build ./...
	go test ./...

# Persistence benchmarks (WAL append/replay, crash recovery); emits
# BENCH_persistence.json. Pass BENCHTIME=5s for steadier numbers.
BENCHTIME ?= 1s
bench:
	./scripts/bench_persistence.sh $(BENCHTIME)

# Serving benchmarks (query p50/p99 under full-rate ingest, ingest
# throughput, durable-ingest ack latency); emits BENCH_serving.json.
bench-serving:
	./scripts/bench_serving.sh $(BENCHTIME)

# Write-path-only subset of bench-serving for fast iteration on ingest
# work: runs the ingest throughput + durable-ack benchmarks and rewrites
# BENCH_serving.json with those numbers (run bench-serving for the full
# suite before committing the file).
bench-ingest:
	./scripts/bench_serving.sh $(BENCHTIME) 'IngestThroughput|IngestDurable'

# Unified query-engine benchmarks (LIMIT pushdown segment skipping);
# emits BENCH_query.json.
bench-query:
	./scripts/bench_query.sh $(BENCHTIME)

# Archive storage-layer benchmarks (v1 JSONL vs v2 columnar decode,
# zone-map block skipping, on-disk footprint); emits BENCH_archive.json.
bench-archive:
	./scripts/bench_archive.sh $(BENCHTIME)

# Adversarial load harness (uniform / zipf-hot / flash-flood scenarios
# against an in-process server with admission control on); emits
# BENCH_load.json with per-tenant ingest-to-SSE and query percentiles,
# shed counts, and the reproducible traffic-plan SHA-256. See
# docs/OPERATIONS.md.
bench-load:
	./scripts/bench_load.sh

# Instrumentation-overhead gate: the durable-ingest and
# query-under-ingest benchmarks with telemetry off vs on must agree
# within OBS_TOLERANCE_PCT (default 3) ns/op and +0 allocs/op; emits
# BENCH_obs.json and fails on regression. See docs/OPERATIONS.md.
OBS_TOLERANCE_PCT ?= 3
OBS_ALLOC_SLACK ?= 0
bench-obs:
	OBS_TOLERANCE_PCT=$(OBS_TOLERANCE_PCT) OBS_ALLOC_SLACK=$(OBS_ALLOC_SLACK) \
		./scripts/bench_obs.sh $(BENCHTIME)

# One-iteration pass over every benchmark in the repo, so bench-only
# files cannot rot uncompiled (CI runs this on every PR), plus the fuzz
# targets' seed corpora so fuzz-only regressions surface immediately.
bench-smoke: fuzz-smoke
	go test -run xxx -bench . -benchtime 1x ./...

fuzz-smoke:
	go test -run 'Fuzz' -count=1 ./internal/server/ ./internal/query/ ./internal/archive/
