# Developer entry points. CI runs the same four checks as `make check`.
.PHONY: build test check bench bench-serving

build:
	go build ./...

test:
	go test ./...

check:
	gofmt -l .
	go vet ./...
	go build ./...
	go test ./...

# Persistence benchmarks (WAL append/replay, crash recovery); emits
# BENCH_persistence.json. Pass BENCHTIME=5s for steadier numbers.
BENCHTIME ?= 1s
bench:
	./scripts/bench_persistence.sh $(BENCHTIME)

# Serving benchmarks (query p50/p99 under full-rate ingest, ingest
# throughput); emits BENCH_serving.json.
bench-serving:
	./scripts/bench_serving.sh $(BENCHTIME)
