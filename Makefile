# Developer entry points. CI runs the same four checks as `make check`.
.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

check:
	gofmt -l .
	go vet ./...
	go build ./...
	go test ./...

# Persistence benchmarks (WAL append/replay, crash recovery); emits
# BENCH_persistence.json. Pass BENCHTIME=5s for steadier numbers.
BENCHTIME ?= 1s
bench:
	./scripts/bench_persistence.sh $(BENCHTIME)
