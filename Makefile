# Developer entry points. CI runs the same four checks as `make check`.
.PHONY: build test check bench bench-serving bench-ingest bench-smoke

build:
	go build ./...

test:
	go test ./...

check:
	gofmt -l .
	go vet ./...
	go build ./...
	go test ./...

# Persistence benchmarks (WAL append/replay, crash recovery); emits
# BENCH_persistence.json. Pass BENCHTIME=5s for steadier numbers.
BENCHTIME ?= 1s
bench:
	./scripts/bench_persistence.sh $(BENCHTIME)

# Serving benchmarks (query p50/p99 under full-rate ingest, ingest
# throughput, durable-ingest ack latency); emits BENCH_serving.json.
bench-serving:
	./scripts/bench_serving.sh $(BENCHTIME)

# Write-path-only subset of bench-serving for fast iteration on ingest
# work: runs the ingest throughput + durable-ack benchmarks and rewrites
# BENCH_serving.json with those numbers (run bench-serving for the full
# suite before committing the file).
bench-ingest:
	./scripts/bench_serving.sh $(BENCHTIME) 'IngestThroughput|IngestDurable'

# One-iteration pass over every benchmark in the repo, so bench-only
# files cannot rot uncompiled (CI runs this on every PR).
bench-smoke:
	go test -run xxx -bench . -benchtime 1x ./...
