// Tests of the public facade: everything a downstream user touches must
// work through the root package alone.
package repro_test

import (
	"bytes"

	"testing"

	"repro"
)

func TestPublicDetectorFlow(t *testing.T) {
	d := repro.NewDetector(repro.Config{
		Delta: 6,
		AKG:   repro.GraphConfig{Tau: 3, Beta: 0.2, Window: 4},
	})
	var msgs []repro.Message
	for i := 0; i < 6; i++ {
		msgs = append(msgs, repro.Message{
			ID: uint64(i + 1), User: uint64(i + 1), Time: int64(i),
			Text: "earthquake struck eastern turkey",
		})
	}
	var reports []repro.Report
	err := d.Run(repro.NewSliceSource(msgs), func(r *repro.QuantumResult) {
		reports = append(reports, r.Reports...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(reports))
	}
	if len(reports[0].Keywords) != 4 {
		t.Fatalf("keywords = %v", reports[0].Keywords)
	}
	live := d.LiveEvents()
	if len(live) != 1 || live[0].State != repro.EventLive {
		t.Fatalf("live events wrong: %+v", live)
	}
}

func TestPublicEngineFlow(t *testing.T) {
	formed := 0
	en := repro.NewEngine(repro.Hooks{
		OnFormed: func(c *repro.Cluster) { formed++ },
	})
	en.AddEdge(1, 2, 1)
	en.AddEdge(2, 3, 1)
	c := en.AddEdge(3, 1, 1)
	if c == nil || formed != 1 {
		t.Fatalf("triangle not discovered via public API")
	}
	if got := repro.CanonicalClusters(en.Graph()); len(got) != 1 {
		t.Fatalf("canonical clusters = %d", len(got))
	}
	if e := repro.NewEdge(3, 1); e.U != 1 || e.V != 3 {
		t.Fatalf("NewEdge not canonical")
	}
	g := repro.NewGraph()
	g.AddEdge(7, 8, 0.5)
	if g.EdgeCount() != 1 {
		t.Fatalf("public graph broken")
	}
}

func TestPublicTraceAndEvaluate(t *testing.T) {
	msgs, gt := repro.TWTrace(3, 30000)
	if len(msgs) != 30000 || len(gt.Events) == 0 {
		t.Fatalf("TWTrace wrong: %d msgs %d events", len(msgs), len(gt.Events))
	}
	res, d, err := repro.Evaluate(repro.Config{}, msgs, &gt)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || res.RealTotal == 0 {
		t.Fatalf("Evaluate returned empty result")
	}
	if res.Recall < 0.5 {
		t.Fatalf("public pipeline recall suspiciously low: %v", res.Recall)
	}

	es, esGT := repro.ESTrace(3, 30000)
	if len(es) != 30000 || len(esGT.Events) <= len(gt.Events) {
		t.Fatalf("ES trace should be denser: %d vs %d events",
			len(esGT.Events), len(gt.Events))
	}

	custom, customGT := repro.GenerateTrace(repro.TraceConfig{
		Seed: 1, TotalMessages: 5000,
	})
	if len(custom) != 5000 || customGT.Events == nil && len(customGT.Events) != 0 {
		t.Fatalf("GenerateTrace with custom config failed")
	}
}

func TestPublicCheckpoint(t *testing.T) {
	msgs, _ := repro.TWTrace(9, 12000)
	d := repro.NewDetector(repro.Config{})
	for _, m := range msgs[:6000] {
		d.Ingest(m)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := repro.LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[6000:] {
		d2.Ingest(m)
	}
	if d2.Processed() != uint64(len(msgs)) {
		t.Fatalf("Processed = %d", d2.Processed())
	}
}

func TestPublicRunParallel(t *testing.T) {
	msgs, _ := repro.TWTrace(9, 12000)
	d := repro.NewDetector(repro.Config{})
	if err := d.RunParallel(repro.NewSliceSource(msgs), 4, nil); err != nil {
		t.Fatal(err)
	}
	if d.Processed() != uint64(len(msgs)) {
		t.Fatalf("Processed = %d", d.Processed())
	}
	_ = d.TopK(3)
	_ = d.RelatedEvents(0.9)
	_ = d.SpuriousEvents()
}
