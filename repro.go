// Package repro is a Go implementation of "Real Time Discovery of Dense
// Clusters in Highly Dynamic Graphs: Identifying Real World Events in
// Highly Dynamic Environments" (Agarwal, Ramamritham, Bhide; PVLDB 5(10),
// 2012).
//
// It provides two public entry points:
//
//   - Detector: the full microblog event-discovery pipeline. Feed it a
//     stream of Messages; it cuts the stream into quanta, maintains the
//     Active Correlated Keyword Graph (burstiness automaton + Min-Hash
//     screened Jaccard correlation edges), discovers dense clusters via
//     the short-cycle property, and emits ranked events with full
//     lifecycle tracking (birth, evolution, merge, split, death).
//
//   - Engine: the underlying short-cycle-property cluster engine on a
//     generic dynamic graph, for non-text domains (IP networks, telecom
//     graphs, business analytics — the extensions Section 8 of the paper
//     anticipates). Add and remove nodes/edges; the engine maintains the
//     unique canonical SCP clustering with purely local computation.
//
//   - Pool / Server: the HTTP/JSON serving subsystem (cmd/serve): a
//     multi-tenant detector pool with bounded ingest queues, live event
//     and correlation queries, an SSE push stream of per-quantum reports,
//     and checkpoint-on-shutdown persistence so restarts resume each
//     tenant's stream bit-identically. Design notes: docs/ARCHITECTURE.md.
//
// Quickstart:
//
//	d := repro.NewDetector(repro.Config{})
//	for _, m := range messages {
//		if res := d.Ingest(m); res != nil {
//			for _, r := range res.Reports {
//				fmt.Println(r.Rank, r.Keywords)
//			}
//		}
//	}
//
// All types are aliases of their internal implementations, so the full
// documented API of each subsystem applies.
package repro

import (
	"io"
	"net/http"

	"repro/internal/akg"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dygraph"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

// ---- Streaming detector pipeline ----

// Message is one microblog post (ID, User, Time, Text).
type Message = stream.Message

// Source yields messages in arrival order.
type Source = stream.Source

// Config configures a Detector; zero values take the paper's Table 2
// nominal parameters (Δ=160 messages, τ=4, β=0.20, w=30).
type Config = detect.Config

// GraphConfig holds the AKG-layer thresholds (τ, β, w, Min-Hash p).
type GraphConfig = akg.Config

// Detector is the streaming event-discovery pipeline.
type Detector = detect.Detector

// Event is a tracked event lifecycle.
type Event = detect.Event

// Report is a per-quantum snapshot of a reportable event.
type Report = detect.Report

// QuantumResult summarises one processed quantum.
type QuantumResult = detect.QuantumResult

// RelatedPair reports two live events whose user communities overlap —
// the post-processing correlation for same-event clusters (Section 1.1).
type RelatedPair = detect.RelatedPair

// Event lifecycle states.
const (
	EventLive   = detect.EventLive
	EventMerged = detect.EventMerged
	EventEnded  = detect.EventEnded
)

// NewDetector returns a streaming detector.
func NewDetector(cfg Config) *Detector { return detect.New(cfg) }

// LoadDetector restores a detector from a checkpoint written by
// Detector.Save. The restored detector continues the stream exactly where
// the saved one stopped (bit-identical event histories).
func LoadDetector(r io.Reader) (*Detector, error) { return detect.Load(r) }

// MergeNote records one event absorbed by another during a quantum.
type MergeNote = detect.MergeNote

// ---- Event-serving HTTP subsystem ----

// Pool is a multi-tenant detector pool: per-tenant ingest queues, query
// snapshots and SSE push, with checkpoint-on-shutdown persistence.
type Pool = server.Pool

// PoolConfig configures a Pool.
type PoolConfig = server.PoolConfig

// Tenant is one isolated detector inside a Pool.
type Tenant = server.Tenant

// TenantStats is the monitoring snapshot of one tenant.
type TenantStats = server.TenantStats

// EventView is the JSON projection of an Event served by the API.
type EventView = server.EventView

// StreamEvent is the per-quantum SSE push payload.
type StreamEvent = server.StreamEvent

// ServerConfig configures a Server.
type ServerConfig = server.Config

// Server is the HTTP serving frontend over a Pool (see cmd/serve).
type Server = server.Server

// NewPool builds a detector pool, restoring any checkpointed tenants.
func NewPool(cfg PoolConfig) (*Pool, error) { return server.NewPool(cfg) }

// NewServer builds an HTTP server (and its pool) from cfg.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewServerHandler returns just the HTTP API handler over a pool, for
// embedding into an existing mux or test server.
func NewServerHandler(p *Pool) http.Handler { return server.NewHandler(p) }

// ---- Generic dynamic-graph cluster engine ----

// NodeID identifies a graph node.
type NodeID = dygraph.NodeID

// Edge is an undirected edge in canonical (U < V) orientation.
type Edge = dygraph.Edge

// NewEdge returns the canonical edge between two nodes.
func NewEdge(a, b NodeID) Edge { return dygraph.NewEdge(a, b) }

// Graph is the dynamic undirected weighted graph substrate.
type Graph = dygraph.Graph

// NewGraph returns an empty dynamic graph.
func NewGraph() *Graph { return dygraph.New() }

// Engine maintains the canonical short-cycle-property clustering of a
// dynamic graph under local updates.
type Engine = core.Engine

// Cluster is a dense cluster (approximate majority quasi-clique).
type Cluster = core.Cluster

// ClusterID identifies a live cluster.
type ClusterID = core.ClusterID

// Hooks receives cluster lifecycle callbacks.
type Hooks = core.Hooks

// NewEngine returns a cluster engine over an empty graph.
func NewEngine(hooks Hooks) *Engine { return core.NewEngine(hooks) }

// CanonicalClusters computes the canonical SCP clustering of a graph from
// scratch — the global reference the incremental engine provably matches.
func CanonicalClusters(g *Graph) []core.EdgeSet { return core.Canonical(g) }

// ---- Workload generation and evaluation ----

// TraceConfig controls synthetic trace generation.
type TraceConfig = tracegen.Config

// GroundTruth is the injected-event log of a synthetic trace.
type GroundTruth = tracegen.GroundTruth

// GTEvent is one injected ground-truth event.
type GTEvent = tracegen.GTEvent

// EvalResult aggregates precision/recall/latency/quality for one run.
type EvalResult = eval.Result

// TWTrace generates a Time-Window profile trace (general stream, low event
// density) of n messages.
func TWTrace(seed int64, n int) ([]Message, GroundTruth) {
	return tracegen.Generate(tracegen.TWConfig(seed, n))
}

// ESTrace generates an Event-Specific profile trace (≈3× the event
// density of TW) of n messages.
func ESTrace(seed int64, n int) ([]Message, GroundTruth) {
	return tracegen.Generate(tracegen.ESConfig(seed, n))
}

// GenerateTrace generates a trace from an explicit configuration.
func GenerateTrace(cfg TraceConfig) ([]Message, GroundTruth) {
	return tracegen.Generate(cfg)
}

// Evaluate runs a detector over msgs and scores it against ground truth.
func Evaluate(cfg Config, msgs []Message, gt *GroundTruth) (EvalResult, *Detector, error) {
	return eval.Run(cfg, msgs, gt)
}

// NewSliceSource wraps in-memory messages as a Source.
func NewSliceSource(msgs []Message) *stream.SliceSource {
	return stream.NewSliceSource(msgs)
}
