#!/usr/bin/env sh
# Runs the persistence benchmarks (WAL append/replay, pool recovery) and
# writes the results as JSON to BENCH_persistence.json at the repo root.
# Usage: scripts/bench_persistence.sh [benchtime]   (default 1s)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="BENCH_persistence.json"

RAW="$(go test -bench 'WALAppend|WALReplay|Recovery' -run xxx -benchmem \
	-benchtime "$BENCHTIME" ./internal/wal ./internal/server)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
BEGIN {
	n = 0
	print "{"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
}
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	print ""
	print "  ],"
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
	print "}"
}' >"$OUT"

echo "wrote $OUT"
