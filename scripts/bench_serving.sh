#!/usr/bin/env sh
# Runs the serving benchmarks (query latency under full-rate ingest,
# ingest throughput) and writes the results as JSON to BENCH_serving.json
# at the repo root. The headline metric is p99-ns on
# BenchmarkQueryUnderIngest: query tail latency while one tenant ingests
# at full rate.
# Usage: scripts/bench_serving.sh [benchtime] [benchregex]
#   benchtime  default 2s
#   benchregex default runs the full serving suite; `make bench-ingest`
#              passes an ingest-only filter for fast write-path iteration
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
BENCHRE="${2:-QueryUnderIngest|IngestThroughput|IngestDurable}"
OUT="BENCH_serving.json"

RAW="$(go test -bench "$BENCHRE" -run xxx -benchmem \
	-benchtime "$BENCHTIME" ./internal/server)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
BEGIN {
	n = 0
	print "{"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
}
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	print ""
	print "  ],"
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
	print "}"
}' >"$OUT"

echo "wrote $OUT"
