#!/usr/bin/env sh
# Runs the archive storage-layer benchmarks and writes the results as
# JSON to BENCH_archive.json at the repo root. The headline comparisons:
# fullscan-v1 vs fullscan-v2 (the v2 columnar decode must cut both
# ns/op and allocs/op on a full scan of the same 4096 records), and
# BenchmarkArchiveFootprint's shrink_x (v1 JSONL bytes / v2 columnar
# bytes on disk, data + sidecars). zonemap-hit-v2 shows predicate
# pushdown reading only the blocks a narrow time range touches.
# Usage: scripts/bench_archive.sh [benchtime]
#   benchtime  default 2s
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_archive.json"

RAW="$(go test -bench 'ArchiveScan|ArchiveFootprint' -run xxx -benchmem \
	-benchtime "$BENCHTIME" ./internal/archive)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
BEGIN {
	n = 0
	print "{"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
}
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	print ""
	print "  ],"
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
	print "}"
}' >"$OUT"

echo "wrote $OUT"
