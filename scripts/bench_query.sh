#!/usr/bin/env sh
# Runs the unified query-engine benchmarks and writes the results as
# JSON to BENCH_query.json at the repo root. The headline comparison is
# segscanned/op on BenchmarkUnifiedQuery/limit10 vs /fullscan: LIMIT
# pushdown must scan strictly fewer archive segments than a full scan
# of the same archive.
# Usage: scripts/bench_query.sh [benchtime]
#   benchtime  default 2s
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_query.json"

RAW="$(go test -bench UnifiedQuery -run xxx -benchmem \
	-benchtime "$BENCHTIME" ./internal/query)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
BEGIN {
	n = 0
	print "{"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
}
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	print ""
	print "  ],"
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
	print "}"
}' >"$OUT"

echo "wrote $OUT"
