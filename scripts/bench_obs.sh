#!/usr/bin/env sh
# Instrumentation-overhead gate: runs the two hot-path serving
# benchmarks (durable ingest ack latency, query latency under full-rate
# ingest) twice — BENCH_TELEMETRY=off as the untelemetered baseline,
# then with the stage histograms live as production runs them — and
# fails if telemetry costs more than OBS_TOLERANCE_PCT (default 3) in
# ns/op or a single alloc/op on either benchmark. Writes the paired
# numbers to BENCH_obs.json at the repo root.
# Usage: scripts/bench_obs.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
TOL="${OBS_TOLERANCE_PCT:-3}"
# Allocs gate slack, default exact (+0). The benchmarks are composite:
# allocs/op amortizes the concurrent detector applies that land inside
# the timed window, so short runs on shared machines wobble by a
# couple of allocs in either direction with identical code. The
# telemetry layer's own zero-allocation guarantee is enforced exactly
# and deterministically by the testing.AllocsPerRun assertions in
# internal/obs (run in the ordinary test job); this end-to-end gate
# exists to catch an alloc sneaking into the serving integration.
ALLOC_SLACK="${OBS_ALLOC_SLACK:-0}"
# The arms run interleaved (off, on, off, on, ...) for BENCH_COUNT
# rounds and the gate compares per-benchmark minima. Interleaving
# matters: the durable-ingest benchmark is fsync-bound and storage
# latency drifts over minutes, so two back-to-back blocks would gate
# on disk weather rather than instrumentation; the query benchmark
# shares its process with a full-rate background ingester, whose
# scheduling noise leaks into both ns/op and (through iteration count)
# allocs/op. The minimum over interleaved rounds is each arm's
# least-interfered run under the same conditions.
COUNT="${BENCH_COUNT:-3}"
BENCHRE='QueryUnderIngest|IngestDurable'
OUT="BENCH_obs.json"

# Stabilize the fsync-bound arm: this gate compares code paths, not
# disk weather, and real-disk fsync latency drifts by more than the
# tolerance between rounds. b.TempDir() honours TMPDIR, so point the
# benchmark WALs at tmpfs when one is mounted — fsyncs become cheap
# and repeatable, leaving the instrumentation as the only difference
# between the arms. (BENCH_serving.json keeps measuring real disk.)
if [ -z "${TMPDIR:-}" ] && [ -w /dev/shm ]; then
	TMPDIR="$(mktemp -d /dev/shm/benchobs.XXXXXX)"
	trap 'rm -rf "$TMPDIR"' EXIT
	export TMPDIR
fi

OFF=""
ON=""
i=1
while [ "$i" -le "$COUNT" ]; do
	echo "== round $i/$COUNT: baseline (BENCH_TELEMETRY=off) =="
	R="$(BENCH_TELEMETRY=off go test -bench "$BENCHRE" -run xxx -benchmem \
		-count=1 -benchtime "$BENCHTIME" ./internal/server)"
	printf '%s\n' "$R"
	OFF="$OFF$R
"
	echo "== round $i/$COUNT: telemetry on =="
	R="$(go test -bench "$BENCHRE" -run xxx -benchmem \
		-count=1 -benchtime "$BENCHTIME" ./internal/server)"
	printf '%s\n' "$R"
	ON="$ON$R
"
	i=$((i + 1))
done

{ printf '%s\n' "$OFF"; echo '===ON==='; printf '%s\n' "$ON"; } | awk \
	-v benchtime="$BENCHTIME" -v tol="$TOL" -v slack="$ALLOC_SLACK" '
BEGIN { arm = "off"; n = 0; fails = 0 }
/^===ON===$/ { arm = "on"; next }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "" || allocs == "") next
	if (arm == "off") {
		if (!(name in off_ns)) order[n++] = name
		if (!(name in off_ns) || ns + 0 < off_ns[name] + 0) off_ns[name] = ns
		if (!(name in off_allocs) || allocs + 0 < off_allocs[name] + 0) off_allocs[name] = allocs
	} else {
		if (!(name in on_ns) || ns + 0 < on_ns[name] + 0) on_ns[name] = ns
		if (!(name in on_allocs) || allocs + 0 < on_allocs[name] + 0) on_allocs[name] = allocs
	}
}
END {
	print "{" > "'"$OUT"'"
	printf "  \"benchtime\": \"%s\", \"tolerance_pct\": %s,\n", benchtime, tol > "'"$OUT"'"
	print "  \"benchmarks\": [" > "'"$OUT"'"
	for (i = 0; i < n; i++) {
		name = order[i]
		if (!(name in on_ns)) continue
		delta = (on_ns[name] - off_ns[name]) * 100.0 / off_ns[name]
		ok = (delta <= tol + 0.0) && (on_allocs[name] + 0 <= off_allocs[name] + slack + 0)
		if (!ok) {
			fails++
			printf "FAIL %s: off %s ns/op %s allocs/op -> on %s ns/op %s allocs/op (%+.2f%%, tol %s%%)\n", \
				name, off_ns[name], off_allocs[name], on_ns[name], on_allocs[name], delta, tol
		} else {
			printf "ok   %s: off %s ns/op -> on %s ns/op (%+.2f%%), allocs %s -> %s\n", \
				name, off_ns[name], on_ns[name], delta, off_allocs[name], on_allocs[name]
		}
		printf "%s    {\"name\": \"%s\", \"off_ns_op\": %s, \"on_ns_op\": %s, \"delta_pct\": %.2f, \"off_allocs_op\": %s, \"on_allocs_op\": %s, \"pass\": %s}", \
			(i ? ",\n" : ""), name, off_ns[name], on_ns[name], delta, \
			off_allocs[name], on_allocs[name], (ok ? "true" : "false") > "'"$OUT"'"
	}
	print "" > "'"$OUT"'"
	print "  ]," > "'"$OUT"'"
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"pass\": %s\n", \
		goos, goarch, cpu, (fails ? "false" : "true") > "'"$OUT"'"
	print "}" > "'"$OUT"'"
	if (fails) exit 1
}'

echo "wrote $OUT"
