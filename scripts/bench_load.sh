#!/usr/bin/env sh
# Runs the adversarial load harness at bench scale and writes the
# per-tenant SLO report to BENCH_load.json at the repo root: for each
# scenario (uniform control, zipf-hot skew, flash-crowd keyword flood)
# the per-tenant ingest-to-SSE p50/p99, query p50/p99, shed (429) and
# error counts, plus the plan SHA-256 that makes the traffic
# byte-reproducible for the fixed seed. The headline gates: zero 5xx
# under skew with admission on, Retry-After on every shed, cold-tenant
# p99 within 2x its uniform-control p99.
# Usage: scripts/bench_load.sh [tenants] [batches]
#   tenants default 8
#   batches default 768 (total per scenario)
set -eu
cd "$(dirname "$0")/.."

TENANTS="${1:-8}"
BATCHES="${2:-768}"
OUT="BENCH_load.json"

ARCHROOT="$(mktemp -d)"
trap 'rm -rf "$ARCHROOT"' EXIT

# Admission tuning: the queue-depth gate (0.8 x 16 batches) catches
# apply-lag backlogs; the token bucket (2000-message burst, 500 msgs/s
# sustained) is what the skewed scenarios actually trip — a uniform
# tenant sends 768 messages and never sheds, the zipf-hot tenant sends
# ~4x that and must shed the excess as 429 + Retry-After. Message
# counts, not wall-clock rates, decide who sheds, so the shed counts
# below are stable across machine speeds.
go run ./cmd/loadharness \
	-seed 1 \
	-tenants "$TENANTS" \
	-batches "$BATCHES" \
	-workers 1 \
	-queue 16 \
	-admission-frac 0.8 \
	-rate-limit 500 \
	-rate-burst 2000 \
	-retain 16 \
	-archive-dir "$ARCHROOT" \
	-out "$OUT"

echo "wrote $OUT"
