// Command checkpoint demonstrates operational durability: the detector
// processes half an event-specific stream, checkpoints itself to disk,
// is "restarted" (a fresh process would call repro.LoadDetector), and
// finishes the stream — producing exactly the same events as an
// uninterrupted run. This is what a production deployment needs to survive
// restarts without losing the sliding window, the cluster state, or event
// histories.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	msgs, gt := repro.ESTrace(99, 40000)
	cfg := repro.Config{}

	// Uninterrupted reference run.
	ref := repro.NewDetector(cfg)
	if err := ref.Run(repro.NewSliceSource(msgs), nil); err != nil {
		panic(err)
	}

	// Interrupted run: half the stream, checkpoint, restore, the rest.
	d1 := repro.NewDetector(cfg)
	cut := len(msgs) / 2
	for _, m := range msgs[:cut] {
		d1.Ingest(m)
	}
	path := filepath.Join(os.TempDir(), "detector.ckpt")
	f, err := os.Create(path) //repro:vfs-exempt example scratch file; not the server storage layer
	if err != nil {
		panic(err)
	}
	if err := d1.Save(f); err != nil {
		panic(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed after %d messages: %s (%d KiB)\n",
		cut, path, info.Size()/1024)

	g, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	d2, err := repro.LoadDetector(g)
	g.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored detector: %d messages processed, %d live events\n",
		d2.Processed(), len(d2.LiveEvents()))
	for _, m := range msgs[cut:] {
		d2.Ingest(m)
	}
	d2.Flush()

	// Compare complete event histories.
	digest := func(d *repro.Detector) string {
		var b bytes.Buffer
		for _, ev := range d.AllEvents() {
			fmt.Fprintf(&b, "%d %v %v %.3f\n", ev.ID, ev.State, ev.Keywords, ev.PeakRank)
		}
		return b.String()
	}
	same := digest(ref) == digest(d2)
	fmt.Printf("event histories identical to uninterrupted run: %v\n", same)
	fmt.Printf("events tracked: %d (%d injected ground-truth entries)\n",
		len(d2.AllEvents()), len(gt.Events))
	if !same {
		os.Exit(1)
	}
	os.Remove(path) //repro:vfs-exempt example scratch file; not the server storage layer
}
