// Command quickstart walks through the paper's Figure 1 scenario: six
// tweets about an earthquake in eastern Turkey arrive among background
// chatter, and the detector discovers the event cluster
// {earthquake, struck, eastern, turkey} in real time.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Small thresholds for a toy stream: a keyword is bursty at 2 users
	// per quantum of 12 messages, window of 4 quanta.
	d := repro.NewDetector(repro.Config{
		Delta: 12,
		AKG:   repro.GraphConfig{Tau: 2, Beta: 0.2, Window: 4},
	})

	// Six real messages from six different users (the Figure 1 graph),
	// padded with unrelated chatter so the quantum fills up.
	tweets := []string{
		"Massive earthquake struck eastern Turkey",
		"earthquake in eastern Turkey",
		"A moderate earthquake struck Turkey today",
		"eastern Turkey hit by earthquake",
		"Turkey earthquake: struck near the eastern border",
		"Breaking: earthquake struck Turkey",
		"lunch was great today",
		"traffic on the bridge again",
		"new coffee place downtown",
		"anyone watching the game tonight",
		"my cat is sleeping all day",
		"rain again this weekend",
	}

	var msgs []repro.Message
	for i, text := range tweets {
		msgs = append(msgs, repro.Message{
			ID:   uint64(i + 1),
			User: uint64(i + 1), // each tweet from a distinct user
			Time: int64(i),
			Text: text,
		})
	}

	fmt.Println("feeding", len(msgs), "messages ...")
	for _, m := range msgs {
		res := d.Ingest(m)
		if res == nil {
			continue
		}
		fmt.Printf("quantum %d: %d bursty keywords, %d AKG edges\n",
			res.Quantum, res.Stats.HighState, res.AKGEdges)
		for _, r := range res.Reports {
			fmt.Printf("  EVENT (rank %.1f, support %d users): %v\n",
				r.Rank, r.Support, r.Keywords)
		}
	}

	for _, ev := range d.LiveEvents() {
		fmt.Printf("live event %d: %v (born quantum %d)\n",
			ev.ID, ev.Keywords, ev.BornQuantum)
	}
}
