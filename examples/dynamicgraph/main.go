// Command dynamicgraph uses the short-cycle-property cluster engine
// directly on a generic dynamic graph, with no text pipeline — the
// "many web applications create data which can be represented as massive
// dynamic graphs" extension the paper's introduction and conclusion
// anticipate (IP networks, telecom call graphs, business analytics).
//
// The demo models a simplified IP-flow graph: hosts are nodes, an edge
// appears when two hosts exchange sustained traffic. A botnet-like dense
// communication mesh emerges, is discovered as a cluster through purely
// local updates, partially decays (the cluster splits at an articulation
// point, as in the paper's Figure 6), and finally dissolves.
package main

import (
	"fmt"

	"repro"
)

func main() {
	en := repro.NewEngine(repro.Hooks{
		OnFormed: func(c *repro.Cluster) {
			fmt.Printf("  [hook] cluster %d formed: hosts %v\n", c.ID(), c.Nodes())
		},
		OnUpdated: func(c *repro.Cluster) {
			fmt.Printf("  [hook] cluster %d now %d hosts / %d links\n",
				c.ID(), c.NodeCount(), c.EdgeCount())
		},
		OnMerged: func(into *repro.Cluster, absorbed repro.ClusterID) {
			fmt.Printf("  [hook] cluster %d absorbed cluster %d\n", into.ID(), absorbed)
		},
		OnSplit: func(from repro.ClusterID, parts []*repro.Cluster) {
			fmt.Printf("  [hook] cluster %d split into %d parts\n", from, len(parts))
		},
		OnDissolved: func(id repro.ClusterID) {
			fmt.Printf("  [hook] cluster %d dissolved\n", id)
		},
	})

	fmt.Println("phase 1: two suspicious triangles appear")
	for _, e := range [][2]repro.NodeID{
		{1, 2}, {2, 3}, {1, 3}, // triangle A
		{5, 6}, {6, 7}, {5, 7}, // triangle B
	} {
		en.AddEdge(e[0], e[1], 1.0)
	}

	fmt.Println("phase 2: cross-traffic fuses them into one mesh")
	en.AddEdge(3, 5, 1.0) // bridge: no short cycle yet, no merge
	en.AddEdge(2, 5, 1.0) // closes triangle 2-3-5: merges with A
	en.AddEdge(3, 6, 1.0) // closes cycles into B: full merge

	fmt.Println("phase 3: flows expire; host 3 was the only junction")
	en.RemoveEdge(2, 5)
	en.RemoveNode(1) // triangle A collapses around the removal

	fmt.Println("phase 4: remaining mesh decays completely")
	for _, h := range []repro.NodeID{5, 6, 7, 3, 2} {
		en.RemoveNode(h)
	}

	fmt.Printf("final: %d clusters, %d hosts, %d links\n",
		en.ClusterCount(), en.Graph().NodeCount(), en.Graph().EdgeCount())

	// The engine's clustering is always identical to a full recompute:
	snap := en.Snapshot()
	canon := repro.CanonicalClusters(en.Graph())
	fmt.Printf("incremental == canonical recompute: %v\n",
		len(snap) == len(canon))
}
