// Command trending runs the detector over a synthetic Event-Specific
// trace (multiple overlapping injected events plus a spurious burst and
// background chatter) and maintains a live "trending topics" board: the
// top-k events by rank after every few quanta. At the end it scores the
// run against the exact ground truth.
package main

import (
	"fmt"
	"strings"

	"repro"
)

const (
	traceLen = 80000
	topK     = 5
)

func main() {
	msgs, gt := repro.ESTrace(2026, traceLen)
	fmt.Printf("trace: %d messages, %d injected ground-truth entries\n\n",
		len(msgs), len(gt.Events))

	d := repro.NewDetector(repro.Config{}) // Table 2 nominal parameters

	quanta := 0
	err := d.Run(repro.NewSliceSource(msgs), func(res *repro.QuantumResult) {
		quanta++
		if quanta%100 != 0 {
			return
		}
		fmt.Printf("=== trending after quantum %d (%d msgs) ===\n",
			res.Quantum, d.Processed())
		top := d.TopK(topK)
		for i, ev := range top {
			fmt.Printf("%d. [rank %6.1f, %d users] %s\n",
				i+1, ev.Rank, ev.Support, strings.Join(ev.Keywords, " "))
		}
		if len(top) == 0 {
			fmt.Println("(nothing trending)")
		}
		fmt.Println()
	})
	if err != nil {
		panic(err)
	}

	// Post-hoc analysis: which tracked events were real vs spurious?
	spurious := 0
	for _, ev := range d.AllEvents() {
		if ev.Reported && ev.Spurious() {
			spurious++
			fmt.Printf("post-hoc spurious: event %d %v (rank history peaked early, never evolved)\n",
				ev.ID, ev.Keywords)
		}
	}

	res, _, err := repro.Evaluate(repro.Config{}, msgs, &gt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nground truth score: precision=%.3f recall=%.3f (%d/%d real events, mean latency %.1f quanta)\n",
		res.Precision, res.Recall, res.RealDetected, res.RealTotal, res.MeanLatency)
	fmt.Printf("%d reported events, %d flagged spurious post hoc\n",
		res.ReportedEvents, spurious)
}
