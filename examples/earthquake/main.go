// Command earthquake demonstrates event evolution in a moving window —
// the second half of the paper's Figure 1 example. The initial cluster
// {earthquake, struck, eastern, turkey} forms first; when the window
// slides and users start reporting the magnitude, the keyword "5.9" joins
// the existing cluster via a short cycle instead of forming a new event.
// Later the event winds down and the cluster dissolves.
package main

import (
	"fmt"
	"strings"

	"repro"
)

func main() {
	const delta = 10
	d := repro.NewDetector(repro.Config{
		Delta: delta,
		AKG:   repro.GraphConfig{Tau: 2, Beta: 0.2, Window: 3},
	})

	// Phase 1 (quantum 1): the event breaks.
	phase1 := []string{
		"earthquake struck eastern Turkey",
		"Massive earthquake struck eastern Turkey minutes ago",
		"earthquake in eastern Turkey right now",
		"Turkey earthquake struck the eastern region",
		"eastern Turkey earthquake, buildings shaking",
		"moderate earthquake struck Turkey",
	}
	// Phase 2 (quantum 2): magnitude reports arrive — "5.9" correlates
	// with the existing keywords.
	phase2 := []string{
		"magnitude 5.9 earthquake Turkey",
		"Turkey quake measured 5.9 earthquake agency says",
		"5.9 earthquake eastern Turkey confirmed",
		"USGS: 5.9 earthquake struck Turkey",
		"earthquake 5.9 Turkey updates",
		"aftershocks after the 5.9 earthquake in Turkey",
	}
	// Phase 3+ (later quanta): the story fades; only chatter remains.
	chatter := []string{
		"coffee time", "great weather today", "match tonight",
		"commute is slow", "weekend plans anyone", "lunch break",
	}

	var msgs []repro.Message
	user := uint64(0)
	add := func(texts []string, repeat int) {
		for r := 0; r < repeat; r++ {
			for _, t := range texts {
				user++
				msgs = append(msgs, repro.Message{
					ID: user, User: user, Time: int64(len(msgs)), Text: t,
				})
			}
		}
	}
	add(phase1, 1)
	add(chatter[:4], 1) // pad quantum 1 to delta
	add(phase2, 1)
	add(chatter[:4], 1) // pad quantum 2
	add(chatter, 5)     // three quanta of pure chatter: event expires

	err := d.Run(repro.NewSliceSource(msgs), func(res *repro.QuantumResult) {
		fmt.Printf("--- quantum %d ---\n", res.Quantum)
		if len(res.Reports) == 0 {
			fmt.Println("no reportable events")
		}
		for _, r := range res.Reports {
			tag := ""
			if r.Evolved {
				tag = " [evolved]"
			}
			fmt.Printf("event %d rank %.1f%s: %s\n",
				r.EventID, r.Rank, tag, strings.Join(r.Keywords, " "))
		}
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("--- final event history ---")
	for _, ev := range d.AllEvents() {
		fmt.Printf("event %d [%v] born q%d last q%d evolved=%v: %v\n",
			ev.ID, ev.State, ev.BornQuantum, ev.LastQuantum, ev.Evolved, ev.Keywords)
	}
}
