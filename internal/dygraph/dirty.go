package dygraph

// DirtySet accumulates the vertices touched within one maintenance
// quantum — the basis for incremental graph upkeep: downstream passes
// (correlation refresh, event reconciliation) visit only dirty vertices
// and their clusters instead of rescanning the whole graph. The zero
// value is ready to use; Reset reuses all storage, so a set that lives
// on a long-running layer allocates only while the high-water mark
// grows.
type DirtySet struct {
	set   map[NodeID]struct{}
	nodes []NodeID
}

// Mark records n as touched this quantum. Duplicate marks are cheap
// no-ops.
func (d *DirtySet) Mark(n NodeID) {
	if d.set == nil {
		d.set = make(map[NodeID]struct{})
	}
	if _, ok := d.set[n]; ok {
		return
	}
	d.set[n] = struct{}{}
	d.nodes = append(d.nodes, n)
}

// Contains reports whether n was marked since the last Reset.
func (d *DirtySet) Contains(n NodeID) bool {
	_, ok := d.set[n]
	return ok
}

// Len returns the number of distinct marked vertices.
func (d *DirtySet) Len() int { return len(d.nodes) }

// Nodes returns the marked vertices in mark order. The slice is owned
// by the set and valid only until the next Reset.
func (d *DirtySet) Nodes() []NodeID { return d.nodes }

// Reset clears the set for the next quantum, keeping the backing
// storage.
func (d *DirtySet) Reset() {
	clear(d.set)
	d.nodes = d.nodes[:0]
}
