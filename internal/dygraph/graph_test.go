package dygraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want {2 5}", e)
	}
	if NewEdge(2, 5) != e {
		t.Fatalf("NewEdge is not symmetric")
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(1, 2)
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Fatalf("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Other with non-endpoint did not panic")
		}
	}()
	e.Other(3)
}

func TestEdgeHas(t *testing.T) {
	e := NewEdge(1, 2)
	if !e.Has(1) || !e.Has(2) || e.Has(3) {
		t.Fatalf("Has gave wrong answers")
	}
}

func TestAddRemoveNode(t *testing.T) {
	g := New()
	if !g.AddNode(1) {
		t.Fatalf("AddNode new node reported false")
	}
	if g.AddNode(1) {
		t.Fatalf("AddNode duplicate reported true")
	}
	if !g.HasNode(1) || g.HasNode(2) {
		t.Fatalf("HasNode wrong")
	}
	if g.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1", g.NodeCount())
	}
	if removed := g.RemoveNode(1); removed != nil {
		t.Fatalf("RemoveNode isolated node returned edges %v", removed)
	}
	if g.HasNode(1) {
		t.Fatalf("node survived removal")
	}
	if g.RemoveNode(99) != nil {
		t.Fatalf("removing absent node returned edges")
	}
}

func TestAddEdgeCreatesNodes(t *testing.T) {
	g := New()
	if !g.AddEdge(1, 2, 0.5) {
		t.Fatalf("AddEdge new edge reported false")
	}
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatalf("endpoints not created")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatalf("edge not symmetric")
	}
	if w, ok := g.Weight(2, 1); !ok || w != 0.5 {
		t.Fatalf("Weight = %v,%v want 0.5,true", w, ok)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestAddEdgeDuplicateUpdatesWeight(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 0.5)
	if g.AddEdge(2, 1, 0.9) {
		t.Fatalf("duplicate AddEdge reported new")
	}
	if w, _ := g.Weight(1, 2); w != 0.9 {
		t.Fatalf("weight not updated, got %v", w)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d after duplicate add", g.EdgeCount())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	if g.AddEdge(3, 3, 1) {
		t.Fatalf("self loop added")
	}
	if g.EdgeCount() != 0 {
		t.Fatalf("self loop counted")
	}
}

func TestSetWeight(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 0.1)
	if !g.SetWeight(1, 2, 0.7) {
		t.Fatalf("SetWeight on existing edge failed")
	}
	if w, _ := g.Weight(2, 1); w != 0.7 {
		t.Fatalf("weight = %v", w)
	}
	if g.SetWeight(1, 3, 0.5) {
		t.Fatalf("SetWeight on absent edge succeeded")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	if !g.RemoveEdge(2, 1) {
		t.Fatalf("RemoveEdge failed")
	}
	if g.HasEdge(1, 2) || g.EdgeCount() != 0 {
		t.Fatalf("edge survived removal")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatalf("double removal reported true")
	}
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatalf("endpoints should remain after edge removal")
	}
}

func TestRemoveNodeReturnsEdges(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	removed := g.RemoveNode(1)
	if len(removed) != 2 {
		t.Fatalf("removed %d edges, want 2: %v", len(removed), removed)
	}
	for _, e := range removed {
		if !e.Has(1) {
			t.Fatalf("returned edge %v not incident to removed node", e)
		}
	}
	if g.EdgeCount() != 1 || !g.HasEdge(2, 3) {
		t.Fatalf("surviving edges wrong")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	if g.Degree(1) != 2 || g.Degree(2) != 1 || g.Degree(42) != 0 {
		t.Fatalf("degrees wrong")
	}
	got := g.NeighborSlice(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("NeighborSlice = %v", got)
	}
	if g.NeighborSlice(42) != nil {
		t.Fatalf("NeighborSlice of absent node should be nil")
	}
	sum := 0
	g.Neighbors(1, func(m NodeID, w float64) { sum += int(m) })
	if sum != 5 {
		t.Fatalf("Neighbors visited wrong set, sum=%d", sum)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(1, 5, 1)
	var common []NodeID
	g.CommonNeighbors(1, 2, func(c NodeID) { common = append(common, c) })
	if len(common) != 2 {
		t.Fatalf("common neighbors = %v, want {3,4}", common)
	}
}

func TestNodesAndEdgesSorted(t *testing.T) {
	g := New()
	g.AddEdge(5, 2, 1)
	g.AddEdge(3, 1, 1)
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0] != NewEdge(1, 3) || edges[1] != NewEdge(2, 5) {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestForEachEdgeVisitsOnce(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 3, 1)
	count := 0
	g.ForEachEdge(func(e Edge, w float64) {
		count++
		if e.U >= e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
	})
	if count != 3 {
		t.Fatalf("visited %d edges, want 3", count)
	}
}

func TestForEachNode(t *testing.T) {
	g := New()
	g.AddNode(7)
	g.AddNode(9)
	seen := map[NodeID]bool{}
	g.ForEachNode(func(n NodeID) { seen[n] = true })
	if !seen[7] || !seen[9] || len(seen) != 2 {
		t.Fatalf("ForEachNode visited %v", seen)
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 0.3)
	g.AddEdge(2, 3, 0.4)
	c := g.Clone()
	g.RemoveEdge(1, 2)
	g.SetWeight(2, 3, 0.9)
	if !c.HasEdge(1, 2) {
		t.Fatalf("clone affected by original mutation")
	}
	if w, _ := c.Weight(2, 3); w != 0.4 {
		t.Fatalf("clone weight mutated: %v", w)
	}
	if c.EdgeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatalf("edge counts wrong: clone=%d orig=%d", c.EdgeCount(), g.EdgeCount())
	}
}

// TestEdgeCountInvariant drives random mutations and checks EdgeCount
// always equals a brute-force recount.
func TestEdgeCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	recount := func() int {
		n := 0
		g.ForEachEdge(func(Edge, float64) { n++ })
		return n
	}
	for i := 0; i < 2000; i++ {
		a := NodeID(rng.Intn(20))
		b := NodeID(rng.Intn(20))
		switch rng.Intn(4) {
		case 0, 1:
			g.AddEdge(a, b, rng.Float64())
		case 2:
			g.RemoveEdge(a, b)
		case 3:
			g.RemoveNode(a)
		}
		if g.EdgeCount() != recount() {
			t.Fatalf("step %d: EdgeCount=%d recount=%d", i, g.EdgeCount(), recount())
		}
	}
}

// TestEdgeCanonicalQuick property-tests that NewEdge always yields U ≤ V
// and is order-insensitive.
func TestEdgeCanonicalQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		e1 := NewEdge(NodeID(a), NodeID(b))
		e2 := NewEdge(NodeID(b), NodeID(a))
		return e1 == e2 && e1.U < e1.V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReuse(t *testing.T) {
	g := New()
	g.AddEdge(3, 1, 0.5)
	g.AddEdge(2, 3, 0.25)

	nodes := make([]NodeID, 0, 8)
	nodes = g.AppendNodes(nodes[:0])
	if len(nodes) != 3 || nodes[0] != 1 || nodes[2] != 3 {
		t.Fatalf("AppendNodes = %v", nodes)
	}
	// Reuse must not grow the buffer when capacity suffices.
	before := cap(nodes)
	nodes = g.AppendNodes(nodes[:0])
	if cap(nodes) != before {
		t.Fatalf("AppendNodes reallocated: cap %d -> %d", before, cap(nodes))
	}

	edges := g.AppendEdges(nil)
	if len(edges) != 2 || edges[0] != (Edge{U: 1, V: 3}) || edges[1] != (Edge{U: 2, V: 3}) {
		t.Fatalf("AppendEdges = %v", edges)
	}

	s := g.State()
	s2 := g.AppendState(s)
	if len(s2.Nodes) != 3 || len(s2.Edges) != 2 || len(s2.Weights) != 2 {
		t.Fatalf("AppendState = %+v", s2)
	}
	if &s2.Edges[0] != &s.Edges[0] {
		t.Fatal("AppendState did not reuse the edge buffer")
	}
	if s2.Weights[0] != 0.5 || s2.Weights[1] != 0.25 {
		t.Fatalf("weights = %v", s2.Weights)
	}
}
