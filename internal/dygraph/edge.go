package dygraph

// NodeID identifies a node in a Graph. IDs are assigned by higher layers
// (e.g. the keyword interner in internal/akg); the graph itself attaches no
// meaning to them.
type NodeID uint32

// Edge is an undirected edge, stored in canonical orientation (U < V) so it
// can be used as a map key. Use NewEdge to construct one.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the canonical (U < V) edge between a and b.
// a == b is invalid: the graph never stores self-loops, and callers are
// expected to filter them out before reaching this point.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint, which always indicates a programming error in the caller.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic("dygraph: Other called with non-endpoint node")
}

// Has reports whether n is an endpoint of e.
func (e Edge) Has(n NodeID) bool { return e.U == n || e.V == n }
