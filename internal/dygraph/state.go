package dygraph

import "fmt"

// State is a serialisable snapshot of a Graph (for detector checkpoints).
type State struct {
	Nodes   []NodeID // includes isolated nodes
	Edges   []Edge
	Weights []float64 // parallel to Edges
}

// State captures the graph. Nodes and edges are emitted in sorted order so
// snapshots of equal graphs are byte-identical.
func (g *Graph) State() State {
	s := State{Nodes: g.Nodes()}
	s.Edges = g.Edges()
	s.Weights = make([]float64, len(s.Edges))
	for i, e := range s.Edges {
		w, _ := g.Weight(e.U, e.V)
		s.Weights[i] = w
	}
	return s
}

// FromState reconstructs a graph from a snapshot.
func FromState(s State) (*Graph, error) {
	if len(s.Edges) != len(s.Weights) {
		return nil, fmt.Errorf("dygraph: state has %d edges but %d weights", len(s.Edges), len(s.Weights))
	}
	g := New()
	for _, n := range s.Nodes {
		g.AddNode(n)
	}
	for i, e := range s.Edges {
		if e.U == e.V {
			return nil, fmt.Errorf("dygraph: state contains self-loop on node %d", e.U)
		}
		g.AddEdge(e.U, e.V, s.Weights[i])
	}
	return g, nil
}
