package dygraph

import "fmt"

// State is a serialisable snapshot of a Graph (for detector checkpoints).
type State struct {
	Nodes   []NodeID // includes isolated nodes
	Edges   []Edge
	Weights []float64 // parallel to Edges
}

// State captures the graph. Nodes and edges are emitted in sorted order so
// snapshots of equal graphs are byte-identical. AppendState is the
// buffer-reusing variant for periodic checkpointing.
func (g *Graph) State() State {
	return g.AppendState(State{})
}

// AppendState fills buf's slices (reusing their capacity) with the
// graph's current state and returns it. Callers that checkpoint on a
// cadence — the WAL snapshot path — pass the previous State with its
// slices truncated to amortise the three allocations across snapshots.
func (g *Graph) AppendState(buf State) State {
	s := State{
		Nodes:   g.AppendNodes(buf.Nodes[:0]),
		Edges:   g.AppendEdges(buf.Edges[:0]),
		Weights: buf.Weights[:0],
	}
	if cap(s.Weights) < len(s.Edges) {
		s.Weights = make([]float64, 0, len(s.Edges))
	}
	for _, e := range s.Edges {
		w, _ := g.Weight(e.U, e.V)
		s.Weights = append(s.Weights, w)
	}
	return s
}

// FromState reconstructs a graph from a snapshot.
func FromState(s State) (*Graph, error) {
	if len(s.Edges) != len(s.Weights) {
		return nil, fmt.Errorf("dygraph: state has %d edges but %d weights", len(s.Edges), len(s.Weights))
	}
	g := New()
	for _, n := range s.Nodes {
		g.AddNode(n)
	}
	for i, e := range s.Edges {
		if e.U == e.V {
			return nil, fmt.Errorf("dygraph: state contains self-loop on node %d", e.U)
		}
		g.AddEdge(e.U, e.V, s.Weights[i])
	}
	return g, nil
}
