// Package dygraph provides the dynamic undirected weighted graph substrate
// used by the rest of the system: the Correlated Keyword Graph (CKG), the
// Active CKG (AKG) and the SCP cluster engine are all built on it.
//
// The graph is optimised for the access patterns of incremental cluster
// maintenance (Section 4 and 5 of the paper): constant-time edge existence
// checks, fast neighbor iteration, and cheap addition/removal of nodes and
// edges. It is not safe for concurrent mutation; the detector pipeline
// serialises updates per quantum.
package dygraph

import "slices"

// SortNodes sorts node IDs ascending without the per-call closure and
// reflection allocations of sort.Slice — node and edge listings sit on
// the snapshot/checkpoint hot path.
func SortNodes(ns []NodeID) { slices.Sort(ns) }

// SortEdges sorts edges by (U,V) ascending.
func SortEdges(es []Edge) {
	slices.SortFunc(es, func(a, b Edge) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		if a.V < b.V {
			return -1
		}
		if a.V > b.V {
			return 1
		}
		return 0
	})
}

// Graph is a dynamic undirected graph with float64 edge weights.
// The zero value is not usable; call New.
type Graph struct {
	adj       map[NodeID]map[NodeID]float64
	edgeCount int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]float64)}
}

// NodeCount returns the number of nodes currently in the graph.
func (g *Graph) NodeCount() int { return len(g.adj) }

// EdgeCount returns the number of edges currently in the graph.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// HasNode reports whether n is present.
func (g *Graph) HasNode(n NodeID) bool {
	_, ok := g.adj[n]
	return ok
}

// AddNode inserts n if absent. It reports whether the node was added.
func (g *Graph) AddNode(n NodeID) bool {
	if _, ok := g.adj[n]; ok {
		return false
	}
	g.adj[n] = make(map[NodeID]float64)
	return true
}

// RemoveNode deletes n and all incident edges, returning the removed edges
// sorted by (U,V). Removing an absent node returns nil.
func (g *Graph) RemoveNode(n NodeID) []Edge {
	nbrs, ok := g.adj[n]
	if !ok {
		return nil
	}
	if len(nbrs) == 0 {
		delete(g.adj, n)
		return nil
	}
	removed := make([]Edge, 0, len(nbrs))
	//repro:order-insensitive per-key deletes and an integer decrement; removed is sorted before return
	for m := range nbrs {
		delete(g.adj[m], n)
		g.edgeCount--
		removed = append(removed, NewEdge(n, m))
	}
	delete(g.adj, n)
	SortEdges(removed)
	return removed
}

// HasEdge reports whether the edge (a,b) exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Weight returns the weight of edge (a,b) and whether it exists.
func (g *Graph) Weight(a, b NodeID) (float64, bool) {
	w, ok := g.adj[a][b]
	return w, ok
}

// AddEdge inserts the edge (a,b) with weight w, creating the endpoints if
// needed. If the edge already exists only the weight is updated. It reports
// whether a new edge was created. Self-loops are ignored and report false.
func (g *Graph) AddEdge(a, b NodeID, w float64) bool {
	if a == b {
		return false
	}
	g.AddNode(a)
	g.AddNode(b)
	_, existed := g.adj[a][b]
	g.adj[a][b] = w
	g.adj[b][a] = w
	if !existed {
		g.edgeCount++
	}
	return !existed
}

// SetWeight updates the weight of an existing edge. It reports whether the
// edge was present.
func (g *Graph) SetWeight(a, b NodeID, w float64) bool {
	if _, ok := g.adj[a][b]; !ok {
		return false
	}
	g.adj[a][b] = w
	g.adj[b][a] = w
	return true
}

// RemoveEdge deletes the edge (a,b). It reports whether the edge existed.
// Endpoints are left in place even if they become isolated.
func (g *Graph) RemoveEdge(a, b NodeID) bool {
	if _, ok := g.adj[a][b]; !ok {
		return false
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.edgeCount--
	return true
}

// Degree returns the number of neighbors of n (0 if absent).
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Neighbors calls fn for every neighbor of n with the edge weight.
// Iteration order is unspecified. fn must not mutate the graph.
func (g *Graph) Neighbors(n NodeID, fn func(m NodeID, w float64)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use NeighborSlice
	for m, w := range g.adj[n] {
		fn(m, w)
	}
}

// NeighborSlice returns the neighbors of n sorted ascending. It allocates;
// prefer Neighbors on hot paths.
func (g *Graph) NeighborSlice(n NodeID) []NodeID {
	nbrs := g.adj[n]
	if len(nbrs) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(nbrs))
	for m := range nbrs {
		out = append(out, m)
	}
	SortNodes(out)
	return out
}

// AppendNeighbors appends the neighbors of n (sorted ascending) to dst,
// reusing its capacity — the allocation-amortised companion of
// NeighborSlice for per-quantum iteration.
func (g *Graph) AppendNeighbors(dst []NodeID, n NodeID) []NodeID {
	start := len(dst)
	for m := range g.adj[n] {
		dst = append(dst, m)
	}
	SortNodes(dst[start:])
	return dst
}

// CommonNeighbors calls fn for every node adjacent to both a and b.
// It iterates the smaller adjacency set.
func (g *Graph) CommonNeighbors(a, b NodeID, fn func(c NodeID)) {
	na, nb := g.adj[a], g.adj[b]
	if len(na) > len(nb) {
		na, nb = nb, na
	}
	//repro:order-insensitive documented unordered-callback API; fn sees the same intersection set in any order
	for c := range na {
		if _, ok := nb[c]; ok {
			fn(c)
		}
	}
}

// Nodes returns all node IDs sorted ascending.
func (g *Graph) Nodes() []NodeID {
	return g.AppendNodes(make([]NodeID, 0, len(g.adj)))
}

// AppendNodes appends every node ID (sorted ascending) to dst, reusing
// its capacity, and returns the extended slice. Snapshot/checkpoint
// callers (see AppendState) pass a reused buffer (dst[:0]) to amortise
// the allocation across calls; it grows exactly once when too small.
func (g *Graph) AppendNodes(dst []NodeID) []NodeID {
	start := len(dst)
	if need := start + len(g.adj); cap(dst) < need {
		grown := make([]NodeID, start, need)
		copy(grown, dst)
		dst = grown
	}
	for n := range g.adj {
		dst = append(dst, n)
	}
	SortNodes(dst[start:])
	return dst
}

// ForEachNode calls fn for every node in unspecified order.
func (g *Graph) ForEachNode(fn func(n NodeID)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use Nodes/AppendNodes
	for n := range g.adj {
		fn(n)
	}
}

// Edges returns all edges in canonical orientation, sorted by (U,V).
func (g *Graph) Edges() []Edge {
	return g.AppendEdges(make([]Edge, 0, g.edgeCount))
}

// AppendEdges appends every edge (canonical orientation, sorted by
// (U,V)) to dst, reusing its capacity, and returns the extended slice;
// like AppendNodes it lets snapshot/checkpoint callers reuse one buffer.
func (g *Graph) AppendEdges(dst []Edge) []Edge {
	start := len(dst)
	if need := start + g.edgeCount; cap(dst) < need {
		grown := make([]Edge, start, need)
		copy(grown, dst)
		dst = grown
	}
	for a, nbrs := range g.adj { //repro:order-insensitive collects each canonical edge once; dst is sorted below
		for b := range nbrs {
			if a < b {
				dst = append(dst, Edge{U: a, V: b})
			}
		}
	}
	SortEdges(dst[start:])
	return dst
}

// ForEachEdge calls fn for every edge exactly once (canonical orientation),
// in unspecified order. fn must not mutate the graph.
func (g *Graph) ForEachEdge(fn func(e Edge, w float64)) {
	for a, nbrs := range g.adj { //repro:order-insensitive documented unordered-callback API; callers needing order use Edges/AppendEdges
		for b, w := range nbrs {
			if a < b {
				fn(Edge{U: a, V: b}, w)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:       make(map[NodeID]map[NodeID]float64, len(g.adj)),
		edgeCount: g.edgeCount,
	}
	for n, nbrs := range g.adj {
		m := make(map[NodeID]float64, len(nbrs))
		for b, w := range nbrs {
			m[b] = w
		}
		c.adj[n] = m
	}
	return c
}
