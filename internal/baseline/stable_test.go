package baseline

import (
	"testing"

	"repro/internal/dygraph"
)

func comp(nodes ...dygraph.NodeID) Component {
	return Component{Nodes: nodes}
}

func TestStableTrackerContinuation(t *testing.T) {
	st := NewStableTracker(0.5, 2)
	// Snapshot 1: one cluster.
	live := st.Observe(1, []Component{comp(1, 2, 3)})
	if len(live) != 1 || live[0].Age != 1 || live[0].Stable(st.MinAge) {
		t.Fatalf("snapshot 1 wrong: %+v", live[0])
	}
	// Snapshot 2: same cluster with one node swapped (J = 2/4 = 0.5).
	live = st.Observe(2, []Component{comp(1, 2, 4)})
	if len(live) != 1 || live[0].Age != 2 {
		t.Fatalf("continuation failed: %+v", live[0])
	}
	if !live[0].Stable(st.MinAge) {
		t.Fatalf("cluster should be stable after 2 snapshots")
	}
	if got := st.StableClusters(); len(got) != 1 || got[0].ID != live[0].ID {
		t.Fatalf("StableClusters = %+v", got)
	}
}

func TestStableTrackerBreaksOnWeakOverlap(t *testing.T) {
	st := NewStableTracker(0.5, 2)
	st.Observe(1, []Component{comp(1, 2, 3)})
	// Disjoint cluster: new identity.
	live := st.Observe(2, []Component{comp(7, 8, 9)})
	if live[0].Age != 1 {
		t.Fatalf("disjoint cluster continued: %+v", live[0])
	}
	if len(st.History()) != 2 {
		t.Fatalf("history = %d entries", len(st.History()))
	}
	if len(st.StableClusters()) != 0 {
		t.Fatalf("nothing should be stable")
	}
}

func TestStableTrackerClaimsPredecessorOnce(t *testing.T) {
	st := NewStableTracker(0.3, 2)
	st.Observe(1, []Component{comp(1, 2, 3, 4)})
	// The old cluster split in two; only one part may claim continuity.
	live := st.Observe(2, []Component{comp(1, 2), comp(3, 4)})
	continued := 0
	for _, tc := range live {
		if tc.Age == 2 {
			continued++
		}
	}
	if continued != 1 {
		t.Fatalf("predecessor claimed %d times", continued)
	}
}

func TestStableTrackerOverBCCs(t *testing.T) {
	// Integration with the BCC decomposition: a triangle persisting over
	// three snapshots while noise appears and vanishes.
	st := NewStableTracker(0.5, 3)
	for snap := 1; snap <= 3; snap++ {
		g := dygraph.New()
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 3, 1)
		g.AddEdge(1, 3, 1)
		// Transient noise triangle with snapshot-specific nodes.
		base := dygraph.NodeID(10 * snap)
		g.AddEdge(base, base+1, 1)
		g.AddEdge(base+1, base+2, 1)
		g.AddEdge(base, base+2, 1)
		st.Observe(snap, Clusters(g, false))
	}
	stable := st.StableClusters()
	if len(stable) != 1 {
		t.Fatalf("want exactly the persistent triangle, got %d", len(stable))
	}
	if stable[0].Age != 3 || stable[0].FirstSeen != 1 || stable[0].LastSeen != 3 {
		t.Fatalf("lifecycle wrong: %+v", stable[0])
	}
}

func TestNodeJaccard(t *testing.T) {
	a := map[dygraph.NodeID]struct{}{1: {}, 2: {}}
	b := map[dygraph.NodeID]struct{}{2: {}, 3: {}}
	if got := nodeJaccard(a, b); got != 1.0/3 {
		t.Fatalf("nodeJaccard = %v", got)
	}
	if nodeJaccard(a, nil) != 0 {
		t.Fatalf("empty set should give 0")
	}
}
