// Package baseline implements the offline comparator of Section 7.3: the
// biconnected-component clustering in the style of Bansal et al. [2],
// recomputed from scratch on the whole AKG after every quantum. Two
// variants are reported in the paper's Table 3:
//
//   - BC: biconnected components of size ≥ 3 as clusters;
//   - BC+edges: additionally every bridge edge (an edge in no biconnected
//     component of size ≥ 3) reported as a cluster of size 2.
//
// Both are global computations — the graph must be stable while Tarjan's
// algorithm runs — which is exactly the restriction the SCP technique
// removes.
package baseline

import (
	"sort"

	"repro/internal/dygraph"
)

// Component is one biconnected component: its nodes and its edges.
type Component struct {
	Nodes []dygraph.NodeID
	Edges []dygraph.Edge
}

// BiconnectedComponents decomposes g into biconnected components using an
// iterative Tarjan–Hopcroft DFS (edge-stack formulation). Every edge of g
// appears in exactly one component; bridge edges form components of 2
// nodes and 1 edge.
func BiconnectedComponents(g *dygraph.Graph) []Component {
	type frame struct {
		node   dygraph.NodeID
		parent dygraph.NodeID
		nbrs   []dygraph.NodeID
		idx    int
	}
	disc := make(map[dygraph.NodeID]int)
	low := make(map[dygraph.NodeID]int)
	var edgeStack []dygraph.Edge
	var comps []Component
	timer := 0

	popComponent := func(until dygraph.Edge) {
		var edges []dygraph.Edge
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			edges = append(edges, e)
			if e == until {
				break
			}
		}
		comps = append(comps, makeComponent(edges))
	}

	for _, root := range g.Nodes() {
		if _, seen := disc[root]; seen {
			continue
		}
		timer++
		disc[root] = timer
		low[root] = timer
		stack := []frame{{node: root, parent: root, nbrs: g.NeighborSlice(root)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(f.nbrs) {
				m := f.nbrs[f.idx]
				f.idx++
				if m == f.parent {
					continue
				}
				if dm, seen := disc[m]; seen {
					// Back edge: only treat it from the deeper endpoint
					// so each edge lands on the stack exactly once.
					if dm < disc[f.node] {
						edgeStack = append(edgeStack, dygraph.NewEdge(f.node, m))
						if dm < low[f.node] {
							low[f.node] = dm
						}
					}
					continue
				}
				timer++
				disc[m] = timer
				low[m] = timer
				edgeStack = append(edgeStack, dygraph.NewEdge(f.node, m))
				stack = append(stack, frame{node: m, parent: f.node, nbrs: g.NeighborSlice(m)})
				continue
			}
			// Finished m = f.node; fold into parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				break
			}
			p := &stack[len(stack)-1]
			if low[f.node] < low[p.node] {
				low[p.node] = low[f.node]
			}
			if low[f.node] >= disc[p.node] {
				// p is an articulation point (or root): pop one component.
				popComponent(dygraph.NewEdge(p.node, f.node))
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i].Nodes) != len(comps[j].Nodes) {
			return len(comps[i].Nodes) > len(comps[j].Nodes)
		}
		return comps[i].Nodes[0] < comps[j].Nodes[0]
	})
	return comps
}

func makeComponent(edges []dygraph.Edge) Component {
	seen := make(map[dygraph.NodeID]struct{}, len(edges)*2)
	for _, e := range edges {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	nodes := make([]dygraph.NodeID, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return Component{Nodes: nodes, Edges: edges}
}

// Clusters returns the offline clustering per the requested variant:
// components with ≥ 3 nodes, plus — when includeEdges is set — each
// remaining bridge edge as a 2-node cluster (the paper's "bi-connected
// clusters + edges" scheme).
func Clusters(g *dygraph.Graph, includeEdges bool) []Component {
	comps := BiconnectedComponents(g)
	out := make([]Component, 0, len(comps))
	for _, c := range comps {
		if len(c.Nodes) >= 3 {
			out = append(out, c)
		} else if includeEdges {
			out = append(out, c)
		}
	}
	return out
}
