package baseline

import (
	"sort"

	"repro/internal/dygraph"
)

// StableTracker follows clusters across consecutive graph snapshots the
// way the paper's offline comparator [2] (Bansal et al., "Seeking Stable
// Clusters in the Blogosphere") does: a cluster in snapshot t continues a
// cluster from snapshot t−1 when their node sets overlap strongly, and a
// cluster is "stable" once it has persisted for a minimum number of
// snapshots. This gives the offline arm of the Section 7.3 comparison an
// event notion comparable to the SCP engine's event lifecycle.
type StableTracker struct {
	// MinOverlap is the node-set Jaccard required to continue a cluster
	// across snapshots (default 0.5 — majority continuation).
	MinOverlap float64
	// MinAge is the number of consecutive snapshots a cluster must
	// persist to count as stable (default 2).
	MinAge int

	nextID  uint64
	prev    []trackedCluster
	stable  map[uint64]*TrackedCluster
	current map[uint64]*TrackedCluster
}

type trackedCluster struct {
	id    uint64
	nodes map[dygraph.NodeID]struct{}
}

// TrackedCluster is the lifecycle record of one offline cluster.
type TrackedCluster struct {
	ID        uint64
	FirstSeen int // snapshot index of first appearance
	LastSeen  int
	Age       int // consecutive snapshots observed
	Nodes     []dygraph.NodeID
}

// Stable reports whether the cluster has met the tracker's age threshold.
func (tc *TrackedCluster) Stable(minAge int) bool { return tc.Age >= minAge }

// NewStableTracker returns a tracker with the given thresholds (zero
// values select the defaults).
func NewStableTracker(minOverlap float64, minAge int) *StableTracker {
	if minOverlap <= 0 {
		minOverlap = 0.5
	}
	if minAge <= 0 {
		minAge = 2
	}
	return &StableTracker{
		MinOverlap: minOverlap,
		MinAge:     minAge,
		stable:     make(map[uint64]*TrackedCluster),
		current:    make(map[uint64]*TrackedCluster),
	}
}

// Observe ingests the clusters of snapshot t (any clustering scheme's
// output expressed as components) and returns the clusters live in this
// snapshot, each annotated with identity and age. Clusters that fail to
// continue are dropped from the live set but remain in History.
func (st *StableTracker) Observe(snapshot int, comps []Component) []*TrackedCluster {
	var out []*TrackedCluster
	next := make([]trackedCluster, 0, len(comps))
	nextLive := make(map[uint64]*TrackedCluster, len(comps))
	claimed := make(map[int]struct{}, len(st.prev))
	for _, comp := range comps {
		nodes := make(map[dygraph.NodeID]struct{}, len(comp.Nodes))
		for _, n := range comp.Nodes {
			nodes[n] = struct{}{}
		}
		// Find the best unclaimed predecessor by node Jaccard.
		bestIdx, bestJ := -1, 0.0
		for i, p := range st.prev {
			if _, taken := claimed[i]; taken {
				continue
			}
			j := nodeJaccard(nodes, p.nodes)
			if j > bestJ || (j == bestJ && bestIdx >= 0 && p.id < st.prev[bestIdx].id) {
				bestIdx, bestJ = i, j
			}
		}
		var rec *TrackedCluster
		if bestIdx >= 0 && bestJ >= st.MinOverlap {
			claimed[bestIdx] = struct{}{}
			id := st.prev[bestIdx].id
			rec = st.stable[id]
			rec.Age++
			rec.LastSeen = snapshot
			rec.Nodes = append(rec.Nodes[:0], comp.Nodes...)
			next = append(next, trackedCluster{id: id, nodes: nodes})
		} else {
			st.nextID++
			rec = &TrackedCluster{
				ID:        st.nextID,
				FirstSeen: snapshot,
				LastSeen:  snapshot,
				Age:       1,
				Nodes:     append([]dygraph.NodeID(nil), comp.Nodes...),
			}
			st.stable[rec.ID] = rec
			next = append(next, trackedCluster{id: rec.ID, nodes: nodes})
		}
		nextLive[rec.ID] = rec
		out = append(out, rec)
	}
	st.prev = next
	st.current = nextLive
	return out
}

// StableClusters returns the currently live clusters that have met the
// age threshold, sorted by ID.
func (st *StableTracker) StableClusters() []*TrackedCluster {
	var out []*TrackedCluster
	for _, tc := range st.current {
		if tc.Stable(st.MinAge) {
			out = append(out, tc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns every cluster ever tracked, sorted by ID.
func (st *StableTracker) History() []*TrackedCluster {
	out := make([]*TrackedCluster, 0, len(st.stable))
	for _, tc := range st.stable {
		out = append(out, tc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func nodeJaccard(a, b map[dygraph.NodeID]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for n := range small {
		if _, ok := large[n]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
