package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
	"repro/internal/quasi"
)

func build(pairs ...[2]dygraph.NodeID) *dygraph.Graph {
	g := dygraph.New()
	for _, p := range pairs {
		g.AddEdge(p[0], p[1], 1)
	}
	return g
}

func TestSingleTriangle(t *testing.T) {
	g := build([2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3})
	comps := BiconnectedComponents(g)
	if len(comps) != 1 || len(comps[0].Nodes) != 3 || len(comps[0].Edges) != 3 {
		t.Fatalf("comps = %+v", comps)
	}
}

func TestBridgeSeparatesComponents(t *testing.T) {
	// Two triangles joined by a bridge 3-4.
	g := build(
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 4},
		[2]dygraph.NodeID{4, 5}, [2]dygraph.NodeID{5, 6}, [2]dygraph.NodeID{4, 6})
	comps := BiconnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("want 3 components (2 triangles + bridge), got %d: %+v", len(comps), comps)
	}
	triangles, bridges := 0, 0
	for _, c := range comps {
		switch len(c.Nodes) {
		case 3:
			triangles++
		case 2:
			bridges++
		}
	}
	if triangles != 2 || bridges != 1 {
		t.Fatalf("triangles=%d bridges=%d", triangles, bridges)
	}
}

func TestArticulationSharedNode(t *testing.T) {
	// Bowtie: two triangles sharing node 3.
	g := build(
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{4, 5}, [2]dygraph.NodeID{3, 5})
	comps := BiconnectedComponents(g)
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %d", len(comps))
	}
	for _, c := range comps {
		has3 := false
		for _, n := range c.Nodes {
			if n == 3 {
				has3 = true
			}
		}
		if !has3 {
			t.Fatalf("articulation node 3 must appear in both components")
		}
	}
}

func TestEveryEdgeInExactlyOneComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := dygraph.New()
		n := 5 + rng.Intn(20)
		for i := 0; i < 3*n; i++ {
			a := dygraph.NodeID(rng.Intn(n))
			b := dygraph.NodeID(rng.Intn(n))
			if a != b {
				g.AddEdge(a, b, 1)
			}
		}
		comps := BiconnectedComponents(g)
		seen := make(map[dygraph.Edge]int)
		for _, c := range comps {
			for _, e := range c.Edges {
				seen[e]++
			}
		}
		if len(seen) != g.EdgeCount() {
			t.Fatalf("trial %d: %d edges covered, graph has %d", trial, len(seen), g.EdgeCount())
		}
		for e, k := range seen {
			if k != 1 {
				t.Fatalf("trial %d: edge %v in %d components", trial, e, k)
			}
		}
		// Components of ≥3 nodes must pass the independent biconnectivity
		// check from internal/quasi.
		for _, c := range comps {
			if len(c.Nodes) >= 3 {
				if !quasi.FromEdges(c.Edges).IsBiconnected() {
					t.Fatalf("trial %d: component not biconnected: %+v", trial, c)
				}
			}
		}
	}
}

func TestClustersVariants(t *testing.T) {
	// Triangle + dangling edge.
	g := build(
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 9})
	bc := Clusters(g, false)
	if len(bc) != 1 {
		t.Fatalf("BC variant: want 1 cluster, got %d", len(bc))
	}
	bce := Clusters(g, true)
	if len(bce) != 2 {
		t.Fatalf("BC+edges variant: want 2 clusters, got %d", len(bce))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := BiconnectedComponents(dygraph.New()); len(got) != 0 {
		t.Fatalf("empty graph gave %v", got)
	}
	g := dygraph.New()
	g.AddNode(1)
	if got := BiconnectedComponents(g); len(got) != 0 {
		t.Fatalf("isolated node gave %v", got)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := build(
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{10, 11}, [2]dygraph.NodeID{11, 12}, [2]dygraph.NodeID{10, 12})
	if got := BiconnectedComponents(g); len(got) != 2 {
		t.Fatalf("want 2 components across disconnected graph, got %d", len(got))
	}
}
