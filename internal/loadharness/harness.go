package loadharness

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Runner drives one materialized plan against a live server instance
// and measures the outcome. One goroutine per tenant posts that
// tenant's batches strictly in sequence (so the n-th accepted batch is
// the tenant's n-th quantum and the n-th SSE event acknowledges it);
// tenants run concurrently, which is the load: a hot tenant hammers the
// pool while cold tenants measure the latency they are promised.
type Runner struct {
	Plan *Plan
	// BaseURL roots every request, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues ingest POSTs and queries (default: 30s timeout).
	// SSE subscriptions use their own untimed transport regardless.
	Client *http.Client
	// DrainTimeout bounds the post-run wait for outstanding SSE
	// acknowledgements (default 30s).
	DrainTimeout time.Duration
	// ShedBackoff is the pause after a 429 before the tenant's next
	// batch (default 2ms): an adversarial client keeps pushing — the
	// harness yields just enough for the apply loop to breathe, it does
	// not honor Retry-After, because the point is to prove the server
	// survives clients that don't.
	ShedBackoff time.Duration
}

// Run executes the plan and returns the measured report. The context
// cancels the whole run (in-flight requests included).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.Plan == nil {
		return nil, fmt.Errorf("loadharness: Runner needs a Plan")
	}
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	drain := r.DrainTimeout
	if drain <= 0 {
		drain = 30 * time.Second
	}
	backoff := r.ShedBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	base := strings.TrimRight(r.BaseURL, "/")

	start := time.Now()
	reports := make([]TenantReport, len(r.Plan.PerTenant))
	errs := make([]error, len(r.Plan.PerTenant))
	var wg sync.WaitGroup
	for t := range r.Plan.PerTenant {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			reports[t], errs[t] = r.driveTenant(ctx, client, base, t, drain, backoff)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Scenario:   r.Plan.Scenario,
		Seed:       r.Plan.Seed,
		PlanDigest: r.Plan.Digest,
		Tenants:    r.Plan.Config.Tenants,
		Batches:    r.Plan.Config.Batches,
		BatchSize:  r.Plan.Config.BatchSize,
		Messages:   r.Plan.TotalMessages(),
		WallMs:     float64(time.Since(start)) / float64(time.Millisecond),
		PerTenant:  reports,
	}
	rep.fillTotals()
	return rep, nil
}

// sseTap collects quantum-event arrival times from one tenant's stream.
type sseTap struct {
	mu       sync.Mutex
	arrivals []time.Time
	err      error
	done     chan struct{}
}

func (s *sseTap) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.arrivals)
}

// driveTenant runs one tenant's full life: create it, subscribe to its
// stream, post every planned batch in order (with the query mix woven
// in), then wait for the stream to acknowledge every accepted batch.
func (r *Runner) driveTenant(ctx context.Context, client *http.Client, base string, t int, drain, backoff time.Duration) (TenantReport, error) {
	name := r.Plan.TenantNames[t]
	batches := r.Plan.PerTenant[t]
	rep := TenantReport{Tenant: name, Planned: len(batches)}

	// An empty batch is a no-op for the detector and the admission
	// gates, but it creates the tenant — which must exist before the
	// stream subscription below can attach.
	primeStatus := 0
	err := r.post(ctx, client, base+"/v1/"+name+"/messages", []byte("[]"),
		func(resp *http.Response) { primeStatus = resp.StatusCode })
	if err != nil {
		return rep, fmt.Errorf("prime tenant %s: %w", name, err)
	}
	if primeStatus != http.StatusAccepted {
		return rep, fmt.Errorf("prime tenant %s: HTTP %d", name, primeStatus)
	}

	tap, stopSSE, err := r.subscribe(ctx, base, name)
	if err != nil {
		return rep, fmt.Errorf("subscribe %s: %w", name, err)
	}
	defer stopSSE()

	sendTimes := make([]time.Time, 0, len(batches))
	var queryLats []time.Duration
	queries := r.Plan.Queries[t]
	nextQuery := 0
	queryEvery := r.Plan.Config.QueryEvery

	for i, b := range batches {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		t0 := time.Now()
		var status int
		var retryAfter string
		err := r.post(ctx, client, base+"/v1/"+name+"/messages", b.Body, func(resp *http.Response) {
			status = resp.StatusCode
			retryAfter = resp.Header.Get("Retry-After")
		})
		switch {
		case err != nil:
			rep.OtherErrors++
		case status == http.StatusAccepted:
			rep.Accepted++
			sendTimes = append(sendTimes, t0)
		case status == http.StatusTooManyRequests:
			rep.Shed429++
			if retryAfter == "" {
				rep.ShedNoRetryAfter++
			}
			sleepCtx(ctx, backoff)
		case status == http.StatusServiceUnavailable:
			// Degraded-mode shed: storage is sick and the server refuses
			// the write to protect its acked history. Same client
			// contract as admission sheds — Retry-After or it's a
			// violation.
			rep.Shed503++
			if retryAfter == "" {
				rep.ShedNoRetryAfter++
			}
			sleepCtx(ctx, backoff)
		case status >= 500:
			rep.HTTP5xx++
		default:
			rep.OtherErrors++
		}

		if queryEvery > 0 && (i+1)%queryEvery == 0 && nextQuery < len(queries) {
			q0 := time.Now()
			var qstatus int
			qerr := r.get(ctx, client, base+queries[nextQuery], &qstatus)
			nextQuery++
			rep.Queries++
			if qerr != nil || qstatus != http.StatusOK {
				rep.QueryErrors++
			} else {
				queryLats = append(queryLats, time.Since(q0))
			}
		}
	}

	// Drain: every accepted batch is one quantum, and every quantum is
	// one SSE event — wait for the stream to catch up to the accept
	// count, then charge anything still missing as lost.
	deadline := time.Now().Add(drain)
	for tap.count() < rep.Accepted && time.Now().Before(deadline) && ctx.Err() == nil {
		sleepCtx(ctx, 2*time.Millisecond)
	}
	stopSSE()
	<-tap.done

	tap.mu.Lock()
	arrivals := tap.arrivals
	tap.mu.Unlock()
	rep.SSEReceived = len(arrivals)
	if len(arrivals) > rep.Accepted {
		// More events than accepted batches would mean the quantum↔batch
		// correspondence broke (e.g. BatchSize ≠ detector Delta) — every
		// latency pairing below would be wrong, so refuse to report.
		return rep, fmt.Errorf("tenant %s: %d SSE events for %d accepted batches — is BatchSize equal to the server's Delta?",
			name, len(arrivals), rep.Accepted)
	}
	rep.SSELost = rep.Accepted - len(arrivals)

	lats := make([]time.Duration, 0, len(arrivals))
	for i := range arrivals {
		lats = append(lats, arrivals[i].Sub(sendTimes[i]))
	}
	rep.IngestP50Ms = percentileMs(lats, 0.50)
	rep.IngestP99Ms = percentileMs(lats, 0.99)
	rep.QueryP50Ms = percentileMs(queryLats, 0.50)
	rep.QueryP99Ms = percentileMs(queryLats, 0.99)
	rep.IngestHist = histSummaryOf(lats)
	rep.QueryHist = histSummaryOf(queryLats)
	return rep, nil
}

// subscribe opens the tenant's SSE stream and tails it on a goroutine,
// timestamping every quantum event's arrival. The returned stop
// function (idempotent) tears the stream down; tap.done closes when the
// tail goroutine has fully exited.
func (r *Runner) subscribe(ctx context.Context, base, name string) (*sseTap, func(), error) {
	sctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/v1/"+name+"/stream", nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	// A dedicated client: the ingest client's timeout would kill the
	// stream mid-run.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("stream subscribe: HTTP %d", resp.StatusCode)
	}
	tap := &sseTap{done: make(chan struct{})}
	go func() {
		defer close(tap.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
		for sc.Scan() {
			if bytes.HasPrefix(sc.Bytes(), []byte("data: ")) {
				now := time.Now()
				tap.mu.Lock()
				tap.arrivals = append(tap.arrivals, now)
				tap.mu.Unlock()
			}
		}
		tap.mu.Lock()
		tap.err = sc.Err()
		tap.mu.Unlock()
	}()
	var once sync.Once
	stop := func() { once.Do(cancel) }
	return tap, stop, nil
}

// post issues one POST, hands the response to peek (if non-nil), and
// fully drains the body so the connection is reused.
func (r *Runner) post(ctx context.Context, client *http.Client, url string, body []byte, peek func(*http.Response)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if peek != nil {
		peek(resp)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	return nil
}

func (r *Runner) get(ctx context.Context, client *http.Client, url string, status *int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	*status = resp.StatusCode
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	return nil
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
