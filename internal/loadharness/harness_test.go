package loadharness

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/server"
	"repro/internal/vfs"
)

// startServer brings up a real pool behind a real HTTP listener with
// the detector quantum matched to the harness batch size (the invariant
// the ingest-to-SSE measurement rests on).
func startServer(t *testing.T, cfg server.PoolConfig) *httptest.Server {
	t.Helper()
	if cfg.Detector.Delta == 0 {
		cfg.Detector = detect.Config{Delta: 8, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 5}}
	}
	pool, err := server.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewHandler(pool))
	t.Cleanup(func() {
		srv.CloseClientConnections()
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.BeginShutdown()
		if err := pool.Shutdown(ctx); err != nil {
			t.Errorf("pool shutdown: %v", err)
		}
	})
	return srv
}

func run(t *testing.T, srv *httptest.Server, plan *Plan) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := (&Runner{Plan: plan, BaseURL: srv.URL, DrainTimeout: 20 * time.Second}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The traffic plan is the reproducibility contract: same config, same
// bytes. Two independent builds must agree on every body and on the
// digest; a different seed must not.
func TestPlanByteReproducible(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg := Config{Scenario: sc, Seed: 99, Tenants: 3, Batches: 24}
		a, err := BuildPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest {
			t.Fatalf("%s: same config, different digests: %s vs %s", sc, a.Digest, b.Digest)
		}
		if !reflect.DeepEqual(a.PerTenant, b.PerTenant) {
			t.Fatalf("%s: same config, different batch bodies", sc)
		}
		if !reflect.DeepEqual(a.Queries, b.Queries) {
			t.Fatalf("%s: same config, different query mix", sc)
		}
		other, err := BuildPlan(Config{Scenario: sc, Seed: 100, Tenants: 3, Batches: 24})
		if err != nil {
			t.Fatal(err)
		}
		if other.Digest == a.Digest {
			t.Fatalf("%s: different seeds produced the same digest", sc)
		}
	}
}

// A healthy server under the uniform control: every batch accepted,
// every quantum acknowledged on SSE, every query answered.
func TestRunUniformSmoke(t *testing.T) {
	srv := startServer(t, server.PoolConfig{})
	plan, err := BuildPlan(Config{Scenario: ScenarioUniform, Seed: 7, Tenants: 2, Batches: 32})
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, srv, plan)
	if rep.Totals.Accepted != rep.Totals.Planned {
		t.Fatalf("accepted %d of %d planned batches", rep.Totals.Accepted, rep.Totals.Planned)
	}
	if rep.Totals.Shed429 != 0 || rep.Totals.HTTP5xx != 0 || rep.Totals.OtherErrors != 0 {
		t.Fatalf("errors on an unloaded server: %+v", rep.Totals)
	}
	if rep.Totals.SSELost != 0 {
		t.Fatalf("%d accepted batches never acknowledged on SSE", rep.Totals.SSELost)
	}
	if rep.Totals.QueryErrors != 0 {
		t.Fatalf("%d query errors", rep.Totals.QueryErrors)
	}
	for _, tr := range rep.PerTenant {
		if tr.Queries == 0 {
			t.Fatalf("tenant %s issued no queries — the mixed workload is broken", tr.Tenant)
		}
		if tr.IngestP50Ms <= 0 || tr.IngestP99Ms < tr.IngestP50Ms {
			t.Fatalf("tenant %s implausible ingest latencies: p50=%v p99=%v",
				tr.Tenant, tr.IngestP50Ms, tr.IngestP99Ms)
		}
		if tr.IngestHist == nil || tr.IngestHist.Count == 0 || tr.IngestHist.P99Ms < tr.IngestHist.P50Ms {
			t.Fatalf("tenant %s missing or implausible ingest histogram summary: %+v", tr.Tenant, tr.IngestHist)
		}
		if tr.QueryHist == nil || int(tr.QueryHist.Count) != tr.Queries-tr.QueryErrors {
			t.Fatalf("tenant %s query histogram count mismatch: %+v vs %d queries", tr.Tenant, tr.QueryHist, tr.Queries)
		}
	}
	if rep.PlanDigest != plan.Digest {
		t.Fatal("report does not carry the plan digest")
	}
}

// Against a rate-limited tenant the harness must observe sheds, and
// every shed must carry Retry-After — the acceptance gate for the
// admission layer's client contract.
func TestRunShedsCarryRetryAfter(t *testing.T) {
	// 1 msg/s with a 1-message burst: the first batch drains the bucket,
	// later batches (posted within milliseconds) must shed.
	srv := startServer(t, server.PoolConfig{RateLimit: 1, RateBurst: 1})
	plan, err := BuildPlan(Config{Scenario: ScenarioUniform, Seed: 3, Tenants: 1, Batches: 6, QueryEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, srv, plan)
	tr := rep.PerTenant[0]
	if tr.Accepted < 1 {
		t.Fatal("the full bucket should admit the first batch")
	}
	if tr.Shed429 == 0 {
		t.Fatal("rate limit of 1 msg/s shed nothing across 6 rapid batches")
	}
	if tr.ShedNoRetryAfter != 0 {
		t.Fatalf("%d of %d sheds arrived without Retry-After", tr.ShedNoRetryAfter, tr.Shed429)
	}
	if tr.HTTP5xx != 0 {
		t.Fatalf("rate limiting must answer 429, got %d 5xx responses", tr.HTTP5xx)
	}
	if tr.SSELost != 0 {
		t.Fatalf("%d accepted batches never acknowledged", tr.SSELost)
	}
}

// The graceful-degradation acceptance: an ENOSPC window injected into
// the WAL mid-run produces zero non-503 5xx, Retry-After on every shed,
// reads keep serving, the server recovers in-process, and a replay of
// the WAL recovers exactly the acked batches — nothing shed, nothing
// extra.
func TestRunDiskPressureMeetsSLO(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ffs := vfs.NewFaultFS(nil)
	det := detect.Config{Delta: 8, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 5}}
	pool, err := server.NewPool(server.PoolConfig{
		Detector:              det,
		WALDir:                walDir,
		FS:                    ffs,
		StorageRetryBackoff:   time.Millisecond,
		DegradedProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewHandler(pool))

	plan, err := BuildPlan(Config{Scenario: ScenarioDiskPressure, Seed: 5, Tenants: 2, Batches: 240})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pc := &PressureController{
		Pool: pool, FFS: ffs, PathSubstring: walDir,
		AfterAccepted: 6, Hold: 40 * time.Millisecond,
	}
	pcErr := make(chan error, 1)
	go func() { pcErr <- pc.Run(ctx) }()
	rep, err := (&Runner{Plan: plan, BaseURL: srv.URL, DrainTimeout: 20 * time.Second}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-pcErr; err != nil {
		t.Fatalf("pressure window never played out: %v", err)
	}
	if res := CheckDiskPressureSLO(rep); !res.Pass {
		t.Fatalf("SLO violations: %v", res.Violations)
	}

	// Replay must equal exactly the acked prefix: shut the faulted pool
	// down cleanly, reopen the same WAL with a plain filesystem, and
	// compare recovered messages to accepted batches.
	srv.CloseClientConnections()
	srv.Close()
	pool.BeginShutdown()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown after recovery: %v", err)
	}
	re, err := server.NewPool(server.PoolConfig{Detector: det, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := re.Shutdown(ctx); err != nil {
			t.Errorf("replay pool shutdown: %v", err)
		}
	}()
	for _, tr := range rep.PerTenant {
		m, ok := re.MetricsFor(tr.Tenant)
		if !ok {
			t.Fatalf("tenant %s did not replay", tr.Tenant)
		}
		want := uint64(tr.Accepted) * uint64(plan.Config.BatchSize)
		if got := m.Tenants[0].Messages; got != want {
			t.Fatalf("tenant %s replayed %d messages, want %d (acked prefix: %d accepted × %d)",
				tr.Tenant, got, want, tr.Accepted, plan.Config.BatchSize)
		}
	}
}

// The headline acceptance: a Zipf-hot tenant saturating a small queue
// behind the admission gate produces zero 5xx, all sheds carry
// Retry-After, and cold tenants keep their latency within the SLO bound
// of the uniform control.
func TestRunZipfHotMeetsSLO(t *testing.T) {
	poolCfg := server.PoolConfig{
		Workers:       1, // one apply worker: backlog forms under skew
		QueueDepth:    8,
		AdmissionFrac: 0.5,
	}
	cfg := Config{Seed: 11, Tenants: 3, Batches: 90}

	cfg.Scenario = ScenarioUniform
	uplan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform := run(t, startServer(t, poolCfg), uplan)

	cfg.Scenario = ScenarioZipfHot
	zplan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zipf := run(t, startServer(t, poolCfg), zplan)

	// The floor absorbs scheduler noise at these tiny baselines; the
	// hard gates (no 5xx, Retry-After on every shed, no SSE loss) have
	// no tolerance at all.
	res := CheckSLO(zipf, uniform, 500)
	if !res.Pass {
		t.Fatalf("SLO violations: %v", res.Violations)
	}
	if zipf.Totals.Accepted == 0 {
		t.Fatal("nothing accepted under the zipf scenario")
	}
}
