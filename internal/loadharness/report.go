package loadharness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// histSummaryOf folds a latency sample through an obs.Histogram and
// returns its summary, nil for an empty sample.
func histSummaryOf(lats []time.Duration) *obs.HistSummary {
	if len(lats) == 0 {
		return nil
	}
	var h obs.Histogram
	for _, d := range lats {
		h.Observe(d)
	}
	snap := h.Snapshot()
	s := snap.Summary()
	return &s
}

// TenantReport is one tenant's measured SLO outcome for one run.
type TenantReport struct {
	Tenant  string `json:"tenant"`
	Planned int    `json:"planned_batches"`
	// Accepted counts 202s; Shed429 counts admission rejections (the
	// server's 429s) and Shed503 degraded-mode rejections (storage sick,
	// writes refused to protect the acked history), of which
	// ShedNoRetryAfter arrived without a Retry-After header — an SLO
	// violation in itself, since clients can't back off blind. HTTP5xx
	// counts remaining 5xx responses and OtherErrors everything else
	// (transport failures included).
	Accepted         int `json:"accepted_batches"`
	Shed429          int `json:"shed_429"`
	Shed503          int `json:"shed_503"`
	ShedNoRetryAfter int `json:"shed_missing_retry_after"`
	HTTP5xx          int `json:"http_5xx"`
	OtherErrors      int `json:"other_errors"`
	// SSEReceived counts quantum events observed on the tenant's stream;
	// SSELost is accepted-but-never-acknowledged batches at the drain
	// deadline (0 in a healthy run).
	SSEReceived int `json:"sse_received"`
	SSELost     int `json:"sse_lost"`
	// Ingest-to-SSE latency: POST start to the matching quantum event's
	// arrival, per accepted batch.
	IngestP50Ms float64 `json:"ingest_to_sse_p50_ms"`
	IngestP99Ms float64 `json:"ingest_to_sse_p99_ms"`
	// Query latency over the tenant's query mix.
	Queries     int     `json:"queries"`
	QueryErrors int     `json:"query_errors"`
	QueryP50Ms  float64 `json:"query_p50_ms"`
	QueryP99Ms  float64 `json:"query_p99_ms"`
	// IngestHist / QueryHist are the same distributions folded through
	// the telemetry layer's log-bucketed histogram (count, p50/p95/p99,
	// max), so a harness report reads like the server's own
	// /metrics?format=prometheus stage data. The exact-sample
	// percentiles above remain the SLO inputs; the histogram summaries
	// carry the bucketing error a dashboard would see.
	IngestHist *obs.HistSummary `json:"ingest_to_sse_hist,omitempty"`
	QueryHist  *obs.HistSummary `json:"query_hist,omitempty"`
}

// ReportTotals aggregates the per-tenant counters.
type ReportTotals struct {
	Planned          int `json:"planned_batches"`
	Accepted         int `json:"accepted_batches"`
	Shed429          int `json:"shed_429"`
	Shed503          int `json:"shed_503"`
	ShedNoRetryAfter int `json:"shed_missing_retry_after"`
	HTTP5xx          int `json:"http_5xx"`
	OtherErrors      int `json:"other_errors"`
	SSELost          int `json:"sse_lost"`
	QueryErrors      int `json:"query_errors"`
}

// Report is one scenario run's full outcome.
type Report struct {
	Scenario   Scenario       `json:"scenario"`
	Seed       int64          `json:"seed"`
	PlanDigest string         `json:"plan_sha256"`
	Tenants    int            `json:"tenants"`
	Batches    int            `json:"batches"`
	BatchSize  int            `json:"batch_size"`
	Messages   int            `json:"messages"`
	WallMs     float64        `json:"wall_ms"`
	PerTenant  []TenantReport `json:"per_tenant"`
	Totals     ReportTotals   `json:"totals"`
}

func (r *Report) fillTotals() {
	r.Totals = ReportTotals{}
	for _, t := range r.PerTenant {
		r.Totals.Planned += t.Planned
		r.Totals.Accepted += t.Accepted
		r.Totals.Shed429 += t.Shed429
		r.Totals.Shed503 += t.Shed503
		r.Totals.ShedNoRetryAfter += t.ShedNoRetryAfter
		r.Totals.HTTP5xx += t.HTTP5xx
		r.Totals.OtherErrors += t.OtherErrors
		r.Totals.SSELost += t.SSELost
		r.Totals.QueryErrors += t.QueryErrors
	}
}

// percentileMs returns the q-th percentile (0 < q ≤ 1) of lats in
// milliseconds, 0 for an empty sample. Nearest-rank on a sorted copy.
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return float64(s[rank]) / float64(time.Millisecond)
}

// SLOResult is the verdict of CheckSLO: the acceptance gates evaluated
// over a skewed run and its uniform control.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
	// ColdP99Ms / ColdUniformP99Ms are the worst cold-tenant
	// ingest-to-SSE p99 under load and under the uniform control — the
	// pair the fairness bound compares.
	ColdP99Ms        float64 `json:"cold_p99_ms"`
	ColdUniformP99Ms float64 `json:"cold_uniform_p99_ms"`
}

// CheckSLO evaluates the harness acceptance gates for a skewed run
// (zipf-hot or flash-flood) against its uniform control:
//
//   - no 5xx anywhere in the skewed run (overload must shed, not fail);
//   - every shed carried a Retry-After header;
//   - no accepted batch lost its SSE acknowledgement;
//   - every cold tenant's ingest-to-SSE p99 stays within 2× its
//     uniform-control p99, with a floor of floorMs absorbing
//     scheduler-granularity noise at sub-millisecond baselines.
//
// The hot tenant (index 0 in both skewed scenarios) is exempt from the
// latency bound — it is the one being shed — but not from the error
// and Retry-After gates.
func CheckSLO(skewed, uniform *Report, floorMs float64) SLOResult {
	res := SLOResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if skewed.Totals.HTTP5xx > 0 {
		fail("%s: %d HTTP 5xx responses (want 0: overload must shed with 429, not fail)",
			skewed.Scenario, skewed.Totals.HTTP5xx)
	}
	if skewed.Totals.OtherErrors > 0 {
		fail("%s: %d unexpected responses/transport errors", skewed.Scenario, skewed.Totals.OtherErrors)
	}
	if skewed.Totals.Shed503 > 0 {
		fail("%s: %d degraded-mode 503 sheds (storage reported sick under pure load skew)",
			skewed.Scenario, skewed.Totals.Shed503)
	}
	if skewed.Totals.ShedNoRetryAfter > 0 {
		fail("%s: %d sheds missing a Retry-After header", skewed.Scenario, skewed.Totals.ShedNoRetryAfter)
	}
	if skewed.Totals.SSELost > 0 {
		fail("%s: %d accepted batches never acknowledged on SSE", skewed.Scenario, skewed.Totals.SSELost)
	}
	for i, t := range skewed.PerTenant {
		if i == 0 || i >= len(uniform.PerTenant) {
			continue // hot tenant exempt from the latency bound
		}
		base := uniform.PerTenant[i].IngestP99Ms
		bound := 2 * base
		if bound < floorMs {
			bound = floorMs
		}
		if t.IngestP99Ms > res.ColdP99Ms {
			res.ColdP99Ms = t.IngestP99Ms
			res.ColdUniformP99Ms = base
		}
		if t.IngestP99Ms > bound {
			fail("%s: cold tenant %s ingest-to-SSE p99 %.2fms exceeds 2× uniform p99 %.2fms (floor %.0fms)",
				skewed.Scenario, t.Tenant, t.IngestP99Ms, base, floorMs)
		}
	}
	return res
}

// CheckDiskPressureSLO evaluates the graceful-degradation gates over a
// disk-pressure run (an ENOSPC window injected mid-run):
//
//   - zero non-503 5xx: storage failure must degrade, never error out;
//   - every shed — 429 or 503 — carried a Retry-After header;
//   - the pressure window actually bit (at least one 503 shed) and the
//     server kept accepting around it (the fault must not wedge ingest
//     permanently — that would be the restart this scenario forbids);
//   - queries kept serving (degraded mode is read-only, not read-broken);
//   - no accepted batch lost its SSE acknowledgement: everything the
//     server acked survived the fault window.
//
// The replay check — on-disk WAL equals exactly the acked prefix — needs
// the server's filesystem and lives with the run driver, not the report.
func CheckDiskPressureSLO(rep *Report) SLOResult {
	res := SLOResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if rep.Totals.HTTP5xx > 0 {
		fail("%s: %d non-503 HTTP 5xx responses (want 0: storage faults must shed, not fail)",
			rep.Scenario, rep.Totals.HTTP5xx)
	}
	if rep.Totals.OtherErrors > 0 {
		fail("%s: %d unexpected responses/transport errors", rep.Scenario, rep.Totals.OtherErrors)
	}
	if rep.Totals.ShedNoRetryAfter > 0 {
		fail("%s: %d sheds missing a Retry-After header", rep.Scenario, rep.Totals.ShedNoRetryAfter)
	}
	if rep.Totals.Shed503 == 0 {
		fail("%s: no degraded-mode sheds observed — the pressure window missed the run", rep.Scenario)
	}
	if rep.Totals.Accepted == 0 {
		fail("%s: nothing accepted — the server never served around the fault window", rep.Scenario)
	}
	if rep.Totals.QueryErrors > 0 {
		fail("%s: %d query errors (reads must keep serving through degradation)",
			rep.Scenario, rep.Totals.QueryErrors)
	}
	if rep.Totals.SSELost > 0 {
		fail("%s: %d accepted batches never acknowledged on SSE", rep.Scenario, rep.Totals.SSELost)
	}
	return res
}
