// Package loadharness is the adversarial load harness: it materializes
// a deterministic per-tenant traffic plan (internal/tracegen arrival
// processes + message composers), drives a real server instance over
// HTTP with a mixed ingest/query/SSE workload, and reports per-tenant
// SLO metrics — ingest-to-SSE latency percentiles, query latency
// percentiles, shed counts and error counts.
//
// The plan (which tenant sends which bytes in which order, and which
// queries are issued) is byte-reproducible for a fixed seed: BuildPlan
// is pure, and Plan.Digest is a SHA-256 over every request body in
// schedule order, so two builds of the same config can prove they
// generated identical traffic. Latencies, of course, are measured, not
// generated.
package loadharness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/tracegen"
)

// Scenario names one arrival-process + composer pairing.
type Scenario string

const (
	// ScenarioUniform is the control: every tenant sends the same benign
	// traffic at the same share. Skewed runs are judged against it.
	ScenarioUniform Scenario = "uniform"
	// ScenarioZipfHot draws batch arrivals from a Zipf distribution —
	// tenant 0 runs hot while a cold tail trickles. The admission-control
	// acceptance scenario: the hot tenant must shed (429 + Retry-After),
	// the cold tenants must keep their latency.
	ScenarioZipfHot Scenario = "zipf-hot"
	// ScenarioFlashFlood is uniform background plus a mid-run flash
	// crowd, and the flashing tenant sends the adversarial keyword
	// flood: maximal cluster churn per quantum and Bloom-sidecar
	// inflation in the archive.
	ScenarioFlashFlood Scenario = "flash-flood"
	// ScenarioDiskPressure sends benign uniform traffic — the adversity
	// is not in the plan but under it: the runner injects an ENOSPC
	// window into the server's storage mid-run (see PressureController).
	// The graceful-degradation acceptance scenario: writes during the
	// window shed with 503 + Retry-After (never a bare 5xx), reads keep
	// serving, and after space frees the tenant recovers in-process with
	// the replayable WAL equal to exactly the acked batches.
	ScenarioDiskPressure Scenario = "disk-pressure"
)

// Scenarios lists every defined scenario in report order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioUniform, ScenarioZipfHot, ScenarioFlashFlood, ScenarioDiskPressure}
}

// Config shapes one harness run.
type Config struct {
	Scenario Scenario
	Seed     int64
	// Tenants is the tenant population (default 4).
	Tenants int
	// Batches is the total batch budget across tenants (default
	// 64×Tenants).
	Batches int
	// BatchSize is messages per ingest POST. It must equal the server's
	// detector Delta so one accepted batch completes exactly one quantum
	// and the n-th SSE event acknowledges the n-th accepted batch —
	// that equality is what makes ingest-to-SSE latency measurable
	// per-batch. Default 8.
	BatchSize int
	// QueryEvery issues one GET query per tenant after every N posted
	// batches (default 4; 0 disables the query mix).
	QueryEvery int
	// TenantPrefix names tenants "<prefix>-<i>" (default "load").
	TenantPrefix string
}

func (c Config) withDefaults() Config {
	if c.Scenario == "" {
		c.Scenario = ScenarioUniform
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Batches <= 0 {
		c.Batches = 64 * c.Tenants
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.QueryEvery < 0 {
		c.QueryEvery = 0
	} else if c.QueryEvery == 0 {
		c.QueryEvery = 4
	}
	if c.TenantPrefix == "" {
		c.TenantPrefix = "load"
	}
	return c
}

// Batch is one planned ingest POST: the pre-marshaled body a tenant
// sends at its Seq-th turn.
type Batch struct {
	Tenant int    // tenant index
	Seq    int    // per-tenant sequence number (0-based)
	Msgs   int    // message count in the body
	Body   []byte // JSON array, ready to POST
}

// Plan is a fully materialized traffic plan: every request body and
// query URL the harness will issue, in order, plus the digest that
// proves reproducibility.
type Plan struct {
	Scenario Scenario
	Seed     int64
	Config   Config
	// TenantNames[i] is tenant i's URL path segment.
	TenantNames []string
	// Schedule is the global arrival order (Order[i] = tenant index).
	Schedule tracegen.Schedule
	// PerTenant[t] is tenant t's batches in send order.
	PerTenant [][]Batch
	// Queries[t] is tenant t's query URL suffixes (path + raw query,
	// no host) in issue order; the k-th is issued after the tenant's
	// (k+1)×QueryEvery-th posted batch.
	Queries [][]string
	// Digest is the SHA-256 over the scenario, seed and every request
	// body and query string in deterministic order.
	Digest string
}

// arrivalKind maps a scenario to its tracegen arrival process.
func (s Scenario) arrivalKind() (tracegen.ArrivalKind, error) {
	switch s {
	case ScenarioUniform:
		return tracegen.ArrivalUniform, nil
	case ScenarioZipfHot:
		return tracegen.ArrivalZipf, nil
	case ScenarioFlashFlood:
		return tracegen.ArrivalFlash, nil
	case ScenarioDiskPressure:
		// Benign arrivals: the pressure comes from the storage fault
		// window, and skewed traffic would conflate the two.
		return tracegen.ArrivalUniform, nil
	}
	return 0, fmt.Errorf("loadharness: unknown scenario %q", string(s))
}

// BuildPlan materializes cfg into a concrete plan. Pure and
// deterministic: the same config always yields the same plan,
// byte-for-byte (Digest included).
func BuildPlan(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	kind, err := cfg.Scenario.arrivalKind()
	if err != nil {
		return nil, err
	}
	sched := tracegen.BuildSchedule(tracegen.ArrivalConfig{
		Kind:    kind,
		Seed:    cfg.Seed,
		Tenants: cfg.Tenants,
		Batches: cfg.Batches,
	})
	p := &Plan{
		Scenario:    cfg.Scenario,
		Seed:        cfg.Seed,
		Config:      cfg,
		Schedule:    sched,
		TenantNames: make([]string, cfg.Tenants),
		PerTenant:   make([][]Batch, cfg.Tenants),
		Queries:     make([][]string, cfg.Tenants),
	}
	for t := 0; t < cfg.Tenants; t++ {
		p.TenantNames[t] = fmt.Sprintf("%s-%d", cfg.TenantPrefix, t)
	}

	// The flash-flood scenario's bursting tenant sends the adversarial
	// keyword flood; everyone else (and every tenant in the other
	// scenarios) sends benign community traffic.
	flood := tracegen.FloodConfig{Seed: cfg.Seed}
	floodTenant := -1
	if cfg.Scenario == ScenarioFlashFlood {
		floodTenant = 0 // tracegen default BurstTenant
	}
	compose := func(tenant, start, n int) []byte {
		var body []byte
		var err error
		if tenant == floodTenant {
			body, err = json.Marshal(flood.Messages(start, n))
		} else {
			tt := tracegen.TenantTraffic{Seed: cfg.Seed, Tenant: tenant}
			body, err = json.Marshal(tt.Messages(start, n))
		}
		if err != nil {
			panic("loadharness: marshal planned batch: " + err.Error())
		}
		return body
	}

	pos := make([]int, cfg.Tenants) // per-tenant absolute message position
	for _, tn := range sched.Order {
		b := Batch{
			Tenant: tn,
			Seq:    len(p.PerTenant[tn]),
			Msgs:   cfg.BatchSize,
			Body:   compose(tn, pos[tn], cfg.BatchSize),
		}
		pos[tn] += cfg.BatchSize
		p.PerTenant[tn] = append(p.PerTenant[tn], b)
	}

	// Query mix: alternate a live top-k read (epoch snapshot path) with
	// a keyword time-travel read (unified query path). The flood tenant
	// probes long-retired flood keywords — every archived segment's
	// Bloom sidecar gets exercised, none should hold matching rows.
	if cfg.QueryEvery > 0 {
		for t := 0; t < cfg.Tenants; t++ {
			n := len(p.PerTenant[t]) / cfg.QueryEvery
			qs := make([]string, 0, n)
			for k := 0; k < n; k++ {
				var q string
				switch {
				case t == floodTenant:
					// Keywords from the window retired ~k windows ago.
					q = fmt.Sprintf("/v1/%s/query?keyword=%s&limit=16",
						p.TenantNames[t], flood.Keyword(k*8))
				case k%2 == 0:
					q = fmt.Sprintf("/v1/%s/events?k=8", p.TenantNames[t])
				default:
					q = fmt.Sprintf("/v1/%s/query?keyword=t%dtopic%d&limit=16",
						p.TenantNames[t], t, k%4)
				}
				qs = append(qs, q)
			}
			p.Queries[t] = qs
		}
	}

	p.Digest = p.digest()
	return p, nil
}

// digest hashes the plan's observable traffic: scenario, seed, shape,
// every body in global schedule order, and every query URL. Two plans
// with equal digests issue byte-identical request sequences.
func (p *Plan) digest() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(p.Scenario))
	writeInt(p.Seed)
	writeInt(int64(p.Config.Tenants))
	writeInt(int64(p.Config.Batches))
	writeInt(int64(p.Config.BatchSize))
	next := make([]int, len(p.PerTenant))
	for _, tn := range p.Schedule.Order {
		b := p.PerTenant[tn][next[tn]]
		next[tn]++
		writeInt(int64(tn))
		writeInt(int64(len(b.Body)))
		h.Write(b.Body)
	}
	for t, qs := range p.Queries {
		writeInt(int64(t))
		for _, q := range qs {
			h.Write([]byte(q))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TotalMessages is the message count the plan ingests across tenants.
func (p *Plan) TotalMessages() int {
	n := 0
	for _, batches := range p.PerTenant {
		for _, b := range batches {
			n += b.Msgs
		}
	}
	return n
}
