package loadharness

import (
	"context"
	"fmt"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/vfs"
)

// PressureController runs the storage-fault choreography of the
// disk-pressure scenario against an in-process pool, concurrently with
// the Runner driving traffic: wait until the pool has accepted some
// work, fill the disk (inject ENOSPC on every write under the WAL
// path), hold it full until the pool reports a degraded tenant plus a
// dwell of a few probe cycles, then free the space and wait for the
// in-process recovery. Each stage is observed through the pool's own
// metrics, not timers, so the choreography cannot miss a fast run.
type PressureController struct {
	Pool *server.Pool
	FFS  *vfs.FaultFS
	// PathSubstring scopes the injected fault (typically the WAL root);
	// it must also cover the supervisor's write-probe path or the pool
	// un-degrades the moment the probe lands on healthy bytes.
	PathSubstring string
	// AfterAccepted arms the fault once the pool has accepted this many
	// batches (0 = after the first). Leaving room before the window
	// proves healthy ingest, leaving budget after it proves recovery.
	AfterAccepted uint64
	// Hold is the dwell with the disk full after degradation is
	// observed (default 50ms — a few supervisor probe cycles).
	Hold time.Duration
	// StageTimeout bounds each observed stage (default 15s); a stage
	// that never happens is a server bug, not a timing accident.
	StageTimeout time.Duration
}

// Run blocks until the full window has played out: accept → full →
// degraded → dwell → freed → recovered.
func (pc *PressureController) Run(ctx context.Context) error {
	hold := pc.Hold
	if hold <= 0 {
		hold = 50 * time.Millisecond
	}
	stage := pc.StageTimeout
	if stage <= 0 {
		stage = 15 * time.Second
	}
	accepted := func() uint64 {
		var n uint64
		for _, t := range pc.Pool.Metrics().Tenants {
			n += t.AcceptedBatches
		}
		return n
	}
	degraded := func() int { return pc.Pool.Metrics().Totals.DegradedTenants }

	if err := pc.waitFor(ctx, stage, func() bool { return accepted() > pc.AfterAccepted },
		"healthy ingest before the fault window"); err != nil {
		return err
	}
	rule := pc.FFS.Inject(vfs.Rule{Op: vfs.OpWrite, Path: pc.PathSubstring, Err: syscall.ENOSPC})
	if err := pc.waitFor(ctx, stage, func() bool { return degraded() > 0 },
		"a degraded tenant after filling the disk"); err != nil {
		return err
	}
	sleepCtx(ctx, hold)
	pc.FFS.ClearRule(rule)
	if err := pc.waitFor(ctx, stage, func() bool { return degraded() == 0 },
		"in-process recovery after freeing space"); err != nil {
		return err
	}
	return ctx.Err()
}

func (pc *PressureController) waitFor(ctx context.Context, timeout time.Duration, cond func() bool, what string) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadharness: disk pressure: timed out waiting for %s", what)
		}
		sleepCtx(ctx, 2*time.Millisecond)
	}
	return nil
}
