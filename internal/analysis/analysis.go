// Package analysis is the repo's static-enforcement toolkit: a small,
// dependency-free reimplementation of the go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the driver that speaks the
// `go vet -vettool` command-line protocol. The analyzers themselves
// live in subpackages (maporder, walltime, vfsseam, retryafter) and
// are compiled into cmd/repro-lint.
//
// The suite exists because the system's headline property — bit-
// identical deterministic replay of the detection pipeline from the
// WAL — has been broken twice by map-iteration-order bugs, and its
// fault-injection coverage only holds while storage I/O flows through
// the internal/vfs seam. Those invariants are codebase-specific; no
// generic linter checks them. See docs/DETERMINISM.md for the
// contract, the annotation grammar, and how to extend the suite.
//
// golang.org/x/tools is deliberately not imported: the module is
// dependency-free and stays that way. Everything here is built on
// go/ast, go/types, go/parser and go/importer from the standard
// library; the vettool protocol (vet.cfg files, -flags, export-data
// import via PackageFile) is implemented in unitchecker.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It is a cut-down mirror of
// golang.org/x/tools/go/analysis.Analyzer: no facts, no requires graph
// — every analyzer here is a single self-contained pass over one
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -flags output and
	// the per-analyzer enable flag (-maporder=false).
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Directive is the //repro: suppression directive this analyzer
	// honors (e.g. "order-insensitive"), or "" if findings cannot be
	// suppressed. A directive comment on the flagged line, or the line
	// immediately above it, with a non-empty reason suppresses the
	// finding; the driver reports annotations that suppress nothing.
	Directive string
	// Run reports findings on pass via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the canonical import path with any " [pkg.test]"
	// build-variant suffix stripped, so package-set membership checks
	// see the same path for a package and its test variant.
	PkgPath string

	annots *annotIndex
	diags  *[]Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding unless a valid suppression annotation for
// the analyzer's directive covers pos (same line or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Analyzer.Directive != "" && p.annots.suppress(p.Analyzer.Directive, p.Fset.Position(pos)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. maporder, walltime and retryafter skip test files (tests may
// legitimately read clocks and enumerate maps); vfsseam deliberately
// does not — corruption-setup bypasses in tests must be annotated.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// runPackage executes every analyzer over one package, then audits the
// package's //repro: annotations: unknown directives, missing reasons
// and suppressions that suppressed nothing are all findings themselves
// — a suppression may never be silent or stale.
func runPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	annots := buildAnnotIndex(fset, files)
	var diags []Diagnostic
	ran := make(map[string]bool) // directive → an owning analyzer ran
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   pkgPath,
			annots:    annots,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		if a.Directive != "" {
			ran[a.Directive] = true
		}
	}
	for _, ann := range annots.all {
		switch {
		case !knownDirectives[ann.directive]:
			diags = append(diags, Diagnostic{
				Pos:      ann.pos,
				Analyzer: "reproanno",
				Message:  fmt.Sprintf("unknown //repro: directive %q (known: %s)", ann.directive, strings.Join(directiveNames(), ", ")),
			})
		case ann.reason == "":
			diags = append(diags, Diagnostic{
				Pos:      ann.pos,
				Analyzer: "reproanno",
				Message:  fmt.Sprintf("//repro:%s needs a reason: a suppression must say why the invariant holds here", ann.directive),
			})
		case ran[ann.directive] && !ann.used:
			diags = append(diags, Diagnostic{
				Pos:      ann.pos,
				Analyzer: "reproanno",
				Message:  fmt.Sprintf("unused //repro:%s suppression: nothing on this or the next line is flagged — delete it", ann.directive),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
