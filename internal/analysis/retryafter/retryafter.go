// Package retryafter enforces the API contract on retryable
// rejections: every handler path that writes 429 Too Many Requests or
// 503 Service Unavailable must go through the package's retryableError
// wrapper, which is the one place that emits the Retry-After header
// mirrored as retry_after_seconds in the JSON body. Hand-rolled
// header-plus-error combinations drifted once before; clients key
// their backoff off this shape.
//
// The check is a call-path analysis over the package: it seeds the
// status-sink set with (http.ResponseWriter).WriteHeader and
// http.Error, then propagates — any package function that forwards one
// of its own int parameters into a sink's status position becomes a
// sink itself (writeJSON → httpError → … chains). A constant 429/503
// flowing into any sink is a finding unless the call is to, or inside,
// retryableError. Deliberate exceptions (a bare 503 readiness probe)
// carry //repro:retryable-exempt <reason>.
package retryafter

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "retryafter",
	Doc:       "requires 429/503 responses to be written via the retryableError shape",
	Directive: "retryable-exempt",
	Run:       run,
}

// wrapperName is the blessed emitter of the retryable shape. Packages
// that never write a 429/503 are unaffected; packages that do must
// either define it or annotate every site.
const wrapperName = "retryableError"

func run(pass *analysis.Pass) error {
	sinks := collectSinks(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inWrapper := fn.Name.Name == wrapperName && fn.Recv == nil
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				idx, callee := statusArg(pass, sinks, call)
				if idx < 0 || idx >= len(call.Args) {
					return true
				}
				status, ok := constIntValue(pass, call.Args[idx])
				if !ok || (status != 429 && status != 503) {
					return true
				}
				if inWrapper || (callee != nil && callee.Name() == wrapperName && callee.Pkg() == pass.Pkg) {
					return true
				}
				pass.Reportf(call.Pos(),
					"status %d written without the %s shape (Retry-After header + retry_after_seconds); call %s, or annotate //repro:retryable-exempt <reason>",
					status, wrapperName, wrapperName)
				return true
			})
		}
	}
	return nil
}

// statusArg reports which argument of call is a response status headed
// for the wire, and the callee if it is a package-level function.
// idx < 0 means call is not a status sink.
func statusArg(pass *analysis.Pass, sinks map[*types.Func]int, call *ast.CallExpr) (idx int, callee *types.Func) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return -1, nil
		}
		if isWriteHeader(obj) {
			return 0, nil
		}
		if isHTTPError(obj) {
			return 2, nil
		}
		if i, ok := sinks[obj]; ok {
			return i, obj
		}
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		if !ok {
			return -1, nil
		}
		if i, ok := sinks[obj]; ok {
			return i, obj
		}
	}
	return -1, nil
}

// collectSinks computes, to a fixpoint, the package functions that
// forward an int parameter into a status sink.
func collectSinks(pass *analysis.Pass) map[*types.Func]int {
	sinks := make(map[*types.Func]int)
	for {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, done := sinks[obj]; done {
					continue
				}
				params := paramObjects(pass, fn)
				if len(params) == 0 {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					idx, _ := statusArg(pass, sinks, call)
					if idx < 0 || idx >= len(call.Args) {
						return true
					}
					id, ok := call.Args[idx].(*ast.Ident)
					if !ok {
						return true
					}
					if pi, ok := params[pass.TypesInfo.Uses[id]]; ok {
						if _, done := sinks[obj]; !done {
							sinks[obj] = pi
							changed = true
						}
					}
					return true
				})
			}
		}
		if !changed {
			return sinks
		}
	}
}

// paramObjects maps fn's int-typed parameter objects to their index.
func paramObjects(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	i := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies an index
		}
		for j := 0; j < n; j++ {
			if j < len(field.Names) {
				obj := pass.TypesInfo.Defs[field.Names[j]]
				if obj != nil {
					if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						out[obj] = i
					}
				}
			}
			i++
		}
	}
	return out
}

func isWriteHeader(fn *types.Func) bool {
	if fn.Name() != "WriteHeader" {
		return false
	}
	sig := fn.Signature()
	if sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isHTTPError(fn *types.Func) bool {
	return fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
		fn.Signature().Recv() == nil
}

func constIntValue(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
