// Package vfs mirrors the real seam package: it is the one place
// allowed to touch os directly, so nothing here is flagged.
package vfs

import "os"

// Create is the seam's own passthrough — exempt by package path.
func Create(path string) (*os.File, error) {
	return os.Create(path)
}

// Sync fsyncs through the seam — exempt by package path.
func Sync(f *os.File) error {
	return f.Sync()
}
