// Package detect is the walltime fixture: repro/internal/detect is in
// the replay-deterministic set, so wall-clock and global-randomness
// reads here must be flagged.
package detect

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Stamp reads the wall clock on the replay path.
func Stamp() int64 {
	return time.Now().UnixNano() // want walltime "time.Now reads the wall clock"
}

// Age reads the wall clock through time.Since.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want walltime "time.Since reads the wall clock"
}

// Jitter draws from the shared global source.
func Jitter() int {
	return rand.Intn(10) // want walltime "math/rand.Intn uses the global random source"
}

// JitterV2 draws from the v2 global source.
func JitterV2() int {
	return randv2.IntN(10) // want walltime "math/rand/v2.IntN uses the global random source"
}

// SeededJitter is fine: constructors and methods on an explicitly
// seeded *rand.Rand are deterministic given the recorded seed.
func SeededJitter(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Derived time arithmetic on recorded values is fine.
func Quantize(t time.Time, q time.Duration) time.Time {
	return t.Truncate(q)
}

// Probe carries a reasoned suppression, so it is not flagged.
func Probe() time.Time {
	return time.Now() //repro:wallclock-exempt fixture: latency telemetry only, never feeds replayed state
}
