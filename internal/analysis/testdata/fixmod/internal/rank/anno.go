// The annotation-audit fixtures: malformed or stale //repro: comments
// are findings themselves (analyzer "reproanno"). The expectations here
// use the want-above form because the finding lands on the comment's
// own line.
package rank

// typoDirective carries a misspelled directive: it suppresses nothing
// and the audit flags it as unknown.
func typoDirective(m map[string]int) int {
	n := 0
	//repro:order-insensistive fixture: typo'd directive name
	// want-above reproanno "unknown //repro: directive"
	for _, v := range m {
		n += v
	}
	return n
}

// missingReason omits the mandatory reason: the annotation never
// suppresses (the loop below stays flagged) and is itself reported.
func missingReason(m map[string]float64) float64 {
	var s float64
	//repro:order-insensitive
	// want-above reproanno "needs a reason"
	for _, v := range m { // want maporder "order-dependent body"
		s += v
	}
	return s
}

// staleSuppression annotates a loop the analyzer already proves
// order-free, so the suppression is unused and must be deleted.
func staleSuppression(m map[string]int) int {
	n := 0
	//repro:order-insensitive fixture: stale — the loop below is provably order-free
	// want-above reproanno "unused"
	for _, v := range m {
		n += v
	}
	return n
}
