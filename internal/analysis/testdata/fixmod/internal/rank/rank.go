// Package rank is the maporder fixture: repro/internal/rank is in the
// replay-deterministic set, so order-sensitive map loops here must be
// flagged. The positive cases seed the regressions the analyzer exists
// to catch — the first one is the PR-1 rank bug, reintroduced verbatim.
package rank

import "sort"

// TotalWeight is the PR-1 regression: float accumulation in map order.
// Rounding depends on iteration order, so replayed ranks diverge.
func TotalWeight(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights { // want maporder "order-dependent body"
		total += w
	}
	return total
}

// LastWins leaks whichever entry the runtime happens to visit last.
func LastWins(m map[string]int) int {
	best := 0
	for _, v := range m { // want maporder "order-dependent body"
		best = v
	}
	return best
}

// UnsortedKeys returns keys in map order — the retirement-order bug class.
func UnsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want maporder "order-dependent body"
		out = append(out, k)
	}
	return out
}

// Count is order-free: integer accumulation commutes.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert is order-free: per-key writes, each source key visited once.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AllPositive is a ∀-predicate: a single constant return in an
// effect-free body yields the same verdict in any order.
func AllPositive(m map[string]int) bool {
	for _, v := range m {
		if v <= 0 {
			return false
		}
	}
	return true
}

// Tolerant carries a reasoned suppression, so it is not flagged.
func Tolerant(m map[string]float64) float64 {
	var s float64
	for _, v := range m { //repro:order-insensitive fixture: this sum feeds a tolerance check, not replayed state
		s += v
	}
	return s
}
