// Package server is the retryafter fixture: every handler path writing
// 429 or 503 must go through retryableError (Retry-After header +
// retry_after_seconds body) so shed clients know when to come back.
package server

import "net/http"

// retryableError is the canonical shape; writing the status inside it
// is the one sanctioned sink.
func retryableError(w http.ResponseWriter, status, retryAfter int, msg string) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(status)
}

// writeJSON forwards its status parameter to WriteHeader, which makes
// it a sink: constant 429/503 at its call sites are flagged.
func writeJSON(w http.ResponseWriter, status int, body any) {
	_ = body
	w.WriteHeader(status)
}

func direct(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTooManyRequests) // want retryafter "status 429 written without the retryableError shape"
}

func viaHTTPError(w http.ResponseWriter) {
	http.Error(w, "unavailable", http.StatusServiceUnavailable) // want retryafter "status 503 written without the retryableError shape"
}

func viaHelper(w http.ResponseWriter) {
	writeJSON(w, 503, nil) // want retryafter "status 503 written without the retryableError shape"
}

// viaWrapper goes through the sanctioned shape: not flagged.
func viaWrapper(w http.ResponseWriter) {
	retryableError(w, 503, 1, "backing off")
}

// plainError writes a non-retryable status: not the analyzer's business.
func plainError(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError)
}

// probe carries a reasoned suppression, so it is not flagged.
func probe(w http.ResponseWriter) {
	//repro:retryable-exempt fixture: readiness probe; the body is for load balancers, not retrying clients
	writeJSON(w, http.StatusServiceUnavailable, nil)
}
