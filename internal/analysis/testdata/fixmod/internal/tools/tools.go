// Package tools sits outside the replay-deterministic set: maporder
// and walltime do not apply, so nothing here is flagged.
package tools

import "time"

// Uptime may read derived clocks freely out here.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Keys may iterate maps unsorted out here.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
