// Package storage is the vfsseam fixture: it is outside internal/vfs,
// so every write-side os call must go through the seam.
package storage

import "os"

// Persist bypasses the fault seam with a direct write.
func Persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want vfsseam "os.WriteFile bypasses"
}

// Move bypasses the seam's rename (the crash-atomicity choke point).
func Move(a, b string) error {
	return os.Rename(a, b) // want vfsseam "os.Rename bypasses"
}

// SyncRaw fsyncs a raw *os.File, dodging injected sync faults.
func SyncRaw(f *os.File) error {
	return f.Sync() // want vfsseam "Sync bypasses the internal/vfs fault seam"
}

// Fetch is fine: read-side calls don't need the seam.
func Fetch(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Scratch carries a reasoned suppression, so it is not flagged.
func Scratch(path string) error {
	return os.Remove(path) //repro:vfs-exempt fixture: tool-local scratch file, not storage-layer I/O
}
