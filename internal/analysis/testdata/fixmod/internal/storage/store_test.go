// vfsseam deliberately covers _test.go files: corruption-setup bypasses
// in tests must be annotated, not silent.
package storage

import "os"

func corrupt(path string) error {
	return os.Truncate(path, 3) // want vfsseam "os.Truncate bypasses"
}

func corruptAnnotated(path string) error {
	return os.Truncate(path, 3) //repro:vfs-exempt fixture: deliberate out-of-band corruption under test
}
