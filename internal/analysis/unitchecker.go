package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// config mirrors the vetConfig JSON that cmd/go writes to
// <objdir>/vet.cfg for each package before invoking the vettool
// (see buildVetConfig in cmd/go/internal/work/exec.go). Fields the
// driver does not consume are omitted; unknown JSON keys are ignored.
type config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string

	ImportMap   map[string]string // import path in source → canonical package path
	PackageFile map[string]string // canonical package path → export-data file
	Standard    map[string]bool

	VetxOnly   bool   // facts-only run for a dependency; we have no facts
	VetxOutput string // file cmd/go expects us to write (it caches it)

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/repro-lint. It speaks three
// dialects:
//
//	repro-lint -flags             → print flag metadata JSON (go vet asks first)
//	repro-lint [flags] unit.cfg   → analyze one package (go vet per-package run)
//	repro-lint [flags] [patterns] → standalone: re-exec `go vet -vettool=self`
//
// The standalone form is what `make lint` and humans use: it resolves
// the build graph, export data and test variants by delegating all of
// that to the go command, exactly as x/tools' unitchecker does.
func Main(analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit JSON output instead of text diagnostics")
	fs.Var(versionFlag{}, "V", "print version and exit (vet protocol)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *printflags {
		printFlagsJSON(fs)
		return
	}

	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], active, *jsonFlag)
		return
	}
	standalone(fs, args)
}

// standalone re-invokes the go command with this binary as the
// vettool, forwarding patterns and flag settings.
func standalone(fs *flag.FlagSet, patterns []string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	goArgs := []string{"vet", "-vettool=" + exe}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "flags" || f.Name == "V" {
			return
		}
		goArgs = append(goArgs, "-"+f.Name+"="+f.Value.String())
	})
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	goArgs = append(goArgs, patterns...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if ok := errorsAs(err, &exit); ok {
			os.Exit(exit.ExitCode())
		}
		log.Fatal(err)
	}
}

// errorsAs avoids importing errors just for one As call.
func errorsAs(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// runUnit analyzes the single package described by cfgFile and exits:
// 0 for clean (or a facts-only run), 2 when there are findings.
func runUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	// cmd/go caches VetxOutput as this package's "vet facts" and feeds
	// it to dependents. The suite is fact-free, so dependencies need no
	// analysis at all — but the file must exist for the cache entry.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			//repro:vfs-exempt vet-protocol handshake file for cmd/go's cache, not storage-layer I/O
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	diags, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatal(err)
	}
	writeVetx()

	if jsonOut {
		printJSON(fset, cfg.ID, analyzers, diags)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func readConfig(path string) (*config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

func analyze(fset *token.FileSet, cfg *config, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already built:
	// ImportMap canonicalizes the path, PackageFile locates the .a
	// file, and the standard library's gc importer reads it.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", goarch),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " // indirect"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkgPath, _, _ := strings.Cut(cfg.ImportPath, " [") // strip test-variant suffix
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return runPackage(fset, files, pkg, info, pkgPath, analyzers)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printJSON emits the same shape x/tools' unitchecker produces for
// -json: {pkgID: {analyzer: [{posn, message}]}}. JSON mode always
// exits 0 — findings are data for the caller (the fixture harness).
func printJSON(fset *token.FileSet, pkgID string, analyzers []*Analyzer, diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// printFlagsJSON answers `repro-lint -flags`: go vet runs this before
// anything else to learn which command-line flags it may forward.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" || f.Name == "V" {
			return
		}
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data) //nolint:errcheck // stdout write to the go command
	fmt.Println()
}

// versionFlag answers -V=full with a content hash of the executable,
// the shape cmd/go's toolID parser accepts for caching.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close() //nolint:errcheck // read-only
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
	os.Exit(0)
	return nil
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
