package analysis

// The replay-deterministic core: every package whose computation is
// replayed from the WAL and must reproduce bit-identical state and
// output. maporder and walltime enforce their invariants only inside
// this set — the serving layer legitimately reads wall clocks for
// telemetry and deadlines, but nothing here may.
//
// The list is import paths, not patterns; a new package on the replay
// path must be added here (docs/DETERMINISM.md holds the contract).
var deterministicPackages = map[string]bool{
	"repro":                   true, // public API facade over the pipeline
	"repro/internal/akg":      true,
	"repro/internal/ckg":      true,
	"repro/internal/core":     true,
	"repro/internal/detect":   true,
	"repro/internal/dygraph":  true,
	"repro/internal/minhash":  true,
	"repro/internal/quasi":    true,
	"repro/internal/query":    true,
	"repro/internal/rank":     true,
	"repro/internal/stream":   true,
	"repro/internal/textproc": true,
	"repro/internal/wal":      true,
}

// mapOrderExtraPackages extends maporder (but not walltime) beyond the
// replay core: the server's apply/checkpoint/metrics paths feed
// replayed state and client-visible responses, so its map iterations
// must also be sorted or proven order-insensitive — but it may read
// clocks freely.
var mapOrderExtraPackages = map[string]bool{
	"repro/internal/server": true,
}

// InDeterministicSet reports whether pkgPath is in the replay-
// deterministic core (walltime's and maporder's shared scope).
func InDeterministicSet(pkgPath string) bool {
	return deterministicPackages[pkgPath]
}

// InMapOrderSet reports whether maporder applies to pkgPath.
func InMapOrderSet(pkgPath string) bool {
	return deterministicPackages[pkgPath] || mapOrderExtraPackages[pkgPath]
}
