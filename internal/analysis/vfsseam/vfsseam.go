// Package vfsseam forbids direct os-package mutation of the filesystem
// outside internal/vfs. Every byte the storage layer writes must flow
// through the vfs.FS seam — that is the sole reason the fault-injection
// suite (EIO, ENOSPC, torn writes) proves anything about production
// behavior. One raw os.Create in the WAL or archive and the coverage
// silently rots.
//
// The write-side surface is banned: os.Create, os.OpenFile,
// os.CreateTemp, os.WriteFile, os.Rename, os.Remove, os.RemoveAll,
// os.Truncate, os.Mkdir, os.MkdirAll, and the Sync/Truncate methods on
// *os.File. Read-only calls (os.Open, os.ReadFile, os.Stat, …) stay
// legal: tests routinely inspect real disk state to verify what the
// seam wrote, and reads do not rot durability coverage.
//
// Unlike the other analyzers this one checks _test.go files too —
// tests that corrupt files on purpose to exercise recovery must carry
// a //repro:vfs-exempt <reason> annotation, so every bypass is an
// explicit, justified decision.
package vfsseam

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "vfsseam",
	Doc:       "forbids direct os filesystem writes outside the internal/vfs fault seam",
	Directive: "vfs-exempt",
	Run:       run,
}

// bannedOSFuncs is the write-side surface of package os.
var bannedOSFuncs = map[string]bool{
	"Create":     true,
	"OpenFile":   true,
	"CreateTemp": true,
	"WriteFile":  true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Truncate":   true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"Link":       true,
	"Symlink":    true,
}

// bannedFileMethods are the durability-relevant methods of *os.File:
// obtaining the handle is already flagged, but a handle can leak
// through vfs.File, and a raw Sync is exactly the call torn-write
// injection must see.
var bannedFileMethods = map[string]bool{
	"Sync":     true,
	"Truncate": true,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == "repro/internal/vfs" {
		return nil // the seam itself is the one legal caller
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || obj.Pkg().Path() != "os" {
				return true
			}
			if recv := fn.Signature().Recv(); recv != nil {
				if bannedFileMethods[fn.Name()] && isOSFile(recv.Type()) {
					pass.Reportf(sel.Pos(),
						"(*os.File).%s bypasses the internal/vfs fault seam; use a vfs.File from the seam, or annotate //repro:vfs-exempt <reason>", fn.Name())
				}
				return true
			}
			if bannedOSFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"os.%s bypasses the internal/vfs fault seam; route the write through vfs.FS, or annotate //repro:vfs-exempt <reason>", fn.Name())
			}
			return true
		})
	}
	return nil
}

func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
