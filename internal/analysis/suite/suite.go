// Package suite assembles the repro-lint analyzers in their canonical
// order. cmd/repro-lint and the analyzer tests both build from this
// list, so a new analyzer registered here is automatically in the
// vettool, `make lint`, and CI.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/retryafter"
	"repro/internal/analysis/vfsseam"
	"repro/internal/analysis/walltime"
)

// Analyzers returns the full repro-lint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		walltime.Analyzer,
		vfsseam.Analyzer,
		retryafter.Analyzer,
	}
}
