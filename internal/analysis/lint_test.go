// The analyzer tests run the real tool through the real driver: they
// build cmd/repro-lint, run `go vet -vettool` over a throwaway module
// assembled from testdata/fixmod, and diff the diagnostics against
// `// want analyzer "regex"` expectations in the fixture sources (the
// want-above form anchors to the line above, for findings that land on
// a comment's own line). The analysistest package lives in
// golang.org/x/tools, which this module deliberately does not import.
package analysis_test

import (
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildTool compiles cmd/repro-lint once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "repro-lint")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/repro-lint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building repro-lint: %v\n%s", err, out)
	}
	return tool
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

// TestCommittedTreeClean is the meta-test: the committed tree must pass
// the full suite with zero findings — every suppression reasoned, none
// stale. A new unsorted map range on the replay path fails this test
// before it fails replay.
func TestCommittedTreeClean(t *testing.T) {
	tool := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("repro-lint is not clean over the committed tree: %v\n%s", err, out)
	}
}

// diag is one parsed `file:line:col: analyzer: message` stderr line.
type diag struct {
	file     string // module-relative, slash-separated
	line     int
	analyzer string
	message  string
}

// expectation is one `// want analyzer "regex"` comment.
type expectation struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var (
	diagRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: ([a-z]+): (.+)$`)
	wantRe = regexp.MustCompile(`// want(-above)? ([a-z]+) "([^"]+)"`)
)

// TestFixtures assembles testdata/fixmod into a temp module named repro
// (so fixture package paths land inside the analyzers' deterministic
// sets), runs the vettool over it, and requires an exact match between
// diagnostics and want-expectations in both directions.
func TestFixtures(t *testing.T) {
	tool := buildTool(t)
	mod := t.TempDir()
	src := filepath.Join("testdata", "fixmod")

	var wants []*expectation
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dst := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil { //repro:vfs-exempt test harness assembling the throwaway fixture module
			return err
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil { //repro:vfs-exempt test harness assembling the throwaway fixture module
			return err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
				line := i + 1
				if m[1] == "-above" {
					line--
				}
				wants = append(wants, &expectation{
					file:     filepath.ToSlash(rel),
					line:     line,
					analyzer: m[2],
					re:       regexp.MustCompile(m[3]),
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found under testdata/fixmod")
	}
	gomod := "module repro\n\ngo 1.24\n"
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte(gomod), 0o644); err != nil { //repro:vfs-exempt test harness assembling the throwaway fixture module
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=")
	out, runErr := cmd.CombinedOutput()
	// Findings make go vet exit nonzero; that is expected. A build or
	// driver failure surfaces below as unparseable output.
	_ = runErr

	var diags []diag
	for _, lineText := range strings.Split(string(out), "\n") {
		lineText = strings.TrimSpace(lineText)
		if lineText == "" || strings.HasPrefix(lineText, "#") || strings.HasPrefix(lineText, "exit status") {
			continue
		}
		m := diagRe.FindStringSubmatch(lineText)
		if m == nil {
			t.Fatalf("unparseable go vet output line %q\nfull output:\n%s", lineText, out)
		}
		// go vet prints paths relative to its working directory when it
		// can, absolute otherwise.
		rel := m[1]
		if filepath.IsAbs(rel) {
			var err error
			if rel, err = filepath.Rel(mod, rel); err != nil || strings.HasPrefix(rel, "..") {
				t.Fatalf("diagnostic outside the fixture module: %q", lineText)
			}
		}
		n, _ := strconv.Atoi(m[2])
		diags = append(diags, diag{file: filepath.ToSlash(rel), line: n, analyzer: m[3], message: m[4]})
	}

	var problems []string
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.file && w.line == d.line && w.analyzer == d.analyzer && w.re.MatchString(d.message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic %s:%d: %s: %s", d.file, d.line, d.analyzer, d.message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("missing diagnostic %s:%d: %s matching %q", w.file, w.line, w.analyzer, w.re))
		}
	}
	if len(problems) > 0 {
		t.Fatalf("fixture mismatch:\n%s\nfull output:\n%s", strings.Join(problems, "\n"), out)
	}
}
