// Package maporder flags `for range` over maps in replay-deterministic
// packages. Go randomizes map iteration order on purpose; any map loop
// whose body is order-sensitive (float accumulation, slice append,
// first/last-wins selection) makes replayed state diverge from the
// original run — the exact bug class that broke bit-identical replay
// twice (rank float summation, retirement order).
//
// A loop passes if the analyzer can prove the body order-insensitive
// (only commutative integer updates, per-key map writes, deletes), if
// it is the canonical collect-then-sort idiom (the loop only appends
// keys/values to a slice that is later passed to a sort call in the
// same function), or if it carries a //repro:order-insensitive <reason>
// annotation.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flags order-sensitive map iteration in replay-deterministic packages",
	Directive: "order-insensitive",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InMapOrderSet(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				c := &checker{pass: pass, rs: rs}
				if c.orderInsensitiveBody() || c.collectThenSort(fn) {
					return true
				}
				pass.Reportf(rs.For,
					"iteration over map %s has an order-dependent body in a replay-deterministic package; iterate sorted keys, or annotate //repro:order-insensitive <reason>",
					types.ExprString(rs.X))
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt
	// assigned is the set of loop-carried objects written anywhere in
	// the loop body: variables declared outside the body (and outside
	// the range clause) that the body mutates. A condition or
	// right-hand side that reads one of these couples iterations
	// together, so order starts to matter. Variables declared inside
	// the body are reborn every iteration and cannot carry state
	// between entries, so they are exempt.
	assigned map[types.Object]bool
	// returns counts ReturnStmts in the loop body (FuncLits excluded);
	// effects records whether the body contains statement-level side
	// effects beyond assignments (calls, sends, go, defer). Together
	// they gate the predicate shape: a single constant return in an
	// otherwise effect-free body.
	returns int
	effects bool
}

// orderInsensitiveBody proves (conservatively) that running the body
// over the map's entries in any order yields identical final state.
func (c *checker) orderInsensitiveBody() bool {
	c.assigned = make(map[types.Object]bool)
	c.returns = 0
	c.effects = false
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its returns and effects are not the loop's
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				c.markAssigned(lhs)
			}
		case *ast.IncDecStmt:
			c.markAssigned(s.X)
		case *ast.ReturnStmt:
			c.returns++
		case *ast.ExprStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
			c.effects = true
		}
		return true
	})
	return c.stmtsAllowed(c.rs.Body.List)
}

// perIteration reports whether obj is declared inside the loop body or
// range clause — reborn on every entry, so never loop-carried.
func (c *checker) perIteration(obj types.Object) bool {
	return obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End()
}

func (c *checker) markAssigned(lhs ast.Expr) {
	// x = …, x.f = …, x[i] = … all mutate the object named at the root.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			if obj := c.objOf(e); obj != nil && !c.perIteration(obj) {
				c.assigned[obj] = true
			}
			return
		default:
			return
		}
	}
}

func (c *checker) objOf(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) stmtsAllowed(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtAllowed(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmtAllowed(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignAllowed(s)
	case *ast.IncDecStmt:
		// n++ / n-- on an integer commutes across iterations.
		return c.isInteger(s.X)
	case *ast.ExprStmt:
		// delete(m, k): deleting a set of keys is order-free.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		obj := c.pass.TypesInfo.Uses[id]
		b, ok := obj.(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.IfStmt:
		// A branch is fine as long as its condition cannot observe
		// earlier iterations: no reads of loop-carried state, and the
		// guarded statements must themselves be order-free.
		if s.Init != nil && !c.stmtAllowed(s.Init) {
			return false
		}
		if !c.pureExpr(s.Cond) {
			return false
		}
		if !c.stmtsAllowed(s.Body.List) {
			return false
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return c.stmtsAllowed(e.List)
			case *ast.IfStmt:
				return c.stmtAllowed(e)
			default:
				return false
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested loop (copying a map of maps, intersecting sets) is
		// fine when its own body is order-free and it ranges over
		// something order-pure; its loop variables are per-iteration.
		if s.X != nil && !c.pureExpr(s.X) {
			return false
		}
		return c.stmtsAllowed(s.Body.List)
	case *ast.BlockStmt:
		return c.stmtsAllowed(s.List)
	case *ast.DeclStmt:
		// var x T inside the body declares a per-iteration local.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.BranchStmt:
		// continue skips an entry regardless of order; break makes the
		// set of visited entries depend on order.
		return s.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// The ∃/∀-predicate shape: a single `return <constants>` in an
		// otherwise effect-free body. Whichever entry triggers it the
		// function returns the same constants, and no partial mutation
		// is left behind, so order cannot show. Two return sites (or
		// non-constant results) could disagree between orders.
		if c.returns != 1 || c.effects || len(c.assigned) != 0 {
			return false
		}
		for _, r := range s.Results {
			tv, ok := c.pass.TypesInfo.Types[r]
			if !ok || tv.Value == nil {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (c *checker) assignAllowed(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// Per-key map writes (out[k] = v) commute because each source
		// key appears exactly once, and writes to per-iteration locals
		// cannot outlive the entry; anything else (x = …, append, the
		// classic "last writer wins") does not commute.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				if obj := c.objOf(id); obj != nil && c.perIteration(obj) {
					continue
				}
				return false
			}
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			if t := c.pass.TypesInfo.TypeOf(ix.X); t == nil {
				return false
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		for _, rhs := range s.Rhs {
			if !c.pureExpr(rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (rounding depends on order — the PR-1 rank bug).
		if len(s.Lhs) != 1 || !c.isInteger(s.Lhs[0]) {
			return false
		}
		return c.pureExpr(s.Rhs[0])
	default:
		return false
	}
}

func (c *checker) isInteger(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether evaluating e is independent of iteration
// order: it reads no loop-carried assigned variable, and calls nothing
// but side-effect-free builtins and type conversions (an arbitrary
// function could observe or mutate accumulator state we cannot see).
func (c *checker) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[n]; obj != nil && c.assigned[obj] {
				pure = false
			}
		case *ast.CallExpr:
			if !c.pureCall(n) {
				pure = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				pure = false
			}
		case *ast.FuncLit:
			pure = false
		}
		return pure
	})
	return pure
}

func (c *checker) pureCall(call *ast.CallExpr) bool {
	// Type conversions are pure.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	switch b.Name() {
	case "len", "cap", "make", "min", "max", "real", "imag", "complex", "new":
		return true
	}
	return false
}

// collectThenSort recognizes the canonical fix idiom:
//
//	for k := range m { keys = append(keys, k) }
//	…
//	sort.Slice(keys, …)   // or slices.Sort*, sort.Strings, …
//
// The body must be a single self-append, and the same slice must later
// flow into a sort call within the enclosing function.
func (c *checker) collectThenSort(fn *ast.FuncDecl) bool {
	if len(c.rs.Body.List) != 1 {
		return false
	}
	as, ok := c.rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	// The destination may be a plain ident (keys) or a field path
	// (set.sorted, s.Present); it must be appended to itself.
	dstStr := types.ExprString(as.Lhs[0])
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fnID, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.pass.TypesInfo.Uses[fnID].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if types.ExprString(call.Args[0]) != dstStr {
		return false
	}

	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= c.rs.End() {
			return true
		}
		if !c.isSortCall(call) {
			return true
		}
		// The collected slice (or something wrapping it, like
		// dst[start:]) is an argument of the sort call.
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if me, ok := m.(ast.Expr); ok && types.ExprString(me) == dstStr {
					hit = true
				}
				return !hit
			})
			if hit {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognizes a sorting call: the sort and slices packages'
// entry points, or any function whose name starts with "Sort" (the
// repo's own SortNodes/SortEdges helpers).
func (c *checker) isSortCall(call *ast.CallExpr) bool {
	var obj types.Object
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj, name = c.pass.TypesInfo.Uses[fun.Sel], fun.Sel.Name
	case *ast.Ident:
		obj, name = c.pass.TypesInfo.Uses[fun], fun.Name
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort") {
		return true
	}
	if fn.Pkg() == nil {
		return false
	}
	if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
		return false
	}
	switch name {
	case "Slice", "SliceStable", "Strings", "Ints", "Float64s", "Stable":
		return true
	}
	return false
}
