// Package walltime forbids ambient nondeterminism sources — wall-clock
// reads (time.Now, time.Since, time.Until), the math/rand global
// source, and crypto/rand — inside the replay-deterministic packages.
// Replay re-executes those packages from the WAL; a value pulled from
// the environment instead of the recorded stream diverges silently on
// the second run (or on a WAL-shipping follower).
//
// Seeded generators (rand.New(rand.NewSource(seed)), rand/v2
// rand.New(rand.NewPCG(…))) are allowed: they are deterministic
// functions of their seed. Telemetry-only clock reads whose values
// never enter replayed state are suppressed in place with
// //repro:wallclock-exempt <reason>.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "walltime",
	Doc:       "forbids wall-clock and global-randomness reads in replay-deterministic packages",
	Directive: "wallclock-exempt",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicSet(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			name := obj.Name()
			switch obj.Pkg().Path() {
			case "time":
				// Any reference counts, including assigning time.Now to
				// a function value — that is how a clock usually
				// smuggles itself past review.
				if name == "Now" || name == "Since" || name == "Until" {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a replay-deterministic package; take the value from the recorded stream, or annotate //repro:wallclock-exempt <reason>", name)
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; constructors of seeded generators, and methods
				// on an explicitly seeded *rand.Rand, are fine.
				fn, isFunc := obj.(*types.Func)
				if isFunc && fn.Signature().Recv() == nil && !strings.HasPrefix(name, "New") {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the global random source in a replay-deterministic package; use a seeded rand.New(...), or annotate //repro:wallclock-exempt <reason>", obj.Pkg().Path(), name)
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand is nondeterministic by design and cannot appear in a replay-deterministic package")
			}
			return true
		})
	}
	return nil
}
