package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The annotation grammar (documented in docs/DETERMINISM.md):
//
//	//repro:<directive> <reason>
//
// written either at the end of the flagged line or on its own line
// immediately above it. The reason is mandatory — the driver reports
// reason-less and unused annotations as findings, so the committed
// tree can never carry a silent or stale suppression.
const directivePrefix = "//repro:"

// knownDirectives maps each directive to true; one per analyzer.
var knownDirectives = map[string]bool{
	"order-insensitive": true, // maporder
	"wallclock-exempt":  true, // walltime
	"vfs-exempt":        true, // vfsseam
	"retryable-exempt":  true, // retryafter
}

func directiveNames() []string {
	names := make([]string, 0, len(knownDirectives))
	for d := range knownDirectives {
		names = append(names, d)
	}
	sort.Strings(names)
	return names
}

type annot struct {
	directive string
	reason    string
	file      string
	line      int // line the comment sits on
	pos       token.Pos
	used      bool
}

type annotIndex struct {
	all []*annot
	// byLoc indexes the lines an annotation covers: its own line and
	// the next one (so an end-of-line comment covers its statement and
	// a standalone comment covers the statement below it).
	byLoc map[fileLine][]*annot
}

type fileLine struct {
	file string
	line int
}

func buildAnnotIndex(fset *token.FileSet, files []*ast.File) *annotIndex {
	idx := &annotIndex{byLoc: make(map[fileLine][]*annot)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				directive, reason, _ := strings.Cut(rest, " ")
				posn := fset.Position(c.Pos())
				a := &annot{
					directive: directive,
					reason:    strings.TrimSpace(reason),
					file:      posn.Filename,
					line:      posn.Line,
					pos:       c.Pos(),
				}
				idx.all = append(idx.all, a)
				idx.byLoc[fileLine{a.file, a.line}] = append(idx.byLoc[fileLine{a.file, a.line}], a)
				idx.byLoc[fileLine{a.file, a.line + 1}] = append(idx.byLoc[fileLine{a.file, a.line + 1}], a)
			}
		}
	}
	return idx
}

// suppress reports whether a well-formed annotation for directive
// covers posn, marking it used if so. Malformed annotations (unknown
// directive, empty reason) never suppress — they are reported instead.
func (idx *annotIndex) suppress(directive string, posn token.Position) bool {
	hit := false
	for _, a := range idx.byLoc[fileLine{posn.Filename, posn.Line}] {
		if a.directive == directive && a.reason != "" {
			a.used = true
			hit = true
		}
	}
	return hit
}
