package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/vfs"
)

// A v2 columnar segment file (ev-<seq>.col) is:
//
//	header: "EVC2" magic, version byte, first/last seq (u64), record
//	        count (u32), min/max quantum (i64) — 41 bytes, little-endian,
//	        enough to resolve segment supersession at Open without the
//	        sidecar
//	body:   CRC-framed blocks: u32 payload length, u32 CRC-32C of the
//	        payload, payload (see block.go)
//
// The zone maps live in the ev-<seq>.col.meta.json sidecar (a segMeta
// with Format 2 and a Blocks list); a missing or stale sidecar is
// rebuilt by decoding every block. Files are written tmp+fsync+rename,
// so a partial .col never becomes visible — a torn write is a swept
// *.tmp, and any CRC or count mismatch inside a visible file is
// corruption, reported rather than silently truncated.
const (
	colExt        = ".col"
	colMetaSuffix = ".col.meta.json"
	colMagic      = "EVC2"
	colVersion    = 1
	colHeaderLen  = 4 + 1 + 8 + 8 + 4 + 8 + 8
	frameHdrLen   = 8
	// maxBlockFrame bounds how large a framed block the reader will
	// buffer (far above anything the writer produces).
	maxBlockFrame = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type colHeader struct {
	firstSeq, lastSeq uint64
	count             int
	minQ, maxQ        int
}

func appendColHeader(b []byte, h colHeader) []byte {
	b = append(b, colMagic...)
	b = append(b, colVersion)
	b = binary.LittleEndian.AppendUint64(b, h.firstSeq)
	b = binary.LittleEndian.AppendUint64(b, h.lastSeq)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.count))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(h.minQ)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(h.maxQ)))
	return b
}

func parseColHeader(b []byte) (colHeader, error) {
	var h colHeader
	if len(b) < colHeaderLen || string(b[:4]) != colMagic {
		return h, fmt.Errorf("archive: not a v2 segment")
	}
	if b[4] != colVersion {
		return h, fmt.Errorf("archive: v2 segment version %d not supported", b[4])
	}
	h.firstSeq = binary.LittleEndian.Uint64(b[5:])
	h.lastSeq = binary.LittleEndian.Uint64(b[13:])
	h.count = int(binary.LittleEndian.Uint32(b[21:]))
	h.minQ = int(int64(binary.LittleEndian.Uint64(b[25:])))
	h.maxQ = int(int64(binary.LittleEndian.Uint64(b[33:])))
	return h, nil
}

// writeSegmentV2 writes recs (non-empty, ascending Seq) as a v2 segment
// at path via temp-file + fsync + rename, and returns its complete
// metadata (Format 2, zone maps, segment-level Bloom sized by bp). The
// returned meta's File field is left for the caller.
func writeSegmentV2(fsys vfs.FS, path string, recs []Record, blockEvents int, bp bloomParams) (segMeta, error) {
	if len(recs) == 0 {
		return segMeta{}, fmt.Errorf("archive: write v2 segment: no records")
	}
	if blockEvents <= 0 {
		blockEvents = defaultBlockEvents
	}
	m := segMeta{Format: 2, BloomK: bp.hashes}
	m.bf = newBloomSized(bp)
	for i := range recs {
		m.observeBounds(&recs[i])
		for _, kw := range recs[i].Keywords {
			m.bf.add(kw)
		}
		for _, kw := range recs[i].AllKeywords {
			m.bf.add(kw)
		}
	}

	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()        //nolint:errcheck // already failing
			fsys.Remove(tmp) //nolint:errcheck // best effort
		}
	}()
	hdr := appendColHeader(nil, colHeader{
		firstSeq: m.FirstSeq, lastSeq: m.LastSeq, count: m.Count,
		minQ: m.MinQuantum, maxQ: m.MaxQuantum,
	})
	if _, err := f.Write(hdr); err != nil {
		return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
	}
	off := int64(len(hdr))
	var enc blockEncoder
	var frame [frameHdrLen]byte
	for start := 0; start < len(recs); start += blockEvents {
		end := min(start+blockEvents, len(recs))
		payload, zone, err := enc.encode(recs[start:end])
		if err != nil {
			return segMeta{}, err
		}
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
		if _, err := f.Write(frame[:]); err != nil {
			return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
		}
		if _, err := f.Write(payload); err != nil {
			return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
		}
		zone.Off = off
		zone.Len = frameHdrLen + len(payload)
		off += int64(zone.Len)
		m.Blocks = append(m.Blocks, zone)
	}
	if err := f.Sync(); err != nil {
		return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
	}
	if err := f.Close(); err != nil {
		f = nil
		fsys.Remove(tmp) //nolint:errcheck // best effort
		return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
	}
	f = nil
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp) //nolint:errcheck // best effort
		return segMeta{}, fmt.Errorf("archive: write v2 segment: %w", err)
	}
	return m, nil
}

// readFrame reads and CRC-verifies the block frame z points at,
// returning the payload (aliasing *buf, which is grown as needed).
func readFrame(f io.ReaderAt, z *blockZone, buf *[]byte) ([]byte, error) {
	if z.Len < frameHdrLen+1 || z.Len > maxBlockFrame {
		return nil, fmt.Errorf("archive: block at %d: bad frame length %d: %w", z.Off, z.Len, ErrCorrupt)
	}
	*buf = grow(*buf, z.Len)
	if _, err := f.ReadAt(*buf, z.Off); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// The file ends inside a frame the zone map says exists:
			// structural damage, not a device error.
			err = fmt.Errorf("truncated frame: %w", ErrCorrupt)
		}
		return nil, fmt.Errorf("archive: block at %d: %w", z.Off, err)
	}
	ln := binary.LittleEndian.Uint32(*buf)
	crc := binary.LittleEndian.Uint32((*buf)[4:])
	payload := (*buf)[frameHdrLen:z.Len]
	if int(ln) != len(payload) || crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("archive: block at %d: frame %w", z.Off, ErrCorrupt)
	}
	return payload, nil
}

// scanColFile streams every record of a v2 segment file in order,
// sequentially (no zone maps needed — the rebuild and compaction read
// path). fn may be nil to only validate frames. zoneFn, when non-nil,
// receives each block's reconstructed zone map.
func scanColFile(fsys vfs.FS, path string, fn func(*Record) error, zoneFn func(blockZone)) (colHeader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return colHeader{}, fmt.Errorf("archive: open v2 segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return colHeader{}, fmt.Errorf("archive: stat v2 segment: %w", err)
	}
	var hdrBuf [colHeaderLen]byte
	if _, err := io.ReadFull(f, hdrBuf[:]); err != nil {
		return colHeader{}, fmt.Errorf("archive: %s: short header: %w", path, err)
	}
	hdr, err := parseColHeader(hdrBuf[:])
	if err != nil {
		return colHeader{}, fmt.Errorf("archive: %s: %w", path, err)
	}
	sc := scratchPool.Get().(*blockScratch)
	defer scratchPool.Put(sc)
	seen := 0
	var kws []string // per-block keyword accumulator for zone rebuild
	off := int64(colHeaderLen)
	for off < st.Size() {
		if st.Size()-off < frameHdrLen {
			return hdr, fmt.Errorf("archive: %s: torn frame at %d", path, off)
		}
		var fh [frameHdrLen]byte
		if _, err := f.ReadAt(fh[:], off); err != nil {
			return hdr, fmt.Errorf("archive: %s: frame at %d: %w", path, off, err)
		}
		ln := int(binary.LittleEndian.Uint32(fh[:]))
		if ln <= 0 || ln > maxBlockFrame-frameHdrLen || int64(ln) > st.Size()-off-frameHdrLen {
			return hdr, fmt.Errorf("archive: %s: bad frame length %d at %d", path, ln, off)
		}
		z := blockZone{Off: off, Len: frameHdrLen + ln}
		payload, err := readFrame(f, &z, &sc.frame)
		if err != nil {
			return hdr, err
		}
		kws = kws[:0]
		emit := func(r *Record) error {
			z.observe(r)
			seen++
			if zoneFn != nil {
				kws = append(kws, r.Keywords...)
				kws = append(kws, r.AllKeywords...)
			}
			if fn != nil {
				return fn(r)
			}
			return nil
		}
		if _, err := decodeBlock(payload, sc, emit); err != nil {
			return hdr, fmt.Errorf("archive: %s: block at %d: %w", path, off, err)
		}
		if zoneFn != nil {
			// Zone filter rebuilt from the records (the Bloom lives only in
			// the sidecar); sized by the duplicate-counting upper bound of
			// the distinct-keyword count, so it errs slightly large.
			bf := newBloomSized(blockBloomParams(len(kws)))
			for _, kw := range kws {
				bf.add(kw)
			}
			z.Bloom = bf.encode()
			z.bf = bf
			zoneFn(z)
		}
		off += int64(z.Len)
	}
	if seen != hdr.count {
		return hdr, fmt.Errorf("archive: %s: %d of %d records readable", path, seen, hdr.count)
	}
	return hdr, nil
}
