package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildBenchDir fills dir with 4096 records in 256 sealed v1 segments
// of 16 records × 16 quanta each — the same shape the query-engine
// benchmarks use, so numbers compare across layers.
func buildBenchDir(b *testing.B, dir string) {
	b.Helper()
	l, err := Open(dir, Options{SegmentEvents: 16})
	if err != nil {
		b.Fatal(err)
	}
	seq := uint64(0)
	for s := 0; s < 256; s++ {
		for i := 0; i < 16; i++ {
			seq++
			q := s*16 + i
			kws := []string{"common", fmt.Sprintf("seg-%d", s)}
			if s%64 == 0 && i == 0 {
				kws = append(kws, "rare")
			}
			if err := l.Append(rec(seq, q, q, kws...)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchLog(b *testing.B, compact bool) *Log {
	b.Helper()
	dir := b.TempDir()
	buildBenchDir(b, dir)
	opt := Options{SegmentEvents: 16}
	if compact {
		opt = Options{SegmentEvents: 512, BucketQuanta: 1 << 20}
	}
	l, err := Open(dir, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	if compact {
		if _, err := l.CompactAll(); err != nil {
			b.Fatal(err)
		}
	}
	return l
}

func scanAll(b *testing.B, l *Log, pred Pred) (records int, bs BlockStats) {
	b.Helper()
	for _, v := range l.Segments() {
		if v.MaxQuantum < pred.From || (pred.To >= 0 && v.MinQuantum > pred.To) {
			continue
		}
		st, _, err := v.ScanPred(pred, func(r *Record) error {
			records++
			_ = r.Keywords
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		st.addTo(&bs)
	}
	return records, bs
}

// BenchmarkArchiveScan is the storage-layer half of the columnar
// story: fullscan-v1 vs fullscan-v2 is the decode-speed and allocation
// comparison; zonemap-hit-v2 shows predicate pushdown reading only the
// blocks a narrow time range touches.
func BenchmarkArchiveScan(b *testing.B) {
	cases := []struct {
		name    string
		compact bool
		pred    Pred
		want    int // records the scan must hand out
	}{
		{"fullscan-v1", false, Pred{To: -1}, 4096},
		{"fullscan-v2", true, Pred{To: -1}, 4096},
		{"zonemap-hit-v2", true, Pred{From: 2048, To: 2079}, 0 /* set below */},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			l := benchLog(b, c.compact)
			b.ReportAllocs()
			b.ResetTimer()
			var records, scanned, blocks float64
			for i := 0; i < b.N; i++ {
				n, bs := scanAll(b, l, c.pred)
				if c.want > 0 && n != c.want {
					b.Fatalf("scan yielded %d records, want %d", n, c.want)
				}
				records += float64(n)
				scanned += float64(bs.Scanned)
				blocks += float64(bs.Blocks)
			}
			b.ReportMetric(records/float64(b.N), "records/op")
			if blocks > 0 {
				b.ReportMetric(blocks/float64(b.N), "blocks/op")
				b.ReportMetric(scanned/float64(b.N), "blkscanned/op")
			}
		})
	}
}

// BenchmarkArchiveFootprint reports the on-disk size of the same 4096
// events as a v1 JSONL body and as a compacted v2 columnar body
// (data + sidecars, bytes). The work loop is trivial — the metrics are
// the result.
func BenchmarkArchiveFootprint(b *testing.B) {
	size := func(l *Log) float64 {
		dir := filepath.Dir(l.colPath(1))
		var total int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				b.Fatal(err)
			}
			total += info.Size()
		}
		return float64(total)
	}
	v1 := size(benchLog(b, false))
	v2 := size(benchLog(b, true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
	b.ReportMetric(0, "ns/op")
	b.ReportMetric(v1, "v1_bytes")
	b.ReportMetric(v2, "v2_bytes")
	b.ReportMetric(v1/v2, "shrink_x")
}
