package archive

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// rec builds a record: one event alive over [born, last] with keywords.
func rec(seq uint64, born, last int, kws ...string) Record {
	return Record{
		Seq:         seq,
		ID:          seq * 10,
		State:       "ended",
		Keywords:    kws,
		AllKeywords: kws,
		Rank:        float64(seq),
		BornQuantum: born,
		LastQuantum: last,
	}
}

// TestAppendQueryRotation drives three time buckets through rotation and
// checks range queries, keyword queries, and the skip statistics that
// prove the sidecar metadata is doing its job.
func TestAppendQueryRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Segments: {1,2} quanta 0..19, {3,4} quanta 100..119, {5} active 200..209.
	for i, r := range []Record{
		rec(1, 0, 9, "earthquake", "turkey"),
		rec(2, 10, 19, "flood", "river"),
		rec(3, 100, 109, "storm", "coast"),
		rec(4, 110, 119, "election", "debate"),
		rec(5, 200, 209, "wildfire", "evacuation"),
	} {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := l.SegmentCount(); n != 3 {
		t.Fatalf("segments = %d, want 3", n)
	}
	if n := l.EventCount(); n != 5 {
		t.Fatalf("events = %d, want 5", n)
	}

	// Full range, no keyword: everything, in eviction order.
	all, stats, err := l.Query(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("full query = %d records", len(all))
	}
	for i, r := range all {
		if r.Seq != uint64(i+1) {
			t.Fatalf("order broken: %v", all)
		}
	}
	if stats.Scanned != 3 || stats.Segments != 3 {
		t.Fatalf("full query stats = %+v", stats)
	}

	// Range query hitting only the middle bucket skips the other two.
	mid, stats, err := l.Query(100, 119, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 2 || mid[0].Seq != 3 || mid[1].Seq != 4 {
		t.Fatalf("mid query = %v", mid)
	}
	if stats.SkippedByTime != 2 || stats.Scanned != 1 {
		t.Fatalf("mid query stats = %+v, want 2 time-skips", stats)
	}

	// Keyword present in one sealed segment: Bloom skips the others.
	storm, stats, err := l.Query(0, -1, "storm", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(storm) != 1 || storm[0].Seq != 3 {
		t.Fatalf("storm query = %v", storm)
	}
	if stats.SkippedByBloom != 2 || stats.Scanned != 1 {
		t.Fatalf("storm query stats = %+v, want 2 bloom-skips", stats)
	}

	// Absent keyword: every segment skipped, nothing scanned.
	none, stats, err := l.Query(0, -1, "nosuchkeyword", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 || stats.Scanned != 0 || stats.SkippedByBloom != 3 {
		t.Fatalf("absent keyword: records = %v stats = %+v", none, stats)
	}

	// Limit caps the result set.
	two, _, err := l.Query(0, -1, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("limit query = %d records", len(two))
	}
}

// TestBucketRotationByQuanta rotates on time span even when the event
// count stays under the segment cap.
func TestBucketRotationByQuanta(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentEvents: 100, BucketQuanta: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, 0, 10, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2, 40, 60, "b")); err != nil { // span 0..60 ≥ 50: rotate
		t.Fatal(err)
	}
	if err := l.Append(rec(3, 100, 110, "c")); err != nil {
		t.Fatal(err)
	}
	if n := l.SegmentCount(); n != 2 {
		t.Fatalf("segments = %d, want 2 (time-bucket rotation)", n)
	}
}

// TestReopenDedup reopens an archive and verifies replayed (duplicate)
// ordinals are dropped while fresh ones append — the WAL-replay
// idempotence contract.
func TestReopenDedup(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(rec(i, int(i)*10, int(i)*10+5, fmt.Sprintf("kw%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulates a kill. The active segment has no sidecar yet.
	l2, err := Open(dir, Options{SegmentEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq after reopen = %d, want 3", l2.LastSeq())
	}
	// Replayed evictions 1..3 are dropped; 4 is new.
	for i := uint64(1); i <= 4; i++ {
		if err := l2.Append(rec(i, int(i)*10, int(i)*10+5, fmt.Sprintf("kw%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	all, _, err := l2.Query(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("records after dedup = %d, want 4", len(all))
	}
	// An ordinal gap (records lost for good) is skipped over and
	// counted, not allowed to wedge all future archiving.
	if err := l2.Append(rec(99, 0, 1, "gap")); err != nil {
		t.Fatalf("gap append failed: %v", err)
	}
	if l2.Gaps() != 1 || l2.LastSeq() != 99 {
		t.Fatalf("gaps = %d lastSeq = %d, want 1/99", l2.Gaps(), l2.LastSeq())
	}
	if err := l2.Append(rec(100, 0, 1, "after-gap")); err != nil {
		t.Fatalf("append after gap: %v", err)
	}
}

// TestTornTailTruncated leaves a partial JSON line (crash mid-append) in
// the active segment; reopen must drop it and re-accept that ordinal.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, 0, 5, "alpha")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2, 6, 9, "beta")); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segExt))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644) //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"id":30,"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (torn record dropped)", l2.LastSeq())
	}
	if err := l2.Append(rec(3, 10, 15, "gamma")); err != nil {
		t.Fatal(err)
	}
	all, _, err := l2.Query(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2].Keywords[0] != "gamma" {
		t.Fatalf("records after torn-tail recovery = %v", all)
	}
}

// TestCorruptSealedSegmentQuarantined flips bytes mid-file in a sealed
// segment: the sidecar knows the true record count, so a query detects
// the corruption, quarantines the segment (renamed aside, dropped from
// the sealed list), and keeps serving the surviving history with the
// degraded flag set — instead of failing every query forever.
func TestCorruptSealedSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ { // 3 seal a segment, 1 stays active
		if err := l.Append(rec(i, int(i)*10, int(i)*10+5, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segExt))
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments = %v", segs)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Break the structure of the middle record (JSON tolerates stray
	// bytes inside strings, so corrupt the leading brace).
	raw[bytes.IndexByte(raw, '\n')+1] = 'X'
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
		t.Fatal(err)
	}
	recs, stats, err := l.Query(0, -1, "", 0)
	if err != nil {
		t.Fatalf("query over corrupt sealed segment: %v", err)
	}
	if !stats.Degraded || stats.Quarantined != 1 {
		t.Fatalf("stats = %+v, want degraded with 1 quarantined", stats)
	}
	// Only the active segment's record survives.
	if len(recs) != 1 || recs[0].Seq != 4 {
		t.Fatalf("degraded results = %+v, want just seq 4", recs)
	}
	if got := l.QuarantinedSegments(); got != 1 {
		t.Fatalf("QuarantinedSegments = %d, want 1", got)
	}
	// The damaged files are renamed aside, not deleted.
	if _, err := os.Stat(segs[0] + quarantineSuffix); err != nil {
		t.Fatalf("quarantined data file: %v", err)
	}
	if _, err := os.Stat(segs[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt data file still at its serving path")
	}
	// Later queries serve cleanly — the damage is out of the list.
	recs, stats, err = l.Query(0, -1, "", 0)
	if err != nil || stats.Degraded || len(recs) != 1 {
		t.Fatalf("post-quarantine query = %+v, %+v, %v", recs, stats, err)
	}
	// And a reopen does not resurrect the quarantined segment.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _, err = l2.Query(0, -1, "", 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("query after reopen = %+v, %v", recs, err)
	}
}

// TestBloomNoFalseNegatives is the Bloom correctness property the
// skipping depends on: an added keyword is always reported present.
func TestBloomNoFalseNegatives(t *testing.T) {
	bf := newBloom()
	for i := 0; i < 1000; i++ {
		bf.add(fmt.Sprintf("keyword-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !bf.mayContain(fmt.Sprintf("keyword-%d", i)) {
			t.Fatalf("false negative for keyword-%d", i)
		}
	}
	// And at this load the false-positive rate stays usable.
	fp := 0
	for i := 0; i < 1000; i++ {
		if bf.mayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if fp > 200 {
		t.Fatalf("false positives = %d/1000, filter useless", fp)
	}
}
