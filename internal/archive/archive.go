// Package archive is the queryable history of finished events. The
// serving layer's retention policy evicts finished events from detector
// memory (detect.TrimFinished); instead of losing them, an eviction hook
// appends each one here, to time-bucketed JSONL segment files with
// per-segment sidecar metadata — min/max quantum plus a keyword Bloom
// filter — so time-range and keyword queries skip segments that cannot
// match and scan only the rest (the data-skipping idea of
// provenance-pruned scans, applied to event history).
//
// Layout of one tenant's archive directory:
//
//	ev-00000000000000000001.jsonl      records 1..k, one JSON line each
//	ev-00000000000000000001.meta.json  sidecar: seq/quantum ranges, Bloom
//	ev-00000000000000000314.jsonl      active segment (sidecar on rotate)
//
// Records carry a 1-based eviction ordinal (Seq) matching the
// detector's cumulative trim counter, which makes appends idempotent
// across WAL replays: a replayed eviction whose ordinal is already on
// disk is dropped by the writer.
package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	segPrefix = "ev-"
	segExt    = ".jsonl"
	metaExt   = ".meta.json"
)

// Record is one archived event, the JSON line shape. Quanta double as
// the archive's time axis (the detector's clock).
type Record struct {
	// Seq is the 1-based eviction ordinal (detect's trim counter).
	Seq           uint64   `json:"seq"`
	ID            uint64   `json:"id"`
	State         string   `json:"state"`
	Keywords      []string `json:"keywords"`
	AllKeywords   []string `json:"all_keywords,omitempty"`
	Rank          float64  `json:"rank"`
	PeakRank      float64  `json:"peak_rank"`
	BornQuantum   int      `json:"born_quantum"`
	LastQuantum   int      `json:"last_quantum"`
	Evolved       bool     `json:"evolved"`
	Size          int      `json:"size"`
	Support       int      `json:"support"`
	Reported      bool     `json:"reported"`
	FirstReported int      `json:"first_reported,omitempty"`
	MergedInto    uint64   `json:"merged_into,omitempty"`
	SplitFrom     uint64   `json:"split_from,omitempty"`
	Spurious      bool     `json:"spurious"`
}

// segMeta is the sidecar: enough to decide, without opening the data
// file, whether a query's time range or keyword can possibly match.
// File is the seq the data file is named by — normally equal to
// FirstSeq, but an eviction-ordinal gap (records lost to a crash) can
// land a first record whose Seq differs from the name of the already-
// created file, so the two are tracked separately.
type segMeta struct {
	File       uint64 `json:"file"` // data file name seq
	FirstSeq   uint64 `json:"first_seq"`
	LastSeq    uint64 `json:"last_seq"`
	Count      int    `json:"count"`
	MinQuantum int    `json:"min_quantum"`
	MaxQuantum int    `json:"max_quantum"`
	Bloom      string `json:"bloom"` // base64 keyword Bloom filter

	bf bloom // decoded lazily
}

func (m *segMeta) observe(rec Record) {
	if m.Count == 0 {
		m.FirstSeq, m.MinQuantum, m.MaxQuantum = rec.Seq, rec.BornQuantum, rec.LastQuantum
	}
	m.LastSeq = rec.Seq
	m.Count++
	if rec.BornQuantum < m.MinQuantum {
		m.MinQuantum = rec.BornQuantum
	}
	if rec.LastQuantum > m.MaxQuantum {
		m.MaxQuantum = rec.LastQuantum
	}
	if m.bf == nil {
		m.bf = newBloom()
	}
	for _, kw := range rec.Keywords {
		m.bf.add(kw)
	}
	for _, kw := range rec.AllKeywords {
		m.bf.add(kw)
	}
}

// Options tune one Log.
type Options struct {
	// SegmentEvents rotates the active segment after this many records.
	// Zero selects 512.
	SegmentEvents int
	// BucketQuanta rotates the active segment once it spans more than
	// this many quanta (max observed LastQuantum − min BornQuantum) — the
	// time bucketing that keeps a segment's [min,max] window tight enough
	// for range skipping to bite. Zero selects 1024.
	BucketQuanta int
}

func (o Options) withDefaults() Options {
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = 512
	}
	if o.BucketQuanta <= 0 {
		o.BucketQuanta = 1024
	}
	return o
}

// Log is one tenant's event archive. Safe for concurrent use: Query
// snapshots the segment metadata under the internal lock, then scans
// the (append-only) data files without holding it, so a long history
// scan never blocks the ingest path that appends evictions.
type Log struct {
	dir string
	opt Options

	mu     sync.Mutex
	sealed []segMeta // rotated segments, ascending FirstSeq
	active *segMeta  // nil when no active segment
	f      *os.File  // active segment data file
	w      *bufio.Writer
	seq    uint64 // last appended ordinal
	gaps   uint64 // ordinal gaps observed (records lost before a crash)
}

// Open opens (creating if needed) an archive directory. Sealed segments
// are described by their sidecars; a segment missing its sidecar (crash
// between data write and rotation) is scanned once and the sidecar
// rewritten. The newest segment resumes as the active one.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt}
	// Sweep sidecar temp files a crash between write and rename left.
	if orphans, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, o := range orphans {
			os.Remove(o) //nolint:errcheck // best effort
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: list %s: %w", dir, err)
	}
	var starts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segExt) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segExt), 10, 64)
		if err == nil {
			starts = append(starts, n)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, start := range starts {
		var meta segMeta
		if i == len(starts)-1 {
			// Resume the newest segment as active so a restart keeps
			// filling the same bucket instead of fragmenting. Its sidecar
			// (if any) predates appends made after the last rotation, so
			// rebuild from the data file, truncating any torn tail a
			// crash left so new appends never land after garbage.
			meta, err = l.resumeActive(start)
			if err != nil {
				return nil, err
			}
		} else {
			meta, err = l.loadOrRebuildMeta(start)
			if err != nil {
				return nil, err
			}
			l.sealed = append(l.sealed, meta)
		}
		if meta.LastSeq > l.seq {
			l.seq = meta.LastSeq
		}
	}
	return l, nil
}

// resumeActive rebuilds the newest segment's metadata byte-exactly and
// reopens it for appending. A final line without a terminating newline
// is treated as torn even if it parses — the conservative choice; at
// worst one record is dropped and the WAL replay re-archives it.
func (l *Log) resumeActive(start uint64) (segMeta, error) {
	path := l.segPath(start)
	data, err := os.ReadFile(path)
	if err != nil {
		return segMeta{}, fmt.Errorf("archive: resume segment: %w", err)
	}
	var m segMeta
	var valid int
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // unterminated tail: torn
		}
		line := data[valid : valid+nl]
		if len(line) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			m.observe(rec)
		}
		valid += nl + 1
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return segMeta{}, fmt.Errorf("archive: truncate torn tail: %w", err)
		}
	}
	m.File = start
	if m.Count == 0 {
		m.FirstSeq = start
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return segMeta{}, fmt.Errorf("archive: reopen active segment: %w", err)
	}
	l.f, l.w, l.active = f, bufio.NewWriter(f), &m
	return m, nil
}

// loadOrRebuildMeta reads a segment's sidecar, or scans the data file
// and rewrites the sidecar when it is missing or unreadable.
func (l *Log) loadOrRebuildMeta(start uint64) (segMeta, error) {
	raw, err := os.ReadFile(l.metaPath(start))
	if err == nil {
		var m segMeta
		if jerr := json.Unmarshal(raw, &m); jerr == nil && m.Count > 0 {
			m.File = start // authoritative: the sidecar sits next to the file
			m.bf = decodeBloom(m.Bloom)
			return m, nil
		}
	}
	var m segMeta
	if _, err := l.scanSegment(start, func(rec Record) error {
		m.observe(rec)
		return nil
	}); err != nil {
		return segMeta{}, err
	}
	m.File = start
	if m.Count == 0 {
		m.FirstSeq = start
	}
	if err := l.writeMeta(&m, start); err != nil {
		return segMeta{}, err
	}
	return m, nil
}

// Append archives one record. Records whose Seq is at or below the
// highest ordinal on disk are dropped (replayed evictions already
// archived). An ordinal gap — records lost to a crash whose evictions
// the WAL snapshot already covers, so replay will never regenerate
// them — is counted (Gaps) and skipped over: those records are gone
// either way, and refusing all future appends would turn a small hole
// into total history loss.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Seq <= l.seq {
		return nil // WAL replay re-evicted an event already archived
	}
	if rec.Seq != l.seq+1 {
		l.gaps++
	}
	if l.f == nil {
		if err := l.startSegment(rec.Seq); err != nil {
			return err
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("archive: encode record %d: %w", rec.Seq, err)
	}
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	l.active.observe(rec)
	l.seq = rec.Seq
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if l.active.Count >= l.opt.SegmentEvents ||
		l.active.MaxQuantum-l.active.MinQuantum >= l.opt.BucketQuanta {
		return l.rotateLocked()
	}
	return nil
}

func (l *Log) startSegment(firstSeq uint64) error {
	f, err := os.OpenFile(l.segPath(firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("archive: new segment: %w", err)
	}
	l.f, l.w = f, bufio.NewWriter(f)
	l.active = &segMeta{File: firstSeq}
	return nil
}

// rotateLocked seals the active segment: flush, sync, write its
// sidecar. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.writeMeta(l.active, l.active.File); err != nil {
		return err
	}
	l.sealed = append(l.sealed, *l.active)
	l.f, l.w, l.active = nil, nil, nil
	return nil
}

func (l *Log) writeMeta(m *segMeta, start uint64) error {
	if m.bf != nil {
		m.Bloom = m.bf.encode()
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: encode sidecar: %w", err)
	}
	tmp := l.metaPath(start) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("archive: write sidecar: %w", err)
	}
	if err := os.Rename(tmp, l.metaPath(start)); err != nil {
		return fmt.Errorf("archive: write sidecar: %w", err)
	}
	return nil
}

// LastSeq returns the highest eviction ordinal on disk.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Gaps returns how many ordinal gaps Append has skipped over — each
// one marks records that were evicted but never made it to disk.
func (l *Log) Gaps() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gaps
}

// SegmentCount returns the number of data segments (sealed + active).
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.sealed)
	if l.active != nil {
		n++
	}
	return n
}

// EventCount returns the number of archived events.
func (l *Log) EventCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.sealed {
		n += l.sealed[i].Count
	}
	if l.active != nil {
		n += l.active.Count
	}
	return n
}

// Close seals the active segment (so its sidecar exists for the next
// process) without starting a new one.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked()
}

// QueryStats reports how much data a query skipped — the observable
// effect of the sidecar metadata. Truncated marks a limit-stopped scan:
// the counts describe only the work done before the limit hit, and
// segments (or tail records) that were never considered are NOT in the
// skip counters — partial stats, flagged rather than silently wrong.
type QueryStats struct {
	Segments       int  `json:"segments"`         // total segments considered
	Scanned        int  `json:"scanned"`          // segments actually read
	SkippedByTime  int  `json:"skipped_by_time"`  // pruned on quantum range
	SkippedByBloom int  `json:"skipped_by_bloom"` // pruned on keyword Bloom
	Truncated      bool `json:"truncated"`        // scan stopped at the limit; stats partial
}

// ErrStop, returned by a SegmentView.Scan callback, stops the scan
// early without error — the LIMIT-pushdown signal.
var ErrStop = fmt.Errorf("archive: stop scan")

// SegmentView is a point-in-time handle on one segment: the sidecar
// bounds for planning (time-range and Bloom data skipping) plus a
// record iterator. Views are snapshots — records appended to the
// active segment after Segments() returned are not visible through
// them, and a view stays readable after the segment it describes
// rotates (data files are append-only and never renamed).
type SegmentView struct {
	// FirstSeq/LastSeq bound the eviction ordinals in the segment.
	FirstSeq uint64
	LastSeq  uint64
	// Count is the number of records the view covers.
	Count int
	// MinQuantum is the smallest BornQuantum of any covered record;
	// MaxQuantum the largest LastQuantum. Every record's sort span
	// falls inside [MinQuantum, MaxQuantum].
	MinQuantum int
	MaxQuantum int
	// Sealed marks a rotated (immutable, count-exact) segment.
	Sealed bool

	file uint64
	bf   bloom
	l    *Log
}

// MayContain reports whether the segment's keyword Bloom filter admits
// kw (false positives possible, false negatives not). A view with no
// filter admits everything.
func (v *SegmentView) MayContain(kw string) bool {
	if len(v.bf) == 0 {
		return true
	}
	return v.bf.mayContain(kw)
}

// Scan streams the view's records to fn in eviction order. fn returning
// ErrStop ends the scan early (stopped=true, err=nil); any other error
// aborts and is returned. seen counts records handed to fn. On a sealed
// view a complete scan that read fewer records than the sidecar count
// means mid-file corruption and is reported as an error: silently
// truncating history would be worse than failing the query. An active
// view stops after Count records so concurrent appends never leak past
// the point-in-time the view was taken.
func (v *SegmentView) Scan(fn func(Record) error) (seen int, stopped bool, err error) {
	capped := false // hit the view's point-in-time record cap, not a caller stop
	_, serr := v.l.scanSegment(v.file, func(rec Record) error {
		// The cap applies only to active views (appends may have landed
		// after the view was taken); a sealed file holding more records
		// than its sidecar is corruption, which the count check below
		// must see rather than have silently truncated away.
		if !v.Sealed && seen >= v.Count {
			capped = true
			return ErrStop
		}
		seen++
		return fn(rec)
	})
	switch {
	case serr == ErrStop && !capped:
		return seen, true, nil
	case serr != nil && serr != ErrStop:
		return seen, false, serr
	}
	if v.Sealed && seen != v.Count {
		return seen, false, fmt.Errorf("archive: segment %d corrupt: %d of %d records readable",
			v.file, seen, v.Count)
	}
	return seen, false, nil
}

// Segments snapshots the archive's segment metadata (sealed + active)
// in ascending-FirstSeq order. The metadata is copied under the lock
// and the data files (append-only) are read without it, so planning and
// scanning never block concurrent appends.
func (l *Log) Segments() []SegmentView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := make([]SegmentView, 0, len(l.sealed)+1)
	for i := range l.sealed {
		m := &l.sealed[i]
		if m.bf == nil {
			m.bf = decodeBloom(m.Bloom) // immutable once sealed: safe to share
		}
		views = append(views, SegmentView{
			FirstSeq:   m.FirstSeq,
			LastSeq:    m.LastSeq,
			Count:      m.Count,
			MinQuantum: m.MinQuantum,
			MaxQuantum: m.MaxQuantum,
			Sealed:     true,
			file:       m.File,
			bf:         m.bf,
			l:          l,
		})
	}
	if l.active != nil && l.active.Count > 0 {
		// The active filter keeps mutating under appends; copy it.
		views = append(views, SegmentView{
			FirstSeq:   l.active.FirstSeq,
			LastSeq:    l.active.LastSeq,
			Count:      l.active.Count,
			MinQuantum: l.active.MinQuantum,
			MaxQuantum: l.active.MaxQuantum,
			file:       l.active.File,
			bf:         append(bloom(nil), l.active.bf...),
			l:          l,
		})
	}
	return views
}

// Query returns archived events whose [BornQuantum, LastQuantum] span
// intersects [from, to] (to < 0 means unbounded) and, when keyword is
// non-empty, whose keyword sets contain it (matched against AllKeywords
// when present, else Keywords). Results are in eviction order; limit > 0
// caps them (stats.Truncated then marks the partial scan); a negative
// limit is an error — it is always a caller bug, and treating it as
// "unlimited" silently turned bad input into a full history scan.
// Records in the active segment are visible immediately. Implemented on
// the SegmentView iterator, the same scan the unified query engine
// uses, so a long history scan never blocks concurrent appends.
func (l *Log) Query(from, to int, keyword string, limit int) ([]Record, QueryStats, error) {
	var stats QueryStats
	if limit < 0 {
		return nil, stats, fmt.Errorf("archive: negative limit %d", limit)
	}
	if to < 0 {
		to = int(^uint(0) >> 1) // MaxInt
	}
	views := l.Segments()
	out := []Record{}
	stats.Segments = len(views)
	for i := range views {
		v := &views[i]
		if limit > 0 && len(out) >= limit {
			stats.Truncated = true
			break
		}
		if v.MaxQuantum < from || v.MinQuantum > to {
			stats.SkippedByTime++
			continue
		}
		if keyword != "" && !v.MayContain(keyword) {
			stats.SkippedByBloom++
			continue
		}
		stats.Scanned++
		_, stopped, err := v.Scan(func(rec Record) error {
			if limit > 0 && len(out) >= limit {
				return ErrStop
			}
			if rec.LastQuantum < from || rec.BornQuantum > to {
				return nil
			}
			if keyword != "" && !recordHasKeyword(rec, keyword) {
				return nil
			}
			out = append(out, rec)
			return nil
		})
		if err != nil {
			return nil, stats, err
		}
		if stopped {
			stats.Truncated = true
		}
	}
	return out, stats, nil
}

func recordHasKeyword(rec Record, kw string) bool {
	set := rec.AllKeywords
	if len(set) == 0 {
		set = rec.Keywords
	}
	for _, k := range set {
		if k == kw {
			return true
		}
	}
	return false
}

// scanSegment streams a segment's records to fn, returning the byte
// offset through the last intact record. A torn trailing line (the
// crash-mid-append signature) stops the scan there; the active-resume
// path truncates the file to the returned offset so new appends never
// land after garbage.
func (l *Log) scanSegment(start uint64, fn func(Record) error) (int64, error) {
	f, err := os.Open(l.segPath(start))
	if err != nil {
		return 0, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var valid int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			valid++ // just the newline
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return valid, nil
		}
		if err := fn(rec); err != nil {
			return valid, err
		}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return valid, fmt.Errorf("archive: scan segment %d: %w", start, err)
	}
	return valid, nil
}

func (l *Log) segPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segExt))
}

func (l *Log) metaPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, metaExt))
}
