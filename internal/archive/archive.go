// Package archive is the queryable history of finished events. The
// serving layer's retention policy evicts finished events from detector
// memory (detect.TrimFinished); instead of losing them, an eviction hook
// appends each one here, to time-bucketed JSONL segment files with
// per-segment sidecar metadata — min/max quantum plus a keyword Bloom
// filter — so time-range and keyword queries skip segments that cannot
// match and scan only the rest (the data-skipping idea of
// provenance-pruned scans, applied to event history).
//
// Layout of one tenant's archive directory:
//
//	ev-00000000000000000001.jsonl      records 1..k, one JSON line each
//	ev-00000000000000000001.meta.json  sidecar: seq/quantum ranges, Bloom
//	ev-00000000000000000314.jsonl      active segment (sidecar on rotate)
//
// Records carry a 1-based eviction ordinal (Seq) matching the
// detector's cumulative trim counter, which makes appends idempotent
// across WAL replays: a replayed eviction whose ordinal is already on
// disk is dropped by the writer.
package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/vfs"
)

const (
	segPrefix = "ev-"
	segExt    = ".jsonl"
	metaExt   = ".meta.json"
)

// Record is one archived event, the JSON line shape. Quanta double as
// the archive's time axis (the detector's clock).
type Record struct {
	// Seq is the 1-based eviction ordinal (detect's trim counter).
	Seq           uint64   `json:"seq"`
	ID            uint64   `json:"id"`
	State         string   `json:"state"`
	Keywords      []string `json:"keywords"`
	AllKeywords   []string `json:"all_keywords,omitempty"`
	Rank          float64  `json:"rank"`
	PeakRank      float64  `json:"peak_rank"`
	BornQuantum   int      `json:"born_quantum"`
	LastQuantum   int      `json:"last_quantum"`
	Evolved       bool     `json:"evolved"`
	Size          int      `json:"size"`
	Support       int      `json:"support"`
	Reported      bool     `json:"reported"`
	FirstReported int      `json:"first_reported,omitempty"`
	MergedInto    uint64   `json:"merged_into,omitempty"`
	SplitFrom     uint64   `json:"split_from,omitempty"`
	Spurious      bool     `json:"spurious"`
}

// segMeta is the sidecar: enough to decide, without opening the data
// file, whether a query's time range or keyword can possibly match.
// File is the seq the data file is named by — normally equal to
// FirstSeq, but an eviction-ordinal gap (records lost to a crash) can
// land a first record whose Seq differs from the name of the already-
// created file, so the two are tracked separately.
//
// Format 0 (absent) is a v1 JSONL segment; Format 2 a v2 columnar
// segment, whose sidecar additionally carries the per-block zone maps
// (Blocks) and lives at ev-<seq>.col.meta.json so the two formats'
// sidecars never collide during a compaction crash window.
type segMeta struct {
	File       uint64 `json:"file"` // data file name seq
	FirstSeq   uint64 `json:"first_seq"`
	LastSeq    uint64 `json:"last_seq"`
	Count      int    `json:"count"`
	MinQuantum int    `json:"min_quantum"`
	MaxQuantum int    `json:"max_quantum"`
	Bloom      string `json:"bloom"` // base64 keyword Bloom filter

	// Format is the data file format (0 = v1 JSONL, 2 = v2 columnar).
	Format int `json:"format,omitempty"`
	// BloomK is the filter's hash count; 0 means the legacy 4 (sidecars
	// written before the filter became configurable).
	BloomK int `json:"bloom_k,omitempty"`
	// MaxPeakRank bounds PeakRank across the segment's records, for
	// rank-floor skipping. Absent (0) in pre-v2 sidecars, so readers
	// treat 0 as "unknown", which is always safe.
	MaxPeakRank float64 `json:"max_peak_rank,omitempty"`
	// Blocks are the v2 per-block zone maps, in file order.
	Blocks []blockZone `json:"blocks,omitempty"`

	bf bloom // decoded lazily
}

// observeBounds folds one record into the seq/quantum/rank bounds.
func (m *segMeta) observeBounds(rec *Record) {
	if m.Count == 0 {
		m.FirstSeq, m.MinQuantum, m.MaxQuantum = rec.Seq, rec.BornQuantum, rec.LastQuantum
	}
	m.LastSeq = rec.Seq
	m.Count++
	if rec.BornQuantum < m.MinQuantum {
		m.MinQuantum = rec.BornQuantum
	}
	if rec.LastQuantum > m.MaxQuantum {
		m.MaxQuantum = rec.LastQuantum
	}
	if rec.PeakRank > m.MaxPeakRank {
		m.MaxPeakRank = rec.PeakRank
	}
}

// observe folds one record into the bounds and the keyword filter,
// creating the filter with sizing bp on first use.
func (m *segMeta) observe(rec Record, bp bloomParams) {
	m.observeBounds(&rec)
	if m.bf.empty() {
		m.bf = newBloomSized(bp)
		m.BloomK = bp.hashes
	}
	for _, kw := range rec.Keywords {
		m.bf.add(kw)
	}
	for _, kw := range rec.AllKeywords {
		m.bf.add(kw)
	}
}

// Options tune one Log.
type Options struct {
	// SegmentEvents rotates the active segment after this many records.
	// Zero selects 512.
	SegmentEvents int
	// BucketQuanta rotates the active segment once it spans more than
	// this many quanta (max observed LastQuantum − min BornQuantum) — the
	// time bucketing that keeps a segment's [min,max] window tight enough
	// for range skipping to bite. Zero selects 1024.
	BucketQuanta int
	// BlockEvents caps records per block when the compactor rewrites a
	// segment into the v2 columnar format — the granularity at which
	// zone maps skip and scans decode. Zero selects 256.
	BlockEvents int
	// BloomBitsPerKey sizes new segments' keyword Bloom filters as
	// bits-per-key × SegmentEvents (hash count at the ln2·bits/key
	// optimum). Zero selects the legacy fixed 8192-bit/4-hash filter.
	// Existing sidecars keep the shape they were written with.
	BloomBitsPerKey int
	// FS overrides the filesystem behind every file operation — the
	// fault-injection seam for tests. Nil selects the real one.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = 512
	}
	if o.BucketQuanta <= 0 {
		o.BucketQuanta = 1024
	}
	if o.BlockEvents <= 0 {
		o.BlockEvents = defaultBlockEvents
	}
	o.FS = vfs.Default(o.FS)
	return o
}

// Log is one tenant's event archive. Safe for concurrent use: Query
// snapshots the segment metadata under the internal lock, then scans
// the (append-only) data files without holding it, so a long history
// scan never blocks the ingest path that appends evictions.
type Log struct {
	dir      string
	opt      Options
	fs       vfs.FS
	bloomPar bloomParams // sizing for new segment-level filters

	mu     sync.Mutex
	sealed []segMeta // rotated segments, ascending FirstSeq
	active *segMeta  // nil when no active segment
	f      vfs.File  // active segment data file
	w      *bufio.Writer
	seq    uint64 // last appended ordinal
	gaps   uint64 // ordinal gaps observed (records lost before a crash)
	// quarantined counts sealed segments renamed aside after a scan hit
	// corruption — history the service keeps serving around.
	quarantined uint64

	// Compaction bookkeeping: compactMu serializes compactor steps (the
	// sealed-list splice assumes one compactor); the counters (guarded by
	// mu) feed the service metrics.
	compactMu        sync.Mutex
	compactions      uint64
	segsCompacted    uint64
	bytesReclaimed   uint64
	recordsCompacted uint64
}

// Open opens (creating if needed) an archive directory. Sealed segments
// are described by their sidecars; a segment missing its sidecar (crash
// between data write and rotation, or between compaction commit and
// sidecar write) is scanned once and the sidecar rewritten. The newest
// JSONL segment resumes as the active one. Any segment whose ordinal
// range is covered by another segment is a leftover from a compaction
// the process crashed out of after the commit rename — it is deleted
// here, which is what makes kill -9 at any point of a compaction
// converge to exactly-once records.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, fs: opt.FS, bloomPar: bloomSizing(opt.BloomBitsPerKey, opt.SegmentEvents)}
	// Sweep temp files a crash between write and rename left.
	if orphans, err := l.fs.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, o := range orphans {
			l.fs.Remove(o) //nolint:errcheck // best effort
		}
	}
	entries, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: list %s: %w", dir, err)
	}
	var v1Starts, v2Starts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		var ext string
		switch {
		case strings.HasSuffix(name, segExt):
			ext = segExt
		case strings.HasSuffix(name, colExt):
			ext = colExt
		default:
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ext), 10, 64)
		if err != nil {
			continue
		}
		if ext == segExt {
			v1Starts = append(v1Starts, n)
		} else {
			v2Starts = append(v2Starts, n)
		}
	}
	sort.Slice(v1Starts, func(i, j int) bool { return v1Starts[i] < v1Starts[j] })
	sort.Slice(v2Starts, func(i, j int) bool { return v2Starts[i] < v2Starts[j] })

	var metas []segMeta
	for _, start := range v2Starts {
		m, err := l.loadOrRebuildColMeta(start)
		if err != nil {
			return nil, err
		}
		metas = append(metas, m)
	}
	for i, start := range v1Starts {
		if i == len(v1Starts)-1 {
			continue // active candidate, handled below
		}
		m, err := l.loadOrRebuildMeta(start)
		if err != nil {
			return nil, err
		}
		metas = append(metas, m)
	}
	if len(v1Starts) > 0 {
		// Resume the newest JSONL segment as active so a restart keeps
		// filling the same bucket instead of fragmenting. Its sidecar
		// (if any) predates appends made after the last rotation, so
		// rebuild from the data file, truncating any torn tail a crash
		// left so new appends never land after garbage. If a v2 segment
		// covers it (sealed, compacted, then crashed before cleanup) it
		// is superseded like any other — drop it instead of resuming.
		start := v1Starts[len(v1Starts)-1]
		m, err := l.resumeActive(start)
		if err != nil {
			return nil, err
		}
		if supersededBy(m, metas) >= 0 {
			l.f.Close() //nolint:errcheck // dropping the file anyway
			l.f, l.w, l.active = nil, nil, nil
			l.removeSegmentFiles(m)
		} else {
			metas = append(metas, m)
		}
	}

	// Resolve supersession among the remaining segments, then keep the
	// survivors as the sealed list (minus the resumed active).
	dead := make([]bool, len(metas))
	for i := range metas {
		dead[i] = supersededBy(metas[i], metas) >= 0
	}
	for i := range metas {
		m := metas[i]
		if dead[i] {
			l.removeSegmentFiles(m)
			continue
		}
		if l.active == nil || m.File != l.active.File || m.Format != l.active.Format {
			l.sealed = append(l.sealed, m)
		}
		if m.LastSeq > l.seq {
			l.seq = m.LastSeq
		}
	}
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].FirstSeq < l.sealed[j].FirstSeq })
	l.sweepOrphanSidecars(entries)
	return l, nil
}

// supersededBy returns the index of a segment in metas whose ordinal
// range covers m's (making m a compaction leftover), or -1. On an exact
// range tie the columnar segment wins — the compactor rewrites a JSONL
// segment to a same-range .col file, and both survive a crash between
// the commit rename and the JSONL deletion.
func supersededBy(m segMeta, metas []segMeta) int {
	if m.Count == 0 {
		return -1
	}
	for i := range metas {
		o := &metas[i]
		if o.Count == 0 || (o.File == m.File && o.Format == m.Format) {
			continue
		}
		if o.FirstSeq > m.FirstSeq || o.LastSeq < m.LastSeq {
			continue
		}
		if o.FirstSeq == m.FirstSeq && o.LastSeq == m.LastSeq {
			if o.Format == 2 && m.Format != 2 {
				return i
			}
			continue
		}
		return i
	}
	return -1
}

// removeSegmentFiles deletes a segment's data file and sidecar.
func (l *Log) removeSegmentFiles(m segMeta) {
	if m.Format == 2 {
		l.fs.Remove(l.colPath(m.File))     //nolint:errcheck // best effort
		l.fs.Remove(l.colMetaPath(m.File)) //nolint:errcheck // best effort
		return
	}
	l.fs.Remove(l.segPath(m.File))  //nolint:errcheck // best effort
	l.fs.Remove(l.metaPath(m.File)) //nolint:errcheck // best effort
}

// sweepOrphanSidecars removes sidecars whose data file is gone — the
// one file a crash between a compaction's data-file deletion and
// sidecar deletion can leave behind.
func (l *Log) sweepOrphanSidecars(entries []os.DirEntry) {
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		var data string
		switch {
		case strings.HasSuffix(name, colMetaSuffix):
			data = strings.TrimSuffix(name, colMetaSuffix) + colExt
		case strings.HasSuffix(name, metaExt):
			data = strings.TrimSuffix(name, metaExt) + segExt
		default:
			continue
		}
		if _, err := l.fs.Stat(filepath.Join(l.dir, data)); os.IsNotExist(err) {
			l.fs.Remove(filepath.Join(l.dir, name)) //nolint:errcheck // best effort
		}
	}
}

// resumeActive rebuilds the newest segment's metadata byte-exactly and
// reopens it for appending. A final line without a terminating newline
// is treated as torn even if it parses — the conservative choice; at
// worst one record is dropped and the WAL replay re-archives it.
func (l *Log) resumeActive(start uint64) (segMeta, error) {
	path := l.segPath(start)
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return segMeta{}, fmt.Errorf("archive: resume segment: %w", err)
	}
	var m segMeta
	var valid int
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // unterminated tail: torn
		}
		line := data[valid : valid+nl]
		if len(line) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			m.observe(rec, l.bloomPar)
		}
		valid += nl + 1
	}
	if valid < len(data) {
		if err := l.fs.Truncate(path, int64(valid)); err != nil {
			return segMeta{}, fmt.Errorf("archive: truncate torn tail: %w", err)
		}
	}
	m.File = start
	if m.Count == 0 {
		m.FirstSeq = start
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return segMeta{}, fmt.Errorf("archive: reopen active segment: %w", err)
	}
	l.f, l.w, l.active = f, bufio.NewWriter(f), &m
	return m, nil
}

// loadOrRebuildMeta reads a v1 segment's sidecar, or scans the data
// file and rewrites the sidecar when it is missing or unreadable.
func (l *Log) loadOrRebuildMeta(start uint64) (segMeta, error) {
	raw, err := l.fs.ReadFile(l.metaPath(start))
	if err == nil {
		var m segMeta
		if jerr := json.Unmarshal(raw, &m); jerr == nil && m.Count > 0 && m.Format == 0 {
			m.File = start // authoritative: the sidecar sits next to the file
			m.Blocks = nil // zone maps never describe a JSONL body
			m.bf = decodeBloom(m.Bloom, m.BloomK)
			return m, nil
		}
	}
	var m segMeta
	if _, err := l.scanSegment(start, func(rec Record) error {
		m.observe(rec, l.bloomPar)
		return nil
	}); err != nil {
		return segMeta{}, err
	}
	m.File = start
	if m.Count == 0 {
		m.FirstSeq = start
	}
	if err := l.writeMeta(&m, start); err != nil {
		return segMeta{}, err
	}
	return m, nil
}

// loadOrRebuildColMeta reads a v2 segment's sidecar, or decodes every
// block of the data file to rebuild the zone maps when the sidecar is
// missing, unreadable, describes the wrong format, or disagrees with
// the data file's header — that last one is the crash window where a
// re-compaction renamed a new data file over this path but died before
// rewriting the sidecar, leaving zone maps that describe the old bytes.
func (l *Log) loadOrRebuildColMeta(start uint64) (segMeta, error) {
	raw, err := l.fs.ReadFile(l.colMetaPath(start))
	if err == nil {
		var m segMeta
		if jerr := json.Unmarshal(raw, &m); jerr == nil && m.Count > 0 && m.Format == 2 && len(m.Blocks) > 0 &&
			l.colHeaderMatches(start, &m) {
			m.File = start
			m.bf = decodeBloom(m.Bloom, m.BloomK)
			for i := range m.Blocks {
				m.Blocks[i].bf = decodeBloom(m.Blocks[i].Bloom, blockBloomHashes)
			}
			return m, nil
		}
	}
	m := segMeta{Format: 2, BloomK: l.bloomPar.hashes}
	m.bf = newBloomSized(l.bloomPar)
	_, err = scanColFile(l.fs, l.colPath(start), func(rec *Record) error {
		m.observeBounds(rec)
		for _, kw := range rec.Keywords {
			m.bf.add(kw)
		}
		for _, kw := range rec.AllKeywords {
			m.bf.add(kw)
		}
		return nil
	}, func(z blockZone) {
		m.Blocks = append(m.Blocks, z)
	})
	if err != nil {
		return segMeta{}, err
	}
	m.File = start
	if err := l.writeMeta(&m, start); err != nil {
		return segMeta{}, err
	}
	return m, nil
}

// colHeaderMatches reports whether a v2 sidecar agrees with its data
// file's fixed header on the ordinal range and count.
func (l *Log) colHeaderMatches(start uint64, m *segMeta) bool {
	f, err := l.fs.Open(l.colPath(start))
	if err != nil {
		return false
	}
	defer f.Close()
	var buf [colHeaderLen]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		return false
	}
	hdr, err := parseColHeader(buf[:])
	if err != nil {
		return false
	}
	return hdr.firstSeq == m.FirstSeq && hdr.lastSeq == m.LastSeq && hdr.count == m.Count
}

// Append archives one record. Records whose Seq is at or below the
// highest ordinal on disk are dropped (replayed evictions already
// archived). An ordinal gap — records lost to a crash whose evictions
// the WAL snapshot already covers, so replay will never regenerate
// them — is counted (Gaps) and skipped over: those records are gone
// either way, and refusing all future appends would turn a small hole
// into total history loss.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Seq <= l.seq {
		return nil // WAL replay re-evicted an event already archived
	}
	if rec.Seq != l.seq+1 {
		l.gaps++
	}
	if l.f == nil {
		if err := l.startSegment(rec.Seq); err != nil {
			return err
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("archive: encode record %d: %w", rec.Seq, err)
	}
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	l.active.observe(rec, l.bloomPar)
	l.seq = rec.Seq
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if l.active.Count >= l.opt.SegmentEvents ||
		l.active.MaxQuantum-l.active.MinQuantum >= l.opt.BucketQuanta {
		return l.rotateLocked()
	}
	return nil
}

func (l *Log) startSegment(firstSeq uint64) error {
	f, err := l.fs.OpenFile(l.segPath(firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("archive: new segment: %w", err)
	}
	l.f, l.w = f, bufio.NewWriter(f)
	l.active = &segMeta{File: firstSeq}
	return nil
}

// rotateLocked seals the active segment: flush, sync, write its
// sidecar. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if err := l.writeMeta(l.active, l.active.File); err != nil {
		return err
	}
	l.sealed = append(l.sealed, *l.active)
	l.f, l.w, l.active = nil, nil, nil
	return nil
}

func (l *Log) writeMeta(m *segMeta, start uint64) error {
	if !m.bf.empty() {
		m.Bloom = m.bf.encode()
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: encode sidecar: %w", err)
	}
	path := l.metaPath(start)
	if m.Format == 2 {
		path = l.colMetaPath(start)
	}
	tmp := path + ".tmp"
	if err := l.fs.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("archive: write sidecar: %w", err)
	}
	if err := l.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: write sidecar: %w", err)
	}
	return nil
}

// LastSeq returns the highest eviction ordinal on disk.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Gaps returns how many ordinal gaps Append has skipped over — each
// one marks records that were evicted but never made it to disk.
func (l *Log) Gaps() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gaps
}

// SegmentCount returns the number of data segments (sealed + active).
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.sealed)
	if l.active != nil {
		n++
	}
	return n
}

// EventCount returns the number of archived events.
func (l *Log) EventCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.sealed {
		n += l.sealed[i].Count
	}
	if l.active != nil {
		n += l.active.Count
	}
	return n
}

// Close seals the active segment (so its sidecar exists for the next
// process) without starting a new one.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked()
}

// QueryStats reports how much data a query skipped — the observable
// effect of the sidecar metadata. Truncated marks a limit-stopped scan:
// the counts describe only the work done before the limit hit, and
// segments (or tail records) that were never considered are NOT in the
// skip counters — partial stats, flagged rather than silently wrong.
type QueryStats struct {
	Segments       int  `json:"segments"`         // total segments considered
	Scanned        int  `json:"scanned"`          // segments actually read
	SkippedByTime  int  `json:"skipped_by_time"`  // pruned on quantum range
	SkippedByBloom int  `json:"skipped_by_bloom"` // pruned on keyword Bloom
	Truncated      bool `json:"truncated"`        // scan stopped at the limit; stats partial
	// Quarantined counts sealed segments this query hit corruption in
	// and renamed aside; Degraded flags that the results are therefore
	// missing that history — served, but incomplete.
	Quarantined int  `json:"quarantined,omitempty"`
	Degraded    bool `json:"degraded,omitempty"`
}

// ErrStop, returned by a SegmentView.Scan callback, stops the scan
// early without error — the LIMIT-pushdown signal.
var ErrStop = fmt.Errorf("archive: stop scan")

// ErrCorrupt marks structural damage inside a sealed segment's data
// file — a CRC mismatch, a torn frame, a record count that disagrees
// with the sidecar. Errors wrapping it are the quarantine signal: the
// damage is in the bytes, not the device, so retrying the read cannot
// help, but the rest of the archive is still good. Device-level read
// errors (EIO) deliberately do NOT wrap it.
var ErrCorrupt = errors.New("segment corrupt")

// quarantineSuffix is appended to a corrupt segment's data file and
// sidecar names. Open ignores the renamed files (wrong extension), so
// the damage survives for offline forensics without ever being served
// again.
const quarantineSuffix = ".quarantine"

// SegmentView is a point-in-time handle on one segment: the sidecar
// bounds for planning (time-range, rank-floor, and Bloom data skipping)
// plus a record iterator. Views are snapshots — records appended to the
// active segment after Segments() returned are not visible through
// them, and a view stays readable even if the segment it describes is
// compacted away mid-scan: a vanished or replaced data file makes the
// scan fall back to the covering compacted segment, filtered to this
// view's ordinal range.
type SegmentView struct {
	// FirstSeq/LastSeq bound the eviction ordinals in the segment.
	FirstSeq uint64
	LastSeq  uint64
	// Count is the number of records the view covers.
	Count int
	// MinQuantum is the smallest BornQuantum of any covered record;
	// MaxQuantum the largest LastQuantum. Every record's sort span
	// falls inside [MinQuantum, MaxQuantum].
	MinQuantum int
	MaxQuantum int
	// MaxPeakRank bounds PeakRank across the covered records; +Inf when
	// the sidecar predates rank bounds (never skip on unknown).
	MaxPeakRank float64
	// Sealed marks a rotated (immutable, count-exact) segment.
	Sealed bool
	// Format is the data file format: 0 = v1 JSONL, 2 = v2 columnar.
	Format int

	file  uint64
	zones []blockZone // v2 zone maps (immutable once sealed; shared)
	bf    bloom
	l     *Log
}

// Blocks returns the number of v2 blocks the view covers (0 for v1).
func (v *SegmentView) Blocks() int { return len(v.zones) }

// Quarantine sets this view's segment aside in its parent Log after a
// scan returned an error wrapping ErrCorrupt — see Log.Quarantine.
func (v *SegmentView) Quarantine() bool { return v.l.Quarantine(v) }

// MayContain reports whether the segment's keyword Bloom filter admits
// kw (false positives possible, false negatives not). A view with no
// filter admits everything.
func (v *SegmentView) MayContain(kw string) bool {
	return v.bf.mayContain(kw)
}

// Pred is the predicate ScanPred pushes below segment granularity: a
// v2 scan skips whole blocks whose zone maps prove no record can
// match. Records handed to the callback are NOT individually filtered
// — block skipping is conservative, so callers apply their own
// record-level filter exactly as they would after Scan.
type Pred struct {
	// From/To bound the quantum range: a record matches when its
	// [BornQuantum, LastQuantum] span intersects [From, To]. To < 0
	// means unbounded. Note the zero value bounds the range to quantum
	// 0 — callers must set To.
	From, To int
	// MinRank, when positive, requires PeakRank ≥ MinRank.
	MinRank float64
	// Keywords requires every listed keyword (AND semantics), matched
	// against the block Bloom filters.
	Keywords []string

	// minSeq/maxSeq (0 = unbounded) restrict records by eviction
	// ordinal — set internally when a scan falls back from a compacted-
	// away segment to the covering rewrite, which holds more than the
	// original view's records.
	minSeq, maxSeq uint64
}

// matchAll is the no-predicate Pred (plain Scan).
func matchAll() Pred { return Pred{To: -1} }

// skipReason classifies why a block was skipped.
type skipReason int

const (
	skipNone skipReason = iota
	skipTime
	skipRank
	skipKeyword
)

func (z *blockZone) skip(p *Pred) skipReason {
	if z.MaxQuantum < p.From || z.MinQuantum > p.To {
		return skipTime
	}
	if p.maxSeq > 0 && (z.FirstSeq > p.maxSeq || z.LastSeq < p.minSeq) {
		return skipTime // ordinal range disjoint: same bucket as time
	}
	if p.MinRank > 0 && z.MaxRank < p.MinRank {
		return skipRank
	}
	if len(p.Keywords) > 0 && !z.mayContainKeywords(p.Keywords) {
		return skipKeyword
	}
	return skipNone
}

// BlockStats reports one ScanPred's block-level work: how many blocks
// the segment holds, how many were read, and why the rest were skipped
// without touching the data file. A v1 segment counts as one block.
type BlockStats struct {
	Blocks           int // blocks covered by the view
	Scanned          int // blocks read and decoded
	SkippedByTime    int // zone quantum/ordinal range proved no match
	SkippedByRank    int // zone max PeakRank below the rank floor
	SkippedByKeyword int // zone Bloom filter refuted a keyword
	Records          int // records handed to the callback
}

func (b *BlockStats) addTo(o *BlockStats) {
	o.Blocks += b.Blocks
	o.Scanned += b.Scanned
	o.SkippedByTime += b.SkippedByTime
	o.SkippedByRank += b.SkippedByRank
	o.SkippedByKeyword += b.SkippedByKeyword
	o.Records += b.Records
}

// Scan streams the view's records to fn in eviction order. fn returning
// ErrStop ends the scan early (stopped=true, err=nil); any other error
// aborts and is returned. seen counts records handed to fn. On a sealed
// view a complete scan that read fewer records than the sidecar count
// means mid-file corruption and is reported as an error: silently
// truncating history would be worse than failing the query. An active
// view stops after Count records so concurrent appends never leak past
// the point-in-time the view was taken.
func (v *SegmentView) Scan(fn func(Record) error) (seen int, stopped bool, err error) {
	bs, stopped, err := v.scanWithPred(matchAll(), 0, func(rec *Record) error { return fn(*rec) })
	return bs.Records, stopped, err
}

// ScanPred streams the view's records to fn in eviction order, skipping
// v2 blocks whose zone maps prove no record can match pred (see Pred
// for what the callback still must filter). The *Record and its slices
// remain valid after fn returns, but the struct pointed to is reused —
// copy it to keep it. Stop/error semantics match Scan.
func (v *SegmentView) ScanPred(pred Pred, fn func(*Record) error) (BlockStats, bool, error) {
	return v.scanWithPred(pred, 0, fn)
}

// maxRescanDepth bounds compacted-away fallback nesting; one level is
// the steady state (old view → covering rewrite) and a second absorbs a
// re-compaction racing the fallback itself.
const maxRescanDepth = 2

func (v *SegmentView) scanWithPred(pred Pred, depth int, fn func(*Record) error) (bs BlockStats, stopped bool, err error) {
	if pred.To < 0 {
		pred.To = maxInt
	}
	if v.Format == 2 {
		return v.scanColWithPred(pred, depth, fn)
	}
	bs.Blocks, bs.Scanned = 1, 1
	raw := 0        // records decoded (pre-filter), for the corruption check
	capped := false // hit the view's point-in-time record cap, not a caller stop
	_, serr := v.l.scanSegment(v.file, func(rec Record) error {
		// The cap applies only to active views (appends may have landed
		// after the view was taken); a sealed file holding more records
		// than its sidecar is corruption, which the count check below
		// must see rather than have silently truncated away.
		if !v.Sealed && raw >= v.Count {
			capped = true
			return ErrStop
		}
		raw++
		if (pred.minSeq > 0 && rec.Seq < pred.minSeq) || (pred.maxSeq > 0 && rec.Seq > pred.maxSeq) {
			return nil
		}
		bs.Records++
		return fn(&rec)
	})
	switch {
	case serr == ErrStop && !capped:
		return bs, true, nil
	case serr != nil && serr != ErrStop:
		if errors.Is(serr, os.ErrNotExist) && v.Sealed && depth < maxRescanDepth {
			// Compacted away mid-scan: rescan via the covering segment.
			return v.rescanCompacted(pred, depth, fn)
		}
		return bs, false, serr
	}
	if v.Sealed && raw != v.Count {
		return bs, false, fmt.Errorf("archive: segment %d: %d of %d records readable: %w",
			v.file, raw, v.Count, ErrCorrupt)
	}
	return bs, false, nil
}

// scanColWithPred is the v2 scan: zone-map skipping, then CRC-checked
// column-at-a-time decode of only the surviving blocks.
func (v *SegmentView) scanColWithPred(pred Pred, depth int, fn func(*Record) error) (bs BlockStats, stopped bool, err error) {
	f, err := v.l.fs.Open(v.l.colPath(v.file))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) && depth < maxRescanDepth {
			return v.rescanCompacted(pred, depth, fn)
		}
		return bs, false, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	// The open fd pins the inode, so the scan below is immune to a
	// concurrent re-compaction renaming over this path — but the path
	// may already BE the replacement. Verify the header matches the
	// view; a mismatch means the view's zone maps describe a replaced
	// file, so fall back as if it had vanished.
	var hdrBuf [colHeaderLen]byte
	if _, err := f.ReadAt(hdrBuf[:], 0); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// The file is shorter than its own fixed header: structural
			// damage, not a device error.
			err = fmt.Errorf("short header: %w", ErrCorrupt)
		}
		return bs, false, fmt.Errorf("archive: segment %d: %w", v.file, err)
	}
	hdr, err := parseColHeader(hdrBuf[:])
	if err != nil {
		return bs, false, fmt.Errorf("archive: segment %d: %w: %w", v.file, err, ErrCorrupt)
	}
	if hdr.firstSeq != v.FirstSeq || hdr.lastSeq != v.LastSeq || hdr.count != v.Count {
		if depth < maxRescanDepth {
			return v.rescanCompacted(pred, depth, fn)
		}
		return bs, false, fmt.Errorf("archive: segment %d: file replaced mid-scan", v.file)
	}

	bs.Blocks = len(v.zones)
	sc := scratchPool.Get().(*blockScratch)
	defer scratchPool.Put(sc)
	for zi := range v.zones {
		z := &v.zones[zi]
		switch z.skip(&pred) {
		case skipTime:
			bs.SkippedByTime++
			continue
		case skipRank:
			bs.SkippedByRank++
			continue
		case skipKeyword:
			bs.SkippedByKeyword++
			continue
		}
		bs.Scanned++
		payload, err := readFrame(f, z, &sc.frame)
		if err != nil {
			return bs, false, fmt.Errorf("archive: segment %d: %w", v.file, err)
		}
		n, derr := decodeBlock(payload, sc, func(rec *Record) error {
			if (pred.minSeq > 0 && rec.Seq < pred.minSeq) || (pred.maxSeq > 0 && rec.Seq > pred.maxSeq) {
				return nil
			}
			bs.Records++
			return fn(rec)
		})
		if derr == ErrStop {
			return bs, true, nil
		}
		if derr != nil {
			if errors.Is(derr, errBlockCorrupt) {
				derr = fmt.Errorf("%w: %w", derr, ErrCorrupt)
			}
			return bs, false, fmt.Errorf("archive: segment %d: block at %d: %w", v.file, z.Off, derr)
		}
		if n != z.Count {
			return bs, false, fmt.Errorf("archive: segment %d: block at %d has %d of %d records: %w",
				v.file, z.Off, n, z.Count, ErrCorrupt)
		}
	}
	return bs, false, nil
}

// rescanCompacted re-resolves a scan whose data file was compacted away
// (or replaced) after the view was taken: the compactor only ever
// merges whole segments, so some current segment's ordinal range covers
// this view's — rescan it with the predicate narrowed to the view's
// ordinals, yielding exactly the original record set.
func (v *SegmentView) rescanCompacted(pred Pred, depth int, fn func(*Record) error) (BlockStats, bool, error) {
	if pred.minSeq == 0 || pred.minSeq < v.FirstSeq {
		pred.minSeq = v.FirstSeq
	}
	if pred.maxSeq == 0 || pred.maxSeq > v.LastSeq {
		pred.maxSeq = v.LastSeq
	}
	views := v.l.Segments()
	for i := range views {
		w := &views[i]
		if w.file == v.file && w.Format == v.Format {
			continue // the vanished segment itself (stale list)
		}
		if w.Count > 0 && w.FirstSeq <= v.FirstSeq && w.LastSeq >= v.LastSeq {
			return w.scanWithPred(pred, depth+1, fn)
		}
	}
	return BlockStats{}, false, fmt.Errorf("archive: segment %d vanished with no covering replacement", v.file)
}

// Segments snapshots the archive's segment metadata (sealed + active)
// in ascending-FirstSeq order. The metadata is copied under the lock
// and the data files (append-only, or replaced only via the rescan
// fallback above) are read without it, so planning and scanning never
// block concurrent appends.
func (l *Log) Segments() []SegmentView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := make([]SegmentView, 0, len(l.sealed)+1)
	for i := range l.sealed {
		m := &l.sealed[i]
		if m.bf.empty() {
			m.bf = decodeBloom(m.Bloom, m.BloomK) // immutable once sealed: safe to share
		}
		views = append(views, SegmentView{
			FirstSeq:    m.FirstSeq,
			LastSeq:     m.LastSeq,
			Count:       m.Count,
			MinQuantum:  m.MinQuantum,
			MaxQuantum:  m.MaxQuantum,
			MaxPeakRank: rankBound(m),
			Sealed:      true,
			Format:      m.Format,
			file:        m.File,
			zones:       m.Blocks,
			bf:          m.bf,
			l:           l,
		})
	}
	if l.active != nil && l.active.Count > 0 {
		// The active filter keeps mutating under appends; copy it.
		views = append(views, SegmentView{
			FirstSeq:    l.active.FirstSeq,
			LastSeq:     l.active.LastSeq,
			Count:       l.active.Count,
			MinQuantum:  l.active.MinQuantum,
			MaxQuantum:  l.active.MaxQuantum,
			MaxPeakRank: rankBound(l.active),
			file:        l.active.File,
			bf:          l.active.bf.clone(),
			l:           l,
		})
	}
	return views
}

// Quarantine renames a corrupt sealed segment's data file and sidecar
// aside (quarantineSuffix) and drops the segment from the sealed list,
// so every later query serves the surviving history instead of
// re-hitting the damage. The damaged bytes stay on disk for forensics.
// Reports whether the view named a segment still in the sealed list
// (false for active views, already-quarantined segments, or views of a
// compacted-away file — in all of those there is nothing to remove).
// Safe against a concurrent compaction: it takes the compactor's mutex,
// so the splice never invalidates a compaction step mid-flight.
func (l *Log) Quarantine(v *SegmentView) bool {
	if !v.Sealed {
		return false
	}
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := -1
	for i := range l.sealed {
		if l.sealed[i].File == v.file && l.sealed[i].Format == v.Format {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	data, side := l.segPath(v.file), l.metaPath(v.file)
	if v.Format == 2 {
		data, side = l.colPath(v.file), l.colMetaPath(v.file)
	}
	// Rename failures are tolerated: the segment leaves the sealed list
	// either way, which is what stops the bleeding. A file that could
	// not be renamed is swept as superseded-or-orphaned on next Open.
	l.fs.Rename(data, data+quarantineSuffix) //nolint:errcheck // best effort
	l.fs.Rename(side, side+quarantineSuffix) //nolint:errcheck // best effort
	l.sealed = append(l.sealed[:idx], l.sealed[idx+1:]...)
	l.quarantined++
	return true
}

// QuarantinedSegments returns how many segments this Log has
// quarantined since open.
func (l *Log) QuarantinedSegments() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quarantined
}

// rankBound maps a sidecar's MaxPeakRank to the view bound: 0 means
// "written before rank bounds existed, or genuinely all-zero" — both
// unskippable, so surface +Inf (never skip on unknown).
func rankBound(m *segMeta) float64 {
	if m.MaxPeakRank > 0 {
		return m.MaxPeakRank
	}
	return math.Inf(1)
}

// Query returns archived events whose [BornQuantum, LastQuantum] span
// intersects [from, to] (to < 0 means unbounded) and, when keyword is
// non-empty, whose keyword sets contain it (matched against AllKeywords
// when present, else Keywords). Results are in eviction order; limit > 0
// caps them (stats.Truncated then marks the partial scan); a negative
// limit is an error — it is always a caller bug, and treating it as
// "unlimited" silently turned bad input into a full history scan.
// Records in the active segment are visible immediately. Implemented on
// the SegmentView iterator, the same scan the unified query engine
// uses, so a long history scan never blocks concurrent appends.
func (l *Log) Query(from, to int, keyword string, limit int) ([]Record, QueryStats, error) {
	var stats QueryStats
	if limit < 0 {
		return nil, stats, fmt.Errorf("archive: negative limit %d", limit)
	}
	if to < 0 {
		to = int(^uint(0) >> 1) // MaxInt
	}
	views := l.Segments()
	out := []Record{}
	stats.Segments = len(views)
	for i := range views {
		v := &views[i]
		if limit > 0 && len(out) >= limit {
			stats.Truncated = true
			break
		}
		if v.MaxQuantum < from || v.MinQuantum > to {
			stats.SkippedByTime++
			continue
		}
		if keyword != "" && !v.MayContain(keyword) {
			stats.SkippedByBloom++
			continue
		}
		stats.Scanned++
		before := len(out)
		_, stopped, err := v.Scan(func(rec Record) error {
			if limit > 0 && len(out) >= limit {
				return ErrStop
			}
			if rec.LastQuantum < from || rec.BornQuantum > to {
				return nil
			}
			if keyword != "" && !recordHasKeyword(rec, keyword) {
				return nil
			}
			out = append(out, rec)
			return nil
		})
		if err != nil {
			if errors.Is(err, ErrCorrupt) && v.Sealed {
				// The damage is in this segment's bytes alone: set it
				// aside and keep serving the surviving history, flagged
				// as incomplete. Records the scan yielded before hitting
				// the corruption are dropped — a segment is either
				// served whole or not at all. A concurrent query may
				// have already quarantined it (count it only once).
				if l.Quarantine(v) {
					stats.Quarantined++
				}
				out = out[:before]
				stats.Degraded = true
				continue
			}
			return nil, stats, err
		}
		if stopped {
			stats.Truncated = true
		}
	}
	return out, stats, nil
}

func recordHasKeyword(rec Record, kw string) bool {
	set := rec.AllKeywords
	if len(set) == 0 {
		set = rec.Keywords
	}
	for _, k := range set {
		if k == kw {
			return true
		}
	}
	return false
}

// scanSegment streams a segment's records to fn, returning the byte
// offset through the last intact record. A torn trailing line (the
// crash-mid-append signature) stops the scan there; the active-resume
// path truncates the file to the returned offset so new appends never
// land after garbage.
func (l *Log) scanSegment(start uint64, fn func(Record) error) (int64, error) {
	f, err := l.fs.Open(l.segPath(start))
	if err != nil {
		return 0, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var valid int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			valid++ // just the newline
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return valid, nil
		}
		if err := fn(rec); err != nil {
			return valid, err
		}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return valid, fmt.Errorf("archive: scan segment %d: %w", start, err)
	}
	return valid, nil
}

func (l *Log) segPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segExt))
}

func (l *Log) metaPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, metaExt))
}

func (l *Log) colPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, colExt))
}

func (l *Log) colMetaPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, colMetaSuffix))
}
