package archive

import (
	"fmt"
)

// The background compactor: merges runs of small adjacent sealed
// segments into one v2 columnar segment (time-bucket defragmentation)
// and rewrites cold v1 JSONL segments into v2 in place (same ordinal
// range, same name seq, .col extension). Appends keep landing in v1 —
// the torn-tail crash story of the active segment is unchanged — so the
// archive steady-state is a v1 head being filled and a v2 body being
// read.
//
// Commit protocol (crash-safe at every step, verified by the
// Compaction crash tests):
//
//  1. write the merged v2 data file at ev-<run[0].File>.col via
//     tmp+fsync+rename — the commit point. From here Open's
//     supersession pass treats the inputs as dead.
//  2. write its sidecar (tmp+rename; rebuilt from the data file if a
//     crash lands between 1 and 2).
//  3. splice the in-memory sealed list under the lock.
//  4. delete the input data files and sidecars (redone by Open's
//     supersession pass and orphan-sidecar sweep if a crash lands
//     mid-deletion). In-flight scans holding views of the deleted
//     inputs fall back to the merged segment, filtered to their
//     original ordinal range (SegmentView.rescanCompacted).

// CompactStats sums what compaction steps accomplished.
type CompactStats struct {
	// Compactions counts committed rewrites; SegmentsIn the input
	// segments they consumed (a merge consumes ≥ 2, a format rewrite 1).
	Compactions int
	SegmentsIn  int
	// Records is the number of records rewritten.
	Records int
	// BytesReclaimed is input minus output file bytes (≥ 0; a rewrite
	// that grows the data — possible only for tiny segments where fixed
	// overhead dominates — counts as 0).
	BytesReclaimed uint64
}

// CompactOnce performs at most one compaction step — one merge of an
// adjacent run of small sealed segments, or one v1→v2 rewrite of the
// oldest JSONL segment — and reports whether it did anything. The step
// reads and writes outside the archive lock; only the final metadata
// splice holds it, so ingest and queries proceed throughout. Steps are
// serialized against each other.
func (l *Log) CompactOnce() (CompactStats, bool, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	l.mu.Lock()
	sealed := make([]segMeta, len(l.sealed))
	copy(sealed, l.sealed)
	l.mu.Unlock()

	lo, hi := pickCompactRun(sealed, l.opt)
	if lo < 0 {
		return CompactStats{}, false, nil
	}
	run := sealed[lo:hi]

	// Read every input record, in ordinal order (inputs are adjacent and
	// ordinal-disjoint, so concatenation in list order is sorted).
	var recs []Record
	var bytesIn int64
	for i := range run {
		m := &run[i]
		path := l.segPath(m.File)
		if m.Format == 2 {
			path = l.colPath(m.File)
		}
		if st, err := l.fs.Stat(path); err == nil {
			bytesIn += st.Size()
		}
		if st, err := l.fs.Stat(l.sidecarPath(m)); err == nil {
			bytesIn += st.Size()
		}
		before := len(recs)
		var err error
		if m.Format == 2 {
			_, err = scanColFile(l.fs, path, func(rec *Record) error {
				recs = append(recs, *rec)
				return nil
			}, nil)
		} else {
			_, err = l.scanSegment(m.File, func(rec Record) error {
				recs = append(recs, rec)
				return nil
			})
		}
		if err != nil {
			return CompactStats{}, false, fmt.Errorf("archive: compact: read segment %d: %w", m.File, err)
		}
		if len(recs)-before != m.Count {
			return CompactStats{}, false, fmt.Errorf("archive: compact: segment %d has %d of %d records",
				m.File, len(recs)-before, m.Count)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			return CompactStats{}, false, fmt.Errorf("archive: compact: records out of order at seq %d", recs[i].Seq)
		}
	}

	// Commit: data file, then sidecar.
	newPath := l.colPath(run[0].File)
	m, err := writeSegmentV2(l.fs, newPath, recs, l.opt.BlockEvents, l.bloomPar)
	if err != nil {
		return CompactStats{}, false, err
	}
	m.File = run[0].File
	if err := l.writeMeta(&m, m.File); err != nil {
		return CompactStats{}, false, err
	}
	var bytesOut int64
	if st, err := l.fs.Stat(newPath); err == nil {
		bytesOut += st.Size()
	}
	if st, err := l.fs.Stat(l.colMetaPath(m.File)); err == nil {
		bytesOut += st.Size()
	}

	// Splice the sealed list. Only the compactor rewrites it and we hold
	// compactMu, so the run is still where we found it; rotations only
	// append behind it.
	st := CompactStats{Compactions: 1, SegmentsIn: len(run), Records: len(recs)}
	if bytesIn > bytesOut {
		st.BytesReclaimed = uint64(bytesIn - bytesOut)
	}
	l.mu.Lock()
	spliced := append([]segMeta{}, l.sealed[:lo]...)
	spliced = append(spliced, m)
	spliced = append(spliced, l.sealed[hi:]...)
	l.sealed = spliced
	l.compactions++
	l.segsCompacted += uint64(len(run))
	l.recordsCompacted += uint64(len(recs))
	l.bytesReclaimed += st.BytesReclaimed
	l.mu.Unlock()

	// Cleanup: inputs are dead. The merged file itself (a re-compacted
	// .col keeps its name) was just renamed over, not an input to delete.
	for i := range run {
		in := &run[i]
		if in.Format == 2 && in.File == m.File {
			continue
		}
		l.removeSegmentFiles(*in)
	}
	return st, true, nil
}

// CompactAll runs compaction steps until none applies — the one-shot
// migration mode (cmd/serve -archive-migrate) and the test/bench
// helper. Seal the active segment first (Close) to migrate everything.
func (l *Log) CompactAll() (CompactStats, error) {
	var total CompactStats
	for {
		st, worked, err := l.CompactOnce()
		if err != nil {
			return total, err
		}
		if !worked {
			return total, nil
		}
		total.Compactions += st.Compactions
		total.SegmentsIn += st.SegmentsIn
		total.Records += st.Records
		total.BytesReclaimed += st.BytesReclaimed
	}
}

// pickCompactRun chooses the next compaction step over a sealed-list
// snapshot: the first (oldest) maximal run of ≥ 2 adjacent segments
// that merged stay within the segment-size and time-bucket bounds, else
// the first v1 segment (format rewrite), else nothing ([-1, -1)).
func pickCompactRun(sealed []segMeta, opt Options) (int, int) {
	for i := 0; i < len(sealed); i++ {
		if sealed[i].Count == 0 {
			continue
		}
		count := sealed[i].Count
		minQ, maxQ := sealed[i].MinQuantum, sealed[i].MaxQuantum
		j := i + 1
		for ; j < len(sealed); j++ {
			s := &sealed[j]
			if s.Count == 0 {
				break
			}
			nc := count + s.Count
			nMin, nMax := minQ, maxQ
			if s.MinQuantum < nMin {
				nMin = s.MinQuantum
			}
			if s.MaxQuantum > nMax {
				nMax = s.MaxQuantum
			}
			if nc > opt.SegmentEvents || nMax-nMin >= opt.BucketQuanta {
				break
			}
			count, minQ, maxQ = nc, nMin, nMax
		}
		if j-i >= 2 {
			return i, j
		}
	}
	for i := 0; i < len(sealed); i++ {
		if sealed[i].Format != 2 && sealed[i].Count > 0 {
			return i, i + 1
		}
	}
	return -1, -1
}

// sidecarPath returns the sidecar path for a segment of either format.
func (l *Log) sidecarPath(m *segMeta) string {
	if m.Format == 2 {
		return l.colMetaPath(m.File)
	}
	return l.metaPath(m.File)
}

// CompactTotals reports the compactor's lifetime counters for this Log:
// committed compactions, input segments consumed, records rewritten,
// and bytes reclaimed (data + sidecar files, input minus output).
func (l *Log) CompactTotals() (compactions, segmentsIn, records, bytesReclaimed uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactions, l.segsCompacted, l.recordsCompacted, l.bytesReclaimed
}

// ColumnarSegmentCount returns how many sealed segments are in the v2
// columnar format.
func (l *Log) ColumnarSegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.sealed {
		if l.sealed[i].Format == 2 {
			n++
		}
	}
	return n
}
