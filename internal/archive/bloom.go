package archive

import (
	"encoding/base64"
	"hash/fnv"
	"math"
)

// defaultBloomBits / defaultBloomHashes size the per-segment keyword
// Bloom filter when no explicit sizing is configured: 8192 bits with 4
// hashes keeps the false-positive rate under ~2% for the few hundred
// distinct keywords a segment accumulates, at 1 KiB of sidecar per
// segment. Sidecars written before the filter became configurable carry
// no hash count, so 4 is also the decode default — changing it would
// turn old filters into false-negative machines.
const (
	defaultBloomBits   = 8192
	defaultBloomHashes = 4
)

// blockBloomBitsPerKey / blockBloomHashes size the per-block keyword
// filters of v2 zone maps. Blocks are small and their filters are
// sized from the block's actual distinct-keyword count, so 8 bits/key
// (~2% false positives at 4 hashes) costs a few dozen bytes per block.
const (
	blockBloomBitsPerKey = 8
	blockBloomHashes     = 4
)

// bloomParams is the filter sizing one Log stamps onto new filters.
type bloomParams struct {
	bits   int
	hashes int
}

// blockBloomParams sizes one block's zone-map keyword filter from its
// (approximate) distinct-string count.
func blockBloomParams(keys int) bloomParams {
	bits := blockBloomBitsPerKey * keys
	if bits < 256 {
		bits = 256
	}
	if bits > 1<<20 {
		bits = 1 << 20
	}
	bits = (bits + 63) &^ 63
	return bloomParams{bits: bits, hashes: blockBloomHashes}
}

// bloomSizing derives the per-segment filter size from a bits-per-key
// budget and the segment's rotation bound. bitsPerKey ≤ 0 selects the
// legacy fixed 8192-bit / 4-hash shape. The hash count follows the
// textbook optimum k = ln2 · bits/key, clamped to a sane range.
func bloomSizing(bitsPerKey, segmentEvents int) bloomParams {
	if bitsPerKey <= 0 {
		return bloomParams{bits: defaultBloomBits, hashes: defaultBloomHashes}
	}
	bits := bitsPerKey * segmentEvents
	if bits < 512 {
		bits = 512
	}
	if bits > 1<<21 {
		bits = 1 << 21
	}
	bits = (bits + 63) &^ 63 // whole words
	k := int(math.Round(math.Ln2 * float64(bitsPerKey)))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return bloomParams{bits: bits, hashes: k}
}

// bloom is a Bloom filter over keyword strings, using double hashing
// (h1 + i·h2) over one 64-bit FNV-1a pass. The bit-array length (any
// multiple of 64 bits) is the modulus, so filters of different
// configured sizes coexist in one archive; the hash count rides along
// because it must match between add and probe.
type bloom struct {
	bits []byte
	k    int
}

func newBloom() bloom {
	return newBloomSized(bloomParams{bits: defaultBloomBits, hashes: defaultBloomHashes})
}

func newBloomSized(p bloomParams) bloom {
	return bloom{bits: make([]byte, p.bits/8), k: p.hashes}
}

func (b bloom) empty() bool { return len(b.bits) == 0 }

// clone deep-copies the filter (for point-in-time views of the still-
// mutating active filter).
func (b bloom) clone() bloom {
	if b.empty() {
		return bloom{}
	}
	return bloom{bits: append([]byte(nil), b.bits...), k: b.k}
}

func bloomHash(s string) (h1, h2 uint32) {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
	v := h.Sum64()
	h1 = uint32(v)
	h2 = uint32(v>>32) | 1 // odd, so the probe sequence cycles all bits
	return
}

func (b bloom) add(s string) {
	n := uint32(len(b.bits) * 8)
	if n == 0 {
		return
	}
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < uint32(b.k); i++ {
		bit := (h1 + i*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether s could have been added (false positives
// possible, false negatives not). An empty filter admits everything.
func (b bloom) mayContain(s string) bool {
	n := uint32(len(b.bits) * 8)
	if n == 0 || n%64 != 0 {
		// Unknown filter shape (corrupt or future sidecar): never skip.
		return true
	}
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < uint32(b.k); i++ {
		bit := (h1 + i*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func (b bloom) encode() string { return base64.StdEncoding.EncodeToString(b.bits) }

// decodeBloom rebuilds a filter from its sidecar encoding. k ≤ 0
// selects the legacy hash count (sidecars written before the filter
// became configurable carry none).
func decodeBloom(s string, k int) bloom {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return bloom{}
	}
	if k <= 0 {
		k = defaultBloomHashes
	}
	return bloom{bits: raw, k: k}
}
