package archive

import (
	"encoding/base64"
	"hash/fnv"
)

// bloomBits / bloomHashes size the per-segment keyword Bloom filter:
// 8192 bits with 4 hashes keeps the false-positive rate under ~2% for
// the few hundred distinct keywords a segment accumulates, at 1 KiB of
// sidecar per segment.
const (
	bloomBits   = 8192
	bloomHashes = 4
)

// bloom is a fixed-size Bloom filter over keyword strings, using double
// hashing (h1 + i·h2) over one 64-bit FNV-1a pass.
type bloom []byte

func newBloom() bloom { return make(bloom, bloomBits/8) }

func bloomHash(s string) (h1, h2 uint32) {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
	v := h.Sum64()
	h1 = uint32(v)
	h2 = uint32(v>>32) | 1 // odd, so the probe sequence cycles all bits
	return
}

func (b bloom) add(s string) {
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % bloomBits
		b[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether s could have been added (false positives
// possible, false negatives not).
func (b bloom) mayContain(s string) bool {
	if len(b) != bloomBits/8 {
		// Unknown filter shape (corrupt or future sidecar): never skip.
		return true
	}
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % bloomBits
		if b[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func (b bloom) encode() string { return base64.StdEncoding.EncodeToString(b) }

func decodeBloom(s string) bloom {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil
	}
	return bloom(raw)
}
