package archive

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// variedRecords exercises every encoding path: nil vs empty keyword
// slices, negative and non-monotonic quanta, large ID jumps, exact
// float bit patterns, merge/split links, every flag.
func variedRecords() []Record {
	return []Record{
		{Seq: 1, ID: 99999999999, State: "ended", Keywords: []string{"alpha", "beta"},
			AllKeywords: []string{"alpha", "beta", "gamma"}, Rank: 1.2345678901234567,
			PeakRank: 2.5, BornQuantum: 10, LastQuantum: 20, Evolved: true, Size: 3,
			Support: 17, Reported: true, FirstReported: 12},
		{Seq: 2, ID: 5, State: "retired", Keywords: nil, AllKeywords: nil,
			Rank: math.Inf(1), PeakRank: -0.0, BornQuantum: -4, LastQuantum: 0,
			Spurious: true, MergedInto: 42},
		{Seq: 4, ID: math.MaxUint64, State: "ended", Keywords: []string{},
			AllKeywords: []string{}, Rank: 1e-308, PeakRank: math.MaxFloat64,
			BornQuantum: 7, LastQuantum: 7, SplitFrom: 1, Size: -1},
		{Seq: 5, ID: 6, State: "ended", Keywords: []string{"alpha"},
			Rank: 0.1 + 0.2, PeakRank: 0.30000000000000004, BornQuantum: 0,
			LastQuantum: 1000000, Support: 1 << 30, FirstReported: 999},
	}
}

func TestBlockRoundTrip(t *testing.T) {
	recs := variedRecords()
	var enc blockEncoder
	payload, zone, err := enc.encode(recs)
	if err != nil {
		t.Fatal(err)
	}
	if zone.Count != len(recs) || zone.FirstSeq != 1 || zone.LastSeq != 5 {
		t.Fatalf("zone = %+v", zone)
	}
	if zone.MinQuantum != -4 || zone.MaxQuantum != 1000000 {
		t.Fatalf("zone quanta = [%d,%d]", zone.MinQuantum, zone.MaxQuantum)
	}
	if zone.MaxRank != math.MaxFloat64 || zone.MaxSupport != 1<<30 {
		t.Fatalf("zone rank/support = %v/%d", zone.MaxRank, zone.MaxSupport)
	}

	sc := new(blockScratch)
	var got []Record
	var gotKwNil, gotAllNil []bool
	n, err := decodeBlock(payload, sc, func(r *Record) error {
		got = append(got, *r)
		gotKwNil = append(gotKwNil, r.Keywords == nil)
		gotAllNil = append(gotAllNil, r.AllKeywords == nil)
		return nil
	})
	if err != nil || n != len(recs) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range recs {
		want, _ := json.Marshal(recs[i])
		have, _ := json.Marshal(got[i])
		if string(want) != string(have) {
			t.Fatalf("record %d round-trip:\n want %s\n have %s", i, want, have)
		}
		if gotKwNil[i] != (recs[i].Keywords == nil) || gotAllNil[i] != (recs[i].AllKeywords == nil) {
			t.Fatalf("record %d nil-ness not preserved", i)
		}
	}
	// The zone filter admits every keyword that appears.
	for _, kw := range []string{"alpha", "beta", "gamma"} {
		if !zone.bf.mayContain(kw) {
			t.Fatalf("zone bloom false negative for %q", kw)
		}
	}
}

// TestBlockDecodeScratchReuse decodes two different blocks through one
// scratch and verifies the first block's handed-out slices survive —
// the aliasing contract the query engine depends on.
func TestBlockDecodeScratchReuse(t *testing.T) {
	var enc blockEncoder
	p1, _, err := enc.encode([]Record{rec(1, 0, 1, "first-kw", "shared")})
	if err != nil {
		t.Fatal(err)
	}
	p1 = append([]byte(nil), p1...) // encoder reuses its buffer
	p2, _, err := enc.encode([]Record{rec(2, 0, 1, "second-kw")})
	if err != nil {
		t.Fatal(err)
	}
	sc := new(blockScratch)
	var first Record
	if _, err := decodeBlock(p1, sc, func(r *Record) error { first = *r; return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBlock(p2, sc, func(*Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if first.Keywords[0] != "first-kw" || first.Keywords[1] != "shared" || first.State != "ended" {
		t.Fatalf("first block's strings corrupted by scratch reuse: %+v", first)
	}
}

// TestBlockDecodeRejectsTruncation: every proper prefix of a valid
// payload must fail cleanly.
func TestBlockDecodeRejectsTruncation(t *testing.T) {
	var enc blockEncoder
	payload, _, err := enc.encode(variedRecords())
	if err != nil {
		t.Fatal(err)
	}
	sc := new(blockScratch)
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeBlock(payload[:cut], sc, func(*Record) error { return nil }); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(payload))
		}
	}
	// And appended garbage is trailing-byte corruption, not ignored.
	if _, err := decodeBlock(append(append([]byte(nil), payload...), 0), sc, func(*Record) error { return nil }); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func TestWriteAndScanColFile(t *testing.T) {
	dir := t.TempDir()
	var recs []Record
	for i := uint64(1); i <= 700; i++ {
		recs = append(recs, rec(i, int(i), int(i)+3, fmt.Sprintf("kw-%d", i%50)))
	}
	path := filepath.Join(dir, "ev-00000000000000000001.col")
	m, err := writeSegmentV2(vfs.OS, path, recs, 256, bloomSizing(0, 512))
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 700 || m.FirstSeq != 1 || m.LastSeq != 700 || len(m.Blocks) != 3 {
		t.Fatalf("meta = %+v", m)
	}
	var got []Record
	var zones []blockZone
	hdr, err := scanColFile(vfs.OS, path, func(r *Record) error {
		got = append(got, *r)
		return nil
	}, func(z blockZone) { zones = append(zones, z) })
	if err != nil {
		t.Fatal(err)
	}
	if hdr.count != 700 || len(got) != 700 || len(zones) != 3 {
		t.Fatalf("scan: hdr=%+v got=%d zones=%d", hdr, len(got), len(zones))
	}
	for i := range recs {
		want, _ := json.Marshal(recs[i])
		have, _ := json.Marshal(got[i])
		if string(want) != string(have) {
			t.Fatalf("record %d: want %s have %s", i, want, have)
		}
	}
	// Rebuilt zones agree with the writer's on everything but the Bloom
	// encoding (sized differently from the duplicate-counting bound).
	for i, z := range zones {
		w := m.Blocks[i]
		if z.Off != w.Off || z.Len != w.Len || z.Count != w.Count ||
			z.FirstSeq != w.FirstSeq || z.LastSeq != w.LastSeq ||
			z.MinQuantum != w.MinQuantum || z.MaxQuantum != w.MaxQuantum ||
			z.MaxRank != w.MaxRank || z.MaxSupport != w.MaxSupport {
			t.Fatalf("zone %d rebuilt %+v != written %+v", i, z, w)
		}
	}
}

// TestBloomSizingConfigurable pins the bits-per-key sizing arithmetic
// and the no-false-negative property at a non-default shape.
func TestBloomSizingConfigurable(t *testing.T) {
	p := bloomSizing(0, 512)
	if p.bits != defaultBloomBits || p.hashes != defaultBloomHashes {
		t.Fatalf("legacy sizing = %+v", p)
	}
	p = bloomSizing(10, 512)
	if p.bits != 5120 || p.hashes != 7 {
		t.Fatalf("10 bits/key × 512 = %+v, want 5120 bits / 7 hashes", p)
	}
	if q := bloomSizing(1, 64); q.bits != 512 || q.hashes != 1 {
		t.Fatalf("floor sizing = %+v", q)
	}
	bf := newBloomSized(p)
	for i := 0; i < 512; i++ {
		bf.add(fmt.Sprintf("kw-%d", i))
	}
	for i := 0; i < 512; i++ {
		if !bf.mayContain(fmt.Sprintf("kw-%d", i)) {
			t.Fatalf("false negative at configured sizing for kw-%d", i)
		}
	}
}
