package archive

import (
	"os"
	"path/filepath"
	"testing"
)

func iterRec(seq uint64, born, last int, kws ...string) Record {
	return Record{Seq: seq, ID: seq, State: "ended",
		Keywords: kws, BornQuantum: born, LastQuantum: last}
}

// TestQueryTruncatedOnLimitStop pins the stats contract: a limit-stopped
// scan marks its stats partial instead of presenting skip counters that
// silently exclude never-visited segments.
func TestQueryTruncatedOnLimitStop(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 6; i++ {
		if err := l.Append(iterRec(uint64(i), i, i, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	recs, stats, err := l.Query(0, -1, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !stats.Truncated {
		t.Fatalf("limit-stopped query: %d recs, stats %+v — want 2 recs, Truncated", len(recs), stats)
	}
	recs, stats, err = l.Query(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || stats.Truncated {
		t.Fatalf("full query: %d recs, stats %+v — want 6 recs, not Truncated", len(recs), stats)
	}
	// Exactly-at-limit is complete, not truncated.
	if _, stats, err = l.Query(0, -1, "", 6); err != nil || stats.Truncated {
		t.Fatalf("exact-limit query: stats %+v err %v — want not Truncated", stats, err)
	}
}

// TestQueryNegativeLimitRejected: a negative limit used to be silently
// treated as unlimited; now it is a caller error.
func TestQueryNegativeLimitRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Query(0, -1, "", -1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

// TestSegmentViewPointInTime: a view taken from the active segment must
// not see records appended after Segments() returned, and a sealed
// view scans exactly its sidecar count.
func TestSegmentViewPointInTime(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if err := l.Append(iterRec(uint64(i), i, i, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	views := l.Segments()
	if len(views) != 1 || views[0].Sealed || views[0].Count != 3 {
		t.Fatalf("active view = %+v, want unsealed count 3", views)
	}
	// Concurrent-append simulation: two more records land after the view.
	for i := 4; i <= 5; i++ {
		if err := l.Append(iterRec(uint64(i), i, i, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	seen, stopped, err := views[0].Scan(func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 || stopped {
		t.Fatalf("point-in-time scan saw %d records (stopped=%v), want exactly 3", seen, stopped)
	}
}

// TestSealedSegmentOverCountIsCorruption: a sealed data file holding
// MORE records than its sidecar count is corruption and must surface as
// an error, not be silently capped at the sidecar count.
func TestSealedSegmentOverCountIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := l.Append(iterRec(uint64(i), i, i, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	views := l.Segments()
	if len(views) != 1 || !views[0].Sealed {
		t.Fatalf("want one sealed segment, got %+v", views)
	}
	// Corrupt: splice an extra valid record line into the sealed file.
	f, err := os.OpenFile(filepath.Join(dir, "ev-00000000000000000001.jsonl"), //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"id":3,"state":"ended"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := views[0].Scan(func(Record) error { return nil }); err == nil {
		t.Fatal("over-count sealed segment scanned without error")
	}
	// Query-level handling: the corrupt segment is quarantined and the
	// results (now empty — no other segment) are flagged degraded.
	recs, stats, err := l.Query(0, -1, "", 0)
	if err != nil {
		t.Fatalf("Query over over-count sealed segment: %v", err)
	}
	if !stats.Degraded || stats.Quarantined != 1 || len(recs) != 0 {
		t.Fatalf("degraded query = %+v, %+v", recs, stats)
	}
	l.Close()
}

// TestSegmentViewScanStop: ErrStop from the callback ends the scan
// early and is reported as stopped, not as an error.
func TestSegmentViewScanStop(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 4; i++ {
		if err := l.Append(iterRec(uint64(i), i, i, "kw")); err != nil {
			t.Fatal(err)
		}
	}
	views := l.Segments()
	if len(views) != 1 || !views[0].Sealed {
		t.Fatalf("want one sealed segment, got %+v", views)
	}
	n := 0
	seen, stopped, err := views[0].Scan(func(Record) error {
		n++
		if n == 2 {
			return ErrStop
		}
		return nil
	})
	if err != nil || !stopped || seen != 2 {
		t.Fatalf("stopped scan = seen %d stopped %v err %v, want 2 true nil", seen, stopped, err)
	}
}
