package archive

import (
	"testing"
)

// FuzzBlockDecode drives decodeBlock with arbitrary bytes: corrupt or
// truncated payloads must return an error, never panic, never run away.
// (In production a CRC-32C frame check sits in front of the decoder,
// so this is defense in depth for the untrusted-bytes path.)
func FuzzBlockDecode(f *testing.F) {
	var enc blockEncoder
	seeds := [][]Record{
		{rec(1, 0, 5, "alpha", "beta"), rec(2, 3, 9, "alpha"), rec(7, -2, 100)},
		variedRecords(),
		{rec(1, 0, 0)},
	}
	for _, recs := range seeds {
		payload, _, err := enc.encode(recs)
		if err != nil {
			f.Fatal(err)
		}
		p := append([]byte(nil), payload...)
		f.Add(p)
		f.Add(p[:len(p)/2])    // truncation
		f.Add(append(p, 0xff)) // trailing garbage
		mut := append([]byte(nil), p...)
		mut[len(mut)/3] ^= 0x40 // bit flip
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, payload []byte) {
		sc := new(blockScratch)
		emitted := 0
		n, err := decodeBlock(payload, sc, func(r *Record) error {
			emitted++
			// Touching every field catches out-of-bounds arena slices.
			_ = r.State
			for _, kw := range r.Keywords {
				_ = kw
			}
			for _, kw := range r.AllKeywords {
				_ = kw
			}
			return nil
		})
		if err != nil {
			return // rejected cleanly — the only requirement
		}
		if n != emitted {
			t.Fatalf("decode reported %d records, emitted %d", n, emitted)
		}
		if n > maxBlockRecords {
			t.Fatalf("decode emitted %d records from a %d-byte payload", n, len(payload))
		}
	})
}
