package archive

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// This file is the v2 columnar block codec. A v2 segment's body is a
// sequence of CRC-framed blocks, each holding up to Options.BlockEvents
// records column-at-a-time:
//
//	uvarint  record count n
//	uvarint  dictionary size d, d × uvarint string length, d × raw bytes
//	         (states and keywords interned together, first-appearance order)
//	seq      column: uvarint base, n−1 × uvarint delta (strictly positive)
//	id       column: uvarint base, n−1 × zigzag delta (mod-2⁶⁴ arithmetic)
//	born     column: zigzag base, n−1 × zigzag delta
//	last     column: n × uvarint (LastQuantum − BornQuantum, never negative)
//	rank     column: n × 8-byte little-endian float64 bits (exact round-trip)
//	peak     column: n × 8-byte little-endian float64 bits
//	size, support, first_reported columns: n × zigzag varint
//	merged_into, split_from columns: n × uvarint
//	flags    column: n × byte (evolved/reported/spurious + nil-ness of the
//	         keyword slices, so JSON null vs [] survives a v1→v2 rewrite)
//	state    column: n × uvarint dictionary index
//	keywords column: n × (uvarint m, m × uvarint dictionary index)
//	all_keywords column: same shape
//
// The decoder never trusts the bytes: every varint read is
// bounds-checked, dictionary indexes are range-checked, counts are
// clamped, and the payload must be consumed exactly — any violation is
// an error, never a panic (the fuzz target in fuzz_test.go enforces
// this). Strings are carved from one backing copy per block and
// keyword slices from one arena per block, so a decoded block costs
// O(1) allocations regardless of record count; callers may retain the
// slices (arenas are never reused).
const (
	// defaultBlockEvents caps records per block when Options.BlockEvents
	// is zero: big enough to amortize per-block framing and dictionary
	// overhead, small enough that zone maps skip at useful granularity.
	defaultBlockEvents = 256
	// maxBlockRecords bounds how far the decoder trusts a block's count
	// field before reading columns.
	maxBlockRecords = 1 << 20
	// maxBlockDict bounds the dictionary entry count the same way.
	maxBlockDict = 1 << 20
)

// Record flag bits (one byte per record in the flags column).
const (
	flagEvolved  = 1 << 0
	flagReported = 1 << 1
	flagSpurious = 1 << 2
	// flagKwNil / flagAllKwNil record that the slice was nil rather than
	// empty — Keywords has no omitempty, so nil marshals as JSON null and
	// [] as [], and byte-identical answers require preserving which.
	flagKwNil    = 1 << 3
	flagAllKwNil = 1 << 4

	flagsKnown = flagEvolved | flagReported | flagSpurious | flagKwNil | flagAllKwNil
)

// emptyStrings is the shared non-nil empty slice the decoder hands out
// for present-but-empty keyword sets (marshals as [], not null).
var emptyStrings = make([]string, 0)

// blockZone is one block's zone map, stored in the v2 sidecar: the
// frame location plus the per-column bounds that let a scan prove the
// block cannot match a predicate without reading it.
type blockZone struct {
	Off   int64 `json:"off"`   // frame start offset in the data file
	Len   int   `json:"len"`   // framed length: 8-byte frame header + payload
	Count int   `json:"count"` // records in the block

	FirstSeq   uint64  `json:"first_seq"`
	LastSeq    uint64  `json:"last_seq"`
	MinQuantum int     `json:"min_quantum"` // min BornQuantum
	MaxQuantum int     `json:"max_quantum"` // max LastQuantum
	MinRank    float64 `json:"min_rank"`    // over PeakRank (the rank-floor column)
	MaxRank    float64 `json:"max_rank"`
	MaxSupport int     `json:"max_support"` // max user count
	// Bloom is a small keyword filter over the block's dictionary,
	// sized from the block's distinct-string count.
	Bloom string `json:"bloom,omitempty"`

	bf bloom // decoded lazily from Bloom
}

func (z *blockZone) observe(rec *Record) {
	if z.Count == 0 {
		z.FirstSeq = rec.Seq
		z.MinQuantum, z.MaxQuantum = rec.BornQuantum, rec.LastQuantum
		z.MinRank, z.MaxRank = rec.PeakRank, rec.PeakRank
		z.MaxSupport = rec.Support
	}
	z.LastSeq = rec.Seq
	z.Count++
	if rec.BornQuantum < z.MinQuantum {
		z.MinQuantum = rec.BornQuantum
	}
	if rec.LastQuantum > z.MaxQuantum {
		z.MaxQuantum = rec.LastQuantum
	}
	if rec.PeakRank < z.MinRank {
		z.MinRank = rec.PeakRank
	}
	if rec.PeakRank > z.MaxRank {
		z.MaxRank = rec.PeakRank
	}
	if rec.Support > z.MaxSupport {
		z.MaxSupport = rec.Support
	}
}

// mayContainKeywords reports whether the block's filter admits every
// keyword (AND semantics, matching the query engine's). A zone with no
// filter admits everything.
func (z *blockZone) mayContainKeywords(kws []string) bool {
	for _, kw := range kws {
		if !z.bf.mayContain(kw) {
			return false
		}
	}
	return true
}

// blockEncoder holds the reusable state for encoding blocks. Not safe
// for concurrent use; the compactor owns one per rewrite.
type blockEncoder struct {
	idx  map[string]uint64
	keys []string
	buf  []byte
}

func (e *blockEncoder) intern(s string) uint64 {
	if e.idx == nil {
		e.idx = make(map[string]uint64)
	}
	if i, ok := e.idx[s]; ok {
		return i
	}
	i := uint64(len(e.keys))
	e.idx[s] = i
	e.keys = append(e.keys, s)
	return i
}

// encode serializes recs (ascending Seq, non-empty) into one block
// payload, returning the payload (valid until the next encode) and its
// zone map (Off/Len/Bloom left for the segment writer to fill —
// encode sets the bounds and the filter).
func (e *blockEncoder) encode(recs []Record) ([]byte, blockZone, error) {
	if len(recs) == 0 || len(recs) > maxBlockRecords {
		return nil, blockZone{}, fmt.Errorf("archive: encode block: bad record count %d", len(recs))
	}
	clear(e.idx)
	e.keys = e.keys[:0]
	var zone blockZone
	for i := range recs {
		r := &recs[i]
		if i > 0 && r.Seq <= recs[i-1].Seq {
			return nil, blockZone{}, fmt.Errorf("archive: encode block: records out of seq order (%d after %d)",
				r.Seq, recs[i-1].Seq)
		}
		if r.LastQuantum < r.BornQuantum {
			return nil, blockZone{}, fmt.Errorf("archive: encode block: record %d spans backwards", r.Seq)
		}
		e.intern(r.State)
		for _, k := range r.Keywords {
			e.intern(k)
		}
		for _, k := range r.AllKeywords {
			e.intern(k)
		}
		zone.observe(r)
	}

	b := e.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(recs)))
	b = binary.AppendUvarint(b, uint64(len(e.keys)))
	for _, s := range e.keys {
		b = binary.AppendUvarint(b, uint64(len(s)))
	}
	for _, s := range e.keys {
		b = append(b, s...)
	}
	b = binary.AppendUvarint(b, recs[0].Seq)
	for i := 1; i < len(recs); i++ {
		b = binary.AppendUvarint(b, recs[i].Seq-recs[i-1].Seq)
	}
	b = binary.AppendUvarint(b, recs[0].ID)
	for i := 1; i < len(recs); i++ {
		b = binary.AppendVarint(b, int64(recs[i].ID-recs[i-1].ID))
	}
	b = binary.AppendVarint(b, int64(recs[0].BornQuantum))
	for i := 1; i < len(recs); i++ {
		b = binary.AppendVarint(b, int64(recs[i].BornQuantum-recs[i-1].BornQuantum))
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].LastQuantum-recs[i].BornQuantum))
	}
	for i := range recs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(recs[i].Rank))
	}
	for i := range recs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(recs[i].PeakRank))
	}
	for i := range recs {
		b = binary.AppendVarint(b, int64(recs[i].Size))
	}
	for i := range recs {
		b = binary.AppendVarint(b, int64(recs[i].Support))
	}
	for i := range recs {
		b = binary.AppendVarint(b, int64(recs[i].FirstReported))
	}
	for i := range recs {
		b = binary.AppendUvarint(b, recs[i].MergedInto)
	}
	for i := range recs {
		b = binary.AppendUvarint(b, recs[i].SplitFrom)
	}
	for i := range recs {
		r := &recs[i]
		var fl byte
		if r.Evolved {
			fl |= flagEvolved
		}
		if r.Reported {
			fl |= flagReported
		}
		if r.Spurious {
			fl |= flagSpurious
		}
		if r.Keywords == nil {
			fl |= flagKwNil
		}
		if r.AllKeywords == nil {
			fl |= flagAllKwNil
		}
		b = append(b, fl)
	}
	for i := range recs {
		b = binary.AppendUvarint(b, e.idx[recs[i].State])
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(len(recs[i].Keywords)))
		for _, k := range recs[i].Keywords {
			b = binary.AppendUvarint(b, e.idx[k])
		}
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(len(recs[i].AllKeywords)))
		for _, k := range recs[i].AllKeywords {
			b = binary.AppendUvarint(b, e.idx[k])
		}
	}
	e.buf = b

	// The zone's keyword filter, sized from this block's distinct-string
	// count (duplicate adds are harmless).
	bf := newBloomSized(blockBloomParams(len(e.keys)))
	for i := range recs {
		for _, k := range recs[i].Keywords {
			bf.add(k)
		}
		for _, k := range recs[i].AllKeywords {
			bf.add(k)
		}
	}
	zone.Bloom = bf.encode()
	zone.bf = bf
	return b, zone, nil
}

// blockScratch is the reusable decode state. Pooled (scratchPool), so a
// steady-state scan allocates only the per-block string backing and
// keyword arena — the two things callers may retain.
type blockScratch struct {
	dict     []string
	seq      []uint64
	id       []uint64
	born     []int
	last     []int
	rank     []float64
	peak     []float64
	size     []int
	support  []int
	firstRep []int
	merged   []uint64
	split    []uint64
	flags    []byte
	state    []uint32
	kwIdx    []uint32 // flat keyword dictionary refs
	kwOff    []uint32 // n+1 offsets into kwIdx
	allIdx   []uint32
	allOff   []uint32
	frame    []byte // frame read buffer
	rec      Record
}

var scratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// byteReader is the decoder's bounds-checked cursor. All read methods
// return an error instead of panicking on truncated or oversized input.
type byteReader struct {
	b   []byte
	off int
}

var errBlockCorrupt = fmt.Errorf("archive: corrupt block")

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errBlockCorrupt
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errBlockCorrupt
	}
	r.off += n
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if len(r.b)-r.off < 8 {
		return 0, errBlockCorrupt
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// intUvarint reads a uvarint that must fit a non-negative int.
func (r *byteReader) intUvarint() (int, error) {
	v, err := r.uvarint()
	if err != nil || v > math.MaxInt64 || int64(v) > int64(maxInt) {
		return 0, errBlockCorrupt
	}
	return int(v), nil
}

const maxInt = int(^uint(0) >> 1)

// decodeBlock decodes one block payload column-at-a-time and hands each
// record to fn in Seq order. The *Record and its slices stay valid
// after fn returns (they alias per-block arenas that are never reused),
// but the pointer itself is reused — fn must copy the struct if it
// keeps it. fn errors (including ErrStop) abort the decode and are
// returned as-is; corrupt input returns an error wrapping
// errBlockCorrupt, never panics.
func decodeBlock(payload []byte, sc *blockScratch, fn func(*Record) error) (int, error) {
	r := &byteReader{b: payload}
	n, err := r.intUvarint()
	if err != nil || n < 1 || n > maxBlockRecords {
		return 0, errBlockCorrupt
	}

	// Dictionary: one backing string per block, entries carved by slicing.
	dn, err := r.intUvarint()
	if err != nil || dn > maxBlockDict {
		return 0, errBlockCorrupt
	}
	sc.dict = grow(sc.dict, dn)
	sc.seq = grow(sc.seq, dn) // seq column doubles as the length stash
	total := 0
	for i := 0; i < dn; i++ {
		ln, err := r.intUvarint()
		// Each length is bounded by the payload, so with dn ≤ 2²⁰ the
		// running total cannot overflow int on 64-bit.
		if err != nil || ln > len(r.b)-r.off {
			return 0, errBlockCorrupt
		}
		sc.seq[i] = uint64(ln)
		total += ln
	}
	if total > len(r.b)-r.off {
		return 0, errBlockCorrupt
	}
	backing := string(r.b[r.off : r.off+total])
	r.off += total
	for i, pos := 0, 0; i < dn; i++ {
		ln := int(sc.seq[i])
		sc.dict[i] = backing[pos : pos+ln]
		pos += ln
	}

	// Fixed columns.
	sc.seq = grow(sc.seq, n)
	sc.id = grow(sc.id, n)
	sc.born = grow(sc.born, n)
	sc.last = grow(sc.last, n)
	sc.rank = grow(sc.rank, n)
	sc.peak = grow(sc.peak, n)
	sc.size = grow(sc.size, n)
	sc.support = grow(sc.support, n)
	sc.firstRep = grow(sc.firstRep, n)
	sc.merged = grow(sc.merged, n)
	sc.split = grow(sc.split, n)
	sc.flags = grow(sc.flags, n)
	sc.state = grow(sc.state, n)

	if sc.seq[0], err = r.uvarint(); err != nil {
		return 0, err
	}
	for i := 1; i < n; i++ {
		d, err := r.uvarint()
		if err != nil || d == 0 { // zero delta = duplicate ordinal
			return 0, errBlockCorrupt
		}
		sc.seq[i] = sc.seq[i-1] + d
		if sc.seq[i] < sc.seq[i-1] { // wrapped
			return 0, errBlockCorrupt
		}
	}
	if sc.id[0], err = r.uvarint(); err != nil {
		return 0, err
	}
	for i := 1; i < n; i++ {
		d, err := r.varint()
		if err != nil {
			return 0, err
		}
		sc.id[i] = sc.id[i-1] + uint64(d)
	}
	b0, err := r.varint()
	if err != nil {
		return 0, err
	}
	sc.born[0] = int(b0)
	for i := 1; i < n; i++ {
		d, err := r.varint()
		if err != nil {
			return 0, err
		}
		sc.born[i] = sc.born[i-1] + int(d)
	}
	for i := 0; i < n; i++ {
		span, err := r.intUvarint()
		if err != nil {
			return 0, err
		}
		sc.last[i] = sc.born[i] + span
		if sc.last[i] < sc.born[i] { // overflow
			return 0, errBlockCorrupt
		}
	}
	for i := 0; i < n; i++ {
		bits, err := r.u64()
		if err != nil {
			return 0, err
		}
		sc.rank[i] = math.Float64frombits(bits)
	}
	for i := 0; i < n; i++ {
		bits, err := r.u64()
		if err != nil {
			return 0, err
		}
		sc.peak[i] = math.Float64frombits(bits)
	}
	for _, col := range []*[]int{&sc.size, &sc.support, &sc.firstRep} {
		for i := 0; i < n; i++ {
			v, err := r.varint()
			if err != nil {
				return 0, err
			}
			(*col)[i] = int(v)
		}
	}
	for _, col := range []*[]uint64{&sc.merged, &sc.split} {
		for i := 0; i < n; i++ {
			v, err := r.uvarint()
			if err != nil {
				return 0, err
			}
			(*col)[i] = v
		}
	}
	if len(r.b)-r.off < n {
		return 0, errBlockCorrupt
	}
	copy(sc.flags, r.b[r.off:r.off+n])
	r.off += n
	for i := 0; i < n; i++ {
		if sc.flags[i]&^flagsKnown != 0 {
			return 0, errBlockCorrupt
		}
	}
	for i := 0; i < n; i++ {
		v, err := r.uvarint()
		if err != nil || v >= uint64(dn) {
			return 0, errBlockCorrupt
		}
		sc.state[i] = uint32(v)
	}

	// Keyword index lists: flat refs + per-record offsets.
	sc.kwIdx, sc.kwOff, err = readIndexLists(r, n, dn, sc.kwIdx, sc.kwOff, sc.flags, flagKwNil)
	if err != nil {
		return 0, err
	}
	sc.allIdx, sc.allOff, err = readIndexLists(r, n, dn, sc.allIdx, sc.allOff, sc.flags, flagAllKwNil)
	if err != nil {
		return 0, err
	}
	if r.off != len(r.b) {
		return 0, errBlockCorrupt // trailing garbage
	}

	// One string arena for every keyword slice in the block. Handed-out
	// slices alias it, so it is allocated fresh per block, never reused.
	nkw, nall := len(sc.kwIdx), len(sc.allIdx)
	var arena []string
	if nkw+nall > 0 {
		arena = make([]string, nkw+nall)
		for i, di := range sc.kwIdx {
			arena[i] = sc.dict[di]
		}
		for i, di := range sc.allIdx {
			arena[nkw+i] = sc.dict[di]
		}
	}

	rec := &sc.rec
	for i := 0; i < n; i++ {
		*rec = Record{
			Seq:           sc.seq[i],
			ID:            sc.id[i],
			State:         sc.dict[sc.state[i]],
			Rank:          sc.rank[i],
			PeakRank:      sc.peak[i],
			BornQuantum:   sc.born[i],
			LastQuantum:   sc.last[i],
			Evolved:       sc.flags[i]&flagEvolved != 0,
			Size:          sc.size[i],
			Support:       sc.support[i],
			Reported:      sc.flags[i]&flagReported != 0,
			FirstReported: sc.firstRep[i],
			MergedInto:    sc.merged[i],
			SplitFrom:     sc.split[i],
			Spurious:      sc.flags[i]&flagSpurious != 0,
		}
		if sc.flags[i]&flagKwNil == 0 {
			lo, hi := sc.kwOff[i], sc.kwOff[i+1]
			if lo == hi {
				rec.Keywords = emptyStrings
			} else {
				rec.Keywords = arena[lo:hi:hi]
			}
		}
		if sc.flags[i]&flagAllKwNil == 0 {
			lo, hi := uint32(nkw)+sc.allOff[i], uint32(nkw)+sc.allOff[i+1]
			if lo == hi {
				rec.AllKeywords = emptyStrings
			} else {
				rec.AllKeywords = arena[lo:hi:hi]
			}
		}
		if err := fn(rec); err != nil {
			return i, err
		}
	}
	return n, nil
}

// readIndexLists reads n length-prefixed dictionary-index lists into a
// flat refs slice plus n+1 offsets. A record whose nil flag is set must
// have an empty list.
func readIndexLists(r *byteReader, n, dn int, idx, off []uint32, flags []byte, nilFlag byte) ([]uint32, []uint32, error) {
	off = grow(off, n+1)
	idx = idx[:0]
	off[0] = 0
	for i := 0; i < n; i++ {
		m, err := r.intUvarint()
		if err != nil || m > len(r.b)-r.off { // each ref is ≥ 1 byte
			return idx, off, errBlockCorrupt
		}
		if m > 0 && flags[i]&nilFlag != 0 {
			return idx, off, errBlockCorrupt
		}
		for j := 0; j < m; j++ {
			v, err := r.uvarint()
			if err != nil || v >= uint64(dn) {
				return idx, off, errBlockCorrupt
			}
			idx = append(idx, uint32(v))
		}
		off[i+1] = uint32(len(idx))
	}
	return idx, off, nil
}
