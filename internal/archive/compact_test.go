package archive

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// queryJSON snapshots a query's full result set as JSON — the
// byte-identity oracle the compaction tests compare against.
func queryJSON(t *testing.T, l *Log, from, to int, kw string) string {
	t.Helper()
	recs, _, err := l.Query(from, to, kw, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// seedArchive fills dir with n records through tiny rotation bounds so
// the sealed list holds many small v1 segments, then closes the Log.
func seedArchive(t *testing.T, dir string, n int, opt Options) {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		r := rec(uint64(i), i%40, i%40+3, "common", fmt.Sprintf("kw-%d", i%7))
		if i%5 == 0 {
			r.Keywords = nil // exercise nil-vs-empty through the rewrite
			r.AllKeywords = []string{}
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// snapshotDir reads every file in dir into memory.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = raw
	}
	return out
}

// restoreDir resets dir to exactly the given snapshot.
func restoreDir(t *testing.T, dir string, snap map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
			t.Fatal(err)
		}
	}
	for name, raw := range snap {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
			t.Fatal(err)
		}
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestCompactionMergesSmallSegments(t *testing.T) {
	dir := t.TempDir()
	seedArchive(t, dir, 9, Options{SegmentEvents: 2}) // {1,2}{3,4}{5,6}{7,8} sealed + {9}
	l, err := Open(dir, Options{SegmentEvents: 100, BucketQuanta: 1024, BlockEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	before := queryJSON(t, l, 0, -1, "")
	beforeKw := queryJSON(t, l, 0, -1, "kw-3")

	st, worked, err := l.CompactOnce()
	if err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	if st.Compactions != 1 || st.SegmentsIn != 4 || st.Records != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesReclaimed == 0 {
		t.Fatal("merge reclaimed no bytes")
	}
	if n := l.ColumnarSegmentCount(); n != 1 {
		t.Fatalf("columnar segments = %d", n)
	}
	if n := l.SegmentCount(); n != 2 { // merged v2 + active
		t.Fatalf("segments = %d, want 2", n)
	}
	if got := queryJSON(t, l, 0, -1, ""); got != before {
		t.Fatalf("full query changed:\n before %s\n after  %s", before, got)
	}
	if got := queryJSON(t, l, 0, -1, "kw-3"); got != beforeKw {
		t.Fatalf("keyword query changed:\n before %s\n after  %s", beforeKw, got)
	}
	c, segs, recs, bytes := l.CompactTotals()
	if c != 1 || segs != 4 || recs != 8 || bytes == 0 {
		t.Fatalf("totals = %d/%d/%d/%d", c, segs, recs, bytes)
	}
	// The singleton v2 segment is never re-picked: compaction converges.
	if _, worked, err := l.CompactOnce(); err != nil || worked {
		t.Fatalf("second CompactOnce: worked=%v err=%v", worked, err)
	}
	// Inputs are gone from disk.
	if _, err := os.Stat(l.segPath(1)); !os.IsNotExist(err) {
		t.Fatal("input jsonl segment survived compaction")
	}
}

// TestCompactionRewritesColdSegments covers the format-rewrite path:
// segments too far apart in time to merge are still rewritten v1→v2
// one at a time, and CompactAll converges to an all-columnar body.
func TestCompactionRewritesColdSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEvents: 2, BucketQuanta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ { // buckets 1000 quanta apart: no merge run
		q := i / 2 * 1000
		if err := l.Append(rec(uint64(i), q, q+3, "common", fmt.Sprintf("kw-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{SegmentEvents: 2, BucketQuanta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	before := queryJSON(t, l, 0, -1, "")
	beforeMid := queryJSON(t, l, 2000, 2999, "")

	st, err := l.CompactAll()
	if err != nil {
		t.Fatal(err)
	}
	if st.Compactions != 3 || st.SegmentsIn != 3 { // three sealed v1 rewrites, 1:1
		t.Fatalf("stats = %+v", st)
	}
	if n := l.ColumnarSegmentCount(); n != 3 {
		t.Fatalf("columnar segments = %d, want 3", n)
	}
	if got := queryJSON(t, l, 0, -1, ""); got != before {
		t.Fatalf("full query changed after rewrite:\n before %s\n after  %s", before, got)
	}
	if got := queryJSON(t, l, 2000, 2999, ""); got != beforeMid {
		t.Fatalf("range query changed after rewrite")
	}
	// Time skipping still works across the rewritten segments.
	_, qs, err := l.Query(2000, 2999, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if qs.SkippedByTime == 0 {
		t.Fatalf("no time skips after rewrite: %+v", qs)
	}
}

// TestCompactionCrashRecovery stages the on-disk state a kill -9 leaves
// at each step of the compaction commit protocol and verifies Open
// converges every one of them to the same exactly-once record set.
func TestCompactionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	seedArchive(t, dir, 9, Options{SegmentEvents: 2})
	opt := Options{SegmentEvents: 100, BucketQuanta: 1024, BlockEvents: 4}
	pre := snapshotDir(t, dir)

	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := queryJSON(t, l, 0, -1, "")
	wantKw := queryJSON(t, l, 0, -1, "kw-2")
	if _, worked, err := l.CompactOnce(); err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	post := snapshotDir(t, dir)
	colName := filepath.Base(l.colPath(1))
	sideName := filepath.Base(l.colMetaPath(1))
	if _, ok := post[colName]; !ok {
		t.Fatalf("no merged col file in %v", post)
	}

	windows := []struct {
		name  string
		stage func()
	}{
		{"BeforeRename", func() { // crash mid-write: only a tmp exists
			restoreDir(t, dir, pre)
			if err := os.WriteFile(filepath.Join(dir, colName+".tmp"), []byte("torn"), 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
				t.Fatal(err)
			}
		}},
		{"AfterRenameBeforeSidecar", func() { // col committed, sidecar missing, inputs alive
			restoreDir(t, dir, pre)
			if err := os.WriteFile(filepath.Join(dir, colName), post[colName], 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
				t.Fatal(err)
			}
		}},
		{"AfterSidecarBeforeDeletes", func() { // everything written, inputs alive
			restoreDir(t, dir, pre)
			for _, name := range []string{colName, sideName} {
				if err := os.WriteFile(filepath.Join(dir, name), post[name], 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
					t.Fatal(err)
				}
			}
		}},
		{"MidDeletes", func() { // data files of inputs gone, their sidecars orphaned
			restoreDir(t, dir, post)
			for name, raw := range pre {
				if strings.HasSuffix(name, metaExt) && pre[strings.TrimSuffix(name, metaExt)+segExt] != nil {
					if name == sideName {
						continue
					}
					if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
						t.Fatal(err)
					}
				}
			}
		}},
	}
	for _, w := range windows {
		t.Run(w.name, func(t *testing.T) {
			w.stage()
			l, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if n := l.EventCount(); n != 9 {
				t.Fatalf("events = %d, want 9 (lost or duplicated records)", n)
			}
			if got := queryJSON(t, l, 0, -1, ""); got != want {
				t.Fatalf("recovered query differs:\n want %s\n have %s", want, got)
			}
			if got := queryJSON(t, l, 0, -1, "kw-2"); got != wantKw {
				t.Fatalf("recovered keyword query differs")
			}
			// Recovery converged the directory: no tmp files, no superseded
			// inputs, no orphan sidecars.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("tmp file %s survived recovery", e.Name())
				}
				if e.Name() == "ev-00000000000000000001.jsonl" && w.name != "BeforeRename" {
					t.Fatal("superseded input segment survived recovery")
				}
			}
		})
	}
}

// TestCompactionCrashStaleSidecarReopen stages the nastiest window: a
// re-compaction renamed a NEW data file over an existing .col path and
// died before rewriting the sidecar, leaving zone maps that describe
// the old bytes. Open must detect the header mismatch and rebuild.
func TestCompactionCrashStaleSidecarReopen(t *testing.T) {
	dir := t.TempDir()
	var oldRecs, allRecs []Record
	for i := 1; i <= 6; i++ {
		r := rec(uint64(i), i, i+2, "kw")
		allRecs = append(allRecs, r)
		if i <= 4 {
			oldRecs = append(oldRecs, r)
		}
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Old merged segment: records 1..4, sidecar in agreement.
	m, err := writeSegmentV2(l.fs, l.colPath(1), oldRecs, 2, l.bloomPar)
	if err != nil {
		t.Fatal(err)
	}
	m.File = 1
	if err := l.writeMeta(&m, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	staleSidecar, err := os.ReadFile(l.colMetaPath(1))
	if err != nil {
		t.Fatal(err)
	}
	// Re-merge commits records 1..6 over the same path...
	if _, err := writeSegmentV2(l.fs, l.colPath(1), allRecs, 2, l.bloomPar); err != nil {
		t.Fatal(err)
	}
	// ...and the crash leaves the 4-record sidecar in place.
	if err := os.WriteFile(l.colMetaPath(1), staleSidecar, 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _, err := l2.Query(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("recovered %d records, want 6 (stale sidecar trusted?)", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("order broken: %+v", recs)
		}
	}
	// The rebuilt sidecar now agrees with the data file.
	raw, err := os.ReadFile(l2.colMetaPath(1))
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt segMeta
	if err := json.Unmarshal(raw, &rebuilt); err != nil {
		t.Fatal(err)
	}
	if rebuilt.Count != 6 || rebuilt.LastSeq != 6 {
		t.Fatalf("sidecar not rebuilt: %+v", rebuilt)
	}
}

// TestCompactionScanFallback takes views, compacts their segments away
// underneath them, and verifies in-flight scans still return exactly
// the original record sets via the covering-segment fallback.
func TestCompactionScanFallback(t *testing.T) {
	dir := t.TempDir()
	seedArchive(t, dir, 9, Options{SegmentEvents: 2})
	l, err := Open(dir, Options{SegmentEvents: 100, BucketQuanta: 1024, BlockEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	views := l.Segments()
	if len(views) != 5 {
		t.Fatalf("views = %d, want 5", len(views))
	}
	if _, worked, err := l.CompactOnce(); err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	var got []uint64
	for i := range views {
		v := &views[i]
		if _, _, err := v.ScanPred(matchAll(), func(r *Record) error {
			got = append(got, r.Seq)
			return nil
		}); err != nil {
			t.Fatalf("stale view %d scan: %v", i, err)
		}
	}
	if len(got) != 9 {
		t.Fatalf("stale views yielded %d records, want 9: %v", len(got), got)
	}
	seen := map[uint64]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate seq %d through fallback", s)
		}
		seen[s] = true
	}
}

// TestCompactionFootprint pins the v2 format's size win: the same event
// set is ≥ 5× smaller as a compacted columnar body than as the v1
// JSONL segments (data + sidecars) it replaced.
func TestCompactionFootprint(t *testing.T) {
	dir := t.TempDir()
	n := 4096 // multiple of SegmentEvents: everything seals, nothing stays active
	seedArchive(t, dir, n, Options{SegmentEvents: 16, BucketQuanta: 1024})
	v1Bytes := dirSize(t, dir)

	l, err := Open(dir, Options{SegmentEvents: n, BucketQuanta: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.CompactAll(); err != nil {
		t.Fatal(err)
	}
	v2Bytes := dirSize(t, dir)
	if l.EventCount() != n {
		t.Fatalf("events = %d, want %d", l.EventCount(), n)
	}
	if v2Bytes*5 > v1Bytes {
		t.Fatalf("footprint: v1 %d B → v2 %d B (%.1f×), want ≥ 5×",
			v1Bytes, v2Bytes, float64(v1Bytes)/float64(v2Bytes))
	}
}

// TestCompactionBlockSkipping verifies ScanPred prunes below segment
// granularity on every zone-map dimension.
func TestCompactionBlockSkipping(t *testing.T) {
	dir := t.TempDir()
	// SegmentEvents 16: the 16th append rotates, so the whole batch is a
	// sealed v1 segment the compactor can rewrite (no reopen — that would
	// resume the only JSONL segment as active again).
	l, err := Open(dir, Options{SegmentEvents: 16, BucketQuanta: 1 << 20, BlockEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 16 records → 4 blocks of 4: quanta 0-3, 100-103, 200-203, 300-303;
	// ranks rise with seq; block-local keywords.
	for i := 0; i < 16; i++ {
		q := i / 4 * 100
		r := rec(uint64(i+1), q+i%4, q+i%4, fmt.Sprintf("blk-%d", i/4))
		r.PeakRank = float64(i)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, worked, err := l.CompactOnce(); err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	views := l.Segments()
	if len(views) != 1 || views[0].Format != 2 || views[0].Blocks() != 4 {
		t.Fatalf("views = %+v", views)
	}
	v := &views[0]

	cases := []struct {
		name    string
		pred    Pred
		records int
		scanned int
		skipped func(BlockStats) int
	}{
		{"time", Pred{From: 100, To: 103}, 4, 1, func(b BlockStats) int { return b.SkippedByTime }},
		{"rank", Pred{To: -1, MinRank: 12.5}, 4, 1, func(b BlockStats) int { return b.SkippedByRank }},
		{"keyword", Pred{To: -1, Keywords: []string{"blk-2"}}, 4, 1, func(b BlockStats) int { return b.SkippedByKeyword }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := 0
			bs, _, err := v.ScanPred(c.pred, func(*Record) error { n++; return nil })
			if err != nil {
				t.Fatal(err)
			}
			if bs.Blocks != 4 || bs.Scanned != c.scanned || c.skipped(bs) != 3 {
				t.Fatalf("stats = %+v", bs)
			}
			if n != c.records || bs.Records != c.records {
				t.Fatalf("records = %d (stats %d), want %d", n, bs.Records, c.records)
			}
		})
	}
}

// TestCompactionMixedFormatReopen: a directory holding v1 and v2
// segments side by side answers identically before and after a restart.
func TestCompactionMixedFormatReopen(t *testing.T) {
	dir := t.TempDir()
	seedArchive(t, dir, 13, Options{SegmentEvents: 2})
	opt := Options{SegmentEvents: 4, BucketQuanta: 1024, BlockEvents: 4}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	// One merge only: sealed list is now v2, v1, v1... mixed.
	if _, worked, err := l.CompactOnce(); err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	if l.ColumnarSegmentCount() == 0 || l.ColumnarSegmentCount() == len(l.Segments()) {
		t.Fatalf("directory not mixed-format: %d columnar of %d", l.ColumnarSegmentCount(), len(l.Segments()))
	}
	want := queryJSON(t, l, 0, -1, "")
	wantKw := queryJSON(t, l, 0, -1, "kw-4")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := queryJSON(t, l, 0, -1, ""); got != want {
		t.Fatalf("mixed-format reopen differs:\n want %s\n have %s", want, got)
	}
	if got := queryJSON(t, l, 0, -1, "kw-4"); got != wantKw {
		t.Fatalf("mixed-format keyword reopen differs")
	}
}
