package query

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"testing"

	"repro/internal/akg"
	"repro/internal/archive"
	"repro/internal/detect"
	"repro/internal/stream"
)

// fakeSnap implements Snapshot over a fixed (LastQuantum, ID)-sorted
// event list — enough to unit-test the executor without a detector.
type fakeSnap struct{ evs []*detect.Event }

func newFakeSnap(evs ...*detect.Event) *fakeSnap {
	slices.SortFunc(evs, func(a, b *detect.Event) int {
		if a.LastQuantum != b.LastQuantum {
			return a.LastQuantum - b.LastQuantum
		}
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return &fakeSnap{evs: evs}
}

func (f *fakeSnap) EventsSinceQuantum(from int) []*detect.Event {
	i := sort.Search(len(f.evs), func(i int) bool { return f.evs[i].LastQuantum >= from })
	return f.evs[i:]
}

func (f *fakeSnap) EventsWithKeyword(kw string) []*detect.Event {
	var out []*detect.Event
	for _, ev := range f.evs {
		if viewHasKeywords(ev, []string{kw}) {
			out = append(out, ev)
		}
	}
	return out
}

func (f *fakeSnap) Find(id uint64) *detect.Event {
	for _, ev := range f.evs {
		if ev.ID == id {
			return ev
		}
	}
	return nil
}

// view builds a finished snapshot event.
func view(id uint64, born, last int, kws ...string) *detect.Event {
	all := make(map[string]struct{}, len(kws))
	for _, kw := range kws {
		all[kw] = struct{}{}
	}
	slices.Sort(kws)
	return &detect.Event{
		ID: id, BornQuantum: born, LastQuantum: last,
		Keywords: kws, AllKeywords: all,
		State: detect.EventEnded, Rank: 1, PeakRank: 1,
		RankHistory: []float64{1},
	}
}

// rec builds an archive record matching view(id, born, last, kws...).
func rec(seq, id uint64, born, last int, kws ...string) archive.Record {
	slices.Sort(kws)
	return archive.Record{
		Seq: seq, ID: id, State: "ended",
		Keywords: kws, AllKeywords: kws,
		BornQuantum: born, LastQuantum: last,
		Rank: 1, PeakRank: 1,
	}
}

func openArchive(t testing.TB, segmentEvents int) *archive.Log {
	t.Helper()
	l, err := archive.Open(t.TempDir(), archive.Options{SegmentEvents: segmentEvents})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendAll(t testing.TB, l *archive.Log, recs ...archive.Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func ids(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.ID
	}
	return out
}

// TestMergeOrderAcrossSources interleaves snapshot and archive events
// and checks the merged (LastQuantum, ID) order plus per-source hit
// accounting.
func TestMergeOrderAcrossSources(t *testing.T) {
	snap := newFakeSnap(view(2, 1, 3, "flood"), view(5, 4, 8, "storm"))
	arch := openArchive(t, 4)
	appendAll(t, arch,
		rec(1, 1, 0, 2, "quake"),
		rec(2, 3, 2, 5, "fire"),
		rec(3, 4, 6, 6, "wind"),
	)
	res, err := Run(snap, arch, Request{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5} // keys (2,1) (3,2) (5,3) (6,4) (8,5)
	if !slices.Equal(ids(res.Events), want) {
		t.Fatalf("merged order = %v, want %v", ids(res.Events), want)
	}
	if res.Stats.SnapshotHits != 2 || res.Stats.ArchiveHits != 3 {
		t.Fatalf("hits = %+v, want 2 snapshot / 3 archive", res.Stats)
	}
	if res.Stats.Truncated || res.Cursor != "" {
		t.Fatalf("unlimited scan reported truncated: %+v cursor=%q", res.Stats, res.Cursor)
	}
}

// TestDedupAcrossEvictionBoundary: an event retained in the snapshot
// AND already archived (evicted after the epoch published) must be
// served exactly once.
func TestDedupAcrossEvictionBoundary(t *testing.T) {
	snap := newFakeSnap(view(7, 2, 4, "quake"))
	arch := openArchive(t, 4)
	appendAll(t, arch, rec(1, 7, 2, 4, "quake"))
	res, err := Run(snap, arch, Request{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || res.Events[0].ID != 7 {
		t.Fatalf("dedup failed: %v", ids(res.Events))
	}
	if res.Stats.Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1", res.Stats.Deduped)
	}
}

// TestLimitPushdownSkipsSegments pins the acceptance criterion: with a
// small LIMIT the engine must scan strictly fewer segments than a full
// scan of the same archive, stopping as soon as the merged heap proves
// no remaining segment can improve the page.
func TestLimitPushdownSkipsSegments(t *testing.T) {
	arch := openArchive(t, 8)
	var recs []archive.Record
	for i := 0; i < 256; i++ {
		recs = append(recs, rec(uint64(i+1), uint64(i+1), i, i, "kw"))
	}
	appendAll(t, arch, recs...)

	full, err := Run(nil, arch, Request{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.SegmentsScanned != 32 || len(full.Events) != 256 {
		t.Fatalf("full scan = %d segments, %d events; want 32, 256", full.Stats.SegmentsScanned, len(full.Events))
	}

	lim, err := Run(nil, arch, Request{To: -1, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Events) != 5 {
		t.Fatalf("limited scan returned %d events, want 5", len(lim.Events))
	}
	if !slices.Equal(ids(lim.Events), ids(full.Events)[:5]) {
		t.Fatalf("limited page %v != full prefix %v", ids(lim.Events), ids(full.Events)[:5])
	}
	if lim.Stats.SegmentsScanned >= full.Stats.SegmentsScanned {
		t.Fatalf("limit pushdown scanned %d segments, full scan %d — no pushdown",
			lim.Stats.SegmentsScanned, full.Stats.SegmentsScanned)
	}
	if lim.Stats.SkippedByLimit == 0 || lim.Stats.EarlyExit != "limit" || !lim.Stats.Truncated {
		t.Fatalf("pushdown stats wrong: %+v", lim.Stats)
	}
	if lim.Stats.SegmentsScanned+lim.Stats.SkippedByLimit != 32 {
		t.Fatalf("segment accounting off: %+v", lim.Stats)
	}
	if lim.Cursor == "" {
		t.Fatal("truncated page carries no cursor")
	}
}

// TestCursorResumeAcrossRotation pages through the archive with a
// cursor while new appends rotate segments between pages: the resumed
// scan must continue exactly after the last served key, without
// duplicates or holes, and pick up the newly archived events.
func TestCursorResumeAcrossRotation(t *testing.T) {
	arch := openArchive(t, 4)
	for i := 0; i < 10; i++ {
		appendAll(t, arch, rec(uint64(i+1), uint64(i+1), i, i, "kw"))
	}
	page1, err := Run(nil, arch, Request{To: -1, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ids(page1.Events), []uint64{1, 2, 3, 4}) {
		t.Fatalf("page1 = %v", ids(page1.Events))
	}
	if page1.Cursor == "" {
		t.Fatal("page1 has no cursor")
	}

	// Rotate: six more records across two new segment boundaries.
	for i := 10; i < 16; i++ {
		appendAll(t, arch, rec(uint64(i+1), uint64(i+1), i, i, "kw"))
	}

	var got []uint64
	cursor := page1.Cursor
	for cursor != "" {
		page, err := Run(nil, arch, Request{To: -1, Limit: 4, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ids(page.Events)...)
		if len(page.Events) == 0 && page.Cursor != "" {
			t.Fatal("empty page with a cursor: would loop forever")
		}
		cursor = page.Cursor
	}
	want := []uint64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if !slices.Equal(got, want) {
		t.Fatalf("resumed pages = %v, want %v", got, want)
	}
}

// TestLimitEqualsResultCount pins the boundary: when exactly limit
// events match and the scan ran to the end, the page is complete —
// not truncated, no cursor, no phantom extra page.
func TestLimitEqualsResultCount(t *testing.T) {
	arch := openArchive(t, 10)
	for i := 0; i < 10; i++ {
		appendAll(t, arch, rec(uint64(i+1), uint64(i+1), i, i, "kw"))
	}
	res, err := Run(nil, arch, Request{To: -1, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 10 {
		t.Fatalf("returned %d events, want 10", len(res.Events))
	}
	if res.Stats.Truncated || res.Cursor != "" {
		t.Fatalf("exact-limit page reported truncated: %+v cursor=%q", res.Stats, res.Cursor)
	}
}

// TestEmptyTimeRange: from > to is a well-formed question with an empty
// answer, not an error, and touches no source.
func TestEmptyTimeRange(t *testing.T) {
	arch := openArchive(t, 4)
	appendAll(t, arch, rec(1, 1, 0, 5, "kw"))
	res, err := Run(newFakeSnap(view(2, 0, 5, "kw")), arch, Request{From: 7, To: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 0 || res.Stats.EarlyExit != "empty-range" {
		t.Fatalf("empty range served %v (%+v)", ids(res.Events), res.Stats)
	}
	if res.Stats.SegmentsScanned != 0 || res.Stats.RecordsScanned != 0 {
		t.Fatalf("empty range did work: %+v", res.Stats)
	}
}

// TestBloomFalsePositiveYieldsZeroRows forces a keyword whose Bloom
// probe admits a segment that contains no matching record: the segment
// is scanned (not skipped), yields nothing, and the query still
// reports cleanly. The false positive is found by brute force against
// a near-saturated filter, so the test is deterministic given the hash
// function.
func TestBloomFalsePositiveYieldsZeroRows(t *testing.T) {
	arch := openArchive(t, 128)
	var recs []archive.Record
	kw := 0
	for i := 0; i < 128; i++ {
		kws := make([]string, 32)
		for j := range kws {
			kws[j] = fmt.Sprintf("real-%d", kw)
			kw++
		}
		recs = append(recs, rec(uint64(i+1), uint64(i+1), i, i, kws...))
	}
	appendAll(t, arch, recs...)
	segs := arch.Segments()
	if len(segs) != 1 {
		t.Fatalf("want one sealed segment, got %d", len(segs))
	}
	fp := ""
	for i := 0; i < 1_000_000; i++ {
		cand := fmt.Sprintf("zz-fp-%d", i)
		if segs[0].MayContain(cand) {
			fp = cand
			break
		}
	}
	if fp == "" {
		t.Skip("no Bloom false positive found in 1e6 candidates (filter not saturated enough)")
	}
	res, err := Run(nil, arch, Request{To: -1, Keywords: []string{fp}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 0 {
		t.Fatalf("false-positive keyword %q matched events %v", fp, ids(res.Events))
	}
	if res.Stats.SegmentsScanned != 1 || res.Stats.SkippedByBloom != 0 {
		t.Fatalf("segment should have been scanned, not skipped: %+v", res.Stats)
	}
	if res.Stats.RecordsScanned != 128 || res.Stats.ArchiveHits != 0 {
		t.Fatalf("scan accounting wrong: %+v", res.Stats)
	}
}

// TestKeywordANDSemantics: multiple keywords must all appear in the
// event's keyword history, on both sources.
func TestKeywordANDSemantics(t *testing.T) {
	snap := newFakeSnap(
		view(1, 0, 1, "quake", "turkey"),
		view(2, 0, 2, "quake"),
	)
	arch := openArchive(t, 4)
	appendAll(t, arch,
		rec(1, 3, 0, 3, "quake", "turkey"),
		rec(2, 4, 0, 4, "turkey"),
	)
	res, err := Run(snap, arch, Request{To: -1, Keywords: []string{"quake", "turkey"}})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ids(res.Events), []uint64{1, 3}) {
		t.Fatalf("AND keywords matched %v, want [1 3]", ids(res.Events))
	}
}

// TestRankFloor filters on PeakRank on both sources.
func TestRankFloor(t *testing.T) {
	low, high := view(1, 0, 1, "kw"), view(2, 0, 2, "kw")
	low.PeakRank, high.PeakRank = 0.5, 2.5
	lowRec, highRec := rec(1, 3, 0, 3, "kw"), rec(2, 4, 0, 4, "kw")
	lowRec.PeakRank, highRec.PeakRank = 0.25, 3.5
	arch := openArchive(t, 4)
	appendAll(t, arch, lowRec, highRec)
	res, err := Run(newFakeSnap(low, high), arch, Request{To: -1, MinRank: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ids(res.Events), []uint64{2, 4}) {
		t.Fatalf("rank floor kept %v, want [2 4]", ids(res.Events))
	}
}

// TestBadRequests: malformed cursors and negative limits are errors,
// never silent full scans.
func TestBadRequests(t *testing.T) {
	arch := openArchive(t, 4)
	appendAll(t, arch, rec(1, 1, 0, 1, "kw"))
	if _, err := Run(nil, arch, Request{To: -1, Cursor: "not-a-cursor!"}); err != ErrBadCursor {
		t.Fatalf("bad cursor error = %v, want ErrBadCursor", err)
	}
	if _, err := Run(nil, arch, Request{To: -1, Cursor: "djE6eDp5"}); err != ErrBadCursor {
		t.Fatalf("bad cursor payload error = %v, want ErrBadCursor", err)
	}
	if _, err := Run(nil, arch, Request{To: -1, Limit: -3}); err == nil {
		t.Fatal("negative limit accepted")
	}
}

// TestCursorRoundTrip pins the codec.
func TestCursorRoundTrip(t *testing.T) {
	for _, k := range []key{{0, 0}, {1, 2}, {1 << 30, 1 << 60}} {
		got, ok, err := decodeCursor(encodeCursor(k))
		if err != nil || !ok || got != k {
			t.Fatalf("round trip %v -> %v ok=%v err=%v", k, got, ok, err)
		}
	}
	if _, ok, err := decodeCursor(""); ok || err != nil {
		t.Fatalf("empty cursor = ok %v err %v", ok, err)
	}
}

// --- The acceptance scenario -------------------------------------------

// archiveRecordOf mirrors the serving layer's eviction projection.
func archiveRecordOf(seq uint64, ev *detect.Event) archive.Record {
	all := make([]string, 0, len(ev.AllKeywords))
	for kw := range ev.AllKeywords {
		all = append(all, kw)
	}
	slices.Sort(all)
	return archive.Record{
		Seq:           seq,
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      append([]string(nil), ev.Keywords...),
		AllKeywords:   all,
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

// TestQueryEquivalenceAcrossEviction is the acceptance criterion: the
// same query must return a byte-identical result set whether the
// matching events are all live in the snapshot, all evicted to the
// archive, or split across both. A real detector runs keyword bursts
// until events finish, then the comparison runs before and after a
// forced eviction.
func TestQueryEquivalenceAcrossEviction(t *testing.T) {
	cfg := detect.Config{Delta: 8, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 3}}
	d := detect.New(cfg)
	arch := openArchive(t, 1) // every eviction seals a segment
	d.SetOnEvict(func(ev *detect.Event) {
		if err := arch.Append(archiveRecordOf(d.Trimmed(), ev)); err != nil {
			t.Errorf("archive append: %v", err)
		}
	})

	texts := []string{
		"earthquake struck eastern turkey",
		"flood river rising rapidly",
		"storm warning coast evacuation",
		"election debate results tonight",
		"wildfire spreading canyon homes",
	}
	msgID := uint64(0)
	for b, text := range texts {
		for q := 0; q < 4; q++ {
			for i := 0; i < 8; i++ {
				msgID++
				d.IngestAll(stream.Message{
					ID: msgID, User: uint64(100*b + i), Time: int64(msgID), Text: text,
				})
			}
		}
	}
	d.Flush()

	requests := []Request{
		{To: -1},
		{To: -1, Keywords: []string{"earthquake"}},
		{From: 3, To: 9},
		{To: -1, Limit: 3},
		{To: -1, MinRank: 0.01},
	}

	before := d.Snapshot(nil)
	var beforePages []Result
	for _, req := range requests {
		res, err := Run(before, arch, req)
		if err != nil {
			t.Fatal(err)
		}
		beforePages = append(beforePages, res)
	}
	if beforePages[0].Stats.ArchiveHits != 0 {
		t.Fatalf("nothing was evicted yet, but archive served %d hits", beforePages[0].Stats.ArchiveHits)
	}
	if len(beforePages[0].Events) == 0 {
		t.Fatal("test stream produced no events; retune")
	}

	// Forced eviction: all but one finished event moves to the archive.
	if d.TrimFinished(1) == 0 {
		t.Fatal("forced eviction evicted nothing; retune the stream")
	}
	after := d.Snapshot(nil)
	for i, req := range requests {
		res, err := Run(after, arch, req)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(res.Events)
		want, _ := json.Marshal(beforePages[i].Events)
		if string(got) != string(want) {
			t.Fatalf("request %d diverges across eviction:\nbefore %s\nafter  %s", i, want, got)
		}
	}

	// The unbounded query now really is split across both sources.
	res, err := Run(after, arch, Request{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ArchiveHits == 0 || res.Stats.SnapshotHits == 0 {
		t.Fatalf("post-eviction query not split across sources: %+v", res.Stats)
	}
}
