package query

import "testing"

// FuzzDecodeCursor: the cursor codec must never panic on adversarial
// tokens, must reject anything that is not a well-formed v1 token, and
// every accepted token must re-encode to a canonical form that decodes
// to the same key.
func FuzzDecodeCursor(f *testing.F) {
	f.Add("")
	f.Add(encodeCursor(key{q: 12, id: 34}))
	f.Add("djE6MTI6MzQ") // "v1:12:34"
	f.Add("djE6eDp5")    // "v1:x:y"
	f.Add("djI6MTI6MzQ") // "v2:12:34" — unknown version
	f.Add("djE6LTE6MzQ") // "v1:-1:34" — negative quantum
	f.Add("not base64!!")
	f.Add("djE6MTI6MzQ6NTY") // extra field
	f.Fuzz(func(t *testing.T, s string) {
		k, ok, err := decodeCursor(s)
		if err != nil {
			if ok {
				t.Fatalf("decodeCursor(%q) = ok with error %v", s, err)
			}
			return
		}
		if !ok {
			if s != "" {
				t.Fatalf("decodeCursor(%q) = not-ok without error", s)
			}
			return
		}
		k2, ok2, err2 := decodeCursor(encodeCursor(k))
		if err2 != nil || !ok2 || k2 != k {
			t.Fatalf("accepted cursor %q does not round-trip: %v %v %v", s, k2, ok2, err2)
		}
	})
}
