package query

import "slices"

// pool accumulates candidate events. With a positive limit it is a
// bounded max-heap keyed by the engine's (LastQuantum, ID) order — the
// "merged heap" of the LIMIT pushdown: it keeps the limit smallest keys
// seen so far, its root (the worst kept key) is the bar a new candidate
// must beat once full, and overflowed records that at least one match
// was displaced, i.e. more matches exist than the page holds. With
// limit ≤ 0 it is a plain accumulator sorted at the end.
type pool struct {
	limit      int
	cands      []cand // max-heap by key when limit > 0
	overflowed bool
}

type cand struct {
	ev Event
	k  key
}

func newPool(limit int) *pool {
	p := &pool{limit: limit}
	if limit > 0 {
		p.cands = make([]cand, 0, limit)
	}
	return p
}

func (p *pool) full() bool { return p.limit > 0 && len(p.cands) >= p.limit }

// worst returns the largest kept key. Only valid when full().
func (p *pool) worst() key { return p.cands[0].k }

func (p *pool) add(ev Event, k key) {
	if p.limit <= 0 {
		p.cands = append(p.cands, cand{ev: ev, k: k})
		return
	}
	if len(p.cands) < p.limit {
		p.cands = append(p.cands, cand{ev: ev, k: k})
		p.siftUp(len(p.cands) - 1)
		return
	}
	p.overflowed = true
	if k.less(p.cands[0].k) {
		p.cands[0] = cand{ev: ev, k: k}
		p.siftDown(0)
	}
}

func (p *pool) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.cands[parent].k.less(p.cands[i].k) {
			return
		}
		p.cands[parent], p.cands[i] = p.cands[i], p.cands[parent]
		i = parent
	}
}

func (p *pool) siftDown(i int) {
	n := len(p.cands)
	for {
		l, r, max := 2*i+1, 2*i+2, i
		if l < n && p.cands[max].k.less(p.cands[l].k) {
			max = l
		}
		if r < n && p.cands[max].k.less(p.cands[r].k) {
			max = r
		}
		if max == i {
			return
		}
		p.cands[i], p.cands[max] = p.cands[max], p.cands[i]
		i = max
	}
}

// ascending drains the pool into key-ascending order. The pool is
// consumed; call once.
func (p *pool) ascending() []Event {
	slices.SortFunc(p.cands, func(a, b cand) int {
		switch {
		case a.k.less(b.k):
			return -1
		case b.k.less(a.k):
			return 1
		}
		return 0
	})
	out := make([]Event, len(p.cands))
	for i := range p.cands {
		out[i] = p.cands[i].ev
	}
	return out
}
