package query

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/archive"
)

// pageJSON snapshots what a client sees — events and cursor. Stats are
// deliberately excluded: segment/block counts legitimately change when
// the archive is compacted; answers must not.
func pageJSON(t *testing.T, res Result) string {
	t.Helper()
	raw, err := json.Marshal(struct {
		Events []Event `json:"events"`
		Cursor string  `json:"cursor"`
	}{res.Events, res.Cursor})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// collectPages walks a paginated query to exhaustion.
func collectPages(t *testing.T, arch Archive, req Request) []string {
	t.Helper()
	var pages []string
	for i := 0; ; i++ {
		res, err := Run(nil, arch, req)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pageJSON(t, res))
		if res.Cursor == "" {
			return pages
		}
		if i > 100 {
			t.Fatal("cursor walk did not terminate")
		}
		req.Cursor = res.Cursor
	}
}

// TestQueryEquivalenceAcrossCompaction is the tentpole acceptance
// criterion at the engine layer: every query — including a full cursor
// walk — returns byte-identical pages whether the archive body is v1
// JSONL, mixed v1/v2 after one compaction step, or fully columnar.
func TestQueryEquivalenceAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := archive.Open(dir, archive.Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 39; i++ {
		r := rec(uint64(i), uint64(1000+i), i, i+2, "common", fmt.Sprintf("kw-%d", i%6))
		r.PeakRank = float64(i%10) / 2
		if i%7 == 0 {
			r.Keywords, r.AllKeywords = nil, nil
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with merge-friendly bounds so compaction exercises both the
	// merge path and the v1→v2 rewrite path.
	opt := archive.Options{SegmentEvents: 16, BucketQuanta: 1 << 20, BlockEvents: 4}
	l, err = archive.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	requests := []Request{
		{To: -1},
		{To: -1, Keywords: []string{"kw-2"}},
		{To: -1, Keywords: []string{"common", "kw-4"}},
		{From: 5, To: 9},
		{To: -1, MinRank: 3},
		{To: -1, Limit: 7}, // cursor-walked below
	}
	baseline := make([][]string, len(requests))
	for i, req := range requests {
		baseline[i] = collectPages(t, l, req)
	}

	check := func(label string) {
		t.Helper()
		for i, req := range requests {
			pages := collectPages(t, l, req)
			if len(pages) != len(baseline[i]) {
				t.Fatalf("%s: request %d paginates differently: %d pages vs %d",
					label, i, len(pages), len(baseline[i]))
			}
			for p := range pages {
				if pages[p] != baseline[i][p] {
					t.Fatalf("%s: request %d page %d diverges:\n v1 %s\n now %s",
						label, i, p, baseline[i][p], pages[p])
				}
			}
		}
	}

	if _, worked, err := l.CompactOnce(); err != nil || !worked {
		t.Fatalf("CompactOnce: worked=%v err=%v", worked, err)
	}
	if n := l.ColumnarSegmentCount(); n == 0 {
		t.Fatal("archive not mixed-format after one step")
	}
	check("mixed v1/v2")

	if _, err := l.CompactAll(); err != nil {
		t.Fatal(err)
	}
	check("fully columnar")

	// The zone-map pushdown must actually engage on the columnar body: a
	// narrow time-range query reads only a fraction of the blocks.
	res, err := Run(nil, l, Request{From: 5, To: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks == 0 {
		t.Fatalf("no columnar blocks visible in stats: %+v", res.Stats)
	}
	if res.Stats.BlocksSkippedByTime == 0 || res.Stats.BlocksScanned >= res.Stats.Blocks {
		t.Fatalf("zone maps skipped nothing: %+v", res.Stats)
	}
	// And the rank floor prunes at segment granularity via the sidecar
	// bound or below it via zone maps — either way, blocks are skipped.
	res, err = Run(nil, l, Request{To: -1, MinRank: 4.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedByRank+res.Stats.BlocksSkippedByRank == 0 {
		t.Fatalf("rank floor skipped nothing: %+v", res.Stats)
	}
}
