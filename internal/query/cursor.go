package query

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadCursor marks a cursor that was not produced by this engine (or
// was corrupted in transit). Handlers map it to 400.
var ErrBadCursor = errors.New("query: malformed cursor")

// cursorV1 versions the token so the format can evolve without old
// clients' cursors being misparsed as garbage keys.
const cursorV1 = "v1"

// encodeCursor packs a sort key into the opaque page token:
// base64url("v1:<lastQuantum>:<eventID>"). The encoding hides the
// structure from clients (it is a resume position, not an API), while
// staying trivially debuggable server-side.
func encodeCursor(k key) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("%s:%d:%d", cursorV1, k.q, k.id)))
}

// decodeCursor reverses encodeCursor. An empty token means "from the
// start" (ok=false); anything else must round-trip exactly or the
// request is rejected with ErrBadCursor — a typo'd cursor silently
// treated as empty would re-serve the whole history.
func decodeCursor(s string) (k key, ok bool, err error) {
	if s == "" {
		return key{}, false, nil
	}
	raw, derr := base64.RawURLEncoding.DecodeString(s)
	if derr != nil {
		return key{}, false, ErrBadCursor
	}
	parts := strings.Split(string(raw), ":")
	if len(parts) != 3 || parts[0] != cursorV1 {
		return key{}, false, ErrBadCursor
	}
	q, qerr := strconv.Atoi(parts[1])
	id, iderr := strconv.ParseUint(parts[2], 10, 64)
	if qerr != nil || iderr != nil || q < 0 {
		return key{}, false, ErrBadCursor
	}
	return key{q: q, id: id}, true, nil
}
