package query

import (
	"fmt"
	"testing"

	"repro/internal/archive"
	"repro/internal/detect"
)

// benchArchive builds a 4096-record archive in 256 sealed segments,
// each spanning 16 quanta, with one rare keyword confined to a handful
// of segments — enough structure for every planner path (time skip,
// Bloom skip, limit pushdown) to show up in the numbers.
func benchArchive(b *testing.B) *archive.Log {
	b.Helper()
	l := openArchive(b, 16)
	seq := uint64(0)
	for s := 0; s < 256; s++ {
		for i := 0; i < 16; i++ {
			seq++
			q := s*16 + i
			kws := []string{"common", fmt.Sprintf("seg-%d", s)}
			if s%64 == 0 && i == 0 {
				kws = append(kws, "rare")
			}
			appendAll(b, l, rec(seq, seq, q, q, kws...))
		}
	}
	return l
}

// benchSnap is a 64-event live overlay above the archive's quantum
// range, so the merge path runs in every case.
func benchSnap() *fakeSnap {
	evs := make([]*detect.Event, 0, 64)
	for i := 0; i < 64; i++ {
		evs = append(evs, view(uint64(10000+i), 4090+i, 4100+i, "common", "live"))
	}
	return newFakeSnap(evs...)
}

// BenchmarkUnifiedQuery measures the executor over a 256-segment
// archive plus a 64-event live overlay. The headline comparison is
// limit10 vs fullscan: LIMIT pushdown must scan strictly fewer
// segments (reported as segscanned/op).
func BenchmarkUnifiedQuery(b *testing.B) {
	arch := benchArchive(b)
	snap := benchSnap()
	cases := []struct {
		name string
		req  Request
	}{
		{"limit10", Request{To: -1, Limit: 10}},
		{"fullscan", Request{To: -1}},
		{"keyword-rare", Request{To: -1, Keywords: []string{"rare"}, Limit: 10}},
		{"timerange", Request{From: 4000, To: 4100, Limit: 100}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var segs, scanned, events float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(snap, arch, c.req)
				if err != nil {
					b.Fatal(err)
				}
				segs += float64(res.Stats.Segments)
				scanned += float64(res.Stats.SegmentsScanned)
				events += float64(len(res.Events))
			}
			b.ReportMetric(segs/float64(b.N), "segments/op")
			b.ReportMetric(scanned/float64(b.N), "segscanned/op")
			b.ReportMetric(events/float64(b.N), "events/op")
		})
	}
}
