package query

import (
	"fmt"
	"testing"

	"repro/internal/archive"
	"repro/internal/detect"
)

// buildBenchArchive fills dir with 4096 records in 256 sealed v1
// segments, each spanning 16 quanta, with one rare keyword confined to
// a handful of segments — enough structure for every planner path
// (time skip, Bloom skip, limit pushdown) to show up in the numbers.
func buildBenchArchive(b *testing.B, dir string) {
	b.Helper()
	l, err := archive.Open(dir, archive.Options{SegmentEvents: 16})
	if err != nil {
		b.Fatal(err)
	}
	seq := uint64(0)
	for s := 0; s < 256; s++ {
		for i := 0; i < 16; i++ {
			seq++
			q := s*16 + i
			kws := []string{"common", fmt.Sprintf("seg-%d", s)}
			if s%64 == 0 && i == 0 {
				kws = append(kws, "rare")
			}
			appendAll(b, l, rec(seq, seq, q, q, kws...))
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchArchive opens the 256-segment archive as-is (v1 JSONL body) or
// compacted into v2 columnar segments of 512 records.
func benchArchive(b *testing.B, compact bool) *archive.Log {
	b.Helper()
	dir := b.TempDir()
	buildBenchArchive(b, dir)
	opt := archive.Options{SegmentEvents: 16}
	if compact {
		opt = archive.Options{SegmentEvents: 512, BucketQuanta: 1 << 20}
	}
	l, err := archive.Open(dir, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	if compact {
		if _, err := l.CompactAll(); err != nil {
			b.Fatal(err)
		}
		if l.ColumnarSegmentCount() == 0 {
			b.Fatal("bench archive did not compact")
		}
	}
	return l
}

// benchSnap is a 64-event live overlay above the archive's quantum
// range, so the merge path runs in every case.
func benchSnap() *fakeSnap {
	evs := make([]*detect.Event, 0, 64)
	for i := 0; i < 64; i++ {
		evs = append(evs, view(uint64(10000+i), 4090+i, 4100+i, "common", "live"))
	}
	return newFakeSnap(evs...)
}

// BenchmarkUnifiedQuery measures the executor over a 256-segment
// archive plus a 64-event live overlay, in both archive body formats.
// The headline comparisons: limit10 vs fullscan (LIMIT pushdown must
// scan strictly fewer segments, reported as segscanned/op), and
// v1/fullscan vs v2/fullscan (the columnar decode must cut both time
// and allocations).
func BenchmarkUnifiedQuery(b *testing.B) {
	cases := []struct {
		name string
		req  Request
	}{
		{"limit10", Request{To: -1, Limit: 10}},
		{"fullscan", Request{To: -1}},
		{"keyword-rare", Request{To: -1, Keywords: []string{"rare"}, Limit: 10}},
		{"timerange", Request{From: 4000, To: 4100, Limit: 100}},
	}
	for _, format := range []struct {
		name    string
		compact bool
	}{{"v1", false}, {"v2", true}} {
		b.Run(format.name, func(b *testing.B) {
			arch := benchArchive(b, format.compact)
			snap := benchSnap()
			for _, c := range cases {
				b.Run(c.name, func(b *testing.B) {
					var segs, scanned, blocks, blkScanned, events float64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						res, err := Run(snap, arch, c.req)
						if err != nil {
							b.Fatal(err)
						}
						segs += float64(res.Stats.Segments)
						scanned += float64(res.Stats.SegmentsScanned)
						blocks += float64(res.Stats.Blocks)
						blkScanned += float64(res.Stats.BlocksScanned)
						events += float64(len(res.Events))
					}
					b.ReportMetric(segs/float64(b.N), "segments/op")
					b.ReportMetric(scanned/float64(b.N), "segscanned/op")
					if blocks > 0 {
						b.ReportMetric(blocks/float64(b.N), "blocks/op")
						b.ReportMetric(blkScanned/float64(b.N), "blkscanned/op")
					}
					b.ReportMetric(events/float64(b.N), "events/op")
				})
			}
		})
	}
}
