// Package query is the unified time-travel query engine: one request —
// a quantum range, keyword(s), a rank floor, a limit and an optional
// resume cursor — answered over both live state and history. The
// planner fans the request across the epoch snapshot's keyword/time
// indexes (events still retained in detector memory) and the archive's
// segment skip-index (events evicted to disk), and the executor merges
// the two source streams into one deterministic (LastQuantum, event-ID)
// ascending order, deduplicating events that appear on both sides of
// the eviction boundary.
//
// LIMIT is pushed down, NeedleTail-style, instead of applied after a
// full scan: candidates feed a bounded max-heap of the limit best
// (smallest-key) events, archive segments are visited in ascending
// MinQuantum order, and the scan stops the moment the heap is full and
// every unvisited segment's quantum floor proves it cannot hold a
// better candidate. Per-request Stats report exactly how much work the
// data skipping and the early exit saved.
//
// Pagination is an opaque cursor encoding the last returned sort key;
// because the order is total and stable across snapshots epochs and
// segment rotations, a resumed scan continues exactly where the
// previous page ended even if events were evicted in between.
package query

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/detect"
	"repro/internal/obs"
)

// Snapshot is the live-source interface, implemented by
// *detect.Snapshot: range and keyword-history index access over the
// retained (live + finished) events, plus the ID probe the executor
// uses to deduplicate events that are both retained and archived.
type Snapshot interface {
	// EventsSinceQuantum returns retained events with LastQuantum ≥ from
	// in (LastQuantum, ID) ascending order.
	EventsSinceQuantum(from int) []*detect.Event
	// EventsWithKeyword returns retained events whose keyword history
	// contains kw, in (LastQuantum, ID) ascending order.
	EventsWithKeyword(kw string) []*detect.Event
	// Find returns the retained event with the given ID, or nil.
	Find(id uint64) *detect.Event
}

// Archive is the history-source interface, implemented by
// *archive.Log: a point-in-time list of segment views with sidecar
// bounds for skipping and a record iterator for scanning.
type Archive interface {
	Segments() []archive.SegmentView
}

// Request is one unified query.
type Request struct {
	// From and To bound the quantum range (inclusive); an event matches
	// when its [BornQuantum, LastQuantum] span intersects [From, To].
	// To < 0 means unbounded.
	From, To int
	// Keywords, when non-empty, requires every listed keyword in the
	// event's keyword history (AllKeywords when recorded, else the
	// current Keywords) — AND semantics.
	Keywords []string
	// MinRank, when positive, keeps only events whose PeakRank reached
	// at least this value.
	MinRank float64
	// Limit caps the page size; 0 means unlimited (callers exposing the
	// engine over HTTP clamp this server-side). Negative is an error.
	Limit int
	// Cursor resumes a previous scan: the opaque Result.Cursor value.
	Cursor string
	// ArchiveOnly restricts the scan to the archive source — the
	// compatibility mode the /archive endpoint runs in (no snapshot
	// fan-out, no live/archive dedup).
	ArchiveOnly bool

	// Trace, when non-nil, receives plan/snapshot-scan/archive-scan
	// spans with per-source stats annotations; Obs, when non-nil,
	// receives the same boundaries as stage-histogram observations.
	// Both are nil-safe and default off — plain queries pay nothing.
	Trace *obs.ReqTrace
	Obs   *obs.TenantObs
}

// Event is the unified result shape: the fields an event carries
// identically whether it was read from the live snapshot or from the
// archive, so a result set is byte-stable across eviction. (Archive
// ordinals and live rank history are deliberately absent — each exists
// on only one side of the eviction boundary.)
type Event struct {
	ID            uint64   `json:"id"`
	State         string   `json:"state"`
	Keywords      []string `json:"keywords"`
	AllKeywords   []string `json:"all_keywords,omitempty"`
	Rank          float64  `json:"rank"`
	PeakRank      float64  `json:"peak_rank"`
	BornQuantum   int      `json:"born_quantum"`
	LastQuantum   int      `json:"last_quantum"`
	Evolved       bool     `json:"evolved"`
	Size          int      `json:"size"`
	Support       int      `json:"support"`
	Reported      bool     `json:"reported"`
	FirstReported int      `json:"first_reported,omitempty"`
	MergedInto    uint64   `json:"merged_into,omitempty"`
	SplitFrom     uint64   `json:"split_from,omitempty"`
	Spurious      bool     `json:"spurious"`
}

// Stats reports the work one request did and, more importantly, the
// work it proved it could skip.
type Stats struct {
	// SnapshotHits / ArchiveHits count matching events found per source
	// (before the limit trims the merged page).
	SnapshotHits int `json:"snapshot_hits"`
	ArchiveHits  int `json:"archive_hits"`
	// Deduped counts archive records dropped because the same event was
	// still retained in the snapshot (it straddled the eviction boundary
	// between the epoch publish and the scan).
	Deduped int `json:"deduped,omitempty"`
	// Segments is the number of archive segments considered;
	// SegmentsScanned the number actually read. The difference is
	// itemised by the Skipped* counters.
	Segments        int `json:"segments"`
	SegmentsScanned int `json:"segments_scanned"`
	SkippedByTime   int `json:"skipped_by_time"`
	SkippedByBloom  int `json:"skipped_by_bloom"`
	SkippedByCursor int `json:"skipped_by_cursor"`
	// SkippedByLimit counts segments never visited because the merged
	// heap held Limit candidates all provably better than anything the
	// remaining segments could contain — the LIMIT pushdown.
	SkippedByLimit int `json:"skipped_by_limit"`
	// SkippedByRank counts segments pruned because the sidecar's rank
	// bound proves no record reaches the requested MinRank.
	SkippedByRank int `json:"skipped_by_rank,omitempty"`
	// Blocks counts v2 columnar blocks covered by the scanned segments;
	// BlocksScanned the blocks actually decoded. The difference is
	// itemised by the BlocksSkippedBy* counters — the zone-map pushdown
	// working below segment granularity. All zero over a v1-only
	// archive (a JSONL segment has no blocks to skip).
	Blocks                 int `json:"blocks,omitempty"`
	BlocksScanned          int `json:"blocks_scanned,omitempty"`
	BlocksSkippedByTime    int `json:"blocks_skipped_by_time,omitempty"`
	BlocksSkippedByRank    int `json:"blocks_skipped_by_rank,omitempty"`
	BlocksSkippedByKeyword int `json:"blocks_skipped_by_keyword,omitempty"`
	// RecordsScanned counts archive records decoded.
	RecordsScanned int `json:"records_scanned"`
	// Truncated marks a partial scan: matching events beyond this page
	// may exist (follow Cursor), and the counters above describe only
	// the work done before the scan stopped.
	Truncated bool `json:"truncated"`
	// Degraded flags that the scan hit corruption in a sealed archive
	// segment: the segment was quarantined (SegmentsQuarantined counts
	// the ones this request set aside) and the results may be missing
	// its history. Records the scan CRC-verified before the damage are
	// still served.
	Degraded            bool `json:"degraded,omitempty"`
	SegmentsQuarantined int  `json:"segments_quarantined,omitempty"`
	// EarlyExit names why the scan ended before exhausting the sources:
	// "limit" (pushdown stop), "empty-range", or "" (ran to the end).
	EarlyExit string `json:"early_exit,omitempty"`
}

// Result is one page of events in (LastQuantum, ID) ascending order.
// Cursor, when non-empty, resumes the scan after the last event here.
type Result struct {
	Events []Event `json:"events"`
	Stats  Stats   `json:"stats"`
	Cursor string  `json:"cursor,omitempty"`
}

// key is the engine's total order: (LastQuantum, event ID). IDs are
// unique, so the order is strict and cursor resumption is exact.
type key struct {
	q  int
	id uint64
}

func (k key) less(o key) bool {
	return k.q < o.q || (k.q == o.q && k.id < o.id)
}

// Run executes one unified query. snap and arch may each be nil (the
// corresponding source is skipped); req.ArchiveOnly skips the snapshot
// even when present. The only errors are source scan failures and
// malformed requests (ErrBadCursor, negative limit).
func Run(snap Snapshot, arch Archive, req Request) (Result, error) {
	// clk gates every instrumentation time read on telemetry actually
	// being attached, keeping the plain path time-read free.
	instrumented := req.Trace != nil || req.Obs != nil
	var mark time.Time
	clk := func(stage obs.Stage) {
		if !instrumented {
			return
		}
		now := time.Now() //repro:wallclock-exempt optional instrumentation clock, gated on telemetry being attached; replay output unaffected
		if !mark.IsZero() {
			req.Obs.Observe(stage, now.Sub(mark))
		}
		mark = now
	}
	req.Trace.Step("plan")
	clk(0) // set the mark; no stage closes at the start

	res := Result{Events: []Event{}}
	if req.Limit < 0 {
		return res, fmt.Errorf("query: negative limit %d", req.Limit)
	}
	cur, hasCur, err := decodeCursor(req.Cursor)
	if err != nil {
		return res, err
	}
	from, to := req.From, req.To
	if from < 0 {
		from = 0
	}
	if to < 0 {
		to = math.MaxInt
	}
	if from > to {
		res.Stats.EarlyExit = "empty-range"
		return res, nil
	}
	// floor is the smallest LastQuantum that can still matter: range
	// start, tightened by the cursor (sort keys below cur.q are all ≤
	// the cursor and already served).
	floor := from
	if hasCur && cur.q > floor {
		floor = cur.q
	}

	p := newPool(req.Limit)
	trunc := false
	clk(obs.StageQueryPlan)

	if snap != nil && !req.ArchiveOnly {
		req.Trace.Step("snapshot_scan")
		trunc = scanSnapshot(snap, req, from, to, floor, cur, hasCur, p, &res.Stats) || trunc
		clk(obs.StageQuerySnapshotScan)
		if req.Trace != nil {
			req.Trace.Annotate(fmt.Sprintf("hits=%d", res.Stats.SnapshotHits))
		}
	}
	if arch != nil {
		dedup := snap
		if req.ArchiveOnly {
			dedup = nil
		}
		req.Trace.Step("archive_scan")
		t, err := scanArchive(arch, dedup, req, from, to, cur, hasCur, p, &res.Stats)
		clk(obs.StageQueryArchiveScan)
		if req.Trace != nil {
			req.Trace.Annotate(fmt.Sprintf("hits=%d segments=%d/%d blocks=%d/%d records=%d",
				res.Stats.ArchiveHits, res.Stats.SegmentsScanned, res.Stats.Segments,
				res.Stats.BlocksScanned, res.Stats.Blocks, res.Stats.RecordsScanned))
		}
		if err != nil {
			return res, err
		}
		trunc = t || trunc
	}

	res.Events = p.ascending()
	res.Stats.Truncated = trunc || p.overflowed
	if res.Stats.Truncated && len(res.Events) > 0 {
		last := res.Events[len(res.Events)-1]
		res.Cursor = encodeCursor(key{q: last.LastQuantum, id: last.ID})
	}
	return res, nil
}

// scanSnapshot feeds matching retained events into the pool. The
// candidate lists are (LastQuantum, ID)-ordered, so once the pool is
// full and the next candidate's key is worse than the pool's worst, no
// later candidate can improve the page and the scan stops (reported as
// trunc — more matches exist beyond the page).
func scanSnapshot(snap Snapshot, req Request, from, to, floor int, cur key, hasCur bool, p *pool, st *Stats) (trunc bool) {
	base := snapshotCandidates(snap, req, floor)
	for _, ev := range base {
		if ev.BornQuantum > to || ev.LastQuantum < from {
			continue
		}
		k := key{q: ev.LastQuantum, id: ev.ID}
		if hasCur && !cur.less(k) {
			continue
		}
		if req.MinRank > 0 && ev.PeakRank < req.MinRank {
			continue
		}
		if !viewHasKeywords(ev, req.Keywords) {
			continue
		}
		if p.full() && p.worst().less(k) {
			// Sorted source: every later candidate is worse still.
			st.EarlyExit = "limit"
			return true
		}
		st.SnapshotHits++
		p.add(eventOfView(ev), k)
	}
	return false
}

// snapshotCandidates picks the cheapest index for the request: the
// shortest keyword posting list (the remaining keywords become filter
// probes) or, with no keywords, the time index suffix. Either list is
// pre-trimmed to LastQuantum ≥ floor by binary search.
func snapshotCandidates(snap Snapshot, req Request, floor int) []*detect.Event {
	var base []*detect.Event
	if len(req.Keywords) > 0 {
		for i, kw := range req.Keywords {
			l := snap.EventsWithKeyword(kw)
			if i == 0 || len(l) < len(base) {
				base = l
			}
			if len(base) == 0 {
				return nil
			}
		}
	} else {
		return snap.EventsSinceQuantum(floor)
	}
	i := sort.Search(len(base), func(i int) bool { return base[i].LastQuantum >= floor })
	return base[i:]
}

// scanArchive plans over the segment sidecars and scans the survivors
// in ascending MinQuantum order — the order that lets a full pool prove
// every remaining segment irrelevant (any record in a segment has
// LastQuantum ≥ its BornQuantum ≥ the segment's MinQuantum, so the
// segment's smallest possible sort key is (MinQuantum, 0)).
func scanArchive(arch Archive, dedup Snapshot, req Request, from, to int, cur key, hasCur bool, p *pool, st *Stats) (trunc bool, err error) {
	// timed gates the block-scan stage clock on telemetry being
	// attached, like Run's clk.
	timed := req.Trace != nil || req.Obs != nil
	var colDur time.Duration
	segs := arch.Segments()
	st.Segments = len(segs)
	slices.SortStableFunc(segs, func(a, b archive.SegmentView) int {
		if a.MinQuantum != b.MinQuantum {
			return a.MinQuantum - b.MinQuantum
		}
		switch { // deterministic tie-break on the (unique) ordinal range
		case a.FirstSeq < b.FirstSeq:
			return -1
		case a.FirstSeq > b.FirstSeq:
			return 1
		}
		return 0
	})
	for i := range segs {
		v := &segs[i]
		if p.full() && p.worst().less(key{q: v.MinQuantum}) {
			// The pushdown stop: the pool already holds Limit candidates,
			// all with keys below anything this — or, MinQuantum being
			// ascending, any later — segment can contain.
			st.SkippedByLimit += len(segs) - i
			st.EarlyExit = "limit"
			return true, nil
		}
		if v.MaxQuantum < from || v.MinQuantum > to {
			st.SkippedByTime++
			continue
		}
		if hasCur && v.MaxQuantum < cur.q {
			st.SkippedByCursor++
			continue
		}
		if !segMayContainAll(v, req.Keywords) {
			st.SkippedByBloom++
			continue
		}
		if req.MinRank > 0 && v.MaxPeakRank < req.MinRank {
			st.SkippedByRank++
			continue
		}
		st.SegmentsScanned++
		// The surviving predicate is pushed below segment granularity:
		// a v2 scan skips whole blocks on their zone maps. Block
		// skipping is conservative, so the record-level filter below is
		// unchanged — it is what makes answers format-independent.
		var colStart time.Time
		if timed && v.Format == 2 {
			colStart = time.Now() //repro:wallclock-exempt columnar-scan latency telemetry; never feeds query results
		}
		pred := archive.Pred{From: from, To: to, MinRank: req.MinRank, Keywords: req.Keywords}
		bs, _, err := v.ScanPred(pred, func(rec *archive.Record) error {
			st.RecordsScanned++
			if rec.LastQuantum < from || rec.BornQuantum > to {
				return nil
			}
			k := key{q: rec.LastQuantum, id: rec.ID}
			if hasCur && !cur.less(k) {
				return nil
			}
			if req.MinRank > 0 && rec.PeakRank < req.MinRank {
				return nil
			}
			if !recordHasKeywords(rec, req.Keywords) {
				return nil
			}
			if dedup != nil && dedup.Find(rec.ID) != nil {
				// Evicted after the snapshot epoch published: the retained
				// copy already represents it (identically — only finished,
				// immutable events are ever evicted).
				st.Deduped++
				return nil
			}
			st.ArchiveHits++
			p.add(eventOfRecord(rec), k)
			return nil
		})
		if v.Format == 2 {
			st.Blocks += bs.Blocks
			st.BlocksScanned += bs.Scanned
			st.BlocksSkippedByTime += bs.SkippedByTime
			st.BlocksSkippedByRank += bs.SkippedByRank
			st.BlocksSkippedByKeyword += bs.SkippedByKeyword
			if timed {
				colDur += time.Since(colStart) //repro:wallclock-exempt columnar-scan latency telemetry; never feeds query results
			}
		}
		if err != nil {
			if errors.Is(err, archive.ErrCorrupt) && v.Sealed {
				// Structural damage in this one segment: set it aside and
				// keep serving the rest of the archive, flagged degraded.
				// A concurrent request may have quarantined it first.
				if v.Quarantine() {
					st.SegmentsQuarantined++
				}
				st.Degraded = true
				continue
			}
			return false, err
		}
	}
	if colDur > 0 {
		req.Obs.Observe(obs.StageArchiveBlockScan, colDur)
	}
	return false, nil
}

func segMayContainAll(v *archive.SegmentView, kws []string) bool {
	for _, kw := range kws {
		if !v.MayContain(kw) {
			return false
		}
	}
	return true
}

// viewHasKeywords applies the engine's keyword rule to a snapshot view:
// every requested keyword must appear in the event's history
// (AllKeywords when recorded, else the current set) — exactly the rule
// recordHasKeywords applies to archived records, so results agree
// across the eviction boundary.
func viewHasKeywords(ev *detect.Event, kws []string) bool {
	for _, kw := range kws {
		if len(ev.AllKeywords) > 0 {
			if _, ok := ev.AllKeywords[kw]; !ok {
				return false
			}
		} else if !slices.Contains(ev.Keywords, kw) {
			return false
		}
	}
	return true
}

func recordHasKeywords(rec *archive.Record, kws []string) bool {
	for _, kw := range kws {
		set := rec.AllKeywords
		if len(set) == 0 {
			set = rec.Keywords
		}
		if !slices.Contains(set, kw) {
			return false
		}
	}
	return true
}

func eventOfRecord(rec *archive.Record) Event {
	return Event{
		ID:            rec.ID,
		State:         rec.State,
		Keywords:      rec.Keywords,
		AllKeywords:   rec.AllKeywords,
		Rank:          rec.Rank,
		PeakRank:      rec.PeakRank,
		BornQuantum:   rec.BornQuantum,
		LastQuantum:   rec.LastQuantum,
		Evolved:       rec.Evolved,
		Size:          rec.Size,
		Support:       rec.Support,
		Reported:      rec.Reported,
		FirstReported: rec.FirstReported,
		MergedInto:    rec.MergedInto,
		SplitFrom:     rec.SplitFrom,
		Spurious:      rec.Spurious,
	}
}

func eventOfView(ev *detect.Event) Event {
	all := make([]string, 0, len(ev.AllKeywords))
	for kw := range ev.AllKeywords {
		all = append(all, kw)
	}
	slices.Sort(all)
	return Event{
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      ev.Keywords,
		AllKeywords:   all,
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}
