package tracegen

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the ground truth as indented JSON.
func (gt *GroundTruth) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(gt); err != nil {
		return fmt.Errorf("tracegen: encode ground truth: %w", err)
	}
	return nil
}

// ReadGroundTruth parses a ground-truth log written by WriteJSON.
func ReadGroundTruth(r io.Reader) (GroundTruth, error) {
	var gt GroundTruth
	dec := json.NewDecoder(r)
	if err := dec.Decode(&gt); err != nil {
		return GroundTruth{}, fmt.Errorf("tracegen: decode ground truth: %w", err)
	}
	for i, e := range gt.Events {
		if e.ID == 0 || len(e.Keywords) == 0 {
			return GroundTruth{}, fmt.Errorf("tracegen: ground-truth event %d malformed (id=%d, %d keywords)",
				i, e.ID, len(e.Keywords))
		}
	}
	return gt, nil
}
