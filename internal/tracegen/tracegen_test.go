package tracegen

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := TWConfig(7, 20000)
	m1, gt1 := Generate(cfg)
	m2, gt2 := Generate(cfg)
	if len(m1) != len(m2) || len(gt1.Events) != len(gt2.Events) {
		t.Fatalf("lengths differ")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("message %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := TWConfig(11, 30000)
	msgs, gt := Generate(cfg)
	if len(msgs) != 30000 {
		t.Fatalf("message count %d", len(msgs))
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Time < msgs[i-1].Time {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
	real := gt.OfKind(Real)
	if len(real) == 0 {
		t.Fatalf("no real events injected")
	}
	for _, g := range gt.Events {
		if g.StartMsg > g.EndMsg || g.EndMsg >= len(msgs) {
			t.Fatalf("bad span: %+v", g)
		}
		if g.Messages <= 0 || len(g.Keywords) == 0 {
			t.Fatalf("bad event: %+v", g)
		}
	}
}

func TestInjectedMessagesCarryEventKeywords(t *testing.T) {
	cfg := TWConfig(13, 20000)
	cfg.RealEvents = 2
	msgs, gt := Generate(cfg)
	real := gt.OfKind(Real)
	if len(real) == 0 {
		t.Skip("no real event landed")
	}
	g := real[0]
	// Count messages mentioning ≥2 of the event's keywords.
	hits := 0
	for _, m := range msgs[g.StartMsg : g.EndMsg+1] {
		n := 0
		for _, kw := range g.Keywords {
			if strings.Contains(m.Text, kw) {
				n++
			}
		}
		if n >= 2 {
			hits++
		}
	}
	if hits < g.Messages/2 {
		t.Fatalf("only %d/%d injected messages carry ≥2 event keywords", hits, g.Messages)
	}
}

func TestLateKeywordsAppearLate(t *testing.T) {
	cfg := TWConfig(17, 40000)
	cfg.RealEvents = 3
	msgs, gt := Generate(cfg)
	checked := 0
	for _, g := range gt.OfKind(Real) {
		if g.Core >= len(g.Keywords) {
			continue
		}
		late := g.Keywords[len(g.Keywords)-1]
		mid := (g.StartMsg + g.EndMsg) / 2
		for i := g.StartMsg; i <= mid && i < len(msgs); i++ {
			if strings.Contains(msgs[i].Text, late) {
				t.Fatalf("late keyword %q appeared in first half at %d", late, i)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no event with late keywords")
	}
}

func TestKindString(t *testing.T) {
	if Real.String() != "real" || Spurious.String() != "spurious" ||
		BelowBurst.String() != "below-burst" || Discussion.String() != "discussion" {
		t.Fatalf("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Fatalf("unknown kind should still format")
	}
}

func TestESDensityHigherThanTW(t *testing.T) {
	tw := TWConfig(1, 100000)
	es := ESConfig(1, 100000)
	if es.RealEvents < 3*tw.RealEvents {
		t.Fatalf("ES density %d not ≈3× TW %d", es.RealEvents, tw.RealEvents)
	}
}

func TestGroundTruthConfigHasBelowBurst(t *testing.T) {
	c := GroundTruthConfig(1, 100000)
	if c.BelowBurstEvents == 0 {
		t.Fatalf("GT profile must include below-burst events")
	}
}

func TestOfKind(t *testing.T) {
	gt := GroundTruth{Events: []GTEvent{{Kind: Real}, {Kind: Spurious}, {Kind: Real}}}
	if len(gt.OfKind(Real)) != 2 || len(gt.OfKind(Spurious)) != 1 || len(gt.OfKind(Discussion)) != 0 {
		t.Fatalf("OfKind filtering wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	msgs, _ := Generate(Config{Seed: 3, TotalMessages: 5000})
	if len(msgs) != 5000 {
		t.Fatalf("defaults failed: %d messages", len(msgs))
	}
}

func TestGroundTruthJSONRoundTrip(t *testing.T) {
	_, gt := Generate(GroundTruthConfig(9, 20000))
	var buf bytes.Buffer
	if err := gt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(gt.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(gt.Events))
	}
	for i := range gt.Events {
		a, b := gt.Events[i], got.Events[i]
		if a.ID != b.ID || a.Kind != b.Kind || a.Headline != b.Headline ||
			a.StartMsg != b.StartMsg || len(a.Keywords) != len(b.Keywords) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadGroundTruthRejectsMalformed(t *testing.T) {
	if _, err := ReadGroundTruth(strings.NewReader("not json")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := ReadGroundTruth(strings.NewReader(`{"events":[{"id":0}]}`)); err == nil {
		t.Fatalf("malformed event accepted")
	}
}
