package tracegen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/stream"
)

// Arrival schedules must be deterministic, exhaustive (every batch
// assigned), and shaped: zipf concentrates on tenant 0, flash erupts
// only inside its window.
func TestBuildScheduleDeterministicAndShaped(t *testing.T) {
	cfg := ArrivalConfig{Kind: ArrivalZipf, Seed: 7, Tenants: 8, Batches: 4096}
	a, b := BuildSchedule(cfg), BuildSchedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if len(a.Order) != cfg.Batches {
		t.Fatalf("order length = %d, want %d", len(a.Order), cfg.Batches)
	}
	total := 0
	for _, n := range a.PerTenant {
		total += n
	}
	if total != cfg.Batches {
		t.Fatalf("per-tenant counts sum to %d, want %d", total, cfg.Batches)
	}
	// Zipf skew: the hottest tenant must dominate a uniform share.
	if a.PerTenant[0] < 2*cfg.Batches/cfg.Tenants {
		t.Fatalf("zipf hot tenant got %d of %d batches — not skewed", a.PerTenant[0], cfg.Batches)
	}

	uni := BuildSchedule(ArrivalConfig{Kind: ArrivalUniform, Seed: 7, Tenants: 4, Batches: 400})
	for i, n := range uni.PerTenant {
		if n != 100 {
			t.Fatalf("uniform tenant %d got %d batches, want 100", i, n)
		}
	}

	fl := BuildSchedule(ArrivalConfig{Kind: ArrivalFlash, Seed: 7, Tenants: 4, Batches: 800,
		BurstTenant: 1, BurstStartFrac: 0.5, BurstEndFrac: 0.75, BurstFactor: 6})
	if fl.PerTenant[1] <= fl.PerTenant[0] {
		t.Fatalf("flash tenant 1 (%d batches) did not exceed background tenant 0 (%d)",
			fl.PerTenant[1], fl.PerTenant[0])
	}
	// Before the window the burst tenant is on its uniform share: the
	// first quarter of the schedule must be a plain round-robin prefix.
	quarter := fl.Order[:200]
	for i, tn := range quarter {
		if tn != i%4 {
			t.Fatalf("flash schedule bursts before its window: position %d = tenant %d", i, tn)
		}
	}
}

// Flood and tenant-traffic composers must be reproducible per position
// range: composing [0,64) must equal composing [0,32) + [32,64).
func TestMessageComposersPositionReproducible(t *testing.T) {
	fc := FloodConfig{Seed: 42}
	whole := fc.Messages(0, 64)
	split := append(fc.Messages(0, 32), fc.Messages(32, 32)...)
	if !reflect.DeepEqual(whole, split) {
		t.Fatal("flood messages are not position-reproducible")
	}
	tt := TenantTraffic{Seed: 42, Tenant: 3}
	whole2 := tt.Messages(0, 64)
	split2 := append(tt.Messages(0, 32), tt.Messages(32, 32)...)
	if !reflect.DeepEqual(whole2, split2) {
		t.Fatal("tenant traffic is not position-reproducible")
	}
}

// The flood must actually churn: consecutive windows share no keywords,
// every message carries flood keywords, and users rotate so per-quantum
// user counts cross the burstiness threshold.
func TestFloodChurnsKeywordWindows(t *testing.T) {
	fc := FloodConfig{Seed: 1, ChurnEvery: 8, WindowSize: 8, KeywordsPerMsg: 5, PoolSize: 512}
	first := floodKeywords(fc.Messages(0, 8))
	second := floodKeywords(fc.Messages(8, 8))
	if len(first) == 0 || len(second) == 0 {
		t.Fatal("flood windows carried no keywords")
	}
	for kw := range second {
		if _, dup := first[kw]; dup {
			t.Fatalf("keyword %q survived the window churn", kw)
		}
	}
	users := make(map[uint64]struct{})
	for _, m := range fc.Messages(0, 8) {
		users[m.User] = struct{}{}
	}
	if len(users) != 8 {
		t.Fatalf("one flood quantum used %d distinct users, want 8", len(users))
	}
}

func floodKeywords(msgs []stream.Message) map[string]struct{} {
	out := make(map[string]struct{})
	for _, m := range msgs {
		for _, w := range strings.Fields(m.Text) {
			if strings.HasPrefix(w, "flood") {
				out[w] = struct{}{}
			}
		}
	}
	return out
}
