// Package tracegen generates seeded synthetic microblog traces with exact
// ground truth, substituting for the paper's Twitter firehose data (see
// DESIGN.md, substitutions table).
//
// A trace is a mix of:
//
//   - background chatter: messages whose words are drawn from a Zipfian
//     vocabulary by random users — frequent background words become bursty
//     (they enter the AKG, as in the paper, where <5% of CKG nodes are
//     bursty) but their user sets barely overlap pairwise, so they do not
//     form correlated clusters;
//   - real events: a keyword pool used by a dedicated user community over
//     an interval, with triangular (build-up / peak / wind-down) message
//     intensity and "late" keywords that only appear in the second half —
//     reproducing the evolving-event behaviour of the paper's Figure 1
//     ("5.9" joining the earthquake cluster);
//   - spurious bursts: a fixed keyword set flooded in a very short span
//     (advertisement/rumor shape: sudden burst, then death — the paper's
//     Section 7.2.2 spurious profile);
//   - below-burst events: real-world happenings with only a handful of
//     messages, mirroring the 27 Google-news headlines whose keywords
//     never reached the burstiness threshold (Section 7.1);
//   - discussions: long-running low-intensity conversations among a small
//     user group (slow spread rate, low support → low rank).
//
// The generator is fully deterministic for a given Config.
package tracegen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/stream"
)

// Kind classifies a ground-truth entry.
type Kind int

// Ground-truth entry kinds.
const (
	Real Kind = iota
	Spurious
	BelowBurst
	Discussion
)

func (k Kind) String() string {
	switch k {
	case Real:
		return "real"
	case Spurious:
		return "spurious"
	case BelowBurst:
		return "below-burst"
	case Discussion:
		return "discussion"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// GTEvent is one injected ground-truth event.
type GTEvent struct {
	ID       int      `json:"id"`
	Kind     Kind     `json:"kind"`
	Headline string   `json:"headline"`
	Keywords []string `json:"keywords"` // full pool, core first
	Core     int      `json:"core"`     // first Core keywords are the core set
	StartMsg int      `json:"startMsg"` // message index of first injected message
	EndMsg   int      `json:"endMsg"`   // message index of last injected message
	Messages int      `json:"messages"` // injected message count
}

// GroundTruth is the full injected-event log of a trace.
type GroundTruth struct {
	Events []GTEvent `json:"events"`
}

// OfKind returns the entries of the given kind.
func (gt *GroundTruth) OfKind(k Kind) []GTEvent {
	var out []GTEvent
	for _, e := range gt.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Config controls trace synthesis.
type Config struct {
	Seed          int64
	TotalMessages int
	Users         int // distinct background users
	VocabSize     int // background vocabulary size
	ZipfS         float64
	ZipfV         float64

	// Event mix.
	RealEvents       int
	SpuriousEvents   int
	BelowBurstEvents int
	Discussions      int

	// Real event shape.
	EventMessagesMin int // injected messages per real event
	EventMessagesMax int
	EventSpanMin     int // duration in messages of stream time
	EventSpanMax     int
	EventUsersMin    int // community size
	EventUsersMax    int
	PoolMin          int // keyword pool size
	PoolMax          int
	// KeywordsPerMsg is how many event keywords one injected message
	// carries (default 3). Together with the pool size this sets the
	// pairwise Jaccard correlation between event keywords: k picks from a
	// pool of a give J ≈ [k(k-1)/(a(a-1))] / [2k/a − k(k-1)/(a(a-1))],
	// so pools of 8–14 with k=3 spread correlations across the paper's
	// β ∈ [0.10, 0.25] sweep range.
	KeywordsPerMsg int
}

// TWConfig returns the Time-Window profile: a general trace with low event
// density (the paper's 10M-tweet TW set, scaled to n messages).
func TWConfig(seed int64, n int) Config {
	return Config{
		Seed:             seed,
		TotalMessages:    n,
		Users:            n / 12,
		VocabSize:        2000 + n/25,
		ZipfS:            1.07,
		ZipfV:            8,
		RealEvents:       maxi(2, n/6000),
		SpuriousEvents:   maxi(1, n/48000),
		BelowBurstEvents: maxi(1, n/48000),
		Discussions:      maxi(1, n/96000),
		EventMessagesMin: 250,
		EventMessagesMax: 650,
		EventSpanMin:     5000,
		EventSpanMax:     10000,
		EventUsersMin:    200,
		EventUsersMax:    450,
		PoolMin:          8,
		PoolMax:          14,
		KeywordsPerMsg:   3,
	}
}

// ESConfig returns the Event-Specific profile: roughly 3× the event
// density of TW (the paper reports event density in ES ≈ 3× TW).
func ESConfig(seed int64, n int) Config {
	c := TWConfig(seed, n)
	c.RealEvents = maxi(3, 3*c.RealEvents)
	c.SpuriousEvents = maxi(2, 2*c.SpuriousEvents)
	return c
}

// GroundTruthConfig returns the Section 7.1 profile: a moderate trace with
// a substantial below-burst population, mirroring the 60-headline /
// 27-below-threshold split.
func GroundTruthConfig(seed int64, n int) Config {
	c := TWConfig(seed, n)
	c.RealEvents = maxi(4, n/10000)
	c.BelowBurstEvents = c.RealEvents * 4 / 5
	c.SpuriousEvents = maxi(2, c.RealEvents/4)
	return c
}

func (c Config) withDefaults() Config {
	if c.TotalMessages <= 0 {
		c.TotalMessages = 50000
	}
	if c.Users <= 0 {
		c.Users = c.TotalMessages / 12
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 4000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.07
	}
	if c.ZipfV < 1 {
		c.ZipfV = 8
	}
	if c.EventMessagesMin <= 0 {
		c.EventMessagesMin = 350
	}
	if c.EventMessagesMax < c.EventMessagesMin {
		c.EventMessagesMax = c.EventMessagesMin * 2
	}
	if c.EventSpanMin <= 0 {
		c.EventSpanMin = 4000
	}
	if c.EventSpanMax < c.EventSpanMin {
		c.EventSpanMax = c.EventSpanMin * 2
	}
	if c.EventUsersMin <= 0 {
		c.EventUsersMin = 60
	}
	if c.EventUsersMax < c.EventUsersMin {
		c.EventUsersMax = c.EventUsersMin * 3
	}
	if c.PoolMin <= 0 {
		c.PoolMin = 8
	}
	if c.PoolMax < c.PoolMin {
		c.PoolMax = c.PoolMin + 4
	}
	if c.KeywordsPerMsg <= 0 {
		c.KeywordsPerMsg = 3
	}
	return c
}

var fillers = []string{"the", "a", "is", "to", "and", "of", "in", "on", "so", "just"}

// plan holds the generation state of one injected event.
type plan struct {
	ev      GTEvent
	users   []uint64
	rng     *rand.Rand
	kPerMsg int
}

// compose builds one injected message for the plan at stream position pos.
func (p *plan) compose(pos int) (uint64, string) {
	ev := &p.ev
	rng := p.rng
	user := p.users[rng.Intn(len(p.users))]
	// Late (non-core) keywords of real events only appear in the second
	// half of the event's life, so clusters evolve.
	avail := len(ev.Keywords)
	if ev.Kind == Real && pos <= (ev.StartMsg+ev.EndMsg)/2 {
		avail = ev.Core
	}
	words := make([]string, 0, 8)
	// Real-event messages carry a fixed number of keywords sampled from
	// the available pool (users phrase events differently — imperfect
	// correlation, as in Figure 1); spurious bursts and discussions use
	// 2–4 of their small fixed set, which keeps them strongly correlated
	// in every parameter setting (the paper observes spurious events are
	// discovered in every run).
	count := p.kPerMsg
	if ev.Kind != Real {
		count = 2 + rng.Intn(3)
	}
	if count > avail {
		count = avail
	}
	perm := rng.Perm(avail)
	for _, idx := range perm[:count] {
		words = append(words, ev.Keywords[idx])
	}
	// Plus filler and an occasional personal word.
	words = append(words, fillers[rng.Intn(len(fillers))])
	if rng.Intn(3) == 0 {
		words = append(words, fmt.Sprintf("misc%d", rng.Intn(5000)))
	}
	return user, strings.Join(words, " ")
}

// Generate synthesises a trace and its ground truth.
func Generate(cfg Config) ([]stream.Message, GroundTruth) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.VocabSize-1))

	n := cfg.TotalMessages
	// slot[i] == 0 means background; k > 0 means injected message of
	// plans[k-1]; -1 marks a reservation during position sampling.
	slot := make([]int, n)
	var gt GroundTruth
	var plans []*plan

	addPlan := func(ev GTEvent, userCount int, positions []int, kPerMsg int) {
		sort.Ints(positions)
		ev.StartMsg = positions[0]
		ev.EndMsg = positions[len(positions)-1]
		ev.Messages = len(positions)
		ev.ID = len(plans) + 1
		for _, p := range positions {
			slot[p] = len(plans) + 1
		}
		users := make([]uint64, userCount)
		for i := range users {
			users[i] = uint64(rng.Intn(cfg.Users))
		}
		plans = append(plans, &plan{
			ev:      ev,
			users:   users,
			rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(ev.ID)*7919)),
			kPerMsg: kPerMsg,
		})
		gt.Events = append(gt.Events, ev)
	}

	// freePositions picks up to count distinct unoccupied slots in
	// [start,end), optionally weighted by an intensity envelope over the
	// span (rejection sampling).
	freePositions := func(start, end, count int, weight func(frac float64) float64) []int {
		if end > n {
			end = n
		}
		if start < 0 {
			start = 0
		}
		span := end - start
		if span <= 1 {
			return nil
		}
		out := make([]int, 0, count)
		for tries := 0; len(out) < count && tries < count*60; tries++ {
			frac := rng.Float64()
			if weight != nil && rng.Float64() > weight(frac) {
				continue
			}
			p := start + int(frac*float64(span))
			if p < n && slot[p] == 0 {
				out = append(out, p)
				slot[p] = -1 // reserve
			}
		}
		for _, p := range out {
			slot[p] = 0 // unreserve; addPlan sets the real owner
		}
		return out
	}

	triangular := func(frac float64) float64 {
		if frac < 0.5 {
			return frac * 2
		}
		return (1 - frac) * 2
	}

	// Real events. Every fourth event is "weak": its messages carry one
	// fewer keyword, diluting pairwise correlation — these are the events
	// that stringent β settings miss, giving the Figure 7-10 sweeps their
	// gradient (the paper's traces naturally contain such marginal events).
	for i := 0; i < cfg.RealEvents; i++ {
		span := cfg.EventSpanMin + rng.Intn(cfg.EventSpanMax-cfg.EventSpanMin+1)
		msgs := cfg.EventMessagesMin + rng.Intn(cfg.EventMessagesMax-cfg.EventMessagesMin+1)
		start := rng.Intn(maxi(1, n-span))
		pool := cfg.PoolMin + rng.Intn(cfg.PoolMax-cfg.PoolMin+1)
		core := pool - 2
		kPer := cfg.KeywordsPerMsg
		if i%4 == 3 && kPer > 2 {
			kPer--
		}
		kws := make([]string, pool)
		for j := range kws {
			kws[j] = fmt.Sprintf("event%dkw%d", len(plans)+1, j)
		}
		positions := freePositions(start, start+span, msgs, triangular)
		if len(positions) < 8 {
			continue
		}
		addPlan(GTEvent{
			Kind:     Real,
			Headline: fmt.Sprintf("real event %d: %s %s %s", len(plans)+1, kws[0], kws[1], kws[2]),
			Keywords: kws,
			Core:     core,
		}, cfg.EventUsersMin+rng.Intn(cfg.EventUsersMax-cfg.EventUsersMin+1), positions, kPer)
	}

	// Spurious bursts: short rectangle, fixed small keyword set.
	for i := 0; i < cfg.SpuriousEvents; i++ {
		span := 200 + rng.Intn(300)
		msgs := 120 + rng.Intn(120)
		start := rng.Intn(maxi(1, n-span))
		kws := make([]string, 4)
		for j := range kws {
			kws[j] = fmt.Sprintf("spam%dkw%d", len(plans)+1, j)
		}
		positions := freePositions(start, start+span, msgs, nil)
		if len(positions) < 8 {
			continue
		}
		addPlan(GTEvent{
			Kind:     Spurious,
			Headline: fmt.Sprintf("spurious burst %d", len(plans)+1),
			Keywords: kws,
			Core:     len(kws),
		}, 40+rng.Intn(80), positions, cfg.KeywordsPerMsg)
	}

	// Below-burst events: 1–3 messages.
	for i := 0; i < cfg.BelowBurstEvents; i++ {
		msgs := 1 + rng.Intn(3)
		start := rng.Intn(maxi(1, n-100))
		kws := make([]string, 5)
		for j := range kws {
			kws[j] = fmt.Sprintf("quiet%dkw%d", len(plans)+1, j)
		}
		positions := freePositions(start, start+100, msgs, nil)
		if len(positions) == 0 {
			continue
		}
		addPlan(GTEvent{
			Kind:     BelowBurst,
			Headline: fmt.Sprintf("below-burst event %d", len(plans)+1),
			Keywords: kws,
			Core:     len(kws),
		}, 3, positions, cfg.KeywordsPerMsg)
	}

	// Discussions: long span, low constant intensity, tiny user pool.
	for i := 0; i < cfg.Discussions; i++ {
		span := n * 3 / 4
		msgs := 150 + rng.Intn(150)
		start := rng.Intn(maxi(1, n-span))
		kws := make([]string, 5)
		for j := range kws {
			kws[j] = fmt.Sprintf("debate%dkw%d", len(plans)+1, j)
		}
		positions := freePositions(start, start+span, msgs, nil)
		if len(positions) < 8 {
			continue
		}
		addPlan(GTEvent{
			Kind:     Discussion,
			Headline: fmt.Sprintf("ongoing discussion %d", len(plans)+1),
			Keywords: kws,
			Core:     len(kws),
		}, 12+rng.Intn(10), positions, cfg.KeywordsPerMsg)
	}

	// Emit messages.
	msgs := make([]stream.Message, n)
	for i := 0; i < n; i++ {
		var user uint64
		var text string
		if k := slot[i]; k > 0 {
			user, text = plans[k-1].compose(i)
		} else {
			user = uint64(rng.Intn(cfg.Users))
			text = backgroundText(rng, zipf)
		}
		msgs[i] = stream.Message{
			ID:   uint64(i + 1),
			User: user,
			Time: int64(i),
			Text: text,
		}
	}
	return msgs, gt
}

func backgroundText(rng *rand.Rand, zipf *rand.Zipf) string {
	count := 3 + rng.Intn(5)
	words := make([]string, 0, count+2)
	for i := 0; i < count; i++ {
		words = append(words, fmt.Sprintf("bg%d", zipf.Uint64()))
	}
	words = append(words, fillers[rng.Intn(len(fillers))])
	return strings.Join(words, " ")
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
