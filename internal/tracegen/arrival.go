package tracegen

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// This file extends tracegen from single-stream synthesis to
// heavy-traffic modelling: per-tenant arrival processes (who sends how
// much, when) and adversarial message composition (what a hostile
// tenant sends). The load harness (internal/loadharness) layers HTTP
// driving and SLO measurement on top; everything here is pure, seeded
// and deterministic, so a harness run's traffic plan is byte-identical
// for a fixed seed.

// ArrivalKind selects the per-tenant arrival process of a schedule.
type ArrivalKind int

const (
	// ArrivalUniform spreads batches evenly across tenants round-robin —
	// the control scenario every skewed run is compared against.
	ArrivalUniform ArrivalKind = iota
	// ArrivalZipf draws each batch's tenant from a Zipf distribution, so
	// one or two hot tenants dominate while a long cold tail trickles —
	// the steady-state skew of a real multi-tenant deployment.
	ArrivalZipf
	// ArrivalFlash is uniform background traffic plus a flash crowd: one
	// tenant erupts to BurstFactor× its uniform share for a contiguous
	// window of the schedule, the "everyone posts about the earthquake
	// at once" shape the paper's workload implies.
	ArrivalFlash
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalUniform:
		return "uniform"
	case ArrivalZipf:
		return "zipf"
	case ArrivalFlash:
		return "flash"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// ArrivalConfig shapes one traffic schedule.
type ArrivalConfig struct {
	Kind    ArrivalKind
	Seed    int64
	Tenants int // number of tenants (≥ 1)
	// Batches is the total batch budget across all tenants.
	Batches int
	// ZipfS is the Zipf skew exponent for ArrivalZipf (must be > 1;
	// default 1.4 — tenant 0 receives roughly half the traffic at 8
	// tenants).
	ZipfS float64
	// Flash-crowd shape (ArrivalFlash): BurstTenant erupts between
	// BurstStartFrac and BurstEndFrac of the schedule at BurstFactor×
	// its uniform share. Defaults: tenant 0, [0.25, 0.75), 8×.
	BurstTenant    int
	BurstStartFrac float64
	BurstEndFrac   float64
	BurstFactor    int
}

func (c ArrivalConfig) withDefaults() ArrivalConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Batches <= 0 {
		c.Batches = 64 * c.Tenants
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 8
	}
	if c.BurstEndFrac <= c.BurstStartFrac {
		c.BurstStartFrac, c.BurstEndFrac = 0.25, 0.75
	}
	if c.BurstTenant < 0 || c.BurstTenant >= c.Tenants {
		c.BurstTenant = 0
	}
	return c
}

// Schedule is a materialized arrival plan: Order[i] is the tenant index
// of the i-th batch in global arrival order. PerTenant[t] counts the
// batches tenant t receives. Deterministic for a fixed config.
type Schedule struct {
	Kind      ArrivalKind
	Order     []int
	PerTenant []int
}

// BuildSchedule materializes the arrival process into a concrete batch
// order. The same config always yields the same schedule.
func BuildSchedule(cfg ArrivalConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{Kind: cfg.Kind, Order: make([]int, 0, cfg.Batches), PerTenant: make([]int, cfg.Tenants)}
	switch cfg.Kind {
	case ArrivalZipf:
		zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Tenants-1))
		for i := 0; i < cfg.Batches; i++ {
			s.Order = append(s.Order, int(zipf.Uint64()))
		}
	case ArrivalFlash:
		// Uniform round-robin, with BurstFactor-1 extra burst-tenant
		// batches woven after each round inside the burst window.
		burstLo := int(cfg.BurstStartFrac * float64(cfg.Batches))
		burstHi := int(cfg.BurstEndFrac * float64(cfg.Batches))
		for i := 0; len(s.Order) < cfg.Batches; i++ {
			s.Order = append(s.Order, i%cfg.Tenants)
			if n := len(s.Order); n > burstLo && n <= burstHi && i%cfg.Tenants == cfg.Tenants-1 {
				for j := 0; j < cfg.BurstFactor-1 && len(s.Order) < cfg.Batches; j++ {
					s.Order = append(s.Order, cfg.BurstTenant)
				}
			}
		}
	default: // ArrivalUniform
		for i := 0; i < cfg.Batches; i++ {
			s.Order = append(s.Order, i%cfg.Tenants)
		}
	}
	for _, t := range s.Order {
		s.PerTenant[t]++
	}
	return s
}

// FloodConfig composes an adversarial keyword flood: the message stream
// a hostile (or pathological) tenant sends to maximize detector and
// query-engine work per byte.
//
//   - Every message carries KeywordsPerMsg distinct keywords from a
//     sliding window over a PoolSize-keyword pool, posted by enough
//     distinct users that each keyword crosses the burstiness threshold
//     — so every keyword enters the AKG and correlates with every other
//     keyword in its window (dense cluster churn, the paper's
//     worst case for incremental SCP repair).
//   - The window advances every ChurnEvery messages, killing the
//     previous window's clusters and birthing new ones — event
//     birth/death churn at the maximum rate the quantum size allows.
//   - Over a run, the tenant cycles through the whole pool, inflating
//     archive keyword-Bloom sidecars toward their false-positive
//     ceiling: queries for any keyword probe (and decode) segments that
//     hold no matching rows, the data-skipping layer's adversarial
//     input.
type FloodConfig struct {
	Seed int64
	// Users is the distinct-user population; each message draws a fresh
	// user round-robin so every keyword's per-quantum user count is
	// maximal. Default 64.
	Users int
	// PoolSize is the total adversarial keyword vocabulary. Default 512.
	PoolSize int
	// KeywordsPerMsg is how many window keywords each message carries.
	// Default 5.
	KeywordsPerMsg int
	// WindowSize is the live keyword window width. Default 8.
	WindowSize int
	// ChurnEvery advances the window after this many messages —
	// one detector quantum, when matched to the harness batch size, is
	// the most adversarial setting. Default 8.
	ChurnEvery int
}

func (c FloodConfig) withDefaults() FloodConfig {
	if c.Users <= 0 {
		c.Users = 64
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 512
	}
	if c.KeywordsPerMsg <= 0 {
		c.KeywordsPerMsg = 5
	}
	if c.WindowSize < c.KeywordsPerMsg {
		c.WindowSize = maxi(8, c.KeywordsPerMsg)
	}
	if c.ChurnEvery <= 0 {
		c.ChurnEvery = 8
	}
	return c
}

// Keyword returns the i-th pool keyword; the harness queries for
// long-retired keywords by index to force Bloom-sidecar probes.
func (c FloodConfig) Keyword(i int) string {
	c = c.withDefaults()
	return fmt.Sprintf("flood%dkw%d", c.Seed&0xffff, ((i%c.PoolSize)+c.PoolSize)%c.PoolSize)
}

// Messages composes n flood messages starting at absolute stream
// position start (position drives the window, the user rotation and the
// message IDs, so any contiguous run of positions is reproducible in
// isolation).
func (c FloodConfig) Messages(start, n int) []stream.Message {
	c = c.withDefaults()
	out := make([]stream.Message, n)
	for i := 0; i < n; i++ {
		pos := start + i
		window := pos / c.ChurnEvery
		rng := rand.New(rand.NewSource(c.Seed ^ int64(pos)*2654435761))
		base := (window * c.WindowSize) % c.PoolSize
		words := make([]string, 0, c.KeywordsPerMsg+1)
		for _, idx := range rng.Perm(c.WindowSize)[:c.KeywordsPerMsg] {
			words = append(words, c.Keyword(base+idx))
		}
		words = append(words, fillers[rng.Intn(len(fillers))])
		out[i] = stream.Message{
			ID:   uint64(pos + 1),
			User: uint64(pos % c.Users),
			Time: int64(pos),
			Text: joinWords(words),
		}
	}
	return out
}

// TenantTraffic composes benign per-tenant traffic: a small hot keyword
// community (so real events form and evict into the archive) over
// filler chatter. Deterministic per (seed, tenant, position).
type TenantTraffic struct {
	Seed   int64
	Tenant int
	// Users is the tenant's community size (default 48); Keywords its
	// hot-topic pool (default 6, enough for one dense cluster).
	Users    int
	Keywords int
}

func (c TenantTraffic) withDefaults() TenantTraffic {
	if c.Users <= 0 {
		c.Users = 48
	}
	if c.Keywords <= 0 {
		c.Keywords = 6
	}
	return c
}

// Messages composes n messages starting at absolute position start of
// the tenant's stream.
func (c TenantTraffic) Messages(start, n int) []stream.Message {
	c = c.withDefaults()
	out := make([]stream.Message, n)
	for i := 0; i < n; i++ {
		pos := start + i
		rng := rand.New(rand.NewSource(c.Seed ^ int64(c.Tenant+1)*7919 ^ int64(pos)*104729))
		words := make([]string, 0, 4)
		// Three hot keywords per message: correlated enough that the
		// community forms one reported event within a handful of quanta.
		for _, idx := range rng.Perm(c.Keywords)[:3] {
			words = append(words, fmt.Sprintf("t%dtopic%d", c.Tenant, idx))
		}
		words = append(words, fillers[rng.Intn(len(fillers))])
		out[i] = stream.Message{
			ID:   uint64(pos + 1),
			User: uint64(pos % c.Users),
			Time: int64(pos),
			Text: joinWords(words),
		}
	}
	return out
}

func joinWords(words []string) string {
	n := 0
	for _, w := range words {
		n += len(w) + 1
	}
	b := make([]byte, 0, n)
	for i, w := range words {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, w...)
	}
	return string(b)
}
