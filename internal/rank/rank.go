// Package rank implements the paper's local ranking function (Section 6):
//
//	rank(C) = (1/n) · W · C · 1ᵀ
//
// where W is the 1×n vector of node weights (number of user ids supporting
// each keyword), C is the n×n edge-correlation matrix with C_ii = 1,
// C_ij = EC(i,j) for cluster edges and 0 otherwise, and 1ᵀ sums the
// resulting vector to a scalar. Expanded:
//
//	rank(C) = (Σ_i w_i + Σ_{(i,j)∈E} EC_ij·(w_i + w_j)) / n
//
// so the rank grows with support (W), density (number of non-zero C
// entries) and correlation strength — exactly the three local properties
// the paper lists — and is normalised by cluster size so rank is not a
// monotone function of n. No global state is consulted, which is what
// makes ranking viable in real time.
package rank

import (
	"math"

	"repro/internal/core"
	"repro/internal/dygraph"
)

// Weights supplies the node weight w_i (user support) for a keyword.
type Weights func(n dygraph.NodeID) float64

// Correlations supplies the edge correlation EC for a cluster edge.
type Correlations func(a, b dygraph.NodeID) float64

// Score computes the rank of a cluster from its local properties only.
// Nodes and edges are summed in sorted order: float addition is not
// associative, so map-order iteration would make ranks differ in the last
// ulp from run to run — enough to flip reporting thresholds and break the
// bit-identical replay guarantee checkpoints rely on.
func Score(c *core.Cluster, w Weights, ec Correlations) float64 {
	n := c.NodeCount()
	if n == 0 {
		return 0
	}
	total := 0.0
	for _, node := range c.Nodes() {
		total += w(node) // diagonal: C_ii = 1
	}
	for _, e := range c.Edges() {
		total += ec(e.U, e.V) * (w(e.U) + w(e.V))
	}
	return total / float64(n)
}

// ScoreParts computes the rank of an explicit node/edge list; used by the
// baseline clustering schemes, which do not produce core.Cluster values.
func ScoreParts(nodes []dygraph.NodeID, edges []dygraph.Edge, w Weights, ec Correlations) float64 {
	n := len(nodes)
	if n == 0 {
		return 0
	}
	total := 0.0
	for _, node := range nodes {
		total += w(node)
	}
	for _, e := range edges {
		total += ec(e.U, e.V) * (w(e.U) + w(e.V))
	}
	return total / float64(n)
}

// MinScore returns the smallest rank a just-admitted cluster of size n can
// have under thresholds τ (minimum support per node) and β (minimum edge
// correlation): the sparsest SCP cluster on n nodes (a chain of 4-cycles
// glued on edges, the minimum-edge construction that still gives every
// edge a short cycle) with every weight and correlation at its threshold
// floor. Section 7.2.2 uses a multiple of this as the spurious-event
// cutoff.
func MinScore(n int, tau int, beta float64) float64 {
	if n < 3 {
		return 0
	}
	e := MinEdges(n)
	t := float64(tau)
	// Σw = n·τ; each edge contributes β·(τ+τ).
	return (float64(n)*t + float64(e)*beta*2*t) / float64(n)
}

// MinEdges returns the minimum number of edges of an SCP cluster on n
// nodes: 3 for a triangle, 4 for a square, and from there each pair of
// added nodes closes another glued 4-cycle (3 more edges), with a single
// extra node closing a glued triangle (2 more edges).
func MinEdges(n int) int {
	switch {
	case n < 3:
		return 0
	case n == 3:
		return 3
	default:
		// Start from a square (4 nodes, 4 edges).
		extra := n - 4
		e := 4 + (extra/2)*3
		if extra%2 == 1 {
			e += 2
		}
		return e
	}
}

// Trend classifies a rank history for the spurious-event analysis of
// Section 7.2.2: real events build up and wind down (non-monotonic rank,
// evolving keyword set), spurious bursts spike once and decay
// monotonically.
type Trend int

// Trend values.
const (
	TrendFlat Trend = iota
	TrendMonotoneDown
	TrendMonotoneUp
	TrendNonMonotone
)

// ClassifyTrend inspects a rank history (chronological order).
func ClassifyTrend(history []float64) Trend {
	if len(history) < 2 {
		return TrendFlat
	}
	up, down := false, false
	for i := 1; i < len(history); i++ {
		d := history[i] - history[i-1]
		switch {
		case d > 1e-12:
			up = true
		case d < -1e-12:
			down = true
		}
	}
	switch {
	case up && down:
		return TrendNonMonotone
	case down:
		return TrendMonotoneDown
	case up:
		return TrendMonotoneUp
	default:
		return TrendFlat
	}
}

// Spurious applies the paper's post-hoc spuriousness rule (Section 7.2.2):
// real events have a build-up and wind-down phase — their rank moves
// non-monotonically and their keyword set evolves — while spurious events
// "have a sudden burst and thereafter they die". Concretely an event is
// spurious when its keyword set never evolved, its rank peaked within the
// first few quanta of its life (sudden burst), and the rank never rose
// again after the peak (a flat plateau while the sliding window still
// holds the burst is allowed; comparisons use a relative tolerance so
// floating-point noise does not defeat the rule).
func Spurious(history []float64, evolved bool) bool {
	if evolved || len(history) < 2 {
		return false
	}
	peak := 0
	for i, v := range history {
		if v > history[peak]*(1+1e-9) {
			peak = i
		}
	}
	// Sudden burst: the rank tops out within the first few quanta (a
	// burst may take 2–4 quanta to fill the sliding window) and well
	// inside the first third of the event's observed life.
	early := len(history) / 8
	if early < 3 {
		early = 3
	}
	third := len(history) / 3
	if third < 1 {
		third = 1
	}
	if peak > early || peak >= third {
		return false
	}
	for i := peak + 1; i < len(history); i++ {
		if history[i] > history[i-1]*(1+1e-6) {
			return false // recovered after the peak: build-up behaviour
		}
	}
	return true
}

// Normalize maps a raw score into [0,1] against a reference maximum; the
// harness uses it when comparing rank distributions across schemes with
// different support scales.
func Normalize(score, reference float64) float64 {
	if reference <= 0 || math.IsNaN(score) {
		return 0
	}
	v := score / reference
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}
