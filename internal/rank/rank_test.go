package rank

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dygraph"
)

// triangleCluster builds a live engine cluster over nodes 1,2,3.
func triangleCluster(t *testing.T, w float64) *core.Cluster {
	t.Helper()
	en := core.NewEngine(core.Hooks{})
	en.AddEdge(1, 2, w)
	en.AddEdge(2, 3, w)
	c := en.AddEdge(1, 3, w)
	if c == nil {
		t.Fatalf("no cluster")
	}
	return c
}

func constW(v float64) Weights {
	return func(dygraph.NodeID) float64 { return v }
}

func TestScoreTriangle(t *testing.T) {
	c := triangleCluster(t, 0.5)
	// rank = (Σw + Σ ec·(wi+wj))/n = (3·10 + 3·0.5·20)/3 = 20.
	got := Score(c, constW(10), func(a, b dygraph.NodeID) float64 { return 0.5 })
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("Score = %v, want 20", got)
	}
}

func TestScoreGrowsWithSupport(t *testing.T) {
	c := triangleCluster(t, 0.5)
	ec := func(a, b dygraph.NodeID) float64 { return 0.5 }
	if Score(c, constW(20), ec) <= Score(c, constW(10), ec) {
		t.Fatalf("rank must grow with support")
	}
}

func TestScoreGrowsWithCorrelation(t *testing.T) {
	c := triangleCluster(t, 0.5)
	lo := Score(c, constW(10), func(a, b dygraph.NodeID) float64 { return 0.2 })
	hi := Score(c, constW(10), func(a, b dygraph.NodeID) float64 { return 0.9 })
	if hi <= lo {
		t.Fatalf("rank must grow with correlation")
	}
}

func TestScoreGrowsWithDensity(t *testing.T) {
	// Square (4 edges) vs square with both diagonals (6 edges), same
	// size and weights: denser cluster must rank higher.
	en := core.NewEngine(core.Hooks{})
	en.AddEdge(1, 2, 1)
	en.AddEdge(2, 3, 1)
	en.AddEdge(3, 4, 1)
	sq := en.AddEdge(4, 1, 1)
	sparse := ScoreParts(sq.Nodes(), sq.Edges(), constW(5), func(a, b dygraph.NodeID) float64 { return 0.5 })
	en.AddEdge(1, 3, 1)
	en.AddEdge(2, 4, 1)
	dense := ScoreParts(sq.Nodes(), sq.Edges(), constW(5), func(a, b dygraph.NodeID) float64 { return 0.5 })
	if dense <= sparse {
		t.Fatalf("dense=%v sparse=%v", dense, sparse)
	}
}

func TestScoreNormalisedBySize(t *testing.T) {
	// A complete clique's rank should not blow up linearly with n when
	// weights are constant; check K3 vs K3-sized values via ScoreParts.
	nodes3 := []dygraph.NodeID{1, 2, 3}
	edges3 := []dygraph.Edge{dygraph.NewEdge(1, 2), dygraph.NewEdge(2, 3), dygraph.NewEdge(1, 3)}
	// Duplicate disjoint triangle union (6 nodes, 6 edges): same density,
	// same per-node support → same rank as a single triangle.
	nodes6 := []dygraph.NodeID{1, 2, 3, 4, 5, 6}
	edges6 := append(edges3, dygraph.NewEdge(4, 5), dygraph.NewEdge(5, 6), dygraph.NewEdge(4, 6))
	ec := func(a, b dygraph.NodeID) float64 { return 0.5 }
	r3 := ScoreParts(nodes3, edges3, constW(10), ec)
	r6 := ScoreParts(nodes6, edges6, constW(10), ec)
	if math.Abs(r3-r6) > 1e-9 {
		t.Fatalf("normalisation broken: r3=%v r6=%v", r3, r6)
	}
}

func TestScorePartsEmpty(t *testing.T) {
	if ScoreParts(nil, nil, constW(1), nil) != 0 {
		t.Fatalf("empty cluster should score 0")
	}
}

func TestMinEdges(t *testing.T) {
	cases := map[int]int{2: 0, 3: 3, 4: 4, 5: 6, 6: 7, 7: 9, 8: 10}
	for n, want := range cases {
		if got := MinEdges(n); got != want {
			t.Errorf("MinEdges(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMinScoreMonotoneInThresholds(t *testing.T) {
	if MinScore(5, 4, 0.2) >= MinScore(5, 8, 0.2) {
		t.Fatalf("MinScore must grow with τ")
	}
	if MinScore(5, 4, 0.1) >= MinScore(5, 4, 0.3) {
		t.Fatalf("MinScore must grow with β")
	}
	if MinScore(2, 4, 0.2) != 0 {
		t.Fatalf("clusters need ≥3 nodes")
	}
}

func TestClassifyTrend(t *testing.T) {
	cases := []struct {
		hist []float64
		want Trend
	}{
		{nil, TrendFlat},
		{[]float64{5}, TrendFlat},
		{[]float64{5, 5, 5}, TrendFlat},
		{[]float64{5, 4, 3}, TrendMonotoneDown},
		{[]float64{3, 4, 5}, TrendMonotoneUp},
		{[]float64{3, 7, 4}, TrendNonMonotone},
	}
	for _, tc := range cases {
		if got := ClassifyTrend(tc.hist); got != tc.want {
			t.Errorf("ClassifyTrend(%v) = %v, want %v", tc.hist, got, tc.want)
		}
	}
}

func TestSpurious(t *testing.T) {
	// Sudden burst then monotone decay, never evolved: spurious.
	if !Spurious([]float64{90, 70, 50, 20}, false) {
		t.Fatalf("decaying non-evolving event should be spurious")
	}
	// Same rank shape but evolved: real (events change keywords).
	if Spurious([]float64{90, 70, 50, 20}, true) {
		t.Fatalf("evolving event must not be spurious")
	}
	// Burst, plateau while the window holds it, then decay: spurious.
	// (Plateau values carry floating-point noise.)
	plateau := []float64{50, 90}
	for i := 0; i < 10; i++ {
		plateau = append(plateau, 90+1e-12*float64(i%3-1))
	}
	plateau = append(plateau, 60, 30)
	if !Spurious(plateau, false) {
		t.Fatalf("burst+plateau+decay should be spurious")
	}
	// Build-up over many quanta with peak mid-life: real.
	if Spurious([]float64{10, 20, 40, 60, 90, 80, 60, 30}, false) {
		t.Fatalf("gradual build-up must not be spurious")
	}
	// Recovery after a peak: real.
	if Spurious([]float64{90, 50, 70, 60}, false) {
		t.Fatalf("rank recovery must not be spurious")
	}
	// Too little history to judge.
	if Spurious([]float64{90}, false) {
		t.Fatalf("single observation cannot be spurious")
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(5, 10) != 0.5 {
		t.Fatalf("Normalize(5,10) != 0.5")
	}
	if Normalize(15, 10) != 1 {
		t.Fatalf("clamping high failed")
	}
	if Normalize(-1, 10) != 0 {
		t.Fatalf("clamping low failed")
	}
	if Normalize(5, 0) != 0 {
		t.Fatalf("zero reference should yield 0")
	}
	if Normalize(math.NaN(), 10) != 0 {
		t.Fatalf("NaN should yield 0")
	}
}
