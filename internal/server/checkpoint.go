package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/detect"
	"repro/internal/vfs"
)

// ckptExt is the checkpoint filename extension; one file per tenant.
const ckptExt = ".ckpt"

// checkpointStore persists per-tenant detector checkpoints in a flat
// directory, one gob file per tenant, written atomically (tmp + rename)
// so a crash mid-write never corrupts the previous good checkpoint.
// Tenant names are validated by the pool, so they are safe as filenames.
type checkpointStore struct {
	dir string
	fs  vfs.FS
}

func newCheckpointStore(dir string, fsys vfs.FS) (*checkpointStore, error) {
	fsys = vfs.Default(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	return &checkpointStore{dir: dir, fs: fsys}, nil
}

func (s *checkpointStore) path(tenant string) string {
	return filepath.Join(s.dir, tenant+ckptExt)
}

// Save checkpoints one tenant's detector. The caller must hold the
// tenant's detector lock (or otherwise guarantee the detector is idle).
// A failed write (ENOSPC included) leaves the previous checkpoint
// untouched and no temp debris: the write goes to a temp file that is
// removed on any failure, and the rename happens only after a clean
// sync + close.
func (s *checkpointStore) Save(tenant string, d *detect.Detector) error {
	tmp, err := s.fs.CreateTemp(s.dir, tenant+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: checkpoint %s: %w", tenant, err)
	}
	defer s.fs.Remove(tmp.Name()) //nolint:errcheck // gone already after the rename
	if err := d.Save(tmp); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("server: checkpoint %s: %w", tenant, err)
	}
	// Sync before the rename: without it a power loss after the rename
	// can leave the new name pointing at unwritten pages — a truncated
	// checkpoint replacing the previous good one.
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("server: checkpoint %s: %w", tenant, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: checkpoint %s: %w", tenant, err)
	}
	if err := s.fs.Rename(tmp.Name(), s.path(tenant)); err != nil {
		return fmt.Errorf("server: checkpoint %s: %w", tenant, err)
	}
	// Persist the rename itself.
	if dir, err := s.fs.Open(s.dir); err == nil {
		dir.Sync() //nolint:errcheck // best-effort directory fsync
		dir.Close()
	}
	return nil
}

// Load restores a tenant's detector from its checkpoint file. Returns
// (nil, nil) when no checkpoint exists.
func (s *checkpointStore) Load(tenant string) (*detect.Detector, error) {
	f, err := s.fs.Open(s.path(tenant))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: load checkpoint %s: %w", tenant, err)
	}
	defer f.Close()
	d, err := detect.Load(f)
	if err != nil {
		return nil, fmt.Errorf("server: load checkpoint %s: %w", tenant, err)
	}
	return d, nil
}

// List returns the tenant names with a saved checkpoint, sorted by the
// directory listing order (ReadDir sorts by filename).
func (s *checkpointStore) List() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: list checkpoints: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ckptExt) {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ckptExt))
	}
	return names, nil
}
