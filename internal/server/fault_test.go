package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/vfs"
)

// faultPool builds a pool whose storage goes through a FaultFS, with a
// fast supervisor cadence so degraded tenants recover within test time.
func faultPool(t *testing.T, mutate func(*PoolConfig)) (*Pool, *vfs.FaultFS, string) {
	t.Helper()
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	cfg := PoolConfig{
		Detector:              testDetectConfig(),
		WALDir:                filepath.Join(dir, "wal"),
		FS:                    ffs,
		DegradedProbeInterval: 10 * time.Millisecond,
		StorageRetryBackoff:   time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		pool.Shutdown(ctx) //nolint:errcheck // faults may leave a sad log behind
	})
	return pool, ffs, dir
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitApplied blocks until every accepted batch has been applied.
func waitApplied(t *testing.T, tn *Tenant) {
	t.Helper()
	waitFor(t, 5*time.Second, func() bool {
		return tn.applied.Load() == tn.accepted.Load()
	}, "queue drain")
}

// replayCount reopens the pool on the same directories and returns how
// many messages the named tenant recovered — the acked-prefix check.
func replayCount(t *testing.T, dir string, name string) uint64 {
	t.Helper()
	pool, err := NewPool(PoolConfig{
		Detector: testDetectConfig(),
		WALDir:   filepath.Join(dir, "wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		pool.Shutdown(ctx) //nolint:errcheck // read-only reopen
	}()
	tn, ok := pool.Tenant(name)
	if !ok {
		t.Fatalf("tenant %s not recovered", name)
	}
	return tn.msgs.Load()
}

// TestTransientEIORetriesInline: one transient write error on the WAL
// append path must recover inside Enqueue — the client sees success,
// never a shed — and the retry is visible on the metrics surface.
func TestTransientEIORetriesInline(t *testing.T) {
	pool, ffs, dir := faultPool(t, nil)
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal", Count: 1})
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatalf("Enqueue with transient EIO: %v", err)
	}
	if got := ffs.Injected(); got == 0 {
		t.Fatal("fault was never injected; the test exercised nothing")
	}
	m := tn.Metrics()
	if m.Degraded {
		t.Fatal("transient error degraded the tenant")
	}
	if m.StorageRetries == 0 {
		t.Fatal("StorageRetries = 0, want at least one retry turn")
	}
	waitApplied(t, tn)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, dir, "acme"); got != 8 {
		t.Fatalf("recovered %d messages, want 8", got)
	}
}

// TestTornWriteRetriesInline: a write torn mid-frame (short write + EIO)
// must roll back cleanly and succeed on the inline retry, leaving no
// torn bytes for replay to trip on.
func TestTornWriteRetriesInline(t *testing.T) {
	pool, ffs, dir := faultPool(t, nil)
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal", Count: 1, TornBytes: 7})
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatalf("Enqueue with torn write: %v", err)
	}
	waitApplied(t, tn)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, dir, "acme"); got != 8 {
		t.Fatalf("recovered %d messages, want 8", got)
	}
}

// TestTornFsyncRetriesInline: a failed fsync whose write already landed
// (WALSyncEvery 1) — the power-cut-mid-fsync shape — must roll the
// unacked frame back and recover on the inline retry.
func TestTornFsyncRetriesInline(t *testing.T) {
	pool, ffs, dir := faultPool(t, func(c *PoolConfig) { c.WALSyncEvery = 1 })
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal", Count: 1})
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatalf("Enqueue with torn fsync: %v", err)
	}
	waitApplied(t, tn)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, dir, "acme"); got != 8 {
		t.Fatalf("recovered %d messages, want 8", got)
	}
}

// TestPersistentEIODegradesThenRecovers: when the device error outlives
// the inline retry budget the tenant must land in read-only degraded
// mode (not crash, not block), shed with a DegradedError, and recover
// in-process once the device heals — via the supervisor, no restart.
func TestPersistentEIODegradesThenRecovers(t *testing.T) {
	pool, ffs, dir := faultPool(t, nil)
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	rule := ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal"})
	err = tn.Enqueue(quantumOf(0, "earthquake struck city center"))
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("Enqueue under persistent EIO = %v, want DegradedError", err)
	}
	if deg.Reason != degradedIO {
		t.Fatalf("reason = %q, want %q", deg.Reason, degradedIO)
	}
	if m := tn.Metrics(); !m.Degraded || m.StorageRetries == 0 {
		t.Fatalf("metrics = %+v, want degraded with retries counted", m)
	}
	// Degraded mode is a fast shed: no retry budget burned per request.
	before := tn.health.storageRetries.Load()
	if err := tn.Enqueue(quantumOf(8, "flood river rising")); !errors.As(err, &deg) {
		t.Fatalf("second Enqueue = %v, want DegradedError", err)
	}
	if tn.health.storageRetries.Load() != before {
		t.Fatal("degraded shed burned retry turns")
	}
	// Reads keep serving while ingest is shed.
	if evs := tn.Events(0, true); evs == nil {
		t.Fatal("query path stopped serving while degraded")
	}
	ffs.ClearRule(rule)
	waitFor(t, 5*time.Second, func() bool {
		down, _ := tn.Degraded()
		return !down
	}, "supervisor probe to clear degraded mode")
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatalf("Enqueue after recovery: %v", err)
	}
	waitApplied(t, tn)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, dir, "acme"); got != 8 {
		t.Fatalf("recovered %d messages, want exactly the acked batch (8)", got)
	}
}

// TestENOSPCDegradesImmediately: out-of-space is not retried (more
// attempts cannot help) — the tenant flips read-only on the first error
// and recovers only after the supervisor's write probe proves space is
// back.
func TestENOSPCDegradesImmediately(t *testing.T) {
	pool, ffs, _ := faultPool(t, nil)
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	rule := ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal", Err: syscall.ENOSPC})
	err = tn.Enqueue(quantumOf(0, "earthquake struck city center"))
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("Enqueue under ENOSPC = %v, want DegradedError", err)
	}
	if deg.Reason != degradedNoSpace {
		t.Fatalf("reason = %q, want %q", deg.Reason, degradedNoSpace)
	}
	if got := tn.health.storageRetries.Load(); got != 0 {
		t.Fatalf("storageRetries = %d, want 0 (ENOSPC must not be retried)", got)
	}
	ffs.ClearRule(rule)
	waitFor(t, 5*time.Second, func() bool {
		down, _ := tn.Degraded()
		return !down
	}, "write probe to clear ENOSPC degradation")
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatalf("Enqueue after space freed: %v", err)
	}
	waitApplied(t, tn)
}

// TestGroupCommitFailStopReopens: a group-commit flush failure
// fail-stops the WAL; the supervisor must quarantine-and-reopen it
// in-process — counted in wal_reopens — and the acked prefix must
// survive the reopen exactly.
func TestGroupCommitFailStopReopens(t *testing.T) {
	pool, ffs, dir := faultPool(t, func(c *PoolConfig) {
		c.WALGroupCommitInterval = 200 * time.Microsecond
	})
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	// One acked batch first: the reopen must preserve it.
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, tn)
	rule := ffs.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal"})
	err = tn.Enqueue(quantumOf(8, "flood river rising fast"))
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("Enqueue across failed group flush = %v, want DegradedError", err)
	}
	ffs.ClearRule(rule)
	waitFor(t, 5*time.Second, func() bool {
		down, _ := tn.Degraded()
		return !down
	}, "supervised WAL reopen")
	if got := tn.Metrics().WALReopens; got == 0 {
		t.Fatal("WALReopens = 0, want a supervised reopen")
	}
	// The log resumed in place: new ingest must append and apply.
	if err := tn.Enqueue(quantumOf(16, "storm warning coastal towns")); err != nil {
		t.Fatalf("Enqueue after reopen: %v", err)
	}
	waitApplied(t, tn)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Exactly the two acked batches: the unacked middle one must not
	// reappear (its client was told to retry), the acked ones must.
	if got := replayCount(t, dir, "acme"); got != 16 {
		t.Fatalf("recovered %d messages, want 16 (acked prefix only)", got)
	}
}

// TestSnapshotENOSPCKeepsPrevious: a WAL snapshot write hitting ENOSPC
// must leave the previous snapshot intact and replayable, leave no temp
// debris, and degrade the tenant proactively.
func TestSnapshotENOSPCKeepsPrevious(t *testing.T) {
	pool, ffs, dir := faultPool(t, func(c *PoolConfig) { c.SnapshotEvery = 1 })
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	// First batch advances a quantum and snapshots cleanly.
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, tn)
	if got := tn.Metrics().WALSnapshotSeq; got == 0 {
		t.Fatal("no baseline snapshot was taken; the test would check nothing")
	}
	// Next snapshot runs out of space mid-write. The supervisor's write
	// probe must see the same full disk, or it clears degraded within
	// one probe cadence and the assertions below race the blink.
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "snap-tmp-", Err: syscall.ENOSPC})
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".probe", Err: syscall.ENOSPC})
	if err := tn.Enqueue(quantumOf(8, "flood river rising fast")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, tn)
	waitFor(t, 5*time.Second, func() bool {
		down, _ := tn.Degraded()
		return down
	}, "failed snapshot to degrade the tenant")
	if errs := tn.Metrics().WALErrors; errs == 0 {
		t.Fatal("WALErrors = 0, want the failed snapshot counted")
	}
	// No temp debris: a crash loop must not fill the disk further.
	orphans, err := filepath.Glob(filepath.Join(dir, "wal", "acme", "snap-tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("snapshot temp debris left behind: %v", orphans)
	}
	// Space frees: the write probe succeeds and the tenant recovers
	// without a restart.
	ffs.Clear()
	waitFor(t, 5*time.Second, func() bool {
		down, _ := tn.Degraded()
		return !down
	}, "tenant to recover after space freed")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown after recovery: %v", err)
	}
	// Both acked batches replay from the previous snapshot + tail.
	if got := replayCount(t, dir, "acme"); got != 16 {
		t.Fatalf("recovered %d messages, want 16", got)
	}
}

// TestCheckpointENOSPCLeavesPreviousIntact: a failed checkpoint write
// (ENOSPC mid-gob) must leave the previous checkpoint loadable and no
// temp files behind — the atomic tmp+rename contract under injection.
func TestCheckpointENOSPCLeavesPreviousIntact(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	store, err := newCheckpointStore(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	det := detect.New(testDetectConfig())
	for _, m := range quantumOf(0, "earthquake struck city center") {
		det.IngestAll(m)
	}
	if err := store.Save("acme", det); err != nil {
		t.Fatal(err)
	}
	want := det.Processed()
	// Mutate the detector, then fail the second save mid-write.
	for _, m := range quantumOf(8, "flood river rising fast") {
		det.IngestAll(m)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".tmp-", Err: syscall.ENOSPC})
	if err := store.Save("acme", det); !vfs.IsNoSpace(err) {
		t.Fatalf("Save under ENOSPC = %v, want ENOSPC", err)
	}
	// Previous checkpoint intact and loadable.
	got, err := store.Load("acme")
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed save: %v", err)
	}
	if got == nil || got.Processed() != want {
		t.Fatalf("previous checkpoint corrupted: processed %v, want %d", got, want)
	}
	// No temp debris.
	debris, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(debris) != 0 {
		t.Fatalf("temp debris left behind: %v", debris)
	}
}

// TestArchiveFaultsDoNotCrashIngest: archive append and compaction
// failures are availability events, not correctness ones — they count
// into archive_errors and ingest keeps flowing.
func TestArchiveFaultsDoNotCrashIngest(t *testing.T) {
	pool, ffs, dir := faultPool(t, func(c *PoolConfig) {
		c.RetainEvents = 1
		c.ArchiveDir = filepath.Join(filepath.Dir(c.WALDir), "archive")
	})
	_ = dir
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "archive"})
	// Sequential short bursts: events are born, die of window expiry,
	// and get evicted into the (sick) archive.
	texts := []string{
		"earthquake struck eastern turkey",
		"flood river rising rapidly",
		"storm warning coast evacuation",
		"election debate results tonight",
		"wildfire spreading canyon homes",
		"blizzard closes mountain passes",
	}
	for b, text := range texts {
		for q := 0; q < 8; q++ {
			if err := tn.Enqueue(quantumOf(100*b, text)); err != nil {
				t.Fatalf("ingest must keep flowing through archive faults: %v", err)
			}
		}
	}
	waitApplied(t, tn)
	if errs := tn.Metrics().ArchiveErrors; errs == 0 {
		t.Skip("no evictions reached the archive in this run; nothing injected")
	}
	if down, _ := tn.Degraded(); down {
		t.Fatal("archive faults must not degrade ingest")
	}
	// Compaction under the same fault: errors are swallowed into the
	// counter, never a crash.
	if ar := tn.archLog(); ar != nil {
		ar.CompactOnce() //nolint:errcheck // exercising the failure path
	}
}

// TestReadyzReportsDegraded: /healthz stays 200 through degradation
// (the process lives, reads serve) while /readyz flips 503 with the
// degraded tenant list, and ingest sheds 503 + Retry-After.
func TestReadyzReportsDegraded(t *testing.T) {
	pool, ffs, _ := faultPool(t, nil)
	srv := httptest.NewServer(NewHandler(pool))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /readyz = %d, want 200", resp.StatusCode)
	}

	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	rule := ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal", Err: syscall.ENOSPC})
	if err := tn.Enqueue(quantumOf(0, "earthquake struck city center")); err == nil {
		t.Fatal("Enqueue under ENOSPC succeeded")
	}

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status   string         `json:"status"`
		Degraded []DegradedInfo `json:"degraded"`
	}
	decodeBody(t, resp, &ready)
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Status != "degraded" {
		t.Fatalf("/readyz = %d %q, want 503 degraded", resp.StatusCode, ready.Status)
	}
	if len(ready.Degraded) != 1 || ready.Degraded[0].Tenant != "acme" || ready.Degraded[0].Reason != degradedNoSpace {
		t.Fatalf("degraded list = %+v", ready.Degraded)
	}

	// Liveness is unaffected; ingest sheds 503 with Retry-After.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while degraded = %d, want 200", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/v1/acme/messages", quantumOf(8, "flood river rising"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded shed missing Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	decodeBody(t, resp, &body)
	if !strings.Contains(body.Error, "degraded") {
		t.Fatalf("shed body %q does not name degradation", body.Error)
	}

	ffs.ClearRule(rule)
	waitFor(t, 5*time.Second, func() bool {
		r, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			return false
		}
		r.Body.Close()
		return r.StatusCode == http.StatusOK
	}, "/readyz to recover")
}

// TestShutdownMidDegradedLeaksNothing: Shutdown while a tenant is
// degraded — supervisor mid-cadence, producers still hammering — must
// terminate every goroutine the pool started.
func TestShutdownMidDegradedLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	pool, err := NewPool(PoolConfig{
		Detector:              testDetectConfig(),
		WALDir:                filepath.Join(dir, "wal"),
		FS:                    ffs,
		DegradedProbeInterval: time.Millisecond,
		StorageRetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal", Err: syscall.ENOSPC})
	tn.Enqueue(quantumOf(0, "earthquake struck city center")) //nolint:errcheck // degrading on purpose
	if down, _ := tn.Degraded(); !down {
		t.Fatal("tenant did not degrade")
	}
	// Producers racing the shutdown, all shedding.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				tn.Enqueue(quantumOf(8, "flood river rising")) //nolint:errcheck // expected to shed
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let probes and sheds interleave
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	pool.Shutdown(ctx) //nolint:errcheck // degraded tenant's final snapshot fails by design
	close(stop)
	<-done
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, "goroutines to drain after shutdown")
}
