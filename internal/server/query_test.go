package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"repro/internal/query"
)

type queryResponse struct {
	Tenant string        `json:"tenant"`
	Events []query.Event `json:"events"`
	Stats  query.Stats   `json:"stats"`
	Cursor string        `json:"cursor"`
}

func getQuery(t *testing.T, base, tenant, params string) queryResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/" + tenant + "/query" + params)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q status = %d", params, resp.StatusCode)
	}
	var out queryResponse
	decodeBody(t, resp, &out)
	return out
}

// queryPool ingests the burst stream into a fresh pool with the given
// retention/archive setup and returns its HTTP test server.
func queryPool(t *testing.T, retain int, withArchive bool) (*Pool, *httptest.Server) {
	t.Helper()
	cfg := PoolConfig{Detector: persistCfg(), RetainEvents: retain}
	if withArchive {
		cfg.ArchiveDir = filepath.Join(t.TempDir(), "archive")
		cfg.ArchiveSegmentEvents = 1 // every eviction seals a segment
	}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Shutdown(context.Background()) })
	tn, err := pool.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range burstBatches() {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(pool))
	t.Cleanup(ts.Close)
	return pool, ts
}

// TestUnifiedQueryAcrossEvictionHTTP is the HTTP face of the
// acceptance criterion: the same /query request returns a
// byte-identical event set from a tenant that retained everything in
// memory (no archive) and from a tenant that evicted most finished
// events to disk — live, archived, or split, one answer.
func TestUnifiedQueryAcrossEvictionHTTP(t *testing.T) {
	_, allLive := queryPool(t, 0, false)
	_, split := queryPool(t, 1, true)

	for _, params := range []string{
		"",
		"?keyword=earthquake",
		"?from=3&to=9",
		"?min_rank=0.01",
		"?limit=4",
	} {
		live := getQuery(t, allLive.URL, "t", params)
		spl := getQuery(t, split.URL, "t", params)
		lj, _ := json.Marshal(live.Events)
		sj, _ := json.Marshal(spl.Events)
		if string(lj) != string(sj) {
			t.Fatalf("query %q diverges across eviction:\nlive  %s\nsplit %s", params, lj, sj)
		}
	}

	// The unbounded result really came from both sources on the
	// archiving tenant — and from the snapshot alone on the other.
	spl := getQuery(t, split.URL, "t", "")
	if spl.Stats.SnapshotHits == 0 || spl.Stats.ArchiveHits == 0 {
		t.Fatalf("split tenant stats not split: %+v", spl.Stats)
	}
	live := getQuery(t, allLive.URL, "t", "")
	if live.Stats.ArchiveHits != 0 || live.Stats.Segments != 0 {
		t.Fatalf("archive-less tenant touched an archive: %+v", live.Stats)
	}
	if len(live.Events) == 0 {
		t.Fatal("stream produced no queryable events; retune")
	}
}

// TestQueryCursorPaginationHTTP pages a query two events at a time and
// checks the concatenation equals the unpaginated answer.
func TestQueryCursorPaginationHTTP(t *testing.T) {
	_, ts := queryPool(t, 1, true)
	full := getQuery(t, ts.URL, "t", "?limit=10000")
	if len(full.Events) < 4 {
		t.Fatalf("only %d events; retune", len(full.Events))
	}
	var paged []query.Event
	params := "?limit=2"
	for {
		page := getQuery(t, ts.URL, "t", params)
		paged = append(paged, page.Events...)
		if page.Cursor == "" {
			break
		}
		if len(page.Events) == 0 {
			t.Fatal("empty page with cursor")
		}
		params = "?limit=2&cursor=" + url.QueryEscape(page.Cursor)
	}
	pj, _ := json.Marshal(paged)
	fj, _ := json.Marshal(full.Events)
	if string(pj) != string(fj) {
		t.Fatalf("paged result diverges:\npaged %s\nfull  %s", pj, fj)
	}
}

// TestArchiveEndpointTruncatedSurface: the rerouted /archive surfaces
// the partial-stats flag of limit-stopped scans in its HTTP response.
func TestArchiveEndpointTruncatedSurface(t *testing.T) {
	_, ts := queryPool(t, 1, true)
	resp, err := http.Get(ts.URL + "/v1/t/archive?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	var out queryResponse
	decodeBody(t, resp, &out)
	if len(out.Events) != 1 || !out.Stats.Truncated || out.Cursor == "" {
		t.Fatalf("limit-stopped archive query: %d events, stats %+v, cursor %q — want truncated with cursor",
			len(out.Events), out.Stats, out.Cursor)
	}
}

// TestQueryParamValidation: every malformed numeric/boolean parameter
// across the read endpoints must produce a 400 with a JSON error body —
// no silent defaults, no 500s.
func TestQueryParamValidation(t *testing.T) {
	_, ts := queryPool(t, 1, true)
	cases := []string{
		"/v1/t/query?from=abc",
		"/v1/t/query?to=abc",
		"/v1/t/query?to=-2",
		"/v1/t/query?limit=-1",
		"/v1/t/query?limit=9e9",
		"/v1/t/query?min_rank=abc",
		"/v1/t/query?min_rank=-1",
		"/v1/t/query?min_rank=NaN",
		"/v1/t/query?cursor=@@not-base64@@",
		"/v1/t/archive?from=abc",
		"/v1/t/archive?limit=-5",
		"/v1/t/archive?cursor=zzz.zzz",
		"/v1/t/events?k=abc",
		"/v1/t/events?k=-1",
		"/v1/t/events?all=maybe",
		"/v1/t/related?min=abc",
		"/v1/t/related?min=2",
		"/v1/t/related?min=NaN",
		"/v1/t/stream?catchup=maybe",
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
		var body struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		decodeBody(t, resp, &body)
		if body.Error == "" || body.Status != http.StatusBadRequest {
			t.Errorf("%s: error body = %+v, want JSON error", path, body)
		}
	}
}

// TestQueryWithoutArchive: /query works on an archive-less tenant
// (snapshot only); /archive keeps its 404 contract.
func TestQueryWithoutArchive(t *testing.T) {
	_, ts := queryPool(t, 0, false)
	if got := getQuery(t, ts.URL, "t", ""); len(got.Events) == 0 {
		t.Fatal("snapshot-only query served nothing")
	}
	resp, err := http.Get(ts.URL + "/v1/t/archive")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("archive status without archive = %d, want 404", resp.StatusCode)
	}
}

// FuzzQueryParams throws adversarial query strings at the shared
// request parser: it must never panic, never accept out-of-contract
// values, and reject with a JSON 400 — the fuzz face of the
// no-silent-defaults rule.
func FuzzQueryParams(f *testing.F) {
	f.Add("from=0&to=10&limit=5&keyword=quake&min_rank=0.5")
	f.Add("from=abc")
	f.Add("to=-2")
	f.Add("limit=-1")
	f.Add("limit=99999999999999999999")
	f.Add("min_rank=NaN")
	f.Add("min_rank=1e999")
	f.Add("cursor=%ff%fe")
	f.Add("cursor=djE6MTI6MzQ")
	f.Add("keyword=&keyword=a&from=00007")
	f.Add("from=\x00&to=\xff")
	f.Fuzz(func(t *testing.T, raw string) {
		r := &http.Request{URL: &url.URL{RawQuery: raw}}
		w := httptest.NewRecorder()
		req, ok := parseQueryRequest(w, r, defaultQueryLimit)
		if !ok {
			if w.Code != http.StatusBadRequest {
				t.Fatalf("rejected %q with status %d, want 400", raw, w.Code)
			}
			var body map[string]any
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
				t.Fatalf("rejection body for %q is not a JSON error: %q", raw, w.Body.String())
			}
			return
		}
		if req.From < 0 || req.Limit <= 0 || req.Limit > maxQueryLimit {
			t.Fatalf("parser accepted out-of-contract request %+v from %q", req, raw)
		}
		if math.IsNaN(req.MinRank) || req.MinRank < 0 {
			t.Fatalf("parser accepted filter-disabling MinRank %v from %q", req.MinRank, raw)
		}
		if req.To < -1 {
			t.Fatalf("parser accepted negative To %+v from %q", req, raw)
		}
		for _, kw := range req.Keywords {
			if kw == "" {
				t.Fatalf("parser kept empty keyword from %q", raw)
			}
		}
	})
}
