package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

// persistCfg is a detector configuration with a short window so burst
// events die (and get evicted) quickly.
func persistCfg() detect.Config {
	return detect.Config{Delta: 8, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 3}}
}

// burstBatches builds batches of two 8-message quanta each: five
// sequential keyword bursts of four quanta, so events are born, die of
// window expiry, and (with RetainEvents 1) are evicted along the way.
func burstBatches() [][]stream.Message {
	texts := []string{
		"earthquake struck eastern turkey",
		"flood river rising rapidly",
		"storm warning coast evacuation",
		"election debate results tonight",
		"wildfire spreading canyon homes",
	}
	var all []stream.Message
	for b, text := range texts {
		for q := 0; q < 4; q++ {
			all = append(all, quantumOf(100*b, text)...)
		}
	}
	var batches [][]stream.Message
	for len(all) > 0 {
		n := 16
		if n > len(all) {
			n = len(all)
		}
		batches = append(batches, all[:n])
		all = all[n:]
	}
	return batches
}

// refRun replicates the worker loop exactly: per-message ingest, then
// per-batch retention trim, capturing everything the served run must
// reproduce bit-identically.
type refRun struct {
	views   []EventView
	reports map[int][]detect.Report
	evicted []uint64 // event IDs in eviction order
}

func referenceRun(cfg detect.Config, batches [][]stream.Message, retain int) refRun {
	d := detect.New(cfg)
	out := refRun{reports: map[int][]detect.Report{}}
	d.SetOnQuantum(func(res *detect.QuantumResult) {
		// Copy preserving emptiness (a nil copy would marshal as null
		// where the SSE wire says []).
		cp := make([]detect.Report, len(res.Reports))
		copy(cp, res.Reports)
		out.reports[res.Quantum] = cp
	})
	d.SetOnEvict(func(ev *detect.Event) {
		out.evicted = append(out.evicted, ev.ID)
	})
	for _, b := range batches {
		for _, m := range b {
			d.IngestAll(m)
		}
		if retain > 0 {
			d.TrimFinished(retain)
		}
	}
	d.Flush()
	out.views = viewsOf(d.AllEvents())
	return out
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestCrashRecoveryBitIdentical is the acceptance scenario for the WAL:
// a pool is killed mid-stream — no clean shutdown, a batch accepted but
// not yet applied, the worker frozen mid-pipeline — and a fresh pool on
// the same directories must (a) recover the detector bit-identically,
// (b) produce byte-identical per-quantum reports for the rest of the
// stream, and (c) still serve events archived before the crash. It runs
// once with synchronous WAL appends and once under cross-tenant group
// commit: the durability contract (acked ⇒ recovered) must hold
// identically for both.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	t.Run("sync", func(t *testing.T) { testCrashRecoveryBitIdentical(t, 0) })
	t.Run("group-commit", func(t *testing.T) {
		testCrashRecoveryBitIdentical(t, 200*time.Microsecond)
	})
}

func testCrashRecoveryBitIdentical(t *testing.T, groupCommit time.Duration) {
	cfg := persistCfg()
	const retain = 1
	dir := t.TempDir()
	pcfg := PoolConfig{
		Detector:               cfg,
		RetainEvents:           retain,
		WALDir:                 filepath.Join(dir, "wal"),
		WALSegmentBytes:        2048, // force rotation
		SnapshotEvery:          3,    // force several snapshots + compactions
		WALGroupCommitInterval: groupCommit,
		ArchiveDir:             filepath.Join(dir, "archive"),
		ArchiveSegmentEvents:   1, // every archived event seals a segment
	}
	batches := burstBatches()
	ref := referenceRun(cfg, batches, retain)
	if len(ref.evicted) < 2 {
		t.Fatalf("test stream too tame: only %d evictions", len(ref.evicted))
	}

	// Phase 1: apply the first six batches, then accept a seventh that
	// the worker never finishes (frozen mid-batch under the detector
	// lock) — the WAL has it, the detector state does not.
	pool1, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	const cut = 6
	for _, b := range batches[:cut] {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	preCrashArchived := tn.Metrics().ArchiveEvents
	if preCrashArchived == 0 {
		t.Fatalf("no events archived before the crash; stream needs retuning")
	}
	tn.mu.Lock() // freeze the worker mid-pipeline; never unlocked
	if err := tn.Enqueue(batches[cut]); err != nil {
		t.Fatal(err)
	}
	// Wait until a scheduler worker has popped the frozen batch off the
	// queue, then abandon pool1 wholesale: no Shutdown, no snapshot,
	// exactly what kill -9 leaves behind.
	for i := 0; tn.queueLen() != 0; i++ {
		if i > 5000 {
			t.Fatal("worker never picked up the frozen batch")
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 2: recover on the same directories.
	pool2, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool2))
	defer ts.Close()

	tn2, ok := pool2.Tenant("t")
	if !ok {
		t.Fatal("tenant not recovered from WAL")
	}
	// The frozen batch was accepted (WAL) but unapplied; recovery must
	// include it: cut+1 batches of 16 messages each.
	if got := tn2.Stats().Messages; got != uint64((cut+1)*16) {
		t.Fatalf("recovered messages = %d, want %d", got, (cut+1)*16)
	}

	// Serve the rest of the stream, watching per-quantum reports.
	events, cancel := sseSubscribe(t, ts.URL+"/v1/t/stream")
	defer cancel()
	for _, b := range batches[cut+1:] {
		resp := postJSON(t, ts.URL+"/v1/t/messages", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/v1/t/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lastQuantum := 2 * len(batches)
	deadline := time.After(20 * time.Second)
	checked := 0
	for q := 0; q < lastQuantum; {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed at quantum %d", q)
			}
			q = ev.Quantum
			want, known := ref.reports[ev.Quantum]
			if !known {
				t.Fatalf("reference has no quantum %d", ev.Quantum)
			}
			if asJSON(t, ev.Reports) != asJSON(t, want) {
				t.Fatalf("quantum %d reports diverge after recovery:\ngot  %s\nwant %s",
					ev.Quantum, asJSON(t, ev.Reports), asJSON(t, want))
			}
			checked++
		case <-deadline:
			t.Fatalf("timed out at quantum %d", q)
		}
	}
	if checked == 0 {
		t.Fatal("no post-recovery quanta observed")
	}

	// Event history must match the uninterrupted reference byte for byte.
	got := getEvents(t, ts.URL, "t", "?all=1")
	if asJSON(t, got.Events) != asJSON(t, ref.views) {
		t.Fatalf("served history diverges from uninterrupted run:\nserved %d events\nwant   %d events",
			len(got.Events), len(ref.views))
	}

	// The archive holds every eviction — the ones from before the crash
	// included — without duplicates or ordinal holes (the programmatic
	// API keeps eviction ordinals and eviction order).
	recs, _, err := tn2.ArchiveQuery(0, -1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ref.evicted) {
		t.Fatalf("archived = %d events, want %d", len(recs), len(ref.evicted))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.ID != ref.evicted[i] {
			t.Fatalf("archive record %d = seq %d id %d, want seq %d id %d",
				i, rec.Seq, rec.ID, i+1, ref.evicted[i])
		}
	}

	// The HTTP surface routes through the unified query engine: same
	// record set, re-ordered to the engine's (last_quantum, id) key.
	resp, err = http.Get(ts.URL + "/v1/t/archive?from=0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("archive status = %d", resp.StatusCode)
	}
	var arch struct {
		Events []query.Event `json:"events"`
		Stats  query.Stats   `json:"stats"`
	}
	decodeBody(t, resp, &arch)
	if len(arch.Events) != len(ref.evicted) {
		t.Fatalf("archived = %d events over HTTP, want %d", len(arch.Events), len(ref.evicted))
	}
	want := make(map[uint64]bool, len(ref.evicted))
	for _, id := range ref.evicted {
		want[id] = true
	}
	for i, ev := range arch.Events {
		if !want[ev.ID] {
			t.Fatalf("archive served unexpected or duplicate event id %d", ev.ID)
		}
		delete(want, ev.ID)
		if i > 0 {
			prev := arch.Events[i-1]
			if ev.LastQuantum < prev.LastQuantum ||
				(ev.LastQuantum == prev.LastQuantum && ev.ID <= prev.ID) {
				t.Fatalf("archive order violated at %d: (%d,%d) after (%d,%d)",
					i, ev.LastQuantum, ev.ID, prev.LastQuantum, prev.ID)
			}
		}
	}

	// Keyword queries hit only the matching bucket (Bloom skipping).
	resp, err = http.Get(ts.URL + "/v1/t/archive?keyword=earthquake")
	if err != nil {
		t.Fatal(err)
	}
	var kw struct {
		Events []query.Event `json:"events"`
		Stats  query.Stats   `json:"stats"`
	}
	decodeBody(t, resp, &kw)
	if len(kw.Events) == 0 {
		t.Fatal("keyword query found nothing")
	}
	for _, ev := range kw.Events {
		found := false
		for _, k := range ev.AllKeywords {
			if k == "earthquake" {
				found = true
			}
		}
		if !found {
			t.Fatalf("keyword query returned non-matching record %+v", ev)
		}
	}
	if len(arch.Events) > 1 && kw.Stats.SkippedByBloom == 0 {
		t.Fatalf("keyword query skipped nothing: %+v", kw.Stats)
	}
}

// TestCleanShutdownWALRestart checks the no-crash path: shutdown writes
// a final snapshot, restart replays nothing, and the stream continues
// bit-identically (the WAL analogue of TestServeRestartBitIdentical).
func TestCleanShutdownWALRestart(t *testing.T) {
	cfg := persistCfg()
	dir := t.TempDir()
	pcfg := PoolConfig{
		Detector: cfg,
		WALDir:   filepath.Join(dir, "wal"),
	}
	batches := burstBatches()
	ref := referenceRun(cfg, batches, 0)

	pool1, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	const cut = 5
	for _, b := range batches[:cut] {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	pool2, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	tn2, ok := pool2.Tenant("t")
	if !ok {
		t.Fatal("tenant not restored")
	}
	// A clean shutdown's snapshot covers the whole log: nothing replays.
	if wl := tn2.walLog(); wl == nil || wl.SnapshotSeq() != wl.LastSeq() {
		t.Fatalf("final snapshot missing: snap %d last %d", tn2.walLog().SnapshotSeq(), tn2.walLog().LastSeq())
	}
	for _, b := range batches[cut:] {
		if err := tn2.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := asJSON(t, tn2.Events(0, true)), asJSON(t, ref.views); got != want {
		t.Fatalf("restarted history diverges:\ngot  %s\nwant %s", got, want)
	}
}

// TestFlushSurvivesCrash pins flush durability: POST /flush forces the
// buffered partial quantum through — mutating quantum boundaries — so
// it must be WAL-logged and replayed in order, or a crash after a
// mid-stream flush would recover onto differently-cut quanta. Runs in
// both durability modes like TestCrashRecoveryBitIdentical.
func TestFlushSurvivesCrash(t *testing.T) {
	t.Run("sync", func(t *testing.T) { testFlushSurvivesCrash(t, 0) })
	t.Run("group-commit", func(t *testing.T) {
		testFlushSurvivesCrash(t, 200*time.Microsecond)
	})
}

func testFlushSurvivesCrash(t *testing.T, groupCommit time.Duration) {
	cfg := persistCfg()
	dir := t.TempDir()
	pcfg := PoolConfig{
		Detector:               cfg,
		WALDir:                 filepath.Join(dir, "wal"),
		WALGroupCommitInterval: groupCommit,
	}

	// 12 messages (1.5 quanta at Δ=8), a flush cutting the half-full
	// quantum, then 12 more.
	part1 := append(quantumOf(0, "earthquake struck eastern turkey"),
		quantumOf(8, "earthquake struck eastern turkey")[:4]...)
	part2 := append(quantumOf(100, "storm warning coast evacuation"),
		quantumOf(108, "storm warning coast evacuation")[:4]...)

	// Reference: the same operations on a bare detector.
	ref := detect.New(cfg)
	for _, m := range part1 {
		ref.IngestAll(m)
	}
	ref.Flush()
	for _, m := range part2 {
		ref.IngestAll(m)
	}
	ref.Flush()
	want := asJSON(t, viewsOf(ref.AllEvents()))

	pool1, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Enqueue(part1); err != nil {
		t.Fatal(err)
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Crash: drain but no snapshot, no close — recovery must replay the
	// batch AND the flush marker, in order.
	tn.shutdown(context.Background()) //nolint:errcheck // drained above

	pool2, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	tn2, ok := pool2.Tenant("t")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	if err := tn2.Enqueue(part2); err != nil {
		t.Fatal(err)
	}
	if err := tn2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := asJSON(t, tn2.Events(0, true)); got != want {
		t.Fatalf("flush lost across crash:\ngot  %s\nwant %s", got, want)
	}
}

// TestCheckpointToWALMigration enables the WAL on a deployment that so
// far only had shutdown checkpoints: the restored state must be seeded
// into the fresh WAL (a snapshot at position 0), so that a subsequent
// crash — before any cadence snapshot — still recovers the full
// pre-migration history instead of replaying onto an empty detector.
func TestCheckpointToWALMigration(t *testing.T) {
	cfg := persistCfg()
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	batches := burstBatches()
	ref := referenceRun(cfg, batches, 0)

	// Era 1: checkpoint-only deployment, clean shutdown.
	pool1, err := NewPool(PoolConfig{Detector: cfg, CheckpointDir: ckptDir})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	const cut = 5
	for _, b := range batches[:cut] {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Era 2: same checkpoints plus a fresh WAL dir; ingest one more
	// batch, then crash (no shutdown, no cadence snapshot: cadence is
	// left at the 256-quanta default).
	pcfg2 := PoolConfig{Detector: cfg, CheckpointDir: ckptDir, WALDir: filepath.Join(dir, "wal")}
	pool2, err := NewPool(pcfg2)
	if err != nil {
		t.Fatal(err)
	}
	tn2, ok := pool2.Tenant("t")
	if !ok {
		t.Fatal("tenant not restored from checkpoint")
	}
	if err := tn2.Enqueue(batches[cut]); err != nil {
		t.Fatal(err)
	}
	if err := tn2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon pool2 (workers drained; no snapshot, no Close).
	tn2.shutdown(context.Background()) //nolint:errcheck // drained above

	// Era 3: recovery must see checkpointed history + the WAL tail.
	pool3, err := NewPool(pcfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool3.Shutdown(context.Background())
	tn3, ok := pool3.Tenant("t")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	if got := tn3.Stats().Messages; got != uint64((cut+1)*16) {
		t.Fatalf("recovered messages = %d, want %d (checkpointed history lost?)", got, (cut+1)*16)
	}
	for _, b := range batches[cut+1:] {
		if err := tn3.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn3.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := asJSON(t, tn3.Events(0, true)), asJSON(t, ref.views); got != want {
		t.Fatalf("post-migration history diverges:\ngot  %s\nwant %s", got, want)
	}
}

// TestCheckpointNewerThanWAL covers the operator round-trip that leaves
// the WAL stale: run with WAL, run without it (checkpoint advances),
// re-enable the WAL. Recovery must keep the newer checkpoint state
// instead of silently rewinding to the old WAL position.
func TestCheckpointNewerThanWAL(t *testing.T) {
	cfg := persistCfg()
	dir := t.TempDir()
	both := PoolConfig{Detector: cfg, CheckpointDir: filepath.Join(dir, "ckpt"), WALDir: filepath.Join(dir, "wal")}
	ckptOnly := PoolConfig{Detector: cfg, CheckpointDir: filepath.Join(dir, "ckpt")}
	batches := burstBatches()

	// Run 1: WAL + checkpoints, clean shutdown after three batches.
	pool1, err := NewPool(both)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:3] {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Run 2: WAL disabled; the checkpoint moves ahead.
	pool2, err := NewPool(ckptOnly)
	if err != nil {
		t.Fatal(err)
	}
	tn2, ok := pool2.Tenant("t")
	if !ok {
		t.Fatal("tenant not restored in run 2")
	}
	for _, b := range batches[3:6] {
		if err := tn2.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Run 3: WAL re-enabled. The stale WAL (3 batches) must lose to the
	// newer checkpoint (6 batches).
	pool3, err := NewPool(both)
	if err != nil {
		t.Fatal(err)
	}
	defer pool3.Shutdown(context.Background())
	tn3, ok := pool3.Tenant("t")
	if !ok {
		t.Fatal("tenant not restored in run 3")
	}
	if got := tn3.Stats().Messages; got != 6*16 {
		t.Fatalf("recovered messages = %d, want %d (rewound to stale WAL?)", got, 6*16)
	}
	// And the tenant keeps working on the re-seeded WAL.
	if err := tn3.Enqueue(batches[6]); err != nil {
		t.Fatal(err)
	}
	if err := tn3.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tn3.Stats().Messages; got != 7*16 {
		t.Fatalf("messages after re-seed = %d, want %d", got, 7*16)
	}
}

// TestMetricsEndpoint covers the observability surface: per-tenant
// queue, quanta, WAL and archive gauges plus pool totals.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	pool, err := NewPool(PoolConfig{
		Detector:      persistCfg(),
		RetainEvents:  1,
		WALDir:        filepath.Join(dir, "wal"),
		ArchiveDir:    filepath.Join(dir, "archive"),
		SnapshotEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()

	tn, err := pool.GetOrCreate("m")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range burstBatches() {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var m PoolMetrics
	decodeBody(t, resp, &m)
	if len(m.Tenants) != 1 || m.Totals.Tenants != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	tm := m.Tenants[0]
	if tm.Tenant != "m" || !tm.WALEnabled || !tm.ArchiveEnabled {
		t.Fatalf("tenant metrics = %+v", tm)
	}
	if tm.Quanta == 0 || tm.WALLastSeq == 0 || tm.WALSegments == 0 {
		t.Fatalf("WAL gauges zero: %+v", tm)
	}
	if tm.WALSnapshotSeq == 0 {
		t.Fatalf("no snapshot taken at cadence 3 over %d quanta: %+v", tm.Quanta, tm)
	}
	if tm.SnapshotAgeQuanta < 0 || tm.SnapshotAgeQuanta > tm.Quanta {
		t.Fatalf("snapshot age out of range: %+v", tm)
	}
	if tm.ArchiveEvents == 0 || tm.ArchiveSegments == 0 {
		t.Fatalf("archive gauges zero: %+v", tm)
	}
	if m.Totals.Messages != uint64(tm.Messages) || m.Totals.ArchiveEvents != tm.ArchiveEvents {
		t.Fatalf("totals do not aggregate: %+v", m.Totals)
	}
}

// TestArchiveDisabled404 pins the error surface when no archive is
// configured.
func TestArchiveDisabled404(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: persistCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()
	if _, err := pool.GetOrCreate("x"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/x/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("archive on archive-less pool: status = %d, want 404", resp.StatusCode)
	}
}

// BenchmarkRecovery measures pool recovery (snapshot load + WAL tail
// replay) for a tenant with a 20k-message trace, half of it past the
// last snapshot.
func BenchmarkRecovery(b *testing.B) {
	const n = 20000
	msgs, _ := tracegen.Generate(tracegen.TWConfig(42, n))
	dir := b.TempDir()
	pcfg := PoolConfig{
		Detector:      detect.Config{},
		WALDir:        dir,
		SnapshotEvery: 1 << 30, // cadence never fires: snapshot position is ours to pick
	}
	pool, err := NewPool(pcfg)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := pool.GetOrCreate("bench")
	if err != nil {
		b.Fatal(err)
	}
	// Snapshot at the midpoint, so recovery = load a 10k-message
	// snapshot + replay the 10k-message tail.
	for i := 0; i < n; i += 500 {
		if i == n/2 {
			if err := tn.Flush(context.Background()); err != nil {
				b.Fatal(err)
			}
			tn.mu.Lock()
			err = tn.walLog().Snapshot(tn.lastApplied.Load(), tn.det.Save)
			tn.mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := tn.Enqueue(msgs[i : i+500]); err != nil {
			b.Fatal(err)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	// Abandon without the final shutdown snapshot so every iteration
	// recovers the same snapshot + tail.
	tn.shutdown(context.Background()) //nolint:errcheck // empty queue
	tn.storage.close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewPool(pcfg)
		if err != nil {
			b.Fatal(err)
		}
		rt, ok := p.Tenant("bench")
		if !ok || rt.Stats().Messages != n {
			b.Fatalf("recovery incomplete")
		}
		b.StopTimer()
		rt.shutdown(context.Background()) //nolint:errcheck // empty queue
		rt.storage.close()
		b.StartTimer()
	}
}
