package server

import (
	"bufio"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// promContentType is the Prometheus text exposition format version the
// endpoint speaks.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promMetric describes one per-tenant series family: its exposition
// name, TYPE, HELP line and the projection from the JSON metrics shape.
// The Prometheus surface is derived from TenantMetrics so the two
// endpoints can never drift apart: every counter the JSON body carries
// has exactly one row here (enforced by a test).
type promMetric struct {
	name  string
	typ   string // "gauge" or "counter"
	help  string
	value func(m *TenantMetrics) float64
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// promTenantMetrics is the per-tenant series table, in exposition order.
var promTenantMetrics = []promMetric{
	{"eventdetect_messages_total", "counter", "Messages ingested over the tenant's lifetime.",
		func(m *TenantMetrics) float64 { return float64(m.Messages) }},
	{"eventdetect_quanta", "gauge", "Index of the last processed quantum.",
		func(m *TenantMetrics) float64 { return float64(m.Quanta) }},
	{"eventdetect_queue_depth_batches", "gauge", "Ingest batches accepted but not yet applied.",
		func(m *TenantMetrics) float64 { return float64(m.QueueDepth) }},
	{"eventdetect_queue_capacity_batches", "gauge", "Ingest queue bound in batches.",
		func(m *TenantMetrics) float64 { return float64(m.QueueCap) }},
	{"eventdetect_queued_messages", "gauge", "Ingest backlog in messages.",
		func(m *TenantMetrics) float64 { return float64(m.QueuedMessages) }},
	{"eventdetect_live_events", "gauge", "Currently live detected events.",
		func(m *TenantMetrics) float64 { return float64(m.LiveEvents) }},
	{"eventdetect_events", "gauge", "Retained event lifecycles (live + finished).",
		func(m *TenantMetrics) float64 { return float64(m.TotalEvents) }},
	{"eventdetect_akg_nodes", "gauge", "Active keyword graph nodes.",
		func(m *TenantMetrics) float64 { return float64(m.AKGNodes) }},
	{"eventdetect_akg_edges", "gauge", "Active keyword graph edges.",
		func(m *TenantMetrics) float64 { return float64(m.AKGEdges) }},
	{"eventdetect_process_seconds_total", "counter", "Cumulative detector processing time this process.",
		func(m *TenantMetrics) float64 { return m.ProcessMillis / 1000 }},
	{"eventdetect_msgs_per_sec", "gauge", "Pipeline rate: messages per detector-second this process.",
		func(m *TenantMetrics) float64 { return m.MsgsPerSec }},
	{"eventdetect_wal_enabled", "gauge", "1 when the write-ahead log backs this tenant.",
		func(m *TenantMetrics) float64 { return b2f(m.WALEnabled) }},
	{"eventdetect_archive_enabled", "gauge", "1 when the evicted-event archive backs this tenant.",
		func(m *TenantMetrics) float64 { return b2f(m.ArchiveEnabled) }},
	{"eventdetect_admission_enabled", "gauge", "1 when admission control guards this tenant.",
		func(m *TenantMetrics) float64 { return b2f(m.AdmissionEnabled) }},
	{"eventdetect_wal_segments", "gauge", "On-disk WAL segment files.",
		func(m *TenantMetrics) float64 { return float64(m.WALSegments) }},
	{"eventdetect_wal_last_seq", "gauge", "Newest appended WAL record sequence.",
		func(m *TenantMetrics) float64 { return float64(m.WALLastSeq) }},
	{"eventdetect_wal_snapshot_seq", "gauge", "WAL sequence of the newest snapshot.",
		func(m *TenantMetrics) float64 { return float64(m.WALSnapshotSeq) }},
	{"eventdetect_snapshot_age_quanta", "gauge", "Quanta processed since the newest WAL snapshot.",
		func(m *TenantMetrics) float64 { return float64(m.SnapshotAgeQuanta) }},
	{"eventdetect_wal_errors_total", "counter", "Failed WAL snapshot/compaction passes.",
		func(m *TenantMetrics) float64 { return float64(m.WALErrors) }},
	{"eventdetect_archive_segments", "gauge", "On-disk archive segment files.",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveSegments) }},
	{"eventdetect_archive_events", "gauge", "Events retained in the on-disk archive.",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveEvents) }},
	{"eventdetect_archive_errors_total", "counter", "Archive append failures (events lost).",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveErrors) }},
	{"eventdetect_archive_gaps_total", "counter", "Archive ordinal holes skipped (records lost to a crash).",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveGaps) }},
	{"eventdetect_archive_columnar_segments", "gauge", "Sealed archive segments in the v2 columnar format.",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveColumnarSegments) }},
	{"eventdetect_archive_compactions_total", "counter", "Committed archive compaction steps (merges and v1→v2 rewrites).",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveCompactions) }},
	{"eventdetect_archive_segments_compacted_total", "counter", "Input segments consumed by archive compaction.",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveSegmentsCompacted) }},
	{"eventdetect_archive_bytes_reclaimed_total", "counter", "Archive bytes reclaimed by compaction (data + sidecars).",
		func(m *TenantMetrics) float64 { return float64(m.ArchiveBytesReclaimed) }},
	{"eventdetect_accepted_batches_total", "counter", "Batches (and flush markers) admitted to the queue.",
		func(m *TenantMetrics) float64 { return float64(m.AcceptedBatches) }},
	{"eventdetect_shed_rate_limit_total", "counter", "Batches shed by the token bucket.",
		func(m *TenantMetrics) float64 { return float64(m.ShedRateLimit) }},
	{"eventdetect_shed_queue_depth_total", "counter", "Batches shed by the queue-depth admission gate.",
		func(m *TenantMetrics) float64 { return float64(m.ShedQueueDepth) }},
	{"eventdetect_shed_messages_total", "counter", "Messages across all shed batches.",
		func(m *TenantMetrics) float64 { return float64(m.ShedMessages) }},
	{"eventdetect_degraded", "gauge", "1 while the tenant is in read-only storage-degraded mode.",
		func(m *TenantMetrics) float64 { return b2f(m.Degraded) }},
	{"eventdetect_wal_reopens_total", "counter", "Supervised quarantine-and-reopen recoveries of a fail-stopped WAL.",
		func(m *TenantMetrics) float64 { return float64(m.WALReopens) }},
	{"eventdetect_storage_retries_total", "counter", "Inline retry turns after transient storage device errors.",
		func(m *TenantMetrics) float64 { return float64(m.StorageRetries) }},
	{"eventdetect_quarantined_segments", "gauge", "Archive segments quarantined for structural corruption.",
		func(m *TenantMetrics) float64 { return float64(m.QuarantinedSegments) }},
}

// promPoolMetrics is the pool-totals series table.
var promPoolMetrics = []struct {
	name  string
	typ   string
	help  string
	value func(t *MetricsTotals) float64
}{
	{"eventdetect_pool_tenants", "gauge", "Tenants in the pool.",
		func(t *MetricsTotals) float64 { return float64(t.Tenants) }},
	{"eventdetect_pool_messages_total", "counter", "Messages ingested across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.Messages) }},
	{"eventdetect_pool_quanta", "gauge", "Sum of per-tenant quantum indexes.",
		func(t *MetricsTotals) float64 { return float64(t.Quanta) }},
	{"eventdetect_pool_queued_messages", "gauge", "Ingest backlog in messages across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.QueuedMessages) }},
	{"eventdetect_pool_wal_segments", "gauge", "WAL segment files across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.WALSegments) }},
	{"eventdetect_pool_archive_segments", "gauge", "Archive segment files across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.ArchiveSegments) }},
	{"eventdetect_pool_archive_events", "gauge", "Archived events across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.ArchiveEvents) }},
	{"eventdetect_pool_archive_bytes_reclaimed_total", "counter", "Archive bytes reclaimed by compaction across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.ArchiveBytesReclaimed) }},
	{"eventdetect_pool_shed_batches_total", "counter", "Batches shed across all tenants and gates.",
		func(t *MetricsTotals) float64 { return float64(t.ShedBatches) }},
	{"eventdetect_pool_shed_messages_total", "counter", "Messages shed across all tenants.",
		func(t *MetricsTotals) float64 { return float64(t.ShedMessages) }},
	{"eventdetect_pool_degraded_tenants", "gauge", "Tenants currently in read-only storage-degraded mode.",
		func(t *MetricsTotals) float64 { return float64(t.DegradedTenants) }},
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promFloat formats a sample value. Prometheus accepts Go's shortest
// round-trip representation; NaN/Inf spell out per the format.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePrometheus renders the full exposition: every JSON counter with
// tenant labels, the pool totals, the per-tenant stage-latency
// histograms, and Go runtime health. tel may be nil (histograms
// omitted). The tenant set in pm controls which tenants appear — the
// ?tenant= filter composes.
func writePrometheus(w http.ResponseWriter, pm PoolMetrics, tel *obs.Telemetry) {
	w.Header().Set("Content-Type", promContentType)
	bw := bufio.NewWriterSize(w, 32<<10)
	defer bw.Flush() //nolint:errcheck // client gone; nothing to do

	for i := range promTenantMetrics {
		pmx := &promTenantMetrics[i]
		writeHelpType(bw, pmx.name, pmx.typ, pmx.help)
		for j := range pm.Tenants {
			m := &pm.Tenants[j]
			bw.WriteString(pmx.name)
			bw.WriteString(`{tenant="`)
			bw.WriteString(promEscape(m.Tenant))
			bw.WriteString(`"} `)
			bw.WriteString(promFloat(pmx.value(m)))
			bw.WriteByte('\n')
		}
	}
	for _, pmx := range promPoolMetrics {
		writeHelpType(bw, pmx.name, pmx.typ, pmx.help)
		bw.WriteString(pmx.name)
		bw.WriteByte(' ')
		bw.WriteString(promFloat(pmx.value(&pm.Totals)))
		bw.WriteByte('\n')
	}
	writeStageHistograms(bw, pm, tel)
	writeRuntimeMetrics(bw)
}

func writeHelpType(bw *bufio.Writer, name, typ, help string) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(help)
	bw.WriteString("\n# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

// writeStageHistograms renders eventdetect_stage_duration_seconds: one
// native Prometheus histogram per (tenant, stage) with observations,
// with le bounds in seconds at the obs package's power-of-two
// resolution. Zero-delta buckets are skipped (cumulative counts carry
// forward), which keeps the exposition a few hundred lines instead of
// 64 × stages × tenants.
func writeStageHistograms(bw *bufio.Writer, pm PoolMetrics, tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	const name = "eventdetect_stage_duration_seconds"
	// Restrict to the tenants in pm, so ?tenant= filtering composes.
	want := make(map[string]bool, len(pm.Tenants))
	for i := range pm.Tenants {
		want[pm.Tenants[i].Tenant] = true
	}
	wroteHeader := false
	for _, to := range tel.Tenants() {
		if !want[to.Name()] {
			continue
		}
		for _, st := range obs.Stages() {
			snap := to.Snapshot(st)
			if snap.Count == 0 {
				continue
			}
			if !wroteHeader {
				writeHelpType(bw, name, "histogram", "Stage latency by pipeline stage (log2 buckets).")
				wroteHeader = true
			}
			labels := `{tenant="` + promEscape(to.Name()) + `",stage="` + st.String() + `"`
			// total is derived from the bucket counts (not snap.Count)
			// so the cumulative buckets, +Inf and _count agree exactly
			// even when concurrent observes tear the snapshot slightly.
			var cum, total uint64
			for _, c := range snap.Buckets {
				total += c
			}
			for i, c := range snap.Buckets {
				// Zero-delta buckets are skipped; the top bucket is
				// covered by the explicit +Inf sample below.
				if c == 0 || i >= obs.NumBuckets-1 {
					continue
				}
				cum += c
				bw.WriteString(name)
				bw.WriteString("_bucket")
				bw.WriteString(labels)
				bw.WriteString(`,le="`)
				bw.WriteString(promFloat(float64(obs.BucketUpper(i)) / 1e9))
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(name)
			bw.WriteString("_bucket")
			bw.WriteString(labels)
			bw.WriteString(`,le="+Inf"} `)
			bw.WriteString(strconv.FormatUint(total, 10))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_sum")
			bw.WriteString(labels)
			bw.WriteString("} ")
			bw.WriteString(promFloat(float64(snap.SumNs) / 1e9))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_count")
			bw.WriteString(labels)
			bw.WriteString("} ")
			bw.WriteString(strconv.FormatUint(total, 10))
			bw.WriteByte('\n')
		}
	}
}

// writeRuntimeMetrics renders process health: goroutines, heap, and GC
// work, under the conventional go_* names.
func writeRuntimeMetrics(bw *bufio.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	simple := []struct {
		name, typ, help string
		value           float64
	}{
		{"go_goroutines", "gauge", "Live goroutines.", float64(runtime.NumGoroutine())},
		{"go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)},
		{"go_memstats_heap_objects", "gauge", "Allocated heap objects.", float64(ms.HeapObjects)},
		{"go_memstats_alloc_bytes_total", "counter", "Cumulative bytes allocated.", float64(ms.TotalAlloc)},
		{"go_gc_cycles_total", "counter", "Completed GC cycles.", float64(ms.NumGC)},
		{"go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs) / 1e9},
	}
	for _, s := range simple {
		writeHelpType(bw, s.name, s.typ, s.help)
		bw.WriteString(s.name)
		bw.WriteByte(' ')
		bw.WriteString(promFloat(s.value))
		bw.WriteByte('\n')
	}
}
