package server

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ShedError reports an admission-control rejection: the batch was turned
// away before the WAL (or the queue) ever saw it, and the client should
// retry after the embedded hint. Handlers map it to 429 Too Many
// Requests with a Retry-After header.
type ShedError struct {
	// Reason is the admission gate that fired: "rate-limit" (the
	// tenant's token bucket is empty) or "queue-depth" (the tenant's
	// backlog crossed the shed threshold).
	Reason string
	// RetryAfter is the server's estimate of when capacity returns: for
	// rate limiting, the time until the bucket holds enough tokens for
	// the rejected batch; for queue depth, the time the current backlog
	// needs to drain at the tenant's observed apply rate.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: ingest shed (%s): retry after %s", e.Reason, e.RetryAfter)
}

// tokenBucket is a per-tenant ingest rate limiter denominated in
// messages. It is deliberately simple — refill-on-take, float tokens —
// because it sits on the ingest hot path under the tenant's queue lock:
// one time read and a handful of float ops per batch.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (messages) added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock (tests)
}

// newTokenBucket builds a bucket that sustains rate messages/second with
// the given burst capacity. The bucket starts full, so a tenant's first
// burst after idling is always admitted.
func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		// A burst below one message could never admit anything; default
		// to one second of sustained rate (at least one message).
		b = math.Max(rate, 1)
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: now, last: now()}
}

// take tries to remove n tokens. On success it returns (0, true). On
// failure nothing is consumed and the returned duration is how long the
// caller must wait for n tokens to accumulate — the Retry-After hint.
func (tb *tokenBucket) take(n int) (time.Duration, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+dt*tb.rate)
	}
	tb.last = now
	need := float64(n)
	if need > tb.burst {
		// Larger than the bucket will ever hold: admit it when the
		// bucket is full rather than never (the hard per-batch bound is
		// QueueMessages, enforced separately).
		need = tb.burst
	}
	if tb.tokens >= need {
		tb.tokens -= need
		return 0, true
	}
	wait := time.Duration((need - tb.tokens) / tb.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, false
}

// admission bundles one tenant's overload-protection state: the token
// bucket (nil when rate limiting is off), the queue-depth shed
// threshold, and the shed counters surfaced via /metrics.
type admission struct {
	bucket    *tokenBucket
	shedFrac  float64 // shed when backlog ≥ frac × (QueueDepth | QueueMessages); 0 = off
	retryHint time.Duration
}

// newAdmission builds the admission state from the pool configuration;
// returns nil when every gate is disabled (the common un-configured
// case costs one nil check per Enqueue).
func newAdmission(cfg PoolConfig, now func() time.Time) *admission {
	if cfg.RateLimit <= 0 && cfg.AdmissionFrac <= 0 {
		return nil
	}
	a := &admission{shedFrac: cfg.AdmissionFrac, retryHint: time.Second}
	if cfg.RateLimit > 0 {
		a.bucket = newTokenBucket(cfg.RateLimit, cfg.RateBurst, now)
	}
	return a
}

// checkQueueLocked applies the queue-depth gate for a batch of n
// messages; qmu held by the caller (Enqueue). depth/queued are the
// tenant's current backlog, maxDepth/maxMsgs its hard bounds.
func (a *admission) checkQueueLocked(n, depth, maxDepth int, queued, maxMsgs int64) *ShedError {
	if a == nil || a.shedFrac <= 0 {
		return nil
	}
	if float64(depth) >= a.shedFrac*float64(maxDepth) ||
		float64(queued)+float64(n) > a.shedFrac*float64(maxMsgs) {
		return &ShedError{Reason: "queue-depth", RetryAfter: a.retryHint}
	}
	return nil
}

// checkRate applies the token-bucket gate for a batch of n messages.
// Called outside qmu — the bucket has its own lock — so a contended
// bucket never delays another producer's queue admission.
func (a *admission) checkRate(n int) *ShedError {
	if a == nil || a.bucket == nil {
		return nil
	}
	if wait, ok := a.bucket.take(n); !ok {
		return &ShedError{Reason: "rate-limit", RetryAfter: wait}
	}
	return nil
}

// retryAfterSeconds renders a Retry-After hint as whole seconds for the
// HTTP header (minimum 1 — a zero would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
