package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

func testDetectConfig() detect.Config {
	return detect.Config{Delta: 8, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 5}}
}

// quantumOf builds one 8-message quantum: 8 distinct users saying text.
func quantumOf(startUser int, text string) []stream.Message {
	out := make([]stream.Message, 8)
	for i := range out {
		out[i] = stream.Message{
			ID: uint64(i + 1), User: uint64(startUser + i), Time: int64(i), Text: text,
		}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// sseSubscribe opens the SSE endpoint and feeds decoded quantum events to
// the returned channel, which closes when the stream ends.
func sseSubscribe(t *testing.T, url string) (<-chan StreamEvent, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	ch := make(chan StreamEvent, 256)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev StreamEvent
			if json.Unmarshal([]byte(line[len("data: "):]), &ev) == nil {
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

type eventsResponse struct {
	Tenant string      `json:"tenant"`
	Events []EventView `json:"events"`
}

func getEvents(t *testing.T, base, tenant, query string) eventsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/" + tenant + "/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	var out eventsResponse
	decodeBody(t, resp, &out)
	return out
}

// TestLifecycleOverHTTP drives crafted bursts through the whole API: SSE
// birth/death notifications, live and historical event queries, single
// event lookup, related pairs, stats, and flush.
func TestLifecycleOverHTTP(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()

	// Create the tenant with an empty batch, then subscribe before any
	// data flows so every quantum is observed.
	resp := postJSON(t, ts.URL+"/v1/demo/messages", []stream.Message{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	events, cancel := sseSubscribe(t, ts.URL+"/v1/demo/stream")
	defer cancel()

	// 4 quanta of an earthquake burst, then 12 quanta of a storm burst:
	// the earthquake event must be born, then die of window expiry.
	var msgs []stream.Message
	for q := 0; q < 4; q++ {
		msgs = append(msgs, quantumOf(0, "earthquake struck eastern turkey")...)
	}
	for q := 0; q < 12; q++ {
		msgs = append(msgs, quantumOf(100, "storm warning coast evacuation")...)
	}
	resp = postJSON(t, ts.URL+"/v1/demo/messages", msgs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	var ack struct {
		Queued int `json:"queued"`
	}
	decodeBody(t, resp, &ack)
	if ack.Queued != len(msgs) {
		t.Fatalf("queued = %d, want %d", ack.Queued, len(msgs))
	}

	// Collect SSE until the last quantum (16) arrives.
	var born, ended []uint64
	sawReport := false
	deadline := time.After(10 * time.Second)
	for lastQuantum := 0; lastQuantum < 16; {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed at quantum %d", lastQuantum)
			}
			if ev.Tenant != "demo" {
				t.Fatalf("tenant = %q", ev.Tenant)
			}
			lastQuantum = ev.Quantum
			born = append(born, ev.Born...)
			ended = append(ended, ev.Ended...)
			if len(ev.Reports) > 0 {
				sawReport = true
			}
		case <-deadline:
			t.Fatalf("timed out waiting for quantum 16")
		}
	}
	if len(born) == 0 || !sawReport {
		t.Fatalf("born = %v, sawReport = %v", born, sawReport)
	}
	if len(ended) == 0 {
		t.Fatalf("earthquake event never died over SSE")
	}

	// Live view: exactly the storm event; history holds both.
	live := getEvents(t, ts.URL, "demo", "")
	if len(live.Events) != 1 || live.Events[0].State != "live" {
		t.Fatalf("live events = %+v", live.Events)
	}
	all := getEvents(t, ts.URL, "demo", "?all=1")
	if len(all.Events) < 2 {
		t.Fatalf("history = %+v", all.Events)
	}
	var sawEnded bool
	for _, ev := range all.Events {
		if ev.State == "ended" {
			sawEnded = true
		}
	}
	if !sawEnded {
		t.Fatalf("no ended event in history: %+v", all.Events)
	}

	// Single-event lookup round-trips the history entry.
	resp, err = http.Get(fmt.Sprintf("%s/v1/demo/events/%d", ts.URL, all.Events[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	var one EventView
	decodeBody(t, resp, &one)
	if !reflect.DeepEqual(one, all.Events[0]) {
		t.Fatalf("event lookup mismatch:\n%+v\n%+v", one, all.Events[0])
	}

	// Related pairs endpoint answers (content depends on overlap).
	resp, err = http.Get(ts.URL + "/v1/demo/related?min=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stats reflect the ingested stream.
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Tenants []TenantStats `json:"tenants"`
	}
	decodeBody(t, resp, &stats)
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "demo" {
		t.Fatalf("stats = %+v", stats)
	}
	if got := stats.Tenants[0].Messages; got != uint64(len(msgs)) {
		t.Fatalf("stats messages = %d, want %d", got, len(msgs))
	}
	if stats.Tenants[0].AKGNodes == 0 || stats.Tenants[0].Quanta != 16 {
		t.Fatalf("stats = %+v", stats.Tenants[0])
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeRestartBitIdentical is the acceptance scenario: serve part of
// a synthetic TW trace, shut down (checkpointing), restart from the
// checkpoint directory, serve the rest, and require the event history to
// be bit-identical to an uninterrupted in-process run.
func TestServeRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n = 20010
	msgs, _ := tracegen.Generate(tracegen.TWConfig(42, n))
	cfg := detect.Config{} // paper nominal parameters
	dir := t.TempDir()

	// Phase 1: serve the first part, observing SSE, then shut down.
	pool1, err := NewPool(PoolConfig{Detector: cfg, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewHandler(pool1))
	cut := 12500 // deliberately not a multiple of Δ=160: pending buffer is checkpointed
	resp := postJSON(t, ts1.URL+"/v1/tw/messages", msgs[:8000])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	events, cancel := sseSubscribe(t, ts1.URL+"/v1/tw/stream")
	defer cancel()
	resp = postJSON(t, ts1.URL+"/v1/tw/messages", msgs[8000:cut])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The second batch spans quanta 51..78; SSE must deliver them.
	sawQuantum := 0
	deadline := time.After(20 * time.Second)
	for sawQuantum < 78 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed early at quantum %d", sawQuantum)
			}
			sawQuantum = ev.Quantum
		case <-deadline:
			t.Fatalf("timed out at quantum %d", sawQuantum)
		}
	}
	// ≥1 event must be discoverable while the stream is still flowing.
	found := false
	for wait := 0; wait < 100 && !found; wait++ {
		if len(getEvents(t, ts1.URL, "tw", "?all=1").Events) > 0 {
			found = true
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !found {
		t.Fatalf("no events discovered mid-stream")
	}

	// Graceful shutdown checkpoints the tenant and ends the SSE stream.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	if err := pool1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	for {
		if _, ok := <-events; !ok {
			break
		}
	}

	// Phase 2: a fresh pool restores the tenant from disk and continues.
	pool2, err := NewPool(PoolConfig{Detector: cfg, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	ts2 := httptest.NewServer(NewHandler(pool2))
	defer ts2.Close()

	var names struct {
		Tenants []string `json:"tenants"`
	}
	resp, err = http.Get(ts2.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &names)
	if !reflect.DeepEqual(names.Tenants, []string{"tw"}) {
		t.Fatalf("restored tenants = %v", names.Tenants)
	}

	resp = postJSON(t, ts2.URL+"/v1/tw/messages", msgs[cut:])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Post(ts2.URL+"/v1/tw/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	got := getEvents(t, ts2.URL, "tw", "?all=1")

	// Reference: one uninterrupted detector over the full trace.
	ref := detect.New(cfg)
	for _, m := range msgs {
		ref.IngestAll(m)
	}
	ref.Flush()
	want := viewsOf(ref.AllEvents())
	if len(want) == 0 {
		t.Fatalf("reference run found no events")
	}

	// JSON round-trip the reference so both sides saw the same encoding.
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var wantDecoded []EventView
	if err := json.Unmarshal(raw, &wantDecoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, wantDecoded) {
		t.Fatalf("served history diverges from uninterrupted run:\nserved %d events\nwant   %d events",
			len(got.Events), len(wantDecoded))
	}
}

// TestServerShutdownWithSSEClient regression-tests graceful shutdown
// while an SSE client is connected: http.Server.Shutdown waits for idle
// connections and an SSE stream never goes idle on its own, so the
// server must end the streams first or stall for the whole grace period
// (delaying checkpoints behind a single connected client).
func TestServerShutdownWithSSEClient(t *testing.T) {
	srv, err := New(Config{
		Pool:          PoolConfig{Detector: testDetectConfig(), CheckpointDir: t.TempDir()},
		ShutdownGrace: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.HTTP.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown
	base := "http://" + ln.Addr().String()

	resp := postJSON(t, base+"/v1/demo/messages", quantumOf(0, "earthquake struck eastern turkey"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	events, cancel := sseSubscribe(t, base+"/v1/demo/stream")
	defer cancel()

	start := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("shutdown stalled behind SSE client: %v", took)
	}
	// The client observes end of stream rather than hanging.
	for {
		if _, ok := <-events; !ok {
			break
		}
	}
}

// TestBackpressure fills a depth-1 queue while the worker is blocked and
// requires ErrQueueFull rather than blocking or unbounded buffering.
func TestBackpressure(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("bp")
	if err != nil {
		t.Fatal(err)
	}

	// Hold the detector lock so the worker stalls mid-batch.
	tn.mu.Lock()
	batch := quantumOf(0, "some words here")
	if err := tn.Enqueue(batch); err != nil {
		t.Fatal(err)
	}
	// Wait until a scheduler worker has popped the batch off the queue.
	for i := 0; tn.queueLen() != 0; i++ {
		if i > 5000 {
			t.Fatal("worker never picked up batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tn.Enqueue(batch); err != nil { // fills the depth-1 buffer
		t.Fatal(err)
	}
	if err := tn.Enqueue(batch); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	tn.mu.Unlock()
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().Messages; got != uint64(2*len(batch)) {
		t.Fatalf("messages = %d, want %d", got, 2*len(batch))
	}
}

// TestBackpressureByMessages requires the message-count bound to reject a
// batch even when batch slots remain free.
func TestBackpressureByMessages(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), QueueMessages: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("bpm")
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock() // stall the worker so the backlog cannot drain
	if err := tn.Enqueue(quantumOf(0, "eight message batch fits")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Enqueue(quantumOf(8, "this one exceeds ten")); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	tn.mu.Unlock()
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().QueuedMessages; got != 0 {
		t.Fatalf("queued messages after drain = %d", got)
	}
}

// TestRetention bounds the finished-event history of a long-lived
// tenant: two events die (earthquake, then flood), RetainEvents 1 keeps
// only the most recent of them alongside the live storm event.
func TestRetention(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), RetainEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("ret")
	if err != nil {
		t.Fatal(err)
	}
	var msgs []stream.Message
	for q := 0; q < 4; q++ {
		msgs = append(msgs, quantumOf(0, "earthquake struck eastern turkey")...)
	}
	for q := 0; q < 4; q++ {
		msgs = append(msgs, quantumOf(50, "flood river rising rapidly")...)
	}
	for q := 0; q < 14; q++ {
		msgs = append(msgs, quantumOf(100, "storm warning coast evacuation")...)
	}
	if err := tn.Enqueue(msgs); err != nil {
		t.Fatal(err)
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	all := tn.Events(0, true)
	if len(all) != 2 {
		t.Fatalf("history = %d events (%+v), want 2 (1 retained finished + 1 live)", len(all), all)
	}
	finished := 0
	for _, ev := range all {
		if ev.State != "live" {
			finished++
		}
	}
	if finished != 1 {
		t.Fatalf("finished = %d, want exactly 1 retained", finished)
	}
}

// TestHandlerValidation covers the error surface.
func TestHandlerValidation(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), MaxTenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"POST", "/v1/bad%2Fname/messages", http.StatusBadRequest},
		{"GET", "/v1/nosuch/events", http.StatusNotFound},
		{"GET", "/v1/nosuch/stream", http.StatusNotFound},
		{"GET", "/v1/nosuch/related", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("[]"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		resp.Body.Close()
	}

	// First tenant fits, the second exceeds MaxTenants.
	resp := postJSON(t, ts.URL+"/v1/one/messages", []stream.Message{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/two/messages", []stream.Message{})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("status = %d, want 507", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad event IDs and missing events.
	for _, path := range []string{"/v1/one/events/zzz", "/v1/one/events/999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Trailing data after the JSON array is rejected, not dropped.
	resp, err = http.Post(ts.URL+"/v1/one/messages", "application/json",
		strings.NewReader(`[] [{"id":1,"user":1,"time":0,"text":"lost"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// NDJSON ingest path.
	var buf bytes.Buffer
	for _, m := range quantumOf(0, "ndjson ingest works fine") {
		raw, _ := json.Marshal(m)
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	resp, err = http.Post(ts.URL+"/v1/one/messages", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Queued int `json:"queued"`
	}
	decodeBody(t, resp, &ack)
	if resp.StatusCode != http.StatusAccepted || ack.Queued != 8 {
		t.Fatalf("ndjson status = %d queued = %d", resp.StatusCode, ack.Queued)
	}
}
