package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
)

// maxBodyBytes bounds one ingest POST (64 MiB of JSON).
const maxBodyBytes = 64 << 20

// NewHandler returns the HTTP API over a pool:
//
//	POST /v1/{tenant}/messages   ingest a JSON array (or NDJSON) of messages
//	POST /v1/{tenant}/flush      process the buffered partial quantum
//	GET  /v1/{tenant}/events     live reported events (?k= top-k, ?all=1
//	                             history, ?keyword= inverted-index filter)
//	GET  /v1/{tenant}/events/{id} one event by ID
//	GET  /v1/{tenant}/related    correlated same-event pairs (?min= overlap)
//	GET  /v1/{tenant}/stream     SSE push of per-quantum reports + lifecycle
//	                             (?catchup=1 replays the newest quantum first)
//	GET  /v1/{tenant}/query      unified time-travel query across live
//	                             snapshot + archive (?from= ?to= quanta,
//	                             repeated ?keyword=, ?min_rank=, ?limit=,
//	                             ?cursor=) with skip/scan stats
//	GET  /v1/{tenant}/archive    evicted-event history: /query restricted
//	                             to the archive source (same parameters)
//	GET  /v1/tenants             tenant names
//	GET  /healthz                liveness
//	GET  /readyz                 readiness: 503 with the degraded tenant
//	                             list while any tenant is storage-degraded
//	GET  /statsz                 per-tenant throughput, lag, graph size
//	GET  /metrics                durability + observability counters
//	                             (?tenant= filter, ?format=prometheus)
//	GET  /metrics/prometheus     Prometheus text exposition (alias)
//	GET  /debug/requests         slowest traced requests (?min_ms=, ?tenant=)
func NewHandler(p *Pool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/messages", func(w http.ResponseWriter, r *http.Request) {
		handleIngest(w, r, p)
	})
	mux.HandleFunc("POST /v1/{tenant}/flush", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		if err := t.Flush(r.Context()); err != nil {
			retryableError(w, http.StatusServiceUnavailable, time.Second,
				fmt.Sprintf("flush abandoned: %v", err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"flushed": true})
	})
	mux.HandleFunc("GET /v1/{tenant}/events", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		// Histogram-only instrumentation: these two read endpoints are
		// the telemetry-overhead benchmark's hot path, so they pay one
		// clock read and a few atomic adds — no trace allocation.
		var t0 time.Time
		if t.obs != nil {
			t0 = time.Now()
		}
		k, ok := intParam(w, r, "k", 0)
		if !ok {
			return
		}
		all, ok := boolParam(w, r, "all")
		if !ok {
			return
		}
		keyword := r.URL.Query().Get("keyword")
		var events []EventView
		switch {
		case keyword != "" && all:
			httpError(w, http.StatusBadRequest, "keyword filter applies to live events; drop all=1")
			return
		case keyword != "":
			// Resolved through the epoch snapshot's keyword→event
			// inverted index; rank order, like the unfiltered view.
			events = t.EventsKeyword(k, keyword)
		default:
			events = t.Events(k, all)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant": t.Name(),
			"events": events,
		})
		if t.obs != nil {
			t.obs.Observe(obs.StageHTTPQuery, time.Since(t0))
		}
	})
	mux.HandleFunc("GET /v1/{tenant}/events/{id}", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad event id")
			return
		}
		ev, ok := t.Event(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such event")
			return
		}
		writeJSON(w, http.StatusOK, ev)
	})
	mux.HandleFunc("GET /v1/{tenant}/related", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		var t0 time.Time
		if t.obs != nil {
			t0 = time.Now()
		}
		min, ok := floatParam(w, r, "min", 0.1, 0, 1)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":  t.Name(),
			"related": t.Related(min),
		})
		if t.obs != nil {
			t.obs.Observe(obs.StageHTTPQuery, time.Since(t0))
		}
	})
	mux.HandleFunc("GET /v1/{tenant}/query", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		handleUnifiedQuery(w, r, t, p)
	})
	mux.HandleFunc("GET /v1/{tenant}/archive", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		handleArchiveQuery(w, r, t, p)
	})
	mux.HandleFunc("GET /v1/{tenant}/stream", func(w http.ResponseWriter, r *http.Request) {
		t, ok := getTenant(w, r, p)
		if !ok {
			return
		}
		serveSSE(w, r, t)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tenants": p.Names()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"tenants": p.TenantCount(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness (/healthz) stays 200 through degradation — the process
		// is healthy and still serves reads. Readiness flips so a load
		// balancer can stop routing *writes* at a degraded replica while
		// operators see exactly which tenants are shedding and why.
		degraded := p.DegradedTenants()
		if len(degraded) == 0 {
			writeJSON(w, http.StatusOK, map[string]any{
				"status":  "ready",
				"tenants": p.TenantCount(),
			})
			return
		}
		//repro:retryable-exempt readiness probe; load balancers read the body, clients never retry /readyz with backoff
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "degraded",
			"tenants":  p.TenantCount(),
			"degraded": degraded,
		})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tenants": p.Stats()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(w, r, p)
	})
	mux.HandleFunc("GET /metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		pm, ok := metricsBody(w, r, p)
		if !ok {
			return
		}
		writePrometheus(w, pm, p.tel)
	})
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		handleDebugRequests(w, r, p)
	})
	return mux
}

// metricsBody assembles the metrics for one request, applying the
// ?tenant= filter (404 on an unknown name, written here).
func metricsBody(w http.ResponseWriter, r *http.Request, p *Pool) (PoolMetrics, bool) {
	if name := r.URL.Query().Get("tenant"); name != "" {
		pm, ok := p.MetricsFor(name)
		if !ok {
			httpError(w, http.StatusNotFound, ErrNoTenant.Error())
			return PoolMetrics{}, false
		}
		return pm, true
	}
	return p.Metrics(), true
}

// handleMetrics dispatches GET /metrics: the JSON body by default
// (byte-identical to the pre-exposition shape), the Prometheus text
// format with ?format=prometheus, both composable with ?tenant=.
func handleMetrics(w http.ResponseWriter, r *http.Request, p *Pool) {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "prometheus":
	default:
		httpError(w, http.StatusBadRequest, "format must be json or prometheus")
		return
	}
	pm, ok := metricsBody(w, r, p)
	if !ok {
		return
	}
	if format == "prometheus" {
		writePrometheus(w, pm, p.tel)
		return
	}
	writeJSON(w, http.StatusOK, pm)
}

// handleIngest decodes the body — a JSON array by default, NDJSON when
// the Content-Type says so — and enqueues it as one batch. The body is
// decoded before the tenant is resolved so a malformed request cannot
// create a tenant as a side effect.
func handleIngest(w http.ResponseWriter, r *http.Request, p *Pool) {
	name := r.PathValue("tenant")
	if !tenantNameRE.MatchString(name) {
		httpError(w, http.StatusBadRequest, ErrBadTenant.Error())
		return
	}
	// One trace per ingest request when telemetry is on. This endpoint
	// allocates per request anyway (body decode); the gated zero-alloc
	// ingest path is Tenant.Enqueue, which traces nothing.
	var tr *obs.ReqTrace
	if p.tel != nil {
		tr = obs.StartTrace("ingest", name, r.URL.Path)
		tr.Step("shed_check")
	}
	// Shed guaranteed-rejected ingest before paying to decode the body:
	// a closed or tenant-full pool — or a tenant already past its
	// queue-depth admission threshold — would only refuse the batch
	// after a potentially 64 MiB parse. The gates inside Enqueue (and
	// GetOrCreate) remain authoritative.
	if t, ok := p.Tenant(name); !ok {
		if err := p.CanCreate(); err != nil {
			if errors.Is(err, ErrMaxTenants) {
				httpError(w, http.StatusInsufficientStorage, err.Error())
			} else {
				retryableError(w, http.StatusServiceUnavailable, time.Second, err.Error())
			}
			return
		}
	} else if derr := t.DegradedCheck(); derr != nil {
		// Degraded tenants are read-only; shed before the body parse,
		// same as the admission gate below.
		retryableError(w, http.StatusServiceUnavailable, derr.RetryAfter, derr.Error())
		return
	} else if se := t.ShedCheck(); se != nil {
		retryableError(w, http.StatusTooManyRequests, se.RetryAfter, se.Error())
		return
	}
	tr.Step("decode")
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var msgs []stream.Message
	var err error
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		msgs, err = stream.ReadAll(stream.NewJSONLReader(body))
	} else {
		dec := json.NewDecoder(body)
		if err = dec.Decode(&msgs); err == nil {
			// Reject trailing content: silently dropping a second batch
			// concatenated after the array would be invisible data loss.
			if _, terr := dec.Token(); terr != io.EOF {
				err = errors.New("trailing data after JSON array")
			}
		}
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes; split the batch", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode messages: %v", err))
		return
	}
	t, err := p.GetOrCreate(name)
	if err != nil {
		switch {
		case errors.Is(err, ErrMaxTenants):
			httpError(w, http.StatusInsufficientStorage, err.Error())
		default:
			retryableError(w, http.StatusServiceUnavailable, time.Second, err.Error())
		}
		return
	}
	tr.Step("enqueue")
	if err := t.Enqueue(msgs); err != nil {
		p.offerTrace(t, tr, obs.StageHTTPIngest)
		var shed *ShedError
		var deg *DegradedError
		switch {
		case errors.Is(err, ErrBatchTooLarge):
			// Retrying the same batch can never succeed; tell the
			// client to split it instead.
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.As(err, &deg):
			// Storage is sick; ingest is read-only until the supervisor's
			// probe clears it. Retry-After carries the probe cadence.
			retryableError(w, http.StatusServiceUnavailable, deg.RetryAfter, err.Error())
		case errors.As(err, &shed):
			// Admission control turned the batch away before the WAL or
			// the queue saw it: 429, with the server's own estimate of
			// when capacity returns.
			retryableError(w, http.StatusTooManyRequests, shed.RetryAfter, err.Error())
		case errors.Is(err, ErrQueueFull):
			retryableError(w, http.StatusServiceUnavailable, t.drainEstimate(), err.Error())
		default:
			retryableError(w, http.StatusServiceUnavailable, time.Second, err.Error())
		}
		return
	}
	p.offerTrace(t, tr, obs.StageHTTPIngest)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"tenant": name,
		"queued": len(msgs),
	})
}

// getTenant resolves the {tenant} path value to an existing tenant,
// writing the error response itself when absent or invalid.
func getTenant(w http.ResponseWriter, r *http.Request, p *Pool) (*Tenant, bool) {
	name := r.PathValue("tenant")
	if !tenantNameRE.MatchString(name) {
		httpError(w, http.StatusBadRequest, ErrBadTenant.Error())
		return nil, false
	}
	t, ok := p.Tenant(name)
	if !ok {
		httpError(w, http.StatusNotFound, ErrNoTenant.Error())
		return nil, false
	}
	return t, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}

// retryableError is the one shape every retryable rejection (429 Too
// Many Requests, 503 Service Unavailable) is served in: the standard
// JSON error body extended with retry_after_seconds, mirrored in a
// Retry-After header. Hand-rolled header-plus-httpError combinations
// drifted once before — route every shed/unavailable response here.
func retryableError(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	secs := retryAfterSeconds(retryAfter)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, map[string]any{
		"error":               msg,
		"status":              status,
		"retry_after_seconds": secs,
	})
}
