package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSnapshotAgeQuantaClamp is the regression test for the underflow:
// after recovery the snapshot cadence marker can sit ahead of the
// published epoch's quantum, and the age metric must clamp at zero
// instead of going negative.
func TestSnapshotAgeQuantaClamp(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("clamp")
	if err != nil {
		t.Fatal(err)
	}
	tn.lastSnapQuantum.Store(1 << 20) // snapshot "ahead" of the epoch
	m := tn.Metrics()
	if m.SnapshotAgeQuanta != 0 {
		t.Fatalf("SnapshotAgeQuanta = %d, want 0 (clamped)", m.SnapshotAgeQuanta)
	}
}

// TestMetricsTotalsAggregation drives totalsOf with synthetic tenant
// rows, table-driven.
func TestMetricsTotalsAggregation(t *testing.T) {
	mk := func(msgs uint64, quanta int, queued int64, walSegs, archSegs, archEvents int, shedRL, shedQD, shedMsgs uint64) TenantMetrics {
		m := TenantMetrics{}
		m.Messages = msgs
		m.Quanta = quanta
		m.QueuedMessages = queued
		m.WALSegments = walSegs
		m.ArchiveSegments = archSegs
		m.ArchiveEvents = archEvents
		m.ShedRateLimit = shedRL
		m.ShedQueueDepth = shedQD
		m.ShedMessages = shedMsgs
		return m
	}
	cases := []struct {
		name string
		in   []TenantMetrics
		want MetricsTotals
	}{
		{"empty", nil, MetricsTotals{}},
		{"single", []TenantMetrics{mk(10, 2, 3, 1, 4, 5, 6, 7, 8)},
			MetricsTotals{Tenants: 1, Messages: 10, Quanta: 2, QueuedMessages: 3,
				WALSegments: 1, ArchiveSegments: 4, ArchiveEvents: 5,
				ShedBatches: 13, ShedMessages: 8}},
		{"pair", []TenantMetrics{
			mk(10, 2, 3, 1, 4, 5, 6, 7, 8),
			mk(90, 8, 7, 9, 6, 5, 4, 3, 2),
		}, MetricsTotals{Tenants: 2, Messages: 100, Quanta: 10, QueuedMessages: 10,
			WALSegments: 10, ArchiveSegments: 10, ArchiveEvents: 10,
			ShedBatches: 20, ShedMessages: 10}},
		{"zeros-are-counted", []TenantMetrics{mk(0, 0, 0, 0, 0, 0, 0, 0, 0), mk(0, 0, 0, 0, 0, 0, 0, 0, 0)},
			MetricsTotals{Tenants: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := totalsOf(c.in); !reflect.DeepEqual(got, c.want) {
				t.Fatalf("totalsOf = %+v, want %+v", got, c.want)
			}
		})
	}
}

// promSampleRE matches one exposition sample line: name, optional
// label block, value.
var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
var promLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$`)

// validatePromExposition is the golden-format validator: HELP and TYPE
// precede every family's samples, series are unique, labels are
// well-formed, histogram buckets are cumulative with +Inf == _count.
// Returns the parsed samples keyed by full series identity.
func validatePromExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	series := map[string]float64{}
	lastBucket := map[string]float64{}  // series-minus-le → last cumulative
	bucketTotal := map[string]float64{} // series-minus-le → +Inf value
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: bad TYPE %q", ln+1, parts[1])
			}
			if typed[parts[0]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("line %d: bad value %q", ln+1, valStr)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if !helped[family] || typed[family] == "" {
			t.Fatalf("line %d: sample %s before HELP/TYPE of %s", ln+1, name, family)
		}
		if labels != "" {
			inner := labels[1 : len(labels)-1]
			for _, pair := range strings.Split(inner, ",") {
				if !promLabelRE.MatchString(pair) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
			}
		}
		id := name + labels
		if _, dup := series[id]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, id)
		}
		series[id] = val
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			key := family + stripLE(labels)
			if val < lastBucket[key] {
				t.Fatalf("line %d: bucket cumulative decreased for %s: %v < %v", ln+1, key, val, lastBucket[key])
			}
			lastBucket[key] = val
			if strings.Contains(labels, `le="+Inf"`) {
				bucketTotal[key] = val
			}
		}
	}
	for key, inf := range bucketTotal {
		countID := strings.Replace(key, "{", "_count{", 1)
		cnt, ok := series[countID]
		if !ok {
			t.Fatalf("histogram %s has buckets but no _count", key)
		}
		if cnt != inf {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", key, inf, cnt)
		}
	}
	return series
}

// stripLE removes the le="..." pair from a label block.
var leRE = regexp.MustCompile(`,le="[^"]*"`)

func stripLE(labels string) string { return leRE.ReplaceAllString(labels, "") }

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestPrometheusExposition exercises the full pipeline (ingest →
// quantum → query) and validates the rendered exposition: every JSON
// counter family present, at least 8 distinct stage histograms, all
// format invariants holding.
func TestPrometheusExposition(t *testing.T) {
	pool, err := NewPool(PoolConfig{
		Detector: testDetectConfig(),
		WALDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/exp/messages", quantumOf(i*8, "fire downtown"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/exp/flush", nil)
	resp.Body.Close()
	if code, _ := getBody(t, ts.URL+"/v1/exp/query?limit=10"); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/exp/events?k=5"); code != http.StatusOK {
		t.Fatalf("events status = %d", code)
	}

	code, body := getBody(t, ts.URL+"/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("exposition status = %d", code)
	}
	series := validatePromExposition(t, body)

	// Every per-tenant JSON counter family appears with the tenant label.
	for _, pm := range promTenantMetrics {
		if _, ok := series[pm.name+`{tenant="exp"}`]; !ok {
			t.Errorf("missing series %s{tenant=\"exp\"}", pm.name)
		}
	}
	for _, pm := range promPoolMetrics {
		if _, ok := series[pm.name]; !ok {
			t.Errorf("missing totals series %s", pm.name)
		}
	}
	// promTenantMetrics must cover the whole JSON shape: one row per
	// TenantMetrics field (TenantStats embedded fields included).
	jsonFields := 0
	var count func(reflect.Type)
	count = func(ty reflect.Type) {
		for i := 0; i < ty.NumField(); i++ {
			f := ty.Field(i)
			if f.Anonymous {
				count(f.Type)
				continue
			}
			if f.Name == "Tenant" {
				continue // the label, not a sample
			}
			jsonFields++
		}
	}
	count(reflect.TypeOf(TenantMetrics{}))
	if len(promTenantMetrics) != jsonFields {
		t.Errorf("promTenantMetrics has %d rows, TenantMetrics has %d fields — exposition drifted from JSON",
			len(promTenantMetrics), jsonFields)
	}
	// At least 8 distinct pipeline stages must have histogram data.
	stages := map[string]bool{}
	stageRE := regexp.MustCompile(`eventdetect_stage_duration_seconds_count\{tenant="exp",stage="([a-z_]+)"\}`)
	for id := range series {
		if m := stageRE.FindStringSubmatch(id); m != nil {
			stages[m[1]] = true
		}
	}
	if len(stages) < 8 {
		t.Fatalf("only %d stage histograms populated (%v), want >= 8", len(stages), stages)
	}
	// Runtime health is present.
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if _, ok := series[name]; !ok {
			t.Errorf("missing runtime series %s", name)
		}
	}
	// The alias endpoint serves the same format.
	code, aliasBody := getBody(t, ts.URL+"/metrics/prometheus")
	if code != http.StatusOK {
		t.Fatalf("alias status = %d", code)
	}
	validatePromExposition(t, aliasBody)
}

// TestMetricsFilterAndJSONCompat covers the ?tenant= filter and pins
// the default JSON body to the exact pre-exposition encoding.
func TestMetricsFilterAndJSONCompat(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()
	for _, name := range []string{"alpha", "beta"} {
		resp := postJSON(t, ts.URL+"/v1/"+name+"/messages", quantumOf(0, "hello world"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %s status = %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Default body must be byte-identical to encoding p.Metrics() the
	// way writeJSON always has.
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pool.Metrics()); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("JSON /metrics body drifted:\ngot:  %q\nwant: %q", body, want.String())
	}

	code, body = getBody(t, ts.URL+"/metrics?tenant=alpha")
	if code != http.StatusOK {
		t.Fatalf("filtered status = %d", code)
	}
	var pm PoolMetrics
	if err := json.Unmarshal([]byte(body), &pm); err != nil {
		t.Fatal(err)
	}
	if len(pm.Tenants) != 1 || pm.Tenants[0].Tenant != "alpha" || pm.Totals.Tenants != 1 {
		t.Fatalf("filtered body = %+v", pm)
	}
	if code, _ := getBody(t, ts.URL+"/metrics?tenant=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant filter status = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/metrics?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("bad format status = %d, want 400", code)
	}
	// The filter composes with the prometheus format: only alpha appears.
	code, body = getBody(t, ts.URL+"/metrics?format=prometheus&tenant=beta")
	if code != http.StatusOK {
		t.Fatalf("filtered prometheus status = %d", code)
	}
	if strings.Contains(body, `tenant="alpha"`) || !strings.Contains(body, `tenant="beta"`) {
		t.Fatal("tenant filter did not compose with prometheus format")
	}
}

// TestQueryDebugSpans checks the ?debug=1 span breakdown: spans are
// present, named, and sum to the reported total within 5%.
func TestQueryDebugSpans(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/dbg/messages", quantumOf(0, "storm coming"))
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/dbg/flush", nil)
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/v1/dbg/query?limit=10&debug=1")
	if code != http.StatusOK {
		t.Fatalf("debug query status = %d", code)
	}
	var out struct {
		Debug *traceJSON `json:"debug"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Debug == nil {
		t.Fatal("?debug=1 response has no debug block")
	}
	if out.Debug.Op != "query" || out.Debug.Tenant != "dbg" || len(out.Debug.Spans) < 3 {
		t.Fatalf("debug block = %+v", out.Debug)
	}
	var sum float64
	names := map[string]bool{}
	for _, s := range out.Debug.Spans {
		sum += s.Ms
		names[s.Stage] = true
	}
	for _, want := range []string{"parse", "plan", "snapshot_scan", "finalize"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, out.Debug.Spans)
		}
	}
	if out.Debug.TotalMs <= 0 {
		t.Fatalf("total_ms = %v", out.Debug.TotalMs)
	}
	if diff := math.Abs(sum-out.Debug.TotalMs) / out.Debug.TotalMs; diff > 0.05 {
		t.Fatalf("span sum %.4fms vs total %.4fms: off by %.1f%%", sum, out.Debug.TotalMs, diff*100)
	}
	// Without ?debug the response must not carry the block.
	_, body = getBody(t, ts.URL+"/v1/dbg/query?limit=10")
	if strings.Contains(body, `"debug"`) {
		t.Fatal("debug block leaked into a plain query response")
	}
}

// TestDebugRequestsUnderLoad hammers the query endpoint concurrently
// and checks the slow-request ring: bounded retention, slowest-first
// order, min_ms filtering.
func TestDebugRequestsUnderLoad(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), TraceRingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/load/messages", quantumOf(0, "flood warning"))
	resp.Body.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r, err := http.Get(ts.URL + "/v1/load/query?limit=5")
				if err == nil {
					io.Copy(io.Discard, r.Body) //nolint:errcheck
					r.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	code, body := getBody(t, ts.URL+"/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("debug/requests status = %d", code)
	}
	var out struct {
		Traces []traceJSON `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) == 0 || len(out.Traces) > 8 {
		t.Fatalf("retained %d traces, want 1..8", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i].TotalMs > out.Traces[i-1].TotalMs {
			t.Fatalf("traces not slowest-first at %d: %v > %v", i, out.Traces[i].TotalMs, out.Traces[i-1].TotalMs)
		}
	}
	for _, tr := range out.Traces {
		if tr.Tenant != "load" || (tr.Op != "query" && tr.Op != "ingest") {
			t.Fatalf("unexpected trace %+v", tr)
		}
	}
	// An absurd min_ms filters everything out but stays 200.
	code, body = getBody(t, ts.URL+"/debug/requests?min_ms=3600000")
	if code != http.StatusOK {
		t.Fatalf("filtered status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("min_ms filter retained %d traces", len(out.Traces))
	}
}

// TestDebugRequestsDisabled: with telemetry off the debug surface 404s
// loudly instead of serving an empty list.
func TestDebugRequestsDisabled(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), ObsDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()
	if code, _ := getBody(t, ts.URL+"/debug/requests"); code != http.StatusNotFound {
		t.Fatalf("disabled debug status = %d, want 404", code)
	}
	// Prometheus exposition still works, counters only.
	resp := postJSON(t, ts.URL+"/v1/off/messages", quantumOf(0, "hi there"))
	resp.Body.Close()
	code, body := getBody(t, ts.URL+"/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("exposition status = %d", code)
	}
	validatePromExposition(t, body)
	if strings.Contains(body, "eventdetect_stage_duration_seconds") {
		t.Fatal("stage histograms rendered with telemetry disabled")
	}
}

// TestIngestToSSEHistogramPath sanity-checks that a full ingest→flush
// round populates the quantum-side stage histograms (the SSE fan-out
// and snapshot publish stages), via the tenant's own telemetry handle.
func TestIngestToSSEHistogramPath(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("sse")
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Enqueue(quantumOf(0, "quake reported")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tn.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	o := tn.Obs()
	if o == nil {
		t.Fatal("telemetry handle missing with ObsDisabled unset")
	}
	want := map[string]bool{
		"snapshot_publish": true, "sse_fanout": true, "detect_quantum": true,
		"queue_wait": true, "sched_wait": true, "admission": true,
	}
	for _, st := range obs.Stages() {
		if !want[st.String()] {
			continue
		}
		if o.Snapshot(st).Count == 0 {
			t.Errorf("stage %s has no observations after ingest+flush", st)
		}
	}
}
