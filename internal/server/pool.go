// Package server is the HTTP/JSON serving subsystem: a multi-tenant pool
// of streaming detectors behind ingest, query, and SSE push endpoints,
// with checkpoint-on-shutdown persistence so restarts resume the stream
// bit-identically. See docs/ARCHITECTURE.md for the design.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/detect"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Errors surfaced to handlers (mapped onto HTTP status codes there).
var (
	ErrQueueFull     = errors.New("server: ingest queue full")
	ErrBatchTooLarge = errors.New("server: batch exceeds the queue's message bound; split it")
	ErrClosed        = errors.New("server: pool shut down")
	ErrBadTenant     = errors.New("server: invalid tenant name")
	ErrNoTenant      = errors.New("server: unknown tenant")
	ErrMaxTenants    = errors.New("server: tenant limit reached")
	ErrNoArchive     = errors.New("server: event archive not enabled")
)

// tenantNameRE keeps tenant names URL- and filename-safe.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// PoolConfig configures a detector pool.
type PoolConfig struct {
	// Detector is the configuration every new tenant's detector gets.
	// Restored tenants keep the configuration frozen in their checkpoint.
	Detector detect.Config
	// QueueDepth bounds each tenant's ingest queue in batches (one POST
	// body = one batch). Zero selects 64. A full queue rejects ingest
	// with ErrQueueFull — backpressure, never unbounded memory.
	QueueDepth int
	// QueueMessages bounds the total messages buffered across queued
	// batches — the actual memory bound, since one batch can hold a
	// whole POST body. Zero selects 100000.
	QueueMessages int
	// RetainEvents, when positive, caps the finished-event history kept
	// per tenant (oldest trimmed first; live events are never dropped).
	// Zero keeps everything — fine for bounded experiments, not for a
	// long-lived tenant, whose history otherwise grows forever.
	RetainEvents int
	// CheckpointDir, when non-empty, enables clean-shutdown persistence:
	// tenants with a checkpoint are restored on pool start and every
	// tenant is checkpointed on Shutdown. A crash between checkpoints
	// loses everything since startup — use WALDir for crash durability.
	CheckpointDir string
	// MaxTenants bounds the number of tenants. Zero selects 1024.
	MaxTenants int

	// WALDir, when non-empty, enables crash durability: every accepted
	// ingest batch is appended to a per-tenant write-ahead log before it
	// is acknowledged, and the detector is snapshotted every
	// SnapshotEvery quanta. On pool start each tenant found under WALDir
	// is recovered as latest snapshot + replay of the segment tail —
	// bit-identical to the pre-crash state, however the process died.
	WALDir string
	// WALSegmentBytes rotates WAL segments (default 4 MiB).
	WALSegmentBytes int64
	// WALSyncEvery fsyncs the WAL after every N appends; 0 never fsyncs
	// explicitly (kill-safe via the page cache, not power-safe).
	WALSyncEvery int
	// SnapshotEvery is the WAL snapshot cadence in quanta (default 256).
	// Smaller = faster recovery, more snapshot IO.
	SnapshotEvery int

	// ArchiveDir, when non-empty, routes events evicted by the
	// RetainEvents policy into a per-tenant on-disk archive (time-bucketed
	// JSONL segments with data-skipping sidecars) instead of discarding
	// them, queryable via Tenant.ArchiveQuery and GET /v1/{t}/archive.
	ArchiveDir string
	// ArchiveSegmentEvents rotates archive segments by record count
	// (default 512); ArchiveBucketQuanta by time span (default 1024).
	ArchiveSegmentEvents int
	ArchiveBucketQuanta  int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueMessages <= 0 {
		c.QueueMessages = 100000
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// TenantStats is the monitoring snapshot of one tenant.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Messages is the number of messages ingested over the tenant's
	// lifetime (it survives checkpoint/restore).
	Messages uint64 `json:"messages"`
	// Quanta is the index of the last processed quantum.
	Quanta int `json:"quanta"`
	// QueueDepth and QueueCap measure quantum lag: batches accepted but
	// not yet applied to the graph; QueuedMessages is the same backlog
	// in messages.
	QueueDepth     int   `json:"queue_depth"`
	QueueCap       int   `json:"queue_cap"`
	QueuedMessages int64 `json:"queued_messages"`
	// LiveEvents / TotalEvents count currently retained event
	// lifecycles; with RetainEvents set, TotalEvents is not monotonic
	// (trimmed finished events leave the count).
	LiveEvents  int `json:"live_events"`
	TotalEvents int `json:"total_events"`
	// AKGNodes / AKGEdges give the active graph size.
	AKGNodes int `json:"akg_nodes"`
	AKGEdges int `json:"akg_edges"`
	// ProcessMillis is the cumulative detector processing time this
	// process spent on the tenant; MsgsPerSec is Messages ingested this
	// process divided by that time — the pipeline rate of Section 7.2.
	ProcessMillis float64 `json:"process_millis"`
	MsgsPerSec    float64 `json:"msgs_per_sec"`
}

// EventView is the immutable JSON projection of a detect.Event, safe to
// hand out after the detector lock is released.
type EventView struct {
	ID            uint64    `json:"id"`
	State         string    `json:"state"`
	Keywords      []string  `json:"keywords"`
	Rank          float64   `json:"rank"`
	PeakRank      float64   `json:"peak_rank"`
	RankHistory   []float64 `json:"rank_history,omitempty"`
	BornQuantum   int       `json:"born_quantum"`
	LastQuantum   int       `json:"last_quantum"`
	Evolved       bool      `json:"evolved"`
	Size          int       `json:"size"`
	Support       int       `json:"support"`
	Reported      bool      `json:"reported"`
	FirstReported int       `json:"first_reported,omitempty"`
	MergedInto    uint64    `json:"merged_into,omitempty"`
	SplitFrom     uint64    `json:"split_from,omitempty"`
	Spurious      bool      `json:"spurious"`
}

func viewOf(ev *detect.Event) EventView {
	return EventView{
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      append([]string(nil), ev.Keywords...),
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		RankHistory:   append([]float64(nil), ev.RankHistory...),
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

func viewsOf(evs []*detect.Event) []EventView {
	out := make([]EventView, len(evs))
	for i, ev := range evs {
		out[i] = viewOf(ev)
	}
	return out
}

// walBatch is one queued work item — an ingest batch or a stream-flush
// marker — with its WAL sequence number (0 when the WAL is disabled).
// Flushes ride the queue so their order relative to batches matches
// the WAL's record order exactly; replay depends on that.
type walBatch struct {
	seq   uint64
	msgs  []stream.Message
	flush bool
}

// tenantStorage bundles one tenant's durability handles; fields are nil
// when the corresponding subsystem is disabled.
type tenantStorage struct {
	wal      *wal.Log
	arch     *archive.Log
	archErrs *atomic.Uint64 // archive append failures (events lost)
	walErrs  *atomic.Uint64 // snapshot/compaction failures
}

// attachEvict routes events evicted by detect.TrimFinished into the
// archive. The detector's cumulative trim counter is the record's
// eviction ordinal; the archive drops ordinals it already holds, which
// makes the hook idempotent across WAL replays. Must be registered
// before any replay so pre-crash evictions the archive lost (torn tail)
// self-heal.
func (s *tenantStorage) attachEvict(det *detect.Detector) {
	if s == nil || s.arch == nil {
		return
	}
	arch, errs := s.arch, s.archErrs
	det.SetOnEvict(func(ev *detect.Event) {
		if err := arch.Append(archiveRecord(det.Trimmed(), ev)); err != nil {
			errs.Add(1)
		}
	})
}

// archiveRecord projects an evicted event onto the archive's JSONL
// record shape, with seq as its eviction ordinal.
func archiveRecord(seq uint64, ev *detect.Event) archive.Record {
	all := make([]string, 0, len(ev.AllKeywords))
	for kw := range ev.AllKeywords {
		all = append(all, kw)
	}
	sort.Strings(all)
	return archive.Record{
		Seq:           seq,
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      append([]string(nil), ev.Keywords...),
		AllKeywords:   all,
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

// Tenant is one isolated detector: a bounded ingest queue drained by a
// dedicated goroutine, the (single-threaded) detector it feeds, and an
// SSE broker for push notification. Queries copy state under the
// detector lock; they never touch live detector internals afterwards.
type Tenant struct {
	name   string
	broker *broker

	qmu     sync.Mutex // guards queue close vs. enqueue (and WAL appends)
	queue   chan walBatch
	closed  bool
	drained chan struct{} // closed when the worker has exited

	// accepted counts batches admitted to the queue, applied counts
	// batches fully ingested; equal means the tenant is idle. queuedMsgs
	// tracks the backlog in messages, bounded by maxQueuedMsgs.
	accepted      atomic.Uint64
	applied       atomic.Uint64
	queuedMsgs    atomic.Int64
	maxQueuedMsgs int64

	retain int // finished-event retention cap (0 = unlimited)

	// Durability. lastApplied is the WAL seq of the last fully applied
	// batch — the only safe snapshot position. snapEvery is the snapshot
	// cadence in quanta; lastSnapQuantum (under mu) tracks the quantum of
	// the newest snapshot for cadence and the snapshot-age metric.
	storage         *tenantStorage
	lastApplied     atomic.Uint64
	snapEvery       int
	lastSnapQuantum int

	mu      sync.Mutex // guards det, elapsed counters, archive access
	det     *detect.Detector
	elapsed time.Duration // detector time spent this process
	since   uint64        // messages ingested this process
}

func newTenant(name string, det *detect.Detector, cfg PoolConfig, st *tenantStorage) *Tenant {
	t := &Tenant{
		name:          name,
		broker:        newBroker(),
		queue:         make(chan walBatch, cfg.QueueDepth),
		drained:       make(chan struct{}),
		det:           det,
		maxQueuedMsgs: int64(cfg.QueueMessages),
		retain:        cfg.RetainEvents,
		storage:       st,
		snapEvery:     cfg.SnapshotEvery,
	}
	st.attachEvict(det)
	det.SetOnQuantum(func(res *detect.QuantumResult) {
		t.elapsed += res.Elapsed
		t.broker.publish(&StreamEvent{
			Tenant:   name,
			Quantum:  res.Quantum,
			Reports:  res.Reports,
			Born:     res.Born,
			Ended:    res.Ended,
			Merged:   res.Merged,
			AKGNodes: res.AKGNodes,
			AKGEdges: res.AKGEdges,
		})
	})
	go t.work()
	return t
}

// walLog / archLog are nil-safe storage accessors.
func (t *Tenant) walLog() *wal.Log {
	if t.storage == nil {
		return nil
	}
	return t.storage.wal
}

func (t *Tenant) archLog() *archive.Log {
	if t.storage == nil {
		return nil
	}
	return t.storage.arch
}

// work drains the ingest queue until it is closed. Messages are applied
// strictly in arrival order; the detector's own push hook notifies the
// broker at every quantum boundary. The lock is taken per message, not
// per batch, so query endpoints interleave with ingest instead of
// stalling behind a large batch.
func (t *Tenant) work() {
	defer close(t.drained)
	for batch := range t.queue {
		if batch.flush {
			t.mu.Lock()
			t.det.Flush()
			t.mu.Unlock()
		}
		for _, m := range batch.msgs {
			t.mu.Lock()
			t.det.IngestAll(m)
			t.since++
			t.mu.Unlock()
		}
		if !batch.flush && t.retain > 0 {
			t.mu.Lock()
			t.det.TrimFinished(t.retain)
			t.mu.Unlock()
		}
		if batch.seq > 0 {
			t.lastApplied.Store(batch.seq)
		}
		t.maybeSnapshot()
		t.queuedMsgs.Add(-int64(len(batch.msgs)))
		t.applied.Add(1)
	}
}

// maybeSnapshot checkpoints the detector into the WAL once enough quanta
// have passed since the last snapshot, then compaction (inside
// wal.Snapshot) drops the covered segments. It runs synchronously on
// the worker between batches — that is what makes lastApplied exactly
// name the state captured, and it deliberately paces ingest to
// snapshot IO at the cadence point. The state is deep-copied under the
// detector lock but encoded and written outside it, so *queries* (and
// WAL appends from Enqueue) proceed during the write; only this
// tenant's batch application waits.
func (t *Tenant) maybeSnapshot() {
	wl := t.walLog()
	if wl == nil || t.snapEvery <= 0 {
		return
	}
	t.mu.Lock()
	q := t.det.AKG().Quantum()
	if q-t.lastSnapQuantum < t.snapEvery {
		t.mu.Unlock()
		return
	}
	st := t.det.State()
	t.mu.Unlock()
	err := wl.Snapshot(t.lastApplied.Load(), func(w io.Writer) error {
		return detect.EncodeState(&st, w)
	})
	if err != nil {
		if t.storage.walErrs != nil {
			t.storage.walErrs.Add(1)
		}
		return
	}
	t.mu.Lock()
	if q > t.lastSnapQuantum {
		t.lastSnapQuantum = q
	}
	t.mu.Unlock()
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Enqueue hands a batch to the tenant's worker. It never blocks: a full
// queue returns ErrQueueFull (the client should retry), a batch that
// could never fit even in an empty queue returns ErrBatchTooLarge
// (retrying is futile — the client must split it), and a shut-down
// tenant returns ErrClosed. With the WAL enabled the batch is on disk
// before Enqueue returns: an accepted batch survives any crash.
func (t *Tenant) Enqueue(msgs []stream.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if int64(len(msgs)) > t.maxQueuedMsgs {
		return ErrBatchTooLarge
	}
	if t.queuedMsgs.Load()+int64(len(msgs)) > t.maxQueuedMsgs {
		return ErrQueueFull
	}
	// Admission must be decided before the WAL append: a batch logged
	// but then rejected would reappear at recovery as data the client
	// was told to retry. Only the worker removes from the queue, so a
	// free slot observed here (under qmu) stays free until our send.
	if len(t.queue) == cap(t.queue) {
		return ErrQueueFull
	}
	var seq uint64
	if wl := t.walLog(); wl != nil {
		var err error
		if seq, err = wl.Append(msgs); err != nil {
			return fmt.Errorf("server: tenant %s: %w", t.name, err)
		}
	}
	t.queue <- walBatch{seq: seq, msgs: msgs}
	t.queuedMsgs.Add(int64(len(msgs)))
	t.accepted.Add(1)
	return nil
}

// ArchiveQuery serves the tenant's evicted-event history: records whose
// lifecycle intersects [from, to] quanta (to < 0 = unbounded), filtered
// by keyword when non-empty. The archive synchronises internally, so a
// long history scan never blocks this tenant's ingest.
func (t *Tenant) ArchiveQuery(from, to int, keyword string, limit int) ([]archive.Record, archive.QueryStats, error) {
	arch := t.archLog()
	if arch == nil {
		return nil, archive.QueryStats{}, ErrNoArchive
	}
	return arch.Query(from, to, keyword, limit)
}

// Flush forces processing of the tenant's buffered partial quantum (end
// of stream). A flush mutates the detector exactly like ingest does, so
// it is WAL-logged and queued behind every batch accepted before the
// call — order in the log is order of application, which replay relies
// on. Flush returns once the marker has been applied; ctx abandons the
// wait (e.g. the HTTP client disconnected), though an enqueued flush
// still executes.
func (t *Tenant) Flush(ctx context.Context) error {
	var target uint64
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		t.qmu.Lock()
		if t.closed {
			t.qmu.Unlock()
			return ErrClosed
		}
		if len(t.queue) < cap(t.queue) {
			var seq uint64
			if wl := t.walLog(); wl != nil {
				s, err := wl.AppendFlush()
				if err != nil {
					t.qmu.Unlock()
					return fmt.Errorf("server: tenant %s: %w", t.name, err)
				}
				seq = s
			}
			t.queue <- walBatch{seq: seq, flush: true}
			t.accepted.Add(1)
			target = t.accepted.Load()
			t.qmu.Unlock()
			break
		}
		t.qmu.Unlock()
		// Queue full: wait for the worker to make room rather than
		// failing — Flush's contract is to block until done.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	for t.applied.Load() < target {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// Events returns the tenant's events: the top-k live reported events by
// rank (k ≤ 0 means all) or, when all is set, every event ever tracked in
// birth order.
func (t *Tenant) Events(k int, all bool) []EventView {
	t.mu.Lock()
	defer t.mu.Unlock()
	if all {
		return viewsOf(t.det.AllEvents())
	}
	return viewsOf(t.det.TopK(k))
}

// Event returns one event by ID.
func (t *Tenant) Event(id uint64) (EventView, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev := t.det.FindEvent(id); ev != nil {
		return viewOf(ev), true
	}
	return EventView{}, false
}

// Related returns live event pairs whose user communities overlap by at
// least minOverlap (the paper's same-event correlation post-processing).
// Never nil, so the API serves [] rather than null.
func (t *Tenant) Related(minOverlap float64) []detect.RelatedPair {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]detect.RelatedPair{}, t.det.RelatedEvents(minOverlap)...)
}

// Stats returns the tenant's monitoring snapshot.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TenantStats{
		Tenant:         t.name,
		Messages:       t.det.Processed(),
		LiveEvents:     t.det.LiveCount(),
		TotalEvents:    t.det.TotalCount(),
		AKGNodes:       t.det.AKG().NodeCount(),
		AKGEdges:       t.det.AKG().EdgeCount(),
		QueueDepth:     len(t.queue),
		QueuedMessages: t.queuedMsgs.Load(),
		QueueCap:       cap(t.queue),
		Quanta:         t.det.AKG().Quantum(),
		ProcessMillis:  float64(t.elapsed) / float64(time.Millisecond),
	}
	if t.elapsed > 0 {
		s.MsgsPerSec = float64(t.since) / t.elapsed.Seconds()
	}
	return s
}

// shutdown stops ingest, waits (bounded by ctx) for the worker to drain,
// and closes the broker. Safe to call once.
func (t *Tenant) shutdown(ctx context.Context) error {
	t.qmu.Lock()
	if !t.closed {
		t.closed = true
		close(t.queue)
	}
	t.qmu.Unlock()
	var err error
	select {
	case <-t.drained:
	case <-ctx.Done():
		err = fmt.Errorf("server: tenant %s: drain: %w", t.name, ctx.Err())
	}
	t.broker.close()
	return err
}

// Pool manages the tenants of one serving process.
type Pool struct {
	cfg  PoolConfig
	ckpt *checkpointStore // nil when persistence is disabled

	mu      sync.RWMutex
	tenants map[string]*Tenant
	// creating holds an in-flight latch per tenant name being built
	// outside the lock (WAL recovery can be slow); the channel closes
	// when the build finishes, successfully or not.
	creating map[string]chan struct{}
	closed   bool // refuses new tenants (set by BeginShutdown)

	// shutdownOnce guards the drain+checkpoint pass; shutdownDone is
	// closed when it finishes so concurrent Shutdown callers wait for
	// completion instead of returning success early.
	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error
}

// NewPool builds a pool and restores tenants from disk: first by WAL
// recovery (snapshot + tail replay — survives crashes), then from
// clean-shutdown checkpoints for tenants without a WAL directory.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:          cfg,
		tenants:      make(map[string]*Tenant),
		creating:     make(map[string]chan struct{}),
		shutdownDone: make(chan struct{}),
	}
	abandon := func() {
		// Don't leak the workers of tenants already restored.
		for _, t := range p.tenants {
			t.shutdown(context.Background()) //nolint:errcheck // empty queues drain instantly
		}
	}
	if cfg.CheckpointDir != "" {
		store, err := newCheckpointStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		p.ckpt = store
	}
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: wal dir: %w", err)
		}
		entries, err := os.ReadDir(cfg.WALDir)
		if err != nil {
			return nil, fmt.Errorf("server: list wal dir: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
				continue
			}
			t, err := p.recoverTenant(e.Name())
			if err != nil {
				abandon()
				return nil, err
			}
			p.tenants[e.Name()] = t
		}
	}
	if p.ckpt != nil {
		names, err := p.ckpt.List()
		if err != nil {
			abandon()
			return nil, err
		}
		for _, name := range names {
			if !tenantNameRE.MatchString(name) {
				// A stray file (backup copy, editor droppings) would
				// otherwise become a zombie tenant no route can reach.
				continue
			}
			if existing, ok := p.tenants[name]; ok {
				// The WAL is usually at least as new as the shutdown
				// checkpoint — but if the server ran for a while with the
				// WAL disabled, the checkpoint can be ahead. Prefer
				// whichever processed more of the stream instead of
				// silently rewinding the tenant.
				det, err := p.ckpt.Load(name)
				if err != nil {
					abandon()
					return nil, err
				}
				if det == nil {
					continue
				}
				existing.mu.Lock()
				cur := existing.det.Processed()
				existing.mu.Unlock()
				if det.Processed() <= cur {
					continue
				}
				existing.shutdown(context.Background()) //nolint:errcheck // empty queue drains instantly
				st := existing.storage
				if st.wal != nil {
					// Re-seed the WAL from the newer checkpoint; the
					// records it held are superseded and compacted away.
					if err := st.wal.Snapshot(st.wal.LastSeq(), det.Save); err != nil {
						abandon()
						return nil, err
					}
				}
				t := newTenant(name, det, cfg, st)
				if st.wal != nil {
					t.lastApplied.Store(st.wal.LastSeq())
				}
				t.lastSnapQuantum = det.AKG().Quantum()
				p.tenants[name] = t
				continue
			}
			det, err := p.ckpt.Load(name)
			if err != nil {
				abandon()
				return nil, err
			}
			if det == nil {
				// Checkpoint vanished between List and Load (concurrent
				// cleanup); skip rather than panic on a nil detector.
				continue
			}
			st, err := p.openStorage(name)
			if err != nil {
				abandon()
				return nil, err
			}
			if st.wal != nil {
				// Base the fresh WAL on the checkpointed state: without
				// this, a crash before the first cadence snapshot would
				// replay the tail onto an empty detector.
				if err := st.wal.Snapshot(st.wal.LastSeq(), det.Save); err != nil {
					st.close()
					abandon()
					return nil, err
				}
			}
			t := newTenant(name, det, cfg, st)
			t.lastApplied.Store(0)
			t.lastSnapQuantum = det.AKG().Quantum()
			p.tenants[name] = t
		}
	}
	return p, nil
}

// openStorage opens (creating as needed) one tenant's WAL and archive
// handles; disabled subsystems yield nil fields.
func (p *Pool) openStorage(name string) (*tenantStorage, error) {
	st := &tenantStorage{archErrs: new(atomic.Uint64), walErrs: new(atomic.Uint64)}
	if p.cfg.WALDir != "" {
		wl, err := wal.Open(filepath.Join(p.cfg.WALDir, name), wal.Options{
			SegmentBytes: p.cfg.WALSegmentBytes,
			SyncEvery:    p.cfg.WALSyncEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		st.wal = wl
	}
	if p.cfg.ArchiveDir != "" {
		ar, err := archive.Open(filepath.Join(p.cfg.ArchiveDir, name), archive.Options{
			SegmentEvents: p.cfg.ArchiveSegmentEvents,
			BucketQuanta:  p.cfg.ArchiveBucketQuanta,
		})
		if err != nil {
			if st.wal != nil {
				st.wal.Close() //nolint:errcheck // already failing
			}
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		st.arch = ar
	}
	return st, nil
}

// close releases the storage handles (error-path cleanup).
func (s *tenantStorage) close() {
	if s.wal != nil {
		s.wal.Close() //nolint:errcheck // best effort
	}
	if s.arch != nil {
		s.arch.Close() //nolint:errcheck // best effort
	}
}

// recoverTenant rebuilds one tenant from its WAL directory: load the
// latest snapshot (or start empty), then replay the segment tail
// through the detector exactly as the worker would have applied it.
// Determinism makes the result bit-identical to the pre-crash state;
// the eviction hook is attached before replay so events the archive
// already holds are deduplicated by ordinal while any it lost to a torn
// tail are re-archived.
func (p *Pool) recoverTenant(name string) (*Tenant, error) {
	st, err := p.openStorage(name)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Tenant, error) {
		st.close()
		return nil, fmt.Errorf("server: recover tenant %s: %w", name, err)
	}
	var det *detect.Detector
	r, snapSeq, err := st.wal.LatestSnapshot()
	if err != nil {
		return fail(err)
	}
	if r != nil {
		det, err = detect.Load(r)
		r.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		det = detect.New(p.cfg.Detector)
	}
	baseQuantum := det.AKG().Quantum()
	st.attachEvict(det)
	if err := st.wal.Replay(snapSeq, func(seq uint64, msgs []stream.Message, flush bool) error {
		// Mirror the worker exactly: flush markers flush, batches apply
		// per message then trim.
		if flush {
			det.Flush()
			return nil
		}
		for _, m := range msgs {
			det.IngestAll(m)
		}
		if p.cfg.RetainEvents > 0 {
			det.TrimFinished(p.cfg.RetainEvents)
		}
		return nil
	}); err != nil {
		return fail(err)
	}
	t := newTenant(name, det, p.cfg, st)
	t.lastApplied.Store(st.wal.LastSeq())
	t.mu.Lock()
	t.lastSnapQuantum = baseQuantum
	t.mu.Unlock()
	// If the tail replay crossed a snapshot cadence, snapshot now so a
	// crash loop cannot make recovery cost grow without bound.
	t.maybeSnapshot()
	return t, nil
}

// Tenant returns an existing tenant.
func (p *Pool) Tenant(name string) (*Tenant, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.tenants[name]
	return t, ok
}

// TenantCount returns the number of tenants without copying names.
func (p *Pool) TenantCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.tenants)
}

// CanCreate cheaply pre-checks whether a new tenant could be admitted
// right now. Racy by nature (the answer can change before GetOrCreate),
// but lets handlers shed guaranteed-rejected ingest before paying to
// decode a large body; GetOrCreate remains the authoritative gate.
func (p *Pool) CanCreate() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if len(p.tenants) >= p.cfg.MaxTenants {
		return ErrMaxTenants
	}
	return nil
}

// GetOrCreate returns the named tenant, creating it with the pool's
// detector configuration on first use. The build itself — which with a
// WAL configured may mean recovering leftovers of a pool that died
// mid-create, snapshot load and tail replay included — runs outside the
// pool lock behind a per-name latch, so one tenant's recovery never
// freezes every other tenant's requests.
func (p *Pool) GetOrCreate(name string) (*Tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, ErrBadTenant
	}
	for {
		p.mu.RLock()
		t, ok := p.tenants[name]
		closed := p.closed
		p.mu.RUnlock()
		if ok {
			return t, nil
		}
		if closed {
			return nil, ErrClosed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if t, ok := p.tenants[name]; ok {
			p.mu.Unlock()
			return t, nil
		}
		if wait, busy := p.creating[name]; busy {
			// Another request is already building this tenant: wait for
			// it to finish either way, then retry the lookup.
			p.mu.Unlock()
			<-wait
			continue
		}
		if len(p.tenants)+len(p.creating) >= p.cfg.MaxTenants {
			p.mu.Unlock()
			return nil, ErrMaxTenants
		}
		done := make(chan struct{})
		p.creating[name] = done
		p.mu.Unlock()

		t, err := p.buildTenant(name)

		p.mu.Lock()
		delete(p.creating, name)
		close(done)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if p.closed {
			// Shutdown began while we were building: the new tenant was
			// never published, so BeginShutdown could not reach it.
			p.mu.Unlock()
			t.shutdown(context.Background()) //nolint:errcheck // empty queue drains instantly
			t.storage.close()
			return nil, ErrClosed
		}
		p.tenants[name] = t
		p.mu.Unlock()
		return t, nil
	}
}

// buildTenant constructs one tenant without holding the pool lock.
func (p *Pool) buildTenant(name string) (*Tenant, error) {
	if p.cfg.WALDir != "" {
		// recoverTenant handles both a genuinely new tenant (empty WAL
		// directory) and leftovers of one whose pool died mid-create.
		return p.recoverTenant(name)
	}
	st, err := p.openStorage(name)
	if err != nil {
		return nil, err
	}
	return newTenant(name, detect.New(p.cfg.Detector), p.cfg, st), nil
}

// Names returns the tenant names, sorted.
func (p *Pool) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortTenants(tenants []*Tenant) {
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
}

// Stats returns every tenant's monitoring snapshot, sorted by name.
func (p *Pool) Stats() []TenantStats {
	p.mu.RLock()
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.RUnlock()
	sortTenants(tenants)
	out := make([]TenantStats, len(tenants))
	for i, t := range tenants {
		out[i] = t.Stats()
	}
	return out
}

// BeginShutdown makes the pool refuse new tenants and ends every
// tenant's SSE stream, without draining anything yet. Server.Shutdown
// calls it before draining HTTP: http.Server.Shutdown waits for
// connections to go idle, and an SSE subscriber never goes idle on its
// own — without this the drain (and therefore checkpointing) stalls for
// the whole grace period behind a single connected client. Refusing new
// tenants first closes the race where a tenant created mid-drain gets a
// fresh broker that a late subscriber could hang the drain on.
// Idempotent; returns the tenants present at shutdown, name-sorted.
func (p *Pool) BeginShutdown() []*Tenant {
	p.mu.Lock()
	p.closed = true
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.Unlock()
	sortTenants(tenants)
	for _, t := range tenants {
		t.broker.close()
	}
	return tenants
}

// Shutdown stops ingest on every tenant, drains their queues (bounded by
// ctx), and — when persistence is enabled — checkpoints each detector.
// The first error is returned, but every tenant is still processed.
// Concurrent calls block until the shutdown pass completes (bounded by
// their own ctx) rather than reporting success while it is in flight.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.shutdownOnce.Do(func() {
		defer close(p.shutdownDone)
		tenants := p.BeginShutdown()
		var first error
		for _, t := range tenants {
			derr := t.shutdown(ctx)
			if derr != nil && first == nil {
				first = derr
			}
			if p.ckpt != nil {
				t.mu.Lock()
				err := p.ckpt.Save(t.name, t.det)
				t.mu.Unlock()
				if err != nil && first == nil {
					first = err
				}
			}
			if derr != nil {
				// The worker may still be applying a batch; touching the
				// WAL now could pair partially-applied state with a
				// pre-batch log position. Leave the log as-is — that is
				// exactly the crash case recovery replays correctly.
				continue
			}
			if wl := t.walLog(); wl != nil {
				t.mu.Lock()
				err := wl.Snapshot(t.lastApplied.Load(), t.det.Save)
				t.mu.Unlock()
				if cerr := wl.Close(); err == nil {
					err = cerr
				}
				if err != nil && first == nil {
					first = err
				}
			}
			if ar := t.archLog(); ar != nil {
				t.mu.Lock()
				err := ar.Close()
				t.mu.Unlock()
				if err != nil && first == nil {
					first = err
				}
			}
		}
		p.shutdownErr = first
	})
	// Completed-shutdown fast path first: with both channels ready the
	// select below picks randomly, which would report a spurious
	// in-progress error to a caller arriving with an expired ctx.
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	default:
	}
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown in progress: %w", ctx.Err())
	}
}
