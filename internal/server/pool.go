// Package server is the HTTP/JSON serving subsystem: a multi-tenant pool
// of streaming detectors behind ingest, query, and SSE push endpoints,
// with checkpoint-on-shutdown persistence so restarts resume the stream
// bit-identically. See docs/ARCHITECTURE.md for the design.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Errors surfaced to handlers (mapped onto HTTP status codes there).
var (
	ErrQueueFull     = errors.New("server: ingest queue full")
	ErrBatchTooLarge = errors.New("server: batch exceeds the queue's message bound; split it")
	ErrClosed        = errors.New("server: pool shut down")
	ErrBadTenant     = errors.New("server: invalid tenant name")
	ErrNoTenant      = errors.New("server: unknown tenant")
	ErrMaxTenants    = errors.New("server: tenant limit reached")
	ErrNoArchive     = errors.New("server: event archive not enabled")
)

// tenantNameRE keeps tenant names URL- and filename-safe.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// PoolConfig configures a detector pool.
type PoolConfig struct {
	// Detector is the configuration every new tenant's detector gets.
	// Restored tenants keep the configuration frozen in their checkpoint.
	Detector detect.Config
	// QueueDepth bounds each tenant's ingest queue in batches (one POST
	// body = one batch). Zero selects 64. A full queue rejects ingest
	// with ErrQueueFull — backpressure, never unbounded memory.
	QueueDepth int
	// QueueMessages bounds the total messages buffered across queued
	// batches — the actual memory bound, since one batch can hold a
	// whole POST body. Zero selects 100000.
	QueueMessages int
	// RetainEvents, when positive, caps the finished-event history kept
	// per tenant (oldest trimmed first; live events are never dropped).
	// Zero keeps everything — fine for bounded experiments, not for a
	// long-lived tenant, whose history otherwise grows forever.
	RetainEvents int
	// CheckpointDir, when non-empty, enables clean-shutdown persistence:
	// tenants with a checkpoint are restored on pool start and every
	// tenant is checkpointed on Shutdown. A crash between checkpoints
	// loses everything since startup — use WALDir for crash durability.
	CheckpointDir string
	// MaxTenants bounds the number of tenants. Zero selects 1024.
	MaxTenants int

	// WALDir, when non-empty, enables crash durability: every accepted
	// ingest batch is appended to a per-tenant write-ahead log before it
	// is acknowledged, and the detector is snapshotted every
	// SnapshotEvery quanta. On pool start each tenant found under WALDir
	// is recovered as latest snapshot + replay of the segment tail —
	// bit-identical to the pre-crash state, however the process died.
	WALDir string
	// WALSegmentBytes rotates WAL segments (default 4 MiB).
	WALSegmentBytes int64
	// WALSyncEvery fsyncs the WAL after every N appends; 0 never fsyncs
	// explicitly (kill-safe via the page cache, not power-safe).
	// Ignored when WALGroupCommitInterval is set.
	WALSyncEvery int
	// WALGroupCommitInterval, when positive, switches WAL durability to
	// cross-tenant group commit: appends from every tenant buffer in
	// memory and a single committer goroutine flushes + fsyncs each
	// dirty log once per interval; Enqueue acknowledges only after the
	// flush covering its batch. Acked batches are then power-safe (not
	// just kill-safe), and the fsync cost is shared across all batches
	// of an interval instead of paid per Enqueue.
	WALGroupCommitInterval time.Duration
	// SnapshotEvery is the WAL snapshot cadence in quanta (default 256).
	// Smaller = faster recovery, more snapshot IO.
	SnapshotEvery int

	// FS is the filesystem every storage layer (WAL, archive,
	// checkpoints) goes through. Nil selects the real OS filesystem;
	// tests inject a vfs.FaultFS here to exercise EIO/ENOSPC/torn-write
	// paths without privileged mounts.
	FS vfs.FS
	// StorageRetries bounds the inline retry turns Enqueue spends on a
	// transient device IO error before degrading the tenant: each turn
	// backs off, repairs the WAL in place, and re-appends. Zero selects
	// 3; negative disables inline retries (first error degrades).
	StorageRetries int
	// StorageRetryBackoff is the first retry's backoff (doubling each
	// turn, capped at 32×). Zero selects 5ms.
	StorageRetryBackoff time.Duration
	// DegradedProbeInterval is the degradation supervisor's probe
	// cadence: how often it tries to reopen fail-stopped WALs and write-
	// probe degraded tenants' devices. It doubles as the Retry-After
	// hint on degraded-shed responses. Zero selects 1s.
	DegradedProbeInterval time.Duration

	// ArchiveDir, when non-empty, routes events evicted by the
	// RetainEvents policy into a per-tenant on-disk archive (time-bucketed
	// JSONL segments with data-skipping sidecars) instead of discarding
	// them, queryable via Tenant.ArchiveQuery and GET /v1/{t}/archive.
	ArchiveDir string
	// ArchiveSegmentEvents rotates archive segments by record count
	// (default 512); ArchiveBucketQuanta by time span (default 1024).
	ArchiveSegmentEvents int
	ArchiveBucketQuanta  int
	// ArchiveBlockEvents sizes the record blocks inside v2 columnar
	// segments (default 256) — the unit of zone-map skipping and of
	// decode work. ArchiveBloomBitsPerKey sizes each sealed segment's
	// keyword Bloom filter proportionally to its record count (zero
	// keeps the legacy fixed 8192-bit filter).
	ArchiveBlockEvents     int
	ArchiveBloomBitsPerKey int
	// ArchiveCompactInterval, when positive, runs a background
	// compactor: every interval it performs at most one compaction step
	// per tenant — merging runs of small adjacent sealed segments or
	// rewriting a cold v1 JSONL segment into the v2 columnar format.
	// Zero disables background compaction (the archive stays readable;
	// cmd/serve -archive-migrate offers a one-shot rewrite instead).
	ArchiveCompactInterval time.Duration

	// RateLimit, when positive, caps each tenant's sustained ingest rate
	// in messages per second via a per-tenant token bucket. A batch that
	// exceeds the bucket is shed with a ShedError (HTTP 429 +
	// Retry-After) before the WAL or the queue ever see it. Zero
	// disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity in messages (how far a
	// tenant may briefly exceed RateLimit). Zero selects one second of
	// sustained rate.
	RateBurst int
	// AdmissionFrac, when in (0, 1], sheds ingest once a tenant's
	// backlog reaches this fraction of its hard queue bounds (QueueDepth
	// batches or QueueMessages messages) — load is turned away with a
	// retryable ShedError while the queue still has headroom, instead of
	// slamming into ErrQueueFull at the wall. Zero disables the gate.
	AdmissionFrac float64

	// ObsDisabled turns the telemetry layer off entirely: no stage
	// histograms, no slow-request ring, /metrics?format=prometheus
	// serves counters only. The default (false) enables it — the hot
	// path cost is two time.Time reads and a handful of atomic adds per
	// batch, and the memory cost ~41 KiB of histogram shards per tenant.
	ObsDisabled bool
	// TraceRingSize bounds the per-tenant slow-request trace ring (the N
	// slowest traced requests retained for GET /debug/requests). Zero
	// selects 64; negative disables request tracing while keeping the
	// stage histograms.
	TraceRingSize int
	// SlowRequestThreshold, when positive, only offers traces at least
	// this slow to the ring. Zero offers every traced request (the ring
	// keeps the slowest anyway).
	SlowRequestThreshold time.Duration

	// Workers sizes the shared scheduler's worker pool — the fixed set
	// of goroutines that apply every tenant's ingest batches, replacing
	// the old goroutine-per-tenant design. Zero selects GOMAXPROCS.
	Workers int
	// SnapshotRankHistory caps the rank-history entries carried into
	// each published epoch snapshot (newest kept). Zero keeps the full
	// history — bit-identical query responses, but snapshots of a
	// long-lived tenant copy O(quanta) floats per epoch; bound it for
	// unbounded streams.
	SnapshotRankHistory int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueMessages <= 0 {
		c.QueueMessages = 100000
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	c.FS = vfs.Default(c.FS)
	switch {
	case c.StorageRetries == 0:
		c.StorageRetries = 3
	case c.StorageRetries < 0:
		c.StorageRetries = 0
	}
	if c.StorageRetryBackoff <= 0 {
		c.StorageRetryBackoff = 5 * time.Millisecond
	}
	if c.DegradedProbeInterval <= 0 {
		c.DegradedProbeInterval = time.Second
	}
	return c
}

// TenantStats is the monitoring snapshot of one tenant.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Messages is the number of messages ingested over the tenant's
	// lifetime (it survives checkpoint/restore).
	Messages uint64 `json:"messages"`
	// Quanta is the index of the last processed quantum.
	Quanta int `json:"quanta"`
	// QueueDepth and QueueCap measure quantum lag: batches accepted but
	// not yet applied to the graph; QueuedMessages is the same backlog
	// in messages.
	QueueDepth     int   `json:"queue_depth"`
	QueueCap       int   `json:"queue_cap"`
	QueuedMessages int64 `json:"queued_messages"`
	// LiveEvents / TotalEvents count currently retained event
	// lifecycles; with RetainEvents set, TotalEvents is not monotonic
	// (trimmed finished events leave the count).
	LiveEvents  int `json:"live_events"`
	TotalEvents int `json:"total_events"`
	// AKGNodes / AKGEdges give the active graph size.
	AKGNodes int `json:"akg_nodes"`
	AKGEdges int `json:"akg_edges"`
	// ProcessMillis is the cumulative detector processing time this
	// process spent on the tenant; MsgsPerSec is Messages ingested this
	// process divided by that time — the pipeline rate of Section 7.2.
	ProcessMillis float64 `json:"process_millis"`
	MsgsPerSec    float64 `json:"msgs_per_sec"`
}

// EventView is the immutable JSON projection of a detect.Event. Its
// slices alias the source event's, so callers must pass events that are
// themselves immutable — epoch-snapshot views, or a detector that will
// not be mutated again (test references).
type EventView struct {
	ID            uint64    `json:"id"`
	State         string    `json:"state"`
	Keywords      []string  `json:"keywords"`
	Rank          float64   `json:"rank"`
	PeakRank      float64   `json:"peak_rank"`
	RankHistory   []float64 `json:"rank_history,omitempty"`
	BornQuantum   int       `json:"born_quantum"`
	LastQuantum   int       `json:"last_quantum"`
	Evolved       bool      `json:"evolved"`
	Size          int       `json:"size"`
	Support       int       `json:"support"`
	Reported      bool      `json:"reported"`
	FirstReported int       `json:"first_reported,omitempty"`
	MergedInto    uint64    `json:"merged_into,omitempty"`
	SplitFrom     uint64    `json:"split_from,omitempty"`
	Spurious      bool      `json:"spurious"`
}

func viewOf(ev *detect.Event) EventView {
	return EventView{
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      ev.Keywords,
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		RankHistory:   ev.RankHistory,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

func viewsOf(evs []*detect.Event) []EventView {
	out := make([]EventView, len(evs))
	for i, ev := range evs {
		out[i] = viewOf(ev)
	}
	return out
}

// walBatch is one queued work item — an ingest batch or a stream-flush
// marker — with its WAL sequence number (0 when the WAL is disabled).
// Flushes ride the queue so their order relative to batches matches
// the WAL's record order exactly; replay depends on that.
type walBatch struct {
	seq   uint64
	msgs  []stream.Message
	flush bool
	// enq is when the batch entered the queue, for the queue-wait
	// histogram; the zero value means telemetry is off.
	enq time.Time
}

// tenantStorage bundles one tenant's durability handles; fields are nil
// when the corresponding subsystem is disabled.
type tenantStorage struct {
	wal      *wal.Log
	arch     *archive.Log
	archErrs *atomic.Uint64 // archive append failures (events lost)
	walErrs  *atomic.Uint64 // snapshot/compaction failures
}

// attachEvict routes events evicted by detect.TrimFinished into the
// archive. The detector's cumulative trim counter is the record's
// eviction ordinal; the archive drops ordinals it already holds, which
// makes the hook idempotent across WAL replays. Must be registered
// before any replay so pre-crash evictions the archive lost (torn tail)
// self-heal.
func (s *tenantStorage) attachEvict(det *detect.Detector) {
	if s == nil || s.arch == nil {
		return
	}
	arch, errs := s.arch, s.archErrs
	det.SetOnEvict(func(ev *detect.Event) {
		if err := arch.Append(archiveRecord(det.Trimmed(), ev)); err != nil {
			errs.Add(1)
		}
	})
}

// archiveRecord projects an evicted event onto the archive's JSONL
// record shape, with seq as its eviction ordinal.
func archiveRecord(seq uint64, ev *detect.Event) archive.Record {
	all := make([]string, 0, len(ev.AllKeywords))
	for kw := range ev.AllKeywords {
		all = append(all, kw)
	}
	sort.Strings(all)
	return archive.Record{
		Seq:           seq,
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      append([]string(nil), ev.Keywords...),
		AllKeywords:   all,
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

// Tenant is one isolated detector: a bounded ingest queue drained by the
// pool's shared scheduler, the (single-threaded) detector it feeds, and
// an SSE broker for push notification.
//
// Reads are wait-free: after every quantum the apply step publishes an
// immutable epoch snapshot (detect.Snapshot) through an atomic pointer,
// and every query endpoint resolves against the latest snapshot without
// touching t.mu. The mutex has shrunk to the APPLY lock — it serialises
// batch application, WAL snapshot capture and shutdown checkpointing
// against each other, never against queries.
type Tenant struct {
	name   string
	broker *broker
	sched  *scheduler

	// obs is the tenant's telemetry handle: stage histograms plus the
	// slow-request ring. Nil when telemetry is disabled — every method
	// is nil-receiver safe, so instrumentation sites just call through.
	obs *obs.TenantObs

	// qmu guards the pending-batch queue, the closed flag, and WAL
	// appends (so WAL record order is queue order). It is never held
	// while a batch is applying, and is always acquired before the
	// scheduler's lock, never after. One deliberate exception to
	// "pointer work only": with WALSyncEvery ≥ 1 an Enqueue holds qmu
	// across its fsync, which can briefly delay this tenant's pop (and
	// the one scheduler worker turn that wanted it) — the price of
	// keeping the append-order/queue-order identity that replay needs.
	// Group commit removes that exception: the append under qmu is a
	// memory copy, and the durability wait (Log.Commit) happens after
	// qmu is released.
	qmu      sync.Mutex
	pending  []walBatch // FIFO; pendHead is the ring start
	pendHead int
	// inflightSeq is the WAL seq of the batch currently mid-apply (0 =
	// none); qmu held to read or write. A supervised reopen must not
	// discard a record whose batch is between pop and Commit — the
	// Commit has to observe the fail-stop, or a fresh record reusing
	// the seq could commit it spuriously.
	inflightSeq uint64
	maxDepth    int  // accepted-but-unapplied batch bound
	scheduled   bool // t is in the scheduler's runnable queue or mid-apply
	closed      bool
	drainDone   bool
	drained     chan struct{} // closed when closed and fully drained
	// runnableAt is when the tenant entered the scheduler's runnable
	// queue (zero once a worker picked it up, or when telemetry is off);
	// the delta feeds the sched-wait histogram.
	runnableAt time.Time

	// accepted counts batches admitted to the queue, applied counts
	// batches fully ingested; equal means the tenant is idle. queuedMsgs
	// tracks the backlog in messages, bounded by maxQueuedMsgs.
	accepted      atomic.Uint64
	applied       atomic.Uint64
	queuedMsgs    atomic.Int64
	maxQueuedMsgs int64

	// admit is the overload-protection state (nil when admission control
	// is off); the shed counters below feed the /metrics SLO surface.
	admit         *admission
	shedRateLimit atomic.Uint64 // batches shed by the token bucket
	shedQueue     atomic.Uint64 // batches shed by the queue-depth gate
	shedMsgs      atomic.Uint64 // messages across all shed batches

	retain int // finished-event retention cap (0 = unlimited)

	// Durability. lastApplied is the WAL seq of the last fully applied
	// batch — the only safe snapshot position. snapEvery is the snapshot
	// cadence in quanta; lastSnapQuantum tracks the quantum of the
	// newest snapshot for cadence and the snapshot-age metric (written
	// only by the apply step, read by /metrics).
	storage         *tenantStorage
	lastApplied     atomic.Uint64
	snapEvery       int
	lastSnapQuantum atomic.Int64

	// Storage-degradation state (see supervisor.go): health carries the
	// read-only degraded flag plus recovery counters; retryMax and
	// retryBackoff bound the inline retry loop on transient IO errors;
	// probeEvery is the supervisor cadence (the Retry-After hint on
	// degraded sheds); kick nudges the pool supervisor to probe now.
	health       tenantHealth
	retryMax     int
	retryBackoff time.Duration
	probeEvery   time.Duration
	kick         func()

	// Wait-free read state. snap is the latest epoch snapshot; lastEvent
	// the newest SSE payload (for catch-up); msgs mirrors det.Processed()
	// per applied message; elapsed/since feed the throughput stats.
	snap      atomic.Pointer[detect.Snapshot]
	lastEvent atomic.Pointer[StreamEvent]
	msgs      atomic.Uint64
	elapsed   atomic.Int64 // ns of detector time spent this process
	since     atomic.Uint64

	mu  sync.Mutex // the apply lock: guards det during apply/checkpoint
	det *detect.Detector
}

func newTenant(name string, det *detect.Detector, cfg PoolConfig, st *tenantStorage, sched *scheduler, tob *obs.TenantObs, kick func()) *Tenant {
	t := &Tenant{
		name:          name,
		broker:        newBroker(),
		sched:         sched,
		maxDepth:      cfg.QueueDepth,
		drained:       make(chan struct{}),
		det:           det,
		maxQueuedMsgs: int64(cfg.QueueMessages),
		retain:        cfg.RetainEvents,
		storage:       st,
		snapEvery:     cfg.SnapshotEvery,
		admit:         newAdmission(cfg, nil),
		obs:           tob,
		retryMax:      cfg.StorageRetries,
		retryBackoff:  cfg.StorageRetryBackoff,
		probeEvery:    cfg.DegradedProbeInterval,
		kick:          kick,
	}
	st.attachEvict(det)
	det.SetSnapshotRankHistory(cfg.SnapshotRankHistory)
	det.SetOnQuantum(func(res *detect.QuantumResult) {
		t.elapsed.Add(int64(res.Elapsed))
		o := t.obs
		if o != nil {
			// The quantum's wall time plus its sub-phases: tokenization
			// (which may have run on a pipeline worker), graph
			// maintenance, and event reconciliation.
			o.Observe(obs.StageDetectQuantum, res.PrepElapsed+res.Elapsed)
			o.Observe(obs.StageTokenize, res.PrepElapsed)
			o.Observe(obs.StageGraphMaintain, res.GraphElapsed)
			o.Observe(obs.StageReconcile, res.ReconcileElapsed)
		}
		// Publish the epoch snapshot before announcing the quantum over
		// SSE: a subscriber that reacts to the notification with a query
		// must observe at least this quantum.
		var t0 time.Time
		if o != nil {
			t0 = time.Now()
		}
		t.snap.Store(det.Snapshot(res))
		ev := &StreamEvent{
			Tenant:   name,
			Quantum:  res.Quantum,
			Reports:  res.Reports,
			Born:     res.Born,
			Ended:    res.Ended,
			Merged:   res.Merged,
			AKGNodes: res.AKGNodes,
			AKGEdges: res.AKGEdges,
		}
		t.lastEvent.Store(ev)
		var t1 time.Time
		if o != nil {
			t1 = time.Now()
			o.Observe(obs.StageSnapshotPublish, t1.Sub(t0))
		}
		t.broker.publish(ev)
		if o != nil {
			o.Observe(obs.StageSSEFanout, time.Since(t1))
		}
	})
	t.msgs.Store(det.Processed())
	// Queries may arrive before the first quantum (or right after a
	// restart): seed the snapshot from the detector's recovered state.
	t.snap.Store(det.Snapshot(nil))
	return t
}

// queueLenLocked returns the accepted-but-unapplied batch count; qmu held.
func (t *Tenant) queueLenLocked() int { return len(t.pending) - t.pendHead }

// queueLen is queueLenLocked for callers not holding qmu.
func (t *Tenant) queueLen() int {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	return t.queueLenLocked()
}

// pushLocked appends a batch and marks the tenant runnable; qmu held.
func (t *Tenant) pushLocked(b walBatch) {
	t.pending = append(t.pending, b)
	if !t.scheduled {
		t.scheduled = true
		if t.obs != nil {
			t.runnableAt = time.Now()
		}
		t.sched.submit(t)
	}
}

// popLocked removes and returns the head batch; qmu held, queue non-empty.
func (t *Tenant) popLocked() walBatch {
	b := t.pending[t.pendHead]
	t.pending[t.pendHead] = walBatch{} // release the msgs for GC
	t.pendHead++
	if t.pendHead == len(t.pending) {
		t.pending = t.pending[:0]
		t.pendHead = 0
	}
	return b
}

// finishDrainLocked closes drained once the tenant is closed, idle and
// empty; qmu held. Safe to call any number of times.
func (t *Tenant) finishDrainLocked() {
	if t.closed && !t.scheduled && t.queueLenLocked() == 0 && !t.drainDone {
		t.drainDone = true
		close(t.drained)
	}
}

// walLog / archLog are nil-safe storage accessors.
func (t *Tenant) walLog() *wal.Log {
	if t.storage == nil {
		return nil
	}
	return t.storage.wal
}

func (t *Tenant) archLog() *archive.Log {
	if t.storage == nil {
		return nil
	}
	return t.storage.arch
}

// runOne applies the tenant's next pending batch. Called by exactly one
// scheduler worker at a time (the scheduled flag guarantees it), so
// batches apply strictly in arrival order — which is WAL append order;
// replay depends on that. After the batch the tenant requeues itself at
// the scheduler's tail if more work is pending: one batch per turn is
// the round-robin fairness unit.
func (t *Tenant) runOne() {
	t.qmu.Lock()
	if !t.runnableAt.IsZero() {
		t.obs.Observe(obs.StageSchedWait, time.Since(t.runnableAt))
		t.runnableAt = time.Time{}
	}
	if t.queueLenLocked() == 0 {
		t.scheduled = false
		t.finishDrainLocked()
		t.qmu.Unlock()
		return
	}
	batch := t.popLocked()
	t.inflightSeq = batch.seq
	t.qmu.Unlock()

	t.apply(batch)

	t.qmu.Lock()
	t.inflightSeq = 0
	if t.queueLenLocked() > 0 {
		if t.obs != nil {
			t.runnableAt = time.Now()
		}
		t.sched.submit(t) // back of the line: other tenants go first
	} else {
		t.scheduled = false
		t.finishDrainLocked()
	}
	t.qmu.Unlock()
}

// apply ingests one batch (or flush marker) into the detector. The apply
// lock is taken per message, not per batch, so checkpointing never waits
// behind a large batch; queries don't take it at all — they read the
// epoch snapshot the quantum hook publishes.
func (t *Tenant) apply(batch walBatch) {
	if !batch.enq.IsZero() {
		// Queue wait: accepted (pushed) to picked up by a worker,
		// measured before the group-commit wait below — durability time
		// has its own histograms.
		t.obs.Observe(obs.StageQueueWait, time.Since(batch.enq))
	}
	if batch.seq > 0 {
		// Never apply a batch before its WAL record is durable. The
		// synchronous append path guarantees this by construction; under
		// group commit the record may still be in the in-process buffer,
		// and applying early would let side effects of the batch (archive
		// writes keyed by eviction ordinal, snapshots) reach disk for a
		// record a crash can still lose — recovery would then disagree
		// with the on-disk artifacts. If the commit failed (log
		// fail-stopped), the batch was never acknowledged: drop it
		// without touching the detector, keeping memory consistent with
		// what recovery will rebuild.
		if err := t.walLog().Commit(batch.seq); err != nil {
			t.queuedMsgs.Add(-int64(len(batch.msgs)))
			t.applied.Add(1)
			return
		}
	}
	if batch.flush {
		t.mu.Lock()
		t.det.Flush()
		t.mu.Unlock()
	}
	for _, m := range batch.msgs {
		t.mu.Lock()
		t.det.IngestAll(m)
		t.msgs.Store(t.det.Processed())
		t.mu.Unlock()
		t.since.Add(1)
	}
	if !batch.flush && t.retain > 0 {
		t.mu.Lock()
		if t.det.TrimFinished(t.retain) > 0 {
			// Trimming changed the retained history; republish so reads
			// observe it before the next quantum boundary. The quantum
			// has not advanced, so carry the previous epoch's lifecycle
			// deltas forward instead of wiping them.
			next := t.det.Snapshot(nil)
			if prev := t.snap.Load(); prev != nil && prev.Quantum == next.Quantum {
				next.Born, next.Ended, next.Merged = prev.Born, prev.Ended, prev.Merged
			}
			t.snap.Store(next)
		}
		t.mu.Unlock()
	}
	if batch.seq > 0 {
		t.lastApplied.Store(batch.seq)
	}
	t.maybeSnapshot()
	t.queuedMsgs.Add(-int64(len(batch.msgs)))
	t.applied.Add(1)
}

// maybeSnapshot checkpoints the detector into the WAL once enough quanta
// have passed since the last snapshot, then compaction (inside
// wal.Snapshot) drops the covered segments. It runs synchronously on
// the worker between batches — that is what makes lastApplied exactly
// name the state captured, and it deliberately paces ingest to
// snapshot IO at the cadence point. The state is deep-copied under the
// detector lock but encoded and written outside it, so *queries* (and
// WAL appends from Enqueue) proceed during the write; only this
// tenant's batch application waits.
func (t *Tenant) maybeSnapshot() {
	wl := t.walLog()
	if wl == nil || t.snapEvery <= 0 {
		return
	}
	t.mu.Lock()
	q := t.det.AKG().Quantum()
	if q-int(t.lastSnapQuantum.Load()) < t.snapEvery {
		t.mu.Unlock()
		return
	}
	st := t.det.State()
	t.mu.Unlock()
	err := wl.Snapshot(t.lastApplied.Load(), func(w io.Writer) error {
		return detect.EncodeState(&st, w)
	})
	if err != nil {
		if t.storage.walErrs != nil {
			t.storage.walErrs.Add(1)
		}
		// A failed snapshot is not fatal — the WAL still holds the full
		// history — but ENOSPC means the device is out of space and the
		// next append will fail too. Degrade proactively so ingest sheds
		// instead of burning retry budgets, and let the supervisor's
		// write probe decide when space is back.
		if vfs.Classify(err) == vfs.ClassNoSpace {
			t.enterDegraded(degradedNoSpace)
			if t.kick != nil {
				t.kick()
			}
		}
		return
	}
	if q > int(t.lastSnapQuantum.Load()) {
		t.lastSnapQuantum.Store(int64(q))
	}
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Enqueue hands a batch to the tenant's worker. It never blocks on
// other tenants: a full queue returns ErrQueueFull (the client should
// retry), a batch that could never fit even in an empty queue returns
// ErrBatchTooLarge (retrying is futile — the client must split it), and
// a shut-down tenant returns ErrClosed. With the WAL enabled the batch
// is durable before Enqueue returns: synchronously appended, or — under
// group commit — buffered and then awaited past the committer's next
// flush+fsync, which many concurrent Enqueues share. A group-commit
// flush failure fail-stops the tenant's log and the failed batch is
// dropped unapplied (see Tenant.apply), so a client retry can never
// double-log or double-apply it.
func (t *Tenant) Enqueue(msgs []stream.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	o := t.obs
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	t.qmu.Lock()
	if t.closed {
		t.qmu.Unlock()
		return ErrClosed
	}
	// Degraded tenants are read-only: shed before the admission gates so
	// a sick device never sees another write and the client gets the
	// supervisor's probe cadence as its Retry-After.
	if derr := t.DegradedCheck(); derr != nil {
		t.qmu.Unlock()
		return derr
	}
	if int64(len(msgs)) > t.maxQueuedMsgs {
		t.qmu.Unlock()
		return ErrBatchTooLarge
	}
	// Overload protection fires before the hard bounds and before the
	// WAL append — a shed batch must leave no trace anywhere. The
	// queue-depth gate turns load away while the queue still has
	// headroom (Retry-After estimated from the tenant's observed apply
	// rate); the token bucket caps the tenant's sustained message rate
	// and is checked last so a batch the queue would reject anyway never
	// burns tokens.
	if se := t.admit.checkQueueLocked(len(msgs), t.queueLenLocked(), t.maxDepth,
		t.queuedMsgs.Load(), t.maxQueuedMsgs); se != nil {
		se.RetryAfter = t.drainEstimate()
		t.shedQueue.Add(1)
		t.shedMsgs.Add(uint64(len(msgs)))
		t.qmu.Unlock()
		return se
	}
	if t.queuedMsgs.Load()+int64(len(msgs)) > t.maxQueuedMsgs {
		t.qmu.Unlock()
		return ErrQueueFull
	}
	// Admission must be decided before the WAL append: a batch logged
	// but then rejected would reappear at recovery as data the client
	// was told to retry. Only a scheduler worker pops, and only under
	// qmu, so a free slot observed here stays free until our push.
	if t.queueLenLocked() >= t.maxDepth {
		t.qmu.Unlock()
		return ErrQueueFull
	}
	if se := t.admit.checkRate(len(msgs)); se != nil {
		t.shedRateLimit.Add(1)
		t.shedMsgs.Add(uint64(len(msgs)))
		t.qmu.Unlock()
		return se
	}
	var t1 time.Time
	if o != nil {
		t1 = time.Now()
		o.Observe(obs.StageAdmission, t1.Sub(t0))
	}
	var seq uint64
	wl := t.walLog()
	if wl != nil {
		var err error
		if seq, err = wl.Append(msgs); err != nil {
			seq, err = t.retryAppend(wl, msgs, err)
		}
		if err != nil {
			t.qmu.Unlock()
			return t.failStorage(err)
		}
		if o != nil {
			now := time.Now()
			o.Observe(obs.StageWALAppend, now.Sub(t1))
			t1 = now
		}
	}
	t.pushLocked(walBatch{seq: seq, msgs: msgs, enq: t1})
	t.queuedMsgs.Add(int64(len(msgs)))
	t.accepted.Add(1)
	t.qmu.Unlock()
	// The durability wait happens outside qmu: it must not delay other
	// producers or this tenant's scheduler pop, and under group commit
	// the whole point is that many Enqueues wait on one fsync together.
	if wl != nil {
		if err := wl.Commit(seq); err != nil {
			// A commit failure fail-stopped the log; the batch was never
			// acked and will be dropped unapplied. The supervisor owns the
			// reopen — degrade now so the client's retry sheds cheaply
			// instead of fail-stopping again.
			return t.failStorage(err)
		}
		if o != nil {
			o.Observe(obs.StageWALCommit, time.Since(t1))
		}
	}
	return nil
}

// retryAppend is the inline storage-retry loop for transient device IO
// errors on the WAL append path: back off (capped exponential), repair
// the log in place (Reopen is a no-op when the failed append already
// rolled back cleanly), and re-append. A controller hiccup or a
// transient path error thus recovers without shedding a single request.
// Runs under qmu — the sleeps briefly hold up this tenant's producers,
// never another tenant's; with the default budget (3 turns from 5ms)
// the worst case is ~35ms. Only ClassIO errors are retried: ENOSPC
// cannot succeed until space frees, and logic errors never will.
func (t *Tenant) retryAppend(wl *wal.Log, msgs []stream.Message, err error) (uint64, error) {
	backoff := t.retryBackoff
	maxBackoff := 32 * t.retryBackoff
	for turn := 0; turn < t.retryMax; turn++ {
		if vfs.Classify(err) != vfs.ClassIO {
			return 0, err
		}
		t0 := time.Now()
		t.health.storageRetries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		var seq uint64
		if rerr := t.reopenWALLocked(wl); rerr != nil {
			err = rerr
		} else {
			seq, err = wl.Append(msgs)
		}
		t.obs.Observe(obs.StageStorageRetry, time.Since(t0))
		if err == nil {
			return seq, nil
		}
	}
	return 0, err
}

// failStorage is the terminal storage-error path for an ingest request:
// device conditions flip the tenant into read-only degraded mode (the
// supervisor is kicked to begin probing for recovery) and the request is
// shed with the DegradedError; anything else surfaces as a plain error.
func (t *Tenant) failStorage(err error) error {
	if derr := t.storageFailed(err); derr != err {
		if t.kick != nil {
			t.kick()
		}
		return derr
	}
	return fmt.Errorf("server: tenant %s: %w", t.name, err)
}

// drainEstimate estimates how long the tenant's current backlog takes
// to drain at its observed per-message apply rate — the Retry-After
// hint for queue-depth sheds. With no history yet (or an idle tenant)
// it falls back to one second, the header's floor anyway.
func (t *Tenant) drainEstimate() time.Duration {
	queued := t.queuedMsgs.Load()
	n := t.since.Load()
	if queued <= 0 || n == 0 {
		return time.Second
	}
	d := time.Duration(queued * (t.elapsed.Load() / int64(n)))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// ShedCheck applies the queue-depth admission gate without a batch in
// hand. The ingest handler calls it before decoding the request body,
// so an overloaded tenant sheds a flood at the cost of a map lookup and
// a mutex, not a 64 MiB JSON parse. Returns nil when ingest would
// currently be admitted (the gates in Enqueue remain authoritative).
func (t *Tenant) ShedCheck() *ShedError {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	se := t.admit.checkQueueLocked(0, t.queueLenLocked(), t.maxDepth,
		t.queuedMsgs.Load(), t.maxQueuedMsgs)
	if se != nil {
		se.RetryAfter = t.drainEstimate()
		t.shedQueue.Add(1)
	}
	return se
}

// ArchiveQuery serves the tenant's evicted-event history: records whose
// lifecycle intersects [from, to] quanta (to < 0 = unbounded), filtered
// by keyword when non-empty. The archive synchronises internally, so a
// long history scan never blocks this tenant's ingest.
func (t *Tenant) ArchiveQuery(from, to int, keyword string, limit int) ([]archive.Record, archive.QueryStats, error) {
	arch := t.archLog()
	if arch == nil {
		return nil, archive.QueryStats{}, ErrNoArchive
	}
	return arch.Query(from, to, keyword, limit)
}

// Query runs one unified time-travel query across the tenant's live
// epoch snapshot and its on-disk archive (when enabled), merged in
// deterministic (LastQuantum, ID) order with LIMIT pushdown into both
// sources. Wait-free against ingest on the snapshot side; the archive
// side snapshots segment metadata under the archive's own lock and
// scans append-only files without it.
func (t *Tenant) Query(req query.Request) (query.Result, error) {
	var arch query.Archive
	if l := t.archLog(); l != nil {
		arch = l
	}
	if req.ArchiveOnly && arch == nil {
		return query.Result{}, ErrNoArchive
	}
	o := t.obs
	req.Obs = o
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	res, err := query.Run(t.snap.Load(), arch, req)
	if o != nil {
		o.Observe(obs.StageQueryExec, time.Since(t0))
	}
	return res, err
}

// Obs returns the tenant's telemetry handle (nil when disabled).
func (t *Tenant) Obs() *obs.TenantObs { return t.obs }

// Flush forces processing of the tenant's buffered partial quantum (end
// of stream). A flush mutates the detector exactly like ingest does, so
// it is WAL-logged and queued behind every batch accepted before the
// call — order in the log is order of application, which replay relies
// on. Flush returns once the marker has been applied; ctx abandons the
// wait (e.g. the HTTP client disconnected), though an enqueued flush
// still executes.
func (t *Tenant) Flush(ctx context.Context) error {
	var target uint64
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		t.qmu.Lock()
		if t.closed {
			t.qmu.Unlock()
			return ErrClosed
		}
		if derr := t.DegradedCheck(); derr != nil {
			t.qmu.Unlock()
			return derr
		}
		if t.queueLenLocked() < t.maxDepth {
			var seq uint64
			wl := t.walLog()
			if wl != nil {
				s, err := wl.AppendFlush()
				if err != nil {
					t.qmu.Unlock()
					return t.failStorage(err)
				}
				seq = s
			}
			t.pushLocked(walBatch{seq: seq, flush: true})
			t.accepted.Add(1)
			target = t.accepted.Load()
			t.qmu.Unlock()
			if wl != nil {
				// Same durability contract as Enqueue under group commit.
				if err := wl.Commit(seq); err != nil {
					return t.failStorage(err)
				}
			}
			break
		}
		t.qmu.Unlock()
		// Queue full: wait for the apply step to make room rather than
		// failing — Flush's contract is to block until done.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	for t.applied.Load() < target {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// Snapshot returns the tenant's latest published epoch snapshot. Reads
// against it are wait-free; the contents are immutable.
func (t *Tenant) Snapshot() *detect.Snapshot { return t.snap.Load() }

// Events returns the tenant's events: the top-k live reported events by
// rank (k ≤ 0 means all) or, when all is set, every event ever tracked in
// birth order. Wait-free: resolved against the latest epoch snapshot.
func (t *Tenant) Events(k int, all bool) []EventView {
	snap := t.snap.Load()
	if all {
		return viewsOf(snap.AllEvents())
	}
	return viewsOf(snap.TopK(k))
}

// EventsKeyword returns the top-k live reported events whose current
// keyword set contains kw, resolved through the snapshot's inverted
// index.
func (t *Tenant) EventsKeyword(k int, kw string) []EventView {
	return viewsOf(t.snap.Load().TopKKeyword(k, kw))
}

// Event returns one event by ID.
func (t *Tenant) Event(id uint64) (EventView, bool) {
	if ev := t.snap.Load().Find(id); ev != nil {
		return viewOf(ev), true
	}
	return EventView{}, false
}

// Related returns live event pairs whose user communities overlap by at
// least minOverlap (the paper's same-event correlation post-processing).
// The pairwise overlaps were computed when the epoch snapshot was
// published, so this is a wait-free filter. Never nil, so the API serves
// [] rather than null.
func (t *Tenant) Related(minOverlap float64) []detect.RelatedPair {
	return t.snap.Load().Related(minOverlap)
}

// Stats returns the tenant's monitoring snapshot, assembled from the
// epoch snapshot and atomic counters — no lock shared with ingest.
func (t *Tenant) Stats() TenantStats {
	snap := t.snap.Load()
	s := TenantStats{
		Tenant:         t.name,
		Messages:       t.msgs.Load(),
		LiveEvents:     snap.LiveCount(),
		TotalEvents:    snap.TotalCount(),
		AKGNodes:       snap.AKGNodes,
		AKGEdges:       snap.AKGEdges,
		QueueDepth:     t.queueLen(),
		QueuedMessages: t.queuedMsgs.Load(),
		QueueCap:       t.maxDepth,
		Quanta:         snap.Quantum,
		ProcessMillis:  float64(t.elapsed.Load()) / float64(time.Millisecond),
	}
	if e := time.Duration(t.elapsed.Load()); e > 0 {
		s.MsgsPerSec = float64(t.since.Load()) / e.Seconds()
	}
	return s
}

// shutdown stops ingest, waits (bounded by ctx) for the scheduler to
// drain the tenant's pending batches, and closes the broker. Safe to
// call more than once.
func (t *Tenant) shutdown(ctx context.Context) error {
	t.qmu.Lock()
	t.closed = true
	t.finishDrainLocked()
	t.qmu.Unlock()
	var err error
	select {
	case <-t.drained:
	case <-ctx.Done():
		err = fmt.Errorf("server: tenant %s: drain: %w", t.name, ctx.Err())
	}
	t.broker.close()
	return err
}

// Pool manages the tenants of one serving process.
type Pool struct {
	cfg   PoolConfig
	ckpt  *checkpointStore    // nil when persistence is disabled
	sched *scheduler          // shared worker pool applying every tenant's batches
	gc    *wal.GroupCommitter // nil unless WALGroupCommitInterval is set
	tel   *obs.Telemetry      // nil when ObsDisabled
	fs    vfs.FS              // the storage layers' filesystem (never nil)

	mu      sync.RWMutex
	tenants map[string]*Tenant
	// creating holds an in-flight latch per tenant name being built
	// outside the lock (WAL recovery can be slow); the channel closes
	// when the build finishes, successfully or not.
	creating map[string]chan struct{}
	closed   bool // refuses new tenants (set by BeginShutdown)

	// shutdownOnce guards the drain+checkpoint pass; shutdownDone is
	// closed when it finishes so concurrent Shutdown callers wait for
	// completion instead of returning success early.
	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error

	// Background archive compactor lifecycle: nil channels when the
	// compactor is disabled; compactOff makes stopCompactor idempotent.
	compactStop chan struct{}
	compactDone chan struct{}
	compactOff  sync.Once

	// Degradation supervisor lifecycle (see supervisor.go): nil channels
	// when the supervisor never started (no WAL); superviseKick nudges it
	// to probe now; superviseOff makes stopSupervisor idempotent.
	superviseStop chan struct{}
	superviseKick chan struct{}
	superviseDone chan struct{}
	superviseOff  sync.Once
}

// NewPool builds a pool and restores tenants from disk: first by WAL
// recovery (snapshot + tail replay — survives crashes), then from
// clean-shutdown checkpoints for tenants without a WAL directory.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:          cfg,
		sched:        newScheduler(cfg.Workers),
		tenants:      make(map[string]*Tenant),
		creating:     make(map[string]chan struct{}),
		shutdownDone: make(chan struct{}),
		fs:           cfg.FS,
	}
	if !cfg.ObsDisabled {
		p.tel = obs.New(obs.Config{
			TraceRingSize: cfg.TraceRingSize,
			SlowRequest:   cfg.SlowRequestThreshold,
		})
	}
	if cfg.WALDir != "" && cfg.WALGroupCommitInterval > 0 {
		p.gc = wal.NewGroupCommitter(cfg.WALGroupCommitInterval)
	}
	abandon := func() {
		// Don't leak scheduler workers, the group committer, or tenants
		// already restored. (The compactor and supervisor start only
		// after restore succeeds, so stopping them here is a no-op
		// safety net.)
		p.stopSupervisor()
		p.stopCompactor()
		//repro:order-insensitive independent per-tenant shutdowns during abandoned startup; order is immaterial
		for _, t := range p.tenants {
			t.shutdown(context.Background()) //nolint:errcheck // empty queues drain instantly
		}
		p.sched.stop(true)
		p.gc.Stop()
	}
	if cfg.CheckpointDir != "" {
		store, err := newCheckpointStore(cfg.CheckpointDir, cfg.FS)
		if err != nil {
			return nil, err
		}
		p.ckpt = store
	}
	if cfg.WALDir != "" {
		if err := p.fs.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: wal dir: %w", err)
		}
		entries, err := p.fs.ReadDir(cfg.WALDir)
		if err != nil {
			return nil, fmt.Errorf("server: list wal dir: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
				continue
			}
			t, err := p.recoverTenant(e.Name())
			if err != nil {
				abandon()
				return nil, err
			}
			p.tenants[e.Name()] = t
		}
	}
	if p.ckpt != nil {
		names, err := p.ckpt.List()
		if err != nil {
			abandon()
			return nil, err
		}
		for _, name := range names {
			if !tenantNameRE.MatchString(name) {
				// A stray file (backup copy, editor droppings) would
				// otherwise become a zombie tenant no route can reach.
				continue
			}
			if existing, ok := p.tenants[name]; ok {
				// The WAL is usually at least as new as the shutdown
				// checkpoint — but if the server ran for a while with the
				// WAL disabled, the checkpoint can be ahead. Prefer
				// whichever processed more of the stream instead of
				// silently rewinding the tenant.
				det, err := p.ckpt.Load(name)
				if err != nil {
					abandon()
					return nil, err
				}
				if det == nil {
					continue
				}
				existing.mu.Lock()
				cur := existing.det.Processed()
				existing.mu.Unlock()
				if det.Processed() <= cur {
					continue
				}
				existing.shutdown(context.Background()) //nolint:errcheck // empty queue drains instantly
				st := existing.storage
				if st.wal != nil {
					// Re-seed the WAL from the newer checkpoint; the
					// records it held are superseded and compacted away.
					if err := st.wal.Snapshot(st.wal.LastSeq(), det.Save); err != nil {
						abandon()
						return nil, err
					}
				}
				t := newTenant(name, det, cfg, st, p.sched, p.tenantObs(name), p.kickSupervisor)
				if st.wal != nil {
					t.lastApplied.Store(st.wal.LastSeq())
				}
				t.lastSnapQuantum.Store(int64(det.AKG().Quantum()))
				p.tenants[name] = t
				continue
			}
			det, err := p.ckpt.Load(name)
			if err != nil {
				abandon()
				return nil, err
			}
			if det == nil {
				// Checkpoint vanished between List and Load (concurrent
				// cleanup); skip rather than panic on a nil detector.
				continue
			}
			st, err := p.openStorage(name)
			if err != nil {
				abandon()
				return nil, err
			}
			if st.wal != nil {
				// Base the fresh WAL on the checkpointed state: without
				// this, a crash before the first cadence snapshot would
				// replay the tail onto an empty detector.
				if err := st.wal.Snapshot(st.wal.LastSeq(), det.Save); err != nil {
					st.close()
					abandon()
					return nil, err
				}
			}
			t := newTenant(name, det, cfg, st, p.sched, p.tenantObs(name), p.kickSupervisor)
			t.lastApplied.Store(0)
			t.lastSnapQuantum.Store(int64(det.AKG().Quantum()))
			p.tenants[name] = t
		}
	}
	if cfg.ArchiveDir != "" && cfg.ArchiveCompactInterval > 0 {
		p.compactStop = make(chan struct{})
		p.compactDone = make(chan struct{})
		go p.compactLoop()
	}
	if cfg.WALDir != "" {
		// The degradation supervisor only has work when a WAL exists to
		// reopen and a device to probe; without one, storage errors are
		// limited to checkpoints/archives and stay on their error paths.
		p.superviseStop = make(chan struct{})
		p.superviseKick = make(chan struct{}, 1)
		p.superviseDone = make(chan struct{})
		go p.superviseLoop()
	}
	return p, nil
}

// compactLoop is the background archive compactor: each tick it takes
// one compaction step per tenant (merge a run of small sealed segments,
// or rewrite one cold v1 segment to the v2 columnar format). One step
// per tick bounds the IO burst a tick can cause; an idle archive makes
// the step a no-op. Failures count into the tenant's archive error
// counter and the loop moves on — compaction is an optimization, never
// a correctness requirement.
func (p *Pool) compactLoop() {
	defer close(p.compactDone)
	tick := time.NewTicker(p.cfg.ArchiveCompactInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.compactStop:
			return
		case <-tick.C:
		}
		for _, t := range p.tenantsSorted() {
			select {
			case <-p.compactStop:
				return
			default:
			}
			ar := t.archLog()
			if ar == nil {
				continue
			}
			start := time.Now()
			_, worked, err := ar.CompactOnce()
			if err != nil {
				t.storage.archErrs.Add(1)
				continue
			}
			if worked {
				t.obs.Observe(obs.StageArchiveCompact, time.Since(start))
			}
		}
	}
}

// stopCompactor halts the background compactor and waits for any
// in-flight step to finish; safe to call multiple times and when the
// compactor was never started. Must run before tenant archives close so
// a step never races a Close.
func (p *Pool) stopCompactor() {
	if p.compactStop == nil {
		return
	}
	p.compactOff.Do(func() { close(p.compactStop) })
	<-p.compactDone
}

// tenantObs resolves (creating on first use) the named tenant's
// telemetry handle; nil when telemetry is disabled.
func (p *Pool) tenantObs(name string) *obs.TenantObs {
	return p.tel.Tenant(name)
}

// openStorage opens (creating as needed) one tenant's WAL and archive
// handles; disabled subsystems yield nil fields.
func (p *Pool) openStorage(name string) (*tenantStorage, error) {
	st := &tenantStorage{archErrs: new(atomic.Uint64), walErrs: new(atomic.Uint64)}
	if p.cfg.WALDir != "" {
		var onFlush func(time.Duration)
		if tob := p.tenantObs(name); tob != nil {
			onFlush = func(d time.Duration) { tob.Observe(obs.StageWALFsync, d) }
		}
		wl, err := wal.Open(filepath.Join(p.cfg.WALDir, name), wal.Options{
			SegmentBytes: p.cfg.WALSegmentBytes,
			SyncEvery:    p.cfg.WALSyncEvery,
			GroupCommit:  p.gc,
			OnFlush:      onFlush,
			FS:           p.fs,
		})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		st.wal = wl
	}
	if p.cfg.ArchiveDir != "" {
		ar, err := archive.Open(filepath.Join(p.cfg.ArchiveDir, name), archive.Options{
			SegmentEvents:   p.cfg.ArchiveSegmentEvents,
			BucketQuanta:    p.cfg.ArchiveBucketQuanta,
			BlockEvents:     p.cfg.ArchiveBlockEvents,
			BloomBitsPerKey: p.cfg.ArchiveBloomBitsPerKey,
			FS:              p.fs,
		})
		if err != nil {
			if st.wal != nil {
				st.wal.Close() //nolint:errcheck // already failing
			}
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		st.arch = ar
	}
	return st, nil
}

// close releases the storage handles (error-path cleanup).
func (s *tenantStorage) close() {
	if s.wal != nil {
		s.wal.Close() //nolint:errcheck // best effort
	}
	if s.arch != nil {
		s.arch.Close() //nolint:errcheck // best effort
	}
}

// recoverTenant rebuilds one tenant from its WAL directory: load the
// latest snapshot (or start empty), then replay the segment tail
// through the detector exactly as the worker would have applied it.
// Determinism makes the result bit-identical to the pre-crash state;
// the eviction hook is attached before replay so events the archive
// already holds are deduplicated by ordinal while any it lost to a torn
// tail are re-archived.
func (p *Pool) recoverTenant(name string) (*Tenant, error) {
	st, err := p.openStorage(name)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Tenant, error) {
		st.close()
		return nil, fmt.Errorf("server: recover tenant %s: %w", name, err)
	}
	var det *detect.Detector
	r, snapSeq, err := st.wal.LatestSnapshot()
	if err != nil {
		return fail(err)
	}
	if r != nil {
		det, err = detect.Load(r)
		r.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		det = detect.New(p.cfg.Detector)
	}
	baseQuantum := det.AKG().Quantum()
	st.attachEvict(det)
	if err := st.wal.Replay(snapSeq, func(seq uint64, msgs []stream.Message, flush bool) error {
		// Mirror the worker exactly: flush markers flush, batches apply
		// per message then trim.
		if flush {
			det.Flush()
			return nil
		}
		for _, m := range msgs {
			det.IngestAll(m)
		}
		if p.cfg.RetainEvents > 0 {
			det.TrimFinished(p.cfg.RetainEvents)
		}
		return nil
	}); err != nil {
		return fail(err)
	}
	t := newTenant(name, det, p.cfg, st, p.sched, p.tenantObs(name), p.kickSupervisor)
	t.lastApplied.Store(st.wal.LastSeq())
	t.lastSnapQuantum.Store(int64(baseQuantum))
	// If the tail replay crossed a snapshot cadence, snapshot now so a
	// crash loop cannot make recovery cost grow without bound.
	t.maybeSnapshot()
	return t, nil
}

// Tenant returns an existing tenant.
func (p *Pool) Tenant(name string) (*Tenant, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.tenants[name]
	return t, ok
}

// TenantCount returns the number of tenants without copying names.
func (p *Pool) TenantCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.tenants)
}

// CanCreate cheaply pre-checks whether a new tenant could be admitted
// right now. Racy by nature (the answer can change before GetOrCreate),
// but lets handlers shed guaranteed-rejected ingest before paying to
// decode a large body; GetOrCreate remains the authoritative gate.
func (p *Pool) CanCreate() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if len(p.tenants) >= p.cfg.MaxTenants {
		return ErrMaxTenants
	}
	return nil
}

// GetOrCreate returns the named tenant, creating it with the pool's
// detector configuration on first use. The build itself — which with a
// WAL configured may mean recovering leftovers of a pool that died
// mid-create, snapshot load and tail replay included — runs outside the
// pool lock behind a per-name latch, so one tenant's recovery never
// freezes every other tenant's requests.
func (p *Pool) GetOrCreate(name string) (*Tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, ErrBadTenant
	}
	for {
		p.mu.RLock()
		t, ok := p.tenants[name]
		closed := p.closed
		p.mu.RUnlock()
		if ok {
			return t, nil
		}
		if closed {
			return nil, ErrClosed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if t, ok := p.tenants[name]; ok {
			p.mu.Unlock()
			return t, nil
		}
		if wait, busy := p.creating[name]; busy {
			// Another request is already building this tenant: wait for
			// it to finish either way, then retry the lookup.
			p.mu.Unlock()
			<-wait
			continue
		}
		if len(p.tenants)+len(p.creating) >= p.cfg.MaxTenants {
			p.mu.Unlock()
			return nil, ErrMaxTenants
		}
		done := make(chan struct{})
		p.creating[name] = done
		p.mu.Unlock()

		t, err := p.buildTenant(name)

		p.mu.Lock()
		delete(p.creating, name)
		close(done)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if p.closed {
			// Shutdown began while we were building: the new tenant was
			// never published, so BeginShutdown could not reach it.
			p.mu.Unlock()
			t.shutdown(context.Background()) //nolint:errcheck // empty queue drains instantly
			t.storage.close()
			return nil, ErrClosed
		}
		p.tenants[name] = t
		p.mu.Unlock()
		return t, nil
	}
}

// buildTenant constructs one tenant without holding the pool lock.
func (p *Pool) buildTenant(name string) (*Tenant, error) {
	if p.cfg.WALDir != "" {
		// recoverTenant handles both a genuinely new tenant (empty WAL
		// directory) and leftovers of one whose pool died mid-create.
		return p.recoverTenant(name)
	}
	st, err := p.openStorage(name)
	if err != nil {
		return nil, err
	}
	return newTenant(name, detect.New(p.cfg.Detector), p.cfg, st, p.sched, p.tenantObs(name), p.kickSupervisor), nil
}

// Names returns the tenant names, sorted.
func (p *Pool) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortTenants(tenants []*Tenant) {
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
}

// Stats returns every tenant's monitoring snapshot, sorted by name.
func (p *Pool) Stats() []TenantStats {
	p.mu.RLock()
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.RUnlock()
	sortTenants(tenants)
	out := make([]TenantStats, len(tenants))
	for i, t := range tenants {
		out[i] = t.Stats()
	}
	return out
}

// BeginShutdown makes the pool refuse new tenants and ends every
// tenant's SSE stream, without draining anything yet. Server.Shutdown
// calls it before draining HTTP: http.Server.Shutdown waits for
// connections to go idle, and an SSE subscriber never goes idle on its
// own — without this the drain (and therefore checkpointing) stalls for
// the whole grace period behind a single connected client. Refusing new
// tenants first closes the race where a tenant created mid-drain gets a
// fresh broker that a late subscriber could hang the drain on.
// Idempotent; returns the tenants present at shutdown, name-sorted.
func (p *Pool) BeginShutdown() []*Tenant {
	p.mu.Lock()
	p.closed = true
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.Unlock()
	sortTenants(tenants)
	for _, t := range tenants {
		t.broker.close()
	}
	return tenants
}

// Shutdown stops ingest on every tenant, drains their queues (bounded by
// ctx), and — when persistence is enabled — checkpoints each detector.
// The first error is returned, but every tenant is still processed.
// Concurrent calls block until the shutdown pass completes (bounded by
// their own ctx) rather than reporting success while it is in flight.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.shutdownOnce.Do(func() {
		defer close(p.shutdownDone)
		// Stop the supervisor before anything closes: a probe's Reopen
		// racing a WAL Close would resurrect file handles Shutdown just
		// released. Then the compactor, before any archive closes: a
		// compaction step racing ar.Close would splice segments into a
		// log whose files are gone.
		p.stopSupervisor()
		p.stopCompactor()
		tenants := p.BeginShutdown()
		var first error
		drainFailed := false
		for _, t := range tenants {
			derr := t.shutdown(ctx)
			if derr != nil {
				drainFailed = true
				if first == nil {
					first = derr
				}
			}
			if p.ckpt != nil {
				t.mu.Lock()
				err := p.ckpt.Save(t.name, t.det)
				t.mu.Unlock()
				if err != nil && first == nil {
					first = err
				}
			}
			if derr != nil {
				// The worker may still be applying a batch; touching the
				// WAL now could pair partially-applied state with a
				// pre-batch log position. Leave the log as-is — that is
				// exactly the crash case recovery replays correctly.
				continue
			}
			if wl := t.walLog(); wl != nil {
				t.mu.Lock()
				err := wl.Snapshot(t.lastApplied.Load(), t.det.Save)
				t.mu.Unlock()
				if cerr := wl.Close(); err == nil {
					err = cerr
				}
				if err != nil && first == nil {
					first = err
				}
			}
			if ar := t.archLog(); ar != nil {
				t.mu.Lock()
				err := ar.Close()
				t.mu.Unlock()
				if err != nil && first == nil {
					first = err
				}
			}
		}
		// Every tenant is closed, so the runnable queue stays empty; stop
		// the shared workers. If a drain timed out, a worker may be wedged
		// inside its apply step — don't wait on it, exactly as the old
		// per-tenant goroutine was abandoned in that case. The group
		// committer stops last: every log was flushed on Close above, and
		// a straggler append after Stop degrades to a synchronous flush.
		p.sched.stop(!drainFailed)
		p.gc.Stop()
		p.shutdownErr = first
	})
	// Completed-shutdown fast path first: with both channels ready the
	// select below picks randomly, which would report a spurious
	// in-progress error to a caller arriving with an expired ctx.
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	default:
	}
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown in progress: %w", ctx.Err())
	}
}
