// Package server is the HTTP/JSON serving subsystem: a multi-tenant pool
// of streaming detectors behind ingest, query, and SSE push endpoints,
// with checkpoint-on-shutdown persistence so restarts resume the stream
// bit-identically. See docs/ARCHITECTURE.md for the design.
package server

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/stream"
)

// Errors surfaced to handlers (mapped onto HTTP status codes there).
var (
	ErrQueueFull     = errors.New("server: ingest queue full")
	ErrBatchTooLarge = errors.New("server: batch exceeds the queue's message bound; split it")
	ErrClosed        = errors.New("server: pool shut down")
	ErrBadTenant     = errors.New("server: invalid tenant name")
	ErrNoTenant      = errors.New("server: unknown tenant")
	ErrMaxTenants    = errors.New("server: tenant limit reached")
)

// tenantNameRE keeps tenant names URL- and filename-safe.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// PoolConfig configures a detector pool.
type PoolConfig struct {
	// Detector is the configuration every new tenant's detector gets.
	// Restored tenants keep the configuration frozen in their checkpoint.
	Detector detect.Config
	// QueueDepth bounds each tenant's ingest queue in batches (one POST
	// body = one batch). Zero selects 64. A full queue rejects ingest
	// with ErrQueueFull — backpressure, never unbounded memory.
	QueueDepth int
	// QueueMessages bounds the total messages buffered across queued
	// batches — the actual memory bound, since one batch can hold a
	// whole POST body. Zero selects 100000.
	QueueMessages int
	// RetainEvents, when positive, caps the finished-event history kept
	// per tenant (oldest trimmed first; live events are never dropped).
	// Zero keeps everything — fine for bounded experiments, not for a
	// long-lived tenant, whose history otherwise grows forever.
	RetainEvents int
	// CheckpointDir, when non-empty, enables persistence: tenants with a
	// checkpoint are restored on pool start and every tenant is
	// checkpointed on Shutdown.
	CheckpointDir string
	// MaxTenants bounds the number of tenants. Zero selects 1024.
	MaxTenants int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueMessages <= 0 {
		c.QueueMessages = 100000
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	return c
}

// TenantStats is the monitoring snapshot of one tenant.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Messages is the number of messages ingested over the tenant's
	// lifetime (it survives checkpoint/restore).
	Messages uint64 `json:"messages"`
	// Quanta is the index of the last processed quantum.
	Quanta int `json:"quanta"`
	// QueueDepth and QueueCap measure quantum lag: batches accepted but
	// not yet applied to the graph; QueuedMessages is the same backlog
	// in messages.
	QueueDepth     int   `json:"queue_depth"`
	QueueCap       int   `json:"queue_cap"`
	QueuedMessages int64 `json:"queued_messages"`
	// LiveEvents / TotalEvents count currently retained event
	// lifecycles; with RetainEvents set, TotalEvents is not monotonic
	// (trimmed finished events leave the count).
	LiveEvents  int `json:"live_events"`
	TotalEvents int `json:"total_events"`
	// AKGNodes / AKGEdges give the active graph size.
	AKGNodes int `json:"akg_nodes"`
	AKGEdges int `json:"akg_edges"`
	// ProcessMillis is the cumulative detector processing time this
	// process spent on the tenant; MsgsPerSec is Messages ingested this
	// process divided by that time — the pipeline rate of Section 7.2.
	ProcessMillis float64 `json:"process_millis"`
	MsgsPerSec    float64 `json:"msgs_per_sec"`
}

// EventView is the immutable JSON projection of a detect.Event, safe to
// hand out after the detector lock is released.
type EventView struct {
	ID            uint64    `json:"id"`
	State         string    `json:"state"`
	Keywords      []string  `json:"keywords"`
	Rank          float64   `json:"rank"`
	PeakRank      float64   `json:"peak_rank"`
	RankHistory   []float64 `json:"rank_history,omitempty"`
	BornQuantum   int       `json:"born_quantum"`
	LastQuantum   int       `json:"last_quantum"`
	Evolved       bool      `json:"evolved"`
	Size          int       `json:"size"`
	Support       int       `json:"support"`
	Reported      bool      `json:"reported"`
	FirstReported int       `json:"first_reported,omitempty"`
	MergedInto    uint64    `json:"merged_into,omitempty"`
	SplitFrom     uint64    `json:"split_from,omitempty"`
	Spurious      bool      `json:"spurious"`
}

func viewOf(ev *detect.Event) EventView {
	return EventView{
		ID:            ev.ID,
		State:         ev.State.String(),
		Keywords:      append([]string(nil), ev.Keywords...),
		Rank:          ev.Rank,
		PeakRank:      ev.PeakRank,
		RankHistory:   append([]float64(nil), ev.RankHistory...),
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Evolved:       ev.Evolved,
		Size:          ev.Size,
		Support:       ev.Support,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Spurious:      ev.Spurious(),
	}
}

func viewsOf(evs []*detect.Event) []EventView {
	out := make([]EventView, len(evs))
	for i, ev := range evs {
		out[i] = viewOf(ev)
	}
	return out
}

// Tenant is one isolated detector: a bounded ingest queue drained by a
// dedicated goroutine, the (single-threaded) detector it feeds, and an
// SSE broker for push notification. Queries copy state under the
// detector lock; they never touch live detector internals afterwards.
type Tenant struct {
	name   string
	broker *broker

	qmu     sync.Mutex // guards queue close vs. enqueue
	queue   chan []stream.Message
	closed  bool
	drained chan struct{} // closed when the worker has exited

	// accepted counts batches admitted to the queue, applied counts
	// batches fully ingested; equal means the tenant is idle. queuedMsgs
	// tracks the backlog in messages, bounded by maxQueuedMsgs.
	accepted      atomic.Uint64
	applied       atomic.Uint64
	queuedMsgs    atomic.Int64
	maxQueuedMsgs int64

	retain int // finished-event retention cap (0 = unlimited)

	mu      sync.Mutex // guards det and the elapsed counters
	det     *detect.Detector
	elapsed time.Duration // detector time spent this process
	since   uint64        // messages ingested this process
}

func newTenant(name string, det *detect.Detector, cfg PoolConfig) *Tenant {
	t := &Tenant{
		name:          name,
		broker:        newBroker(),
		queue:         make(chan []stream.Message, cfg.QueueDepth),
		drained:       make(chan struct{}),
		det:           det,
		maxQueuedMsgs: int64(cfg.QueueMessages),
		retain:        cfg.RetainEvents,
	}
	det.SetOnQuantum(func(res *detect.QuantumResult) {
		t.elapsed += res.Elapsed
		t.broker.publish(&StreamEvent{
			Tenant:   name,
			Quantum:  res.Quantum,
			Reports:  res.Reports,
			Born:     res.Born,
			Ended:    res.Ended,
			Merged:   res.Merged,
			AKGNodes: res.AKGNodes,
			AKGEdges: res.AKGEdges,
		})
	})
	go t.work()
	return t
}

// work drains the ingest queue until it is closed. Messages are applied
// strictly in arrival order; the detector's own push hook notifies the
// broker at every quantum boundary. The lock is taken per message, not
// per batch, so query endpoints interleave with ingest instead of
// stalling behind a large batch.
func (t *Tenant) work() {
	defer close(t.drained)
	for batch := range t.queue {
		for _, m := range batch {
			t.mu.Lock()
			t.det.IngestAll(m)
			t.since++
			t.mu.Unlock()
		}
		if t.retain > 0 {
			t.mu.Lock()
			t.det.TrimFinished(t.retain)
			t.mu.Unlock()
		}
		t.queuedMsgs.Add(-int64(len(batch)))
		t.applied.Add(1)
	}
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Enqueue hands a batch to the tenant's worker. It never blocks: a full
// queue returns ErrQueueFull (the client should retry), a batch that
// could never fit even in an empty queue returns ErrBatchTooLarge
// (retrying is futile — the client must split it), and a shut-down
// tenant returns ErrClosed.
func (t *Tenant) Enqueue(msgs []stream.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if int64(len(msgs)) > t.maxQueuedMsgs {
		return ErrBatchTooLarge
	}
	if t.queuedMsgs.Load()+int64(len(msgs)) > t.maxQueuedMsgs {
		return ErrQueueFull
	}
	select {
	case t.queue <- msgs:
		t.queuedMsgs.Add(int64(len(msgs)))
		t.accepted.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Flush forces processing of the tenant's buffered partial quantum (end
// of stream). It first waits for every batch accepted before the call to
// be applied, so the flush observes the whole accepted stream; ctx
// abandons the wait (e.g. the HTTP client disconnected).
func (t *Tenant) Flush(ctx context.Context) error {
	target := t.accepted.Load()
	if t.applied.Load() < target {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for t.applied.Load() < target {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick.C:
			}
		}
	}
	t.mu.Lock()
	t.det.Flush()
	t.mu.Unlock()
	return nil
}

// Events returns the tenant's events: the top-k live reported events by
// rank (k ≤ 0 means all) or, when all is set, every event ever tracked in
// birth order.
func (t *Tenant) Events(k int, all bool) []EventView {
	t.mu.Lock()
	defer t.mu.Unlock()
	if all {
		return viewsOf(t.det.AllEvents())
	}
	return viewsOf(t.det.TopK(k))
}

// Event returns one event by ID.
func (t *Tenant) Event(id uint64) (EventView, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev := t.det.FindEvent(id); ev != nil {
		return viewOf(ev), true
	}
	return EventView{}, false
}

// Related returns live event pairs whose user communities overlap by at
// least minOverlap (the paper's same-event correlation post-processing).
// Never nil, so the API serves [] rather than null.
func (t *Tenant) Related(minOverlap float64) []detect.RelatedPair {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]detect.RelatedPair{}, t.det.RelatedEvents(minOverlap)...)
}

// Stats returns the tenant's monitoring snapshot.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TenantStats{
		Tenant:         t.name,
		Messages:       t.det.Processed(),
		LiveEvents:     t.det.LiveCount(),
		TotalEvents:    t.det.TotalCount(),
		AKGNodes:       t.det.AKG().NodeCount(),
		AKGEdges:       t.det.AKG().EdgeCount(),
		QueueDepth:     len(t.queue),
		QueuedMessages: t.queuedMsgs.Load(),
		QueueCap:       cap(t.queue),
		Quanta:         t.det.AKG().Quantum(),
		ProcessMillis:  float64(t.elapsed) / float64(time.Millisecond),
	}
	if t.elapsed > 0 {
		s.MsgsPerSec = float64(t.since) / t.elapsed.Seconds()
	}
	return s
}

// shutdown stops ingest, waits (bounded by ctx) for the worker to drain,
// and closes the broker. Safe to call once.
func (t *Tenant) shutdown(ctx context.Context) error {
	t.qmu.Lock()
	if !t.closed {
		t.closed = true
		close(t.queue)
	}
	t.qmu.Unlock()
	var err error
	select {
	case <-t.drained:
	case <-ctx.Done():
		err = fmt.Errorf("server: tenant %s: drain: %w", t.name, ctx.Err())
	}
	t.broker.close()
	return err
}

// Pool manages the tenants of one serving process.
type Pool struct {
	cfg  PoolConfig
	ckpt *checkpointStore // nil when persistence is disabled

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool // refuses new tenants (set by BeginShutdown)

	// shutdownOnce guards the drain+checkpoint pass; shutdownDone is
	// closed when it finishes so concurrent Shutdown callers wait for
	// completion instead of returning success early.
	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error
}

// NewPool builds a pool and, when a checkpoint directory is configured,
// restores every tenant found there so their streams resume exactly
// where the previous process stopped.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:          cfg,
		tenants:      make(map[string]*Tenant),
		shutdownDone: make(chan struct{}),
	}
	if cfg.CheckpointDir != "" {
		store, err := newCheckpointStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		p.ckpt = store
		names, err := store.List()
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			if !tenantNameRE.MatchString(name) {
				// A stray file (backup copy, editor droppings) would
				// otherwise become a zombie tenant no route can reach.
				continue
			}
			det, err := store.Load(name)
			if err != nil {
				// Don't leak the workers of tenants already restored.
				for _, t := range p.tenants {
					t.shutdown(context.Background()) //nolint:errcheck // empty queues drain instantly
				}
				return nil, err
			}
			if det == nil {
				// Checkpoint vanished between List and Load (concurrent
				// cleanup); skip rather than panic on a nil detector.
				continue
			}
			p.tenants[name] = newTenant(name, det, cfg)
		}
	}
	return p, nil
}

// Tenant returns an existing tenant.
func (p *Pool) Tenant(name string) (*Tenant, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.tenants[name]
	return t, ok
}

// TenantCount returns the number of tenants without copying names.
func (p *Pool) TenantCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.tenants)
}

// CanCreate cheaply pre-checks whether a new tenant could be admitted
// right now. Racy by nature (the answer can change before GetOrCreate),
// but lets handlers shed guaranteed-rejected ingest before paying to
// decode a large body; GetOrCreate remains the authoritative gate.
func (p *Pool) CanCreate() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if len(p.tenants) >= p.cfg.MaxTenants {
		return ErrMaxTenants
	}
	return nil
}

// GetOrCreate returns the named tenant, creating it with the pool's
// detector configuration on first use.
func (p *Pool) GetOrCreate(name string) (*Tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, ErrBadTenant
	}
	p.mu.RLock()
	t, ok := p.tenants[name]
	closed := p.closed
	p.mu.RUnlock()
	if ok {
		return t, nil
	}
	if closed {
		return nil, ErrClosed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if t, ok := p.tenants[name]; ok {
		return t, nil
	}
	if len(p.tenants) >= p.cfg.MaxTenants {
		return nil, ErrMaxTenants
	}
	t = newTenant(name, detect.New(p.cfg.Detector), p.cfg)
	p.tenants[name] = t
	return t, nil
}

// Names returns the tenant names, sorted.
func (p *Pool) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns every tenant's monitoring snapshot, sorted by name.
func (p *Pool) Stats() []TenantStats {
	p.mu.RLock()
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	out := make([]TenantStats, len(tenants))
	for i, t := range tenants {
		out[i] = t.Stats()
	}
	return out
}

// BeginShutdown makes the pool refuse new tenants and ends every
// tenant's SSE stream, without draining anything yet. Server.Shutdown
// calls it before draining HTTP: http.Server.Shutdown waits for
// connections to go idle, and an SSE subscriber never goes idle on its
// own — without this the drain (and therefore checkpointing) stalls for
// the whole grace period behind a single connected client. Refusing new
// tenants first closes the race where a tenant created mid-drain gets a
// fresh broker that a late subscriber could hang the drain on.
// Idempotent; returns the tenants present at shutdown, name-sorted.
func (p *Pool) BeginShutdown() []*Tenant {
	p.mu.Lock()
	p.closed = true
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	for _, t := range tenants {
		t.broker.close()
	}
	return tenants
}

// Shutdown stops ingest on every tenant, drains their queues (bounded by
// ctx), and — when persistence is enabled — checkpoints each detector.
// The first error is returned, but every tenant is still processed.
// Concurrent calls block until the shutdown pass completes (bounded by
// their own ctx) rather than reporting success while it is in flight.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.shutdownOnce.Do(func() {
		defer close(p.shutdownDone)
		tenants := p.BeginShutdown()
		var first error
		for _, t := range tenants {
			if err := t.shutdown(ctx); err != nil && first == nil {
				first = err
			}
			if p.ckpt != nil {
				t.mu.Lock()
				err := p.ckpt.Save(t.name, t.det)
				t.mu.Unlock()
				if err != nil && first == nil {
					first = err
				}
			}
		}
		p.shutdownErr = first
	})
	// Completed-shutdown fast path first: with both channels ready the
	// select below picks randomly, which would report a spurious
	// in-progress error to a caller arriving with an expired ctx.
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	default:
	}
	select {
	case <-p.shutdownDone:
		return p.shutdownErr
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown in progress: %w", ctx.Err())
	}
}
