package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// offerTrace finishes a request trace and offers it to the tenant's
// slow-request ring, honouring the pool's slow-request threshold. Also
// observes the request's wall time into the given stage histogram.
// Returns the finished record so ?debug=1 responses can embed it.
// Nil-safe on every input.
func (p *Pool) offerTrace(t *Tenant, tr *obs.ReqTrace, stage obs.Stage) *obs.TraceRecord {
	rec := tr.Finish()
	if rec == nil {
		return nil
	}
	if t != nil && t.obs != nil {
		t.obs.Observe(stage, rec.Total)
		if th := p.tel.SlowThreshold(); th <= 0 || rec.Total >= th {
			t.obs.OfferTrace(rec)
		}
	}
	return rec
}

// spanJSON is the ?debug=1 / /debug/requests projection of one span.
type spanJSON struct {
	Stage       string  `json:"stage"`
	Ms          float64 `json:"ms"`
	Annotations string  `json:"annotations,omitempty"`
}

// traceJSON is the JSON projection of a finished trace record.
type traceJSON struct {
	Tenant  string     `json:"tenant"`
	Op      string     `json:"op"`
	Detail  string     `json:"detail,omitempty"`
	Start   time.Time  `json:"start"`
	TotalMs float64    `json:"total_ms"`
	Spans   []spanJSON `json:"spans"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func traceView(rec *obs.TraceRecord) traceJSON {
	out := traceJSON{
		Tenant:  rec.Tenant,
		Op:      rec.Op,
		Detail:  rec.Detail,
		Start:   rec.Start,
		TotalMs: ms(rec.Total),
		Spans:   make([]spanJSON, len(rec.Spans)),
	}
	for i, s := range rec.Spans {
		out.Spans[i] = spanJSON{Stage: s.Stage, Ms: ms(s.Dur), Annotations: s.Annot}
	}
	return out
}

// handleDebugRequests serves GET /debug/requests: the slowest traced
// requests retained per tenant, slowest first, filtered by ?tenant= and
// ?min_ms= (minimum total duration). 404 when telemetry or tracing is
// disabled — a disabled debug surface should be loud, not empty.
func handleDebugRequests(w http.ResponseWriter, r *http.Request, p *Pool) {
	if p.tel == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	minMs, ok := intParam(w, r, "min_ms", 0)
	if !ok {
		return
	}
	filter := r.URL.Query().Get("tenant")
	tobs := p.tel.Tenants()
	traces := []traceJSON{}
	ringing := false
	for _, to := range tobs {
		if filter != "" && to.Name() != filter {
			continue
		}
		ring := to.Ring()
		if ring == nil {
			continue
		}
		ringing = true
		for _, rec := range ring.Snapshot() {
			if rec.Total < time.Duration(minMs)*time.Millisecond {
				continue
			}
			traces = append(traces, traceView(rec))
		}
	}
	if !ringing {
		httpError(w, http.StatusNotFound, "request tracing disabled")
		return
	}
	// Global slowest-first across tenants (per-ring snapshots are
	// already sorted; a simple insertion-style merge is overkill for a
	// debug endpoint — sort the small union).
	for i := 1; i < len(traces); i++ {
		for j := i; j > 0 && traces[j].TotalMs > traces[j-1].TotalMs; j-- {
			traces[j], traces[j-1] = traces[j-1], traces[j]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":       traces,
		"threshold_ms": ms(p.tel.SlowThreshold()),
	})
}
