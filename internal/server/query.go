package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/query"
)

// maxQueryLimit is the server-side ceiling on one query page. "No
// limit" (limit=0) clamps here too: a single request must not be able
// to buffer an unbounded history in memory — pagination via the cursor
// is the sanctioned way to read everything.
const maxQueryLimit = 10000

// defaultQueryLimit / defaultArchiveLimit are the page sizes when the
// client does not pass ?limit= (the archive default predates the
// unified engine and is kept for compatibility).
const (
	defaultQueryLimit   = 100
	defaultArchiveLimit = 1000
)

// intParam parses a non-negative integer query parameter, writing a 400
// JSON error and reporting ok=false on any malformed value. A missing
// parameter yields def.
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		httpError(w, http.StatusBadRequest, name+" must be a non-negative integer")
		return 0, false
	}
	return v, true
}

// floatParam parses a float query parameter in [min, max], writing a
// 400 JSON error and reporting ok=false on any malformed value.
func floatParam(w http.ResponseWriter, r *http.Request, name string, def, min, max float64) (float64, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	v, err := strconv.ParseFloat(s, 64)
	// NaN parses without error and slides through range comparisons
	// (every NaN compare is false), which would silently disable the
	// filter the parameter controls — reject it explicitly.
	if err != nil || math.IsNaN(v) || v < min || v > max {
		httpError(w, http.StatusBadRequest,
			name+" must be a number in ["+strconv.FormatFloat(min, 'g', -1, 64)+","+strconv.FormatFloat(max, 'g', -1, 64)+"]")
		return 0, false
	}
	return v, true
}

// boolParam parses a boolean query parameter, writing a 400 JSON error
// on anything outside {"", "0", "1", "true", "false"} — a misspelled
// ?all=ture silently meaning false is exactly the kind of quiet default
// this API refuses to serve.
func boolParam(w http.ResponseWriter, r *http.Request, name string) (bool, bool) {
	switch r.URL.Query().Get(name) {
	case "1", "true":
		return true, true
	case "", "0", "false":
		return false, true
	}
	httpError(w, http.StatusBadRequest, name+" must be 0, 1, true or false")
	return false, false
}

// parseQueryRequest assembles the unified engine request shared by
// /query and /archive: ?from= / ?to= quantum bounds (to absent =
// unbounded), repeated ?keyword= (AND), ?min_rank=, ?limit= (0 = server
// max) and ?cursor=. Reports ok=false after writing the 400 itself.
func parseQueryRequest(w http.ResponseWriter, r *http.Request, defLimit int) (query.Request, bool) {
	var req query.Request
	from, ok := intParam(w, r, "from", 0)
	if !ok {
		return req, false
	}
	to, ok := intParam(w, r, "to", -1)
	if !ok {
		return req, false
	}
	limit, ok := intParam(w, r, "limit", defLimit)
	if !ok {
		return req, false
	}
	if limit == 0 || limit > maxQueryLimit {
		limit = maxQueryLimit
	}
	minRank, ok := floatParam(w, r, "min_rank", 0, 0, 1e18)
	if !ok {
		return req, false
	}
	q := r.URL.Query()
	var kws []string
	for _, kw := range q["keyword"] {
		if kw != "" {
			kws = append(kws, kw)
		}
	}
	req.From, req.To, req.Limit = from, to, limit
	req.MinRank = minRank
	req.Keywords = kws
	req.Cursor = q.Get("cursor")
	return req, true
}

// handleUnifiedQuery serves GET /v1/{tenant}/query: one time-travel
// request answered across the live epoch snapshot and the on-disk
// archive, merged in (last_quantum, id) order with LIMIT pushdown and
// cursor pagination. The stats object reports the segments skipped /
// scanned and why the scan stopped.
// With ?debug=1 the response carries the request's own span breakdown
// (parse / plan / snapshot_scan / archive_scan / finalize) under
// "debug" — the spans partition the traced wall time exactly.
func handleUnifiedQuery(w http.ResponseWriter, r *http.Request, t *Tenant, p *Pool) {
	runTracedQuery(w, r, t, p, "query", defaultQueryLimit, false)
}

// handleArchiveQuery serves the evicted-event history. Since the
// unified engine landed this is a restriction of /query to the archive
// source (one shared scan implementation): same parameters plus the
// same deterministic (last_quantum, id) result order — no longer
// eviction order — same cursor pagination, and stats that mark
// limit-stopped scans as truncated.
func handleArchiveQuery(w http.ResponseWriter, r *http.Request, t *Tenant, p *Pool) {
	runTracedQuery(w, r, t, p, "archive", defaultArchiveLimit, true)
}

// runTracedQuery is the shared /query + /archive implementation:
// parse, execute through the unified engine with a request trace
// attached, offer the trace to the slow-request ring, and serve the
// page (with the span breakdown when ?debug=1).
func runTracedQuery(w http.ResponseWriter, r *http.Request, t *Tenant, p *Pool, op string, defLimit int, archiveOnly bool) {
	debug, ok := boolParam(w, r, "debug")
	if !ok {
		return
	}
	// Trace when telemetry is on (the ring wants slow requests) or the
	// caller explicitly asked for the breakdown.
	var tr *obs.ReqTrace
	if t.obs != nil || debug {
		tr = obs.StartTrace(op, t.Name(), r.URL.RequestURI())
		tr.Step("parse")
	}
	req, ok := parseQueryRequest(w, r, defLimit)
	if !ok {
		return
	}
	req.ArchiveOnly = archiveOnly
	req.Trace = tr
	res, err := t.Query(req)
	if err != nil {
		p.offerTrace(t, tr, obs.StageHTTPQuery)
		queryError(w, err)
		return
	}
	tr.Step("finalize")
	body := map[string]any{
		"tenant": t.Name(),
		"events": res.Events,
		"stats":  res.Stats,
		"cursor": res.Cursor,
	}
	if rec := p.offerTrace(t, tr, obs.StageHTTPQuery); debug && rec != nil {
		body["debug"] = traceView(rec)
	}
	writeJSON(w, http.StatusOK, body)
}

func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoArchive):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, query.ErrBadCursor):
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}
