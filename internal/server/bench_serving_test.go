package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/akg"
	"repro/internal/detect"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

// benchObsDisabled reports whether this run is the untelemetered
// baseline arm of the instrumentation-overhead gate
// (scripts/bench_obs.sh sets BENCH_TELEMETRY=off for it). The default
// arm runs with stage histograms live, exactly as production does.
func benchObsDisabled() bool { return os.Getenv("BENCH_TELEMETRY") == "off" }

// benchBatches cuts a synthetic TW trace into quantum-sized ingest
// batches, cached across benchmark runs.
var benchBatchesCache [][]stream.Message

func benchBatches(b *testing.B) [][]stream.Message {
	b.Helper()
	if benchBatchesCache == nil {
		const n = 48000
		const delta = 160
		msgs, _ := tracegen.Generate(tracegen.TWConfig(42, n))
		for i := 0; i+delta <= len(msgs); i += delta {
			benchBatchesCache = append(benchBatchesCache, msgs[i:i+delta])
		}
	}
	return benchBatchesCache
}

// BenchmarkQueryUnderIngest measures the read path under contention: one
// tenant ingesting at full rate (a background producer keeps its queue
// non-empty for the whole measurement) while parallel clients hammer
// GET /events and GET /related. ns/op is the mean query latency;
// p50/p99 are attached as custom metrics — the headline number for the
// epoch-snapshot read path is p99 under full-rate ingest.
func BenchmarkQueryUnderIngest(b *testing.B) {
	pool, err := NewPool(PoolConfig{
		Detector:      detect.Config{Delta: 160, AKG: akg.Config{Tau: 4, Beta: 0.2, Window: 30}},
		RetainEvents:  512,
		QueueDepth:    8,
		QueueMessages: 1 << 20,
		ObsDisabled:   benchObsDisabled(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("bench")
	if err != nil {
		b.Fatal(err)
	}
	batches := benchBatches(b)

	// Warm up: apply enough quanta that queries have events to serve.
	for _, batch := range batches[:40] {
		for {
			if err := tn.Enqueue(batch); err == nil {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}

	// Full-rate background ingest: cycle the trace for as long as the
	// measurement runs, backing off only when the bounded queue pushes
	// back (which means the worker is already saturated).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 40; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tn.Enqueue(batches[i%len(batches)]); err != nil {
				i--
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	h := NewHandler(pool)
	var latMu sync.Mutex
	var latencies []time.Duration

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lats := make([]time.Duration, 0, 4096)
		for i := 0; pb.Next(); i++ {
			path := "/v1/bench/events?k=10"
			if i%2 == 1 {
				path = "/v1/bench/related?min=0.05"
			}
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(rec, req)
			lats = append(lats, time.Since(start))
			if rec.Code != 200 {
				b.Errorf("%s: status %d: %s", path, rec.Code, rec.Body.String())
				return
			}
		}
		latMu.Lock()
		latencies = append(latencies, lats...)
		latMu.Unlock()
	})
	b.StopTimer()
	close(stop)
	wg.Wait()

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		quantile := func(q float64) float64 {
			idx := int(q * float64(len(latencies)-1))
			return float64(latencies[idx].Nanoseconds())
		}
		b.ReportMetric(quantile(0.50), "p50-ns")
		b.ReportMetric(quantile(0.99), "p99-ns")
	}
}

// BenchmarkIngestThroughput is the write-path counterweight: it measures
// the tenant worker's full-rate apply throughput (msgs/sec) with no
// queries running, so a read-path change that taxes the publish step
// shows up here.
func BenchmarkIngestThroughput(b *testing.B) {
	batches := benchBatches(b)
	pool, err := NewPool(PoolConfig{
		Detector:      detect.Config{Delta: 160, AKG: akg.Config{Tau: 4, Beta: 0.2, Window: 30}},
		RetainEvents:  512,
		QueueDepth:    8,
		QueueMessages: 1 << 20,
		ObsDisabled:   benchObsDisabled(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate(fmt.Sprintf("ingest%d", b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := batches[i%len(batches)]
		for {
			if err := tn.Enqueue(batch); err == nil {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*160)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkIngestDurable measures the acknowledged-ingest path with the
// WAL enabled — every Enqueue is durable before it returns — across
// four concurrent tenants. The sync arm pays one fsync per accepted
// batch; the group-commit arm shares one fsync per tenant per interval
// across every batch that arrived within it. ns/op is the mean ack
// latency per batch.
func BenchmarkIngestDurable(b *testing.B) {
	run := func(b *testing.B, groupCommit time.Duration, syncEvery int) {
		batches := benchBatches(b)
		pool, err := NewPool(PoolConfig{
			Detector:               detect.Config{Delta: 160, AKG: akg.Config{Tau: 4, Beta: 0.2, Window: 30}},
			RetainEvents:           512,
			QueueDepth:             64,
			QueueMessages:          1 << 20,
			WALDir:                 b.TempDir(),
			WALSyncEvery:           syncEvery,
			WALGroupCommitInterval: groupCommit,
			SnapshotEvery:          1 << 30, // keep snapshot IO out of the measurement
			ObsDisabled:            benchObsDisabled(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Shutdown(context.Background())
		const tenants = 4
		for i := 0; i < tenants; i++ {
			if _, err := pool.GetOrCreate(fmt.Sprintf("t%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		var next atomic.Uint64
		// Many more producers than cores: the point of group commit is
		// that concurrent acks share an fsync, so the measurement needs
		// real ack concurrency (each producer blocks until its batch is
		// durable).
		b.SetParallelism(16)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			tn, _ := pool.Tenant(fmt.Sprintf("t%d", next.Add(1)%tenants))
			for i := 0; pb.Next(); i++ {
				batch := batches[i%len(batches)]
				for {
					err := tn.Enqueue(batch)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						b.Fatal(err)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N*160)/b.Elapsed().Seconds(), "msgs/sec")
	}
	b.Run("sync-every-batch", func(b *testing.B) { run(b, 0, 1) })
	b.Run("group-commit", func(b *testing.B) { run(b, 2*time.Millisecond, 0) })
}
