package server

import (
	"runtime"
	"sync"
)

// scheduler is the pool's shared worker engine: a fixed-size set of
// goroutines round-robinning runnable tenants. It replaces the
// goroutine-per-tenant design, which stopped scaling past a few
// thousand tenants (stacks, scheduler pressure) even though almost all
// of them are idle at any instant.
//
// Fairness and ordering come from two invariants:
//
//   - A tenant appears in the runnable queue at most once (the
//     Tenant.scheduled flag), so exactly one worker applies a given
//     tenant's batches at a time — per-tenant batch order is the WAL
//     append order, exactly as with the dedicated goroutine.
//   - A worker applies ONE batch per turn and then requeues the tenant
//     at the tail, so a hot tenant with a deep backlog advances one
//     batch per cycle while every other runnable tenant gets its turn
//     in between — one tenant cannot starve the rest.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Tenant // FIFO of runnable tenants; head is the ring start
	head   int
	closed bool
	wg     sync.WaitGroup

	// onBatch, when set (tests only, before any tenant exists), observes
	// every applied batch in global application order.
	onBatch func(tenant string)
}

// newScheduler starts a scheduler with the given number of workers
// (≤ 0 selects GOMAXPROCS — one worker per core the runtime will use).
func newScheduler(workers int) *scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.run()
	}
	return s
}

// submit marks t runnable, queuing it at the tail. Callers guarantee the
// at-most-once invariant via Tenant.scheduled (held under the tenant's
// queue lock, which is always acquired before s.mu — never the reverse).
func (s *scheduler) submit(t *Tenant) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	s.cond.Signal()
}

// pop removes the head of the runnable queue, blocking until a tenant is
// available or the scheduler is stopped (ok=false).
func (s *scheduler) pop() (t *Tenant, hook func(string), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.head == len(s.queue) && !s.closed {
		s.cond.Wait()
	}
	if s.head == len(s.queue) {
		return nil, nil, false
	}
	t = s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	// Compact once the consumed prefix dominates, so the backing array
	// doesn't grow without bound under sustained load.
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	} else if s.head >= 1024 && s.head*2 >= len(s.queue) {
		n := copy(s.queue, s.queue[s.head:])
		s.queue = s.queue[:n]
		s.head = 0
	}
	return t, s.onBatch, true
}

// run is one worker: pop a runnable tenant, apply one batch, repeat.
func (s *scheduler) run() {
	defer s.wg.Done()
	for {
		t, hook, ok := s.pop()
		if !ok {
			return
		}
		t.runOne()
		if hook != nil {
			hook(t.name)
		}
	}
}

// stop shuts the workers down. Callers must have drained every tenant
// first (the runnable queue empties and stays empty). When wait is set,
// stop blocks until every worker has exited; pass false when a tenant
// failed to drain in time — one of the workers may be wedged inside its
// apply step, and the pool's shutdown must not hang behind it.
func (s *scheduler) stop(wait bool) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	if wait {
		s.wg.Wait()
	}
}
