package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/detect"
)

// StreamEvent is the payload pushed on the SSE stream, one per processed
// quantum: the reportable snapshot plus the lifecycle deltas, so clients
// can render births, evolutions, merges and deaths without polling.
type StreamEvent struct {
	Tenant   string             `json:"tenant"`
	Quantum  int                `json:"quantum"`
	Reports  []detect.Report    `json:"reports"`
	Born     []uint64           `json:"born,omitempty"`
	Ended    []uint64           `json:"ended,omitempty"`
	Merged   []detect.MergeNote `json:"merged,omitempty"`
	AKGNodes int                `json:"akg_nodes"`
	AKGEdges int                `json:"akg_edges"`
}

// subBuffer is the per-subscriber channel depth. A subscriber that falls
// further behind than this is dropped entirely (never the publisher
// blocked): the apply step must keep pace with the stream, not with the
// slowest client. A dropped client's channel is closed, so its SSE
// handler returns and the client can reconnect (with ?catchup=1 to
// resync from the latest epoch) instead of silently missing quanta.
// Sized for the ingest-overhaul apply rate (~1ms/quantum full-tilt): a
// client must be able to stall for a burst of a few hundred quanta —
// a few hundred milliseconds — before the drop policy concludes it is
// dead, at a cost of one pointer per slot.
const subBuffer = 256

// broker fans quantum notifications out to SSE subscribers of one tenant.
type broker struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newBroker() *broker {
	return &broker{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber. The returned cancel function is
// idempotent and safe to call after the broker is closed. The channel is
// closed when the broker shuts down.
func (b *broker) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, subBuffer)
	b.mu.Lock()
	if b.closed {
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[ch]; ok {
				delete(b.subs, ch)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// publish marshals ev once and offers it to every subscriber without
// blocking. Drop-slowest-client policy: a subscriber whose buffer is
// full has stalled for subBuffer quanta — it is unsubscribed and its
// channel closed (ending its SSE handler) rather than allowed to shed
// events silently or, worse, stall the publisher. With no subscribers
// publish returns before marshaling — this runs on the apply path under
// the detector lock, so idle-broker cost must be nil.
func (b *broker) publish(ev *StreamEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for ch := range b.subs { //repro:order-insensitive independent fan-out; every subscriber gets the same payload
		select {
		case ch <- payload:
		default:
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// close shuts the broker down, closing every subscriber channel.
func (b *broker) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for ch := range b.subs { //repro:order-insensitive independent channel closes; order is immaterial
			delete(b.subs, ch)
			close(ch)
		}
	}
	b.mu.Unlock()
}

// serveSSE streams quantum events for one tenant until the client
// disconnects, falls irrecoverably behind (drop-slowest policy), or the
// tenant shuts down. With ?catchup=1 the newest quantum event is
// replayed first — resolved from the tenant's wait-free epoch state, so
// catch-up never touches the apply lock. Catch-up is at-least-once: the
// replayed quantum may also arrive through the live subscription.
func serveSSE(w http.ResponseWriter, r *http.Request, t *Tenant) {
	// Validate before the 200 + stream headers go out: a malformed
	// catchup value must 400, not silently stream without catch-up.
	catchup, ok := boolParam(w, r, "catchup")
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := t.broker.subscribe()
	defer cancel()

	// Per-write deadlines: a connected-but-not-reading client would
	// otherwise park this goroutine inside Fprintf once the kernel send
	// buffer fills, where neither the request context nor broker close
	// can reach it — and http.Server.Shutdown would wait out the whole
	// grace period on the never-idle connection. (The server deliberately
	// sets no global WriteTimeout; SSE streams are long-lived by design.)
	rc := http.NewResponseController(w)
	const writeBudget = 30 * time.Second

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Initial comment line so proxies and clients see bytes immediately.
	fmt.Fprintf(w, ": stream %s\n\n", t.name)
	if catchup {
		if ev := t.lastEvent.Load(); ev != nil {
			if payload, err := json.Marshal(ev); err == nil {
				fmt.Fprintf(w, "event: quantum\ndata: %s\n\n", payload)
			}
		}
	}
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case payload, ok := <-ch:
			if !ok {
				return
			}
			rc.SetWriteDeadline(time.Now().Add(writeBudget)) //nolint:errcheck // unsupported writer → unbounded write, as before
			if _, err := fmt.Fprintf(w, "event: quantum\ndata: %s\n\n", payload); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
