package server

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address (host:port), default ":8080".
	Addr string
	// Pool configures the tenant pool behind the API.
	Pool PoolConfig
	// ShutdownGrace bounds graceful shutdown (HTTP drain + queue drain +
	// checkpointing). Default 30s.
	ShutdownGrace time.Duration
}

// Server ties the HTTP listener to the detector pool and owns graceful
// shutdown: stop accepting, drain in-flight requests, drain ingest
// queues, checkpoint every tenant.
type Server struct {
	Pool *Pool
	HTTP *http.Server

	grace time.Duration
}

// New builds a server (and its pool, restoring any checkpoints).
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 30 * time.Second
	}
	pool, err := NewPool(cfg.Pool)
	if err != nil {
		return nil, err
	}
	return &Server{
		Pool: pool,
		HTTP: &http.Server{
			Addr:    cfg.Addr,
			Handler: NewHandler(pool),
			// Slowloris defence. No ReadTimeout (large ingest bodies) and
			// no WriteTimeout (SSE streams are long-lived by design).
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		grace: cfg.ShutdownGrace,
	}, nil
}

// ListenAndServe serves until Shutdown; the sentinel
// http.ErrServerClosed is filtered out.
func (s *Server) ListenAndServe() error {
	err := s.HTTP.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the HTTP side, then drains and checkpoints
// the pool. Bounded by the configured grace period (or ctx, whichever
// ends first). SSE streams are ended first — they never go idle on
// their own, and http.Server.Shutdown waits for idle connections.
func (s *Server) Shutdown(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, s.grace)
	defer cancel()
	s.Pool.BeginShutdown()
	httpErr := s.HTTP.Shutdown(ctx)
	poolErr := s.Pool.Shutdown(ctx)
	if poolErr != nil {
		return poolErr
	}
	return httpErr
}
