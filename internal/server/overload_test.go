package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// Overload-protection tests: the token bucket and queue-depth admission
// gates, the unified retryable error shape every 429/503 is served in,
// the SSE drop policy against a genuinely stalled handler, and the
// fairness bound admission buys the cold tenants.

// TestTokenBucketDeterministic drives the bucket on an injected clock:
// full at birth, empty after the burst, refilled by elapsed time,
// oversized batches clamped to the burst rather than starved forever.
func TestTokenBucketDeterministic(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBucket(10, 5, func() time.Time { return now })
	if _, ok := tb.take(5); !ok {
		t.Fatal("a full bucket must admit its burst")
	}
	wait, ok := tb.take(1)
	if ok {
		t.Fatal("an empty bucket admitted a message")
	}
	if wait <= 0 {
		t.Fatalf("empty bucket returned no retry hint: %v", wait)
	}
	now = now.Add(time.Second) // refills 10, clamped to burst 5
	if _, ok := tb.take(5); !ok {
		t.Fatal("one second at rate 10 must refill burst 5")
	}
	now = now.Add(time.Second)
	// A batch larger than the bucket can ever hold is admitted when the
	// bucket is full — the alternative is starving it forever.
	if _, ok := tb.take(50); !ok {
		t.Fatal("oversized batch must be admitted against a full bucket")
	}
	if _, ok := tb.take(1); ok {
		t.Fatal("oversized batch must still drain the bucket")
	}
}

// assertRetryable checks the one response shape every retryable
// rejection must wear: the status, a Retry-After header of at least one
// second, and a JSON body whose retry_after_seconds mirrors the header.
func assertRetryable(t *testing.T, resp *http.Response, wantStatus int) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response missing Retry-After header", wantStatus)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer second count", ra)
	}
	var body struct {
		Error             string `json:"error"`
		Status            int    `json:"status"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	decodeBody(t, resp, &body)
	if body.Status != wantStatus {
		t.Fatalf("body status = %d, want %d", body.Status, wantStatus)
	}
	if body.RetryAfterSeconds != secs {
		t.Fatalf("retry_after_seconds = %d disagrees with Retry-After header %d",
			body.RetryAfterSeconds, secs)
	}
	if body.Error == "" {
		t.Fatal("retryable response carries no error message")
	}
}

// TestRetryableResponseShape: a rate-limit 429 and a queue-full 503 must
// arrive in the identical retryable JSON shape — one contract for every
// backoff path a client has to implement.
func TestRetryableResponseShape(t *testing.T) {
	// 429 via the token bucket: 1 msg/s with a 1-message burst admits
	// the first batch and sheds the immediate second.
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), RateLimit: 1, RateBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(pool))
	defer srv.Close()

	batch := quantumOf(0, "rate limited batch of words")
	resp := postJSON(t, srv.URL+"/v1/rl/messages", batch)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch status = %d, want 202", resp.StatusCode)
	}
	assertRetryable(t, postJSON(t, srv.URL+"/v1/rl/messages", batch), http.StatusTooManyRequests)

	// The shed shows up on /metrics as a rate-limit shed with its
	// messages, and admission reports itself enabled.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics PoolMetrics
	decodeBody(t, mresp, &metrics)
	found := false
	for _, m := range metrics.Tenants {
		if m.Tenant != "rl" {
			continue
		}
		found = true
		if !m.AdmissionEnabled {
			t.Fatal("admission_enabled = false with a rate limit configured")
		}
		if m.AcceptedBatches < 1 || m.ShedRateLimit < 1 || m.ShedMessages < uint64(len(batch)) {
			t.Fatalf("shed counters did not move: %+v", m)
		}
	}
	if !found {
		t.Fatal("tenant rl missing from /metrics")
	}
	if metrics.Totals.ShedBatches < 1 || metrics.Totals.ShedMessages < uint64(len(batch)) {
		t.Fatalf("totals did not aggregate sheds: %+v", metrics.Totals)
	}

	// 503 via a hard-full queue (no admission configured): stall the
	// worker mid-batch, fill the depth-1 queue, and POST once more.
	pool2, err := NewPool(PoolConfig{Detector: testDetectConfig(), QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	srv2 := httptest.NewServer(NewHandler(pool2))
	defer srv2.Close()
	tn, err := pool2.GetOrCreate("qf")
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	if err := tn.Enqueue(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; tn.queueLen() != 0; i++ {
		if i > 5000 {
			t.Fatal("worker never picked up the batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tn.Enqueue(batch); err != nil { // fills the depth-1 queue
		t.Fatal(err)
	}
	assertRetryable(t, postJSON(t, srv2.URL+"/v1/qf/messages", batch), http.StatusServiceUnavailable)
	tn.mu.Unlock()
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// stallingWriter is an SSE sink whose quantum-event writes block until
// released — a client whose TCP window has collapsed, without the
// kernel buffering that makes real stalled sockets untestable.
type stallingWriter struct {
	hdr     http.Header
	stalled chan struct{} // closed when the first quantum write blocks
	release chan struct{} // closed by the test to unblock writes
	once    sync.Once
}

func (w *stallingWriter) Header() http.Header { return w.hdr }
func (w *stallingWriter) WriteHeader(int)     {}
func (w *stallingWriter) Flush()              {}
func (w *stallingWriter) Write(p []byte) (int, error) {
	if bytes.Contains(p, []byte("event: quantum")) {
		w.once.Do(func() { close(w.stalled) })
		<-w.release
	}
	return len(p), nil
}

// TestSSEStalledSubscriberDropped runs the real SSE handler against a
// writer that stalls mid-event while the broker publishes at full rate:
// the publisher must never block, the stalled subscriber must be
// dropped once it is subBuffer events behind, and the handler must
// return (freeing its goroutine) once the write unblocks.
func TestSSEStalledSubscriberDropped(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("stall")
	if err != nil {
		t.Fatal(err)
	}

	w := &stallingWriter{hdr: http.Header{}, stalled: make(chan struct{}), release: make(chan struct{})}
	req := httptest.NewRequest(http.MethodGet, "/v1/stall/stream", nil)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		serveSSE(w, req, tn)
	}()
	for i := 0; ; i++ {
		tn.broker.mu.Lock()
		subs := len(tn.broker.subs)
		tn.broker.mu.Unlock()
		if subs == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// First event: the handler picks it up and its write stalls.
	tn.broker.publish(&StreamEvent{Tenant: "stall", Quantum: 0})
	select {
	case <-w.stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never attempted the first quantum write")
	}

	// Full publish rate against the stalled handler: subBuffer events
	// fill its channel, one more trips the drop policy. The publisher
	// must sail through all of them without blocking.
	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 1; i <= subBuffer+1; i++ {
			tn.broker.publish(&StreamEvent{Tenant: "stall", Quantum: i})
		}
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a stalled SSE subscriber")
	}
	for i := 0; ; i++ {
		tn.broker.mu.Lock()
		subs := len(tn.broker.subs)
		tn.broker.mu.Unlock()
		if subs == 0 {
			break
		}
		if i > 5000 {
			t.Fatal("stalled subscriber never dropped")
		}
		time.Sleep(time.Millisecond)
	}

	// Unblock the stalled write: the handler drains its buffered backlog
	// and exits on the closed channel instead of leaking.
	close(w.release)
	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE handler never returned after the drop")
	}
}

// TestAdmissionFairnessColdTenantBounded saturates one tenant through
// the queue-depth gate on a one-worker pool and then measures what a
// cold tenant pays: with the hot backlog capped at AdmissionFrac ×
// QueueDepth, round-robin bounds the cold tenant's wait by that cap —
// not by the hot tenant's offered load, which is 30× larger.
func TestAdmissionFairnessColdTenantBounded(t *testing.T) {
	const depth = 8
	pool, err := NewPool(PoolConfig{
		Detector:      testDetectConfig(),
		Workers:       1,
		QueueDepth:    depth,
		AdmissionFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())

	var mu sync.Mutex
	var order []string
	pool.sched.mu.Lock()
	pool.sched.onBatch = func(tenant string) {
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
	}
	pool.sched.mu.Unlock()

	hot, err := pool.GetOrCreate("hot")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pool.GetOrCreate("cold")
	if err != nil {
		t.Fatal(err)
	}

	// Saturate: push until the admission gate has fired repeatedly. The
	// enqueue loop far outruns the single worker, so the backlog pins at
	// the shed threshold (frac × depth = 4) and everything beyond sheds.
	sheds, accepted := 0, 0
	for i := 0; i < 512 && sheds < 16; i++ {
		err := hot.Enqueue(quantumOf(i*8, "hot tenant saturating flood"))
		var se *ShedError
		switch {
		case errors.As(err, &se):
			if se.Reason != "queue-depth" {
				t.Fatalf("shed reason = %q, want queue-depth", se.Reason)
			}
			if se.RetryAfter <= 0 {
				t.Fatal("shed carries no retry hint")
			}
			sheds++
		case err != nil:
			t.Fatalf("unexpected enqueue error: %v", err)
		default:
			accepted++
		}
	}
	if sheds == 0 {
		t.Fatalf("admission gate never fired across %d accepted batches", accepted)
	}

	// The cold tenant arrives while the hot backlog sits at its cap.
	mu.Lock()
	hotAppliedBefore := len(order)
	mu.Unlock()
	start := time.Now()
	if err := cold.Enqueue(quantumOf(0, "cold tenant single batch")); err != nil {
		t.Fatalf("cold tenant shed by a hot tenant's backlog: %v", err)
	}
	if err := cold.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	coldLatency := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	coldPos := -1
	for i, name := range order {
		if name == "cold" {
			coldPos = i
			break
		}
	}
	if coldPos == -1 {
		t.Fatalf("cold batch never applied; order = %v", order)
	}
	hotBetween := 0
	for _, name := range order[hotAppliedBefore:coldPos] {
		if name == "hot" {
			hotBetween++
		}
	}
	// Admission caps the admitted hot backlog at frac×depth (4) plus the
	// in-flight batch; round-robin serves cold within that — far below
	// the hundreds of batches the hot tenant offered.
	if hotBetween > depth/2+1 {
		t.Fatalf("cold tenant waited behind %d hot batches; admission cap is %d", hotBetween, depth/2)
	}
	if coldLatency > 10*time.Second {
		t.Fatalf("cold tenant apply latency %v — not bounded", coldLatency)
	}

	hm := hot.Metrics()
	if hm.ShedQueueDepth == 0 || !hm.AdmissionEnabled {
		t.Fatalf("hot tenant metrics missed the sheds: %+v", hm)
	}
	if cm := cold.Metrics(); cm.ShedQueueDepth != 0 || cm.ShedRateLimit != 0 {
		t.Fatalf("cold tenant recorded sheds it never suffered: %+v", cm)
	}
}
