package server

// TenantMetrics extends the monitoring snapshot with the durability
// layer's counters — the observability surface behind GET /metrics.
type TenantMetrics struct {
	TenantStats
	// WALEnabled/ArchiveEnabled say which durability subsystems back the
	// tenant, so a zero segment count is distinguishable from "off".
	WALEnabled     bool `json:"wal_enabled"`
	ArchiveEnabled bool `json:"archive_enabled"`
	// WALSegments is the on-disk segment file count (compaction keeps it
	// near 1 when snapshots keep pace with ingest). WALLastSeq /
	// WALSnapshotSeq are the newest appended record and the newest
	// snapshot position; their gap is the replay a crash would cost.
	WALSegments    int    `json:"wal_segments,omitempty"`
	WALLastSeq     uint64 `json:"wal_last_seq,omitempty"`
	WALSnapshotSeq uint64 `json:"wal_snapshot_seq,omitempty"`
	// SnapshotAgeQuanta is how many quanta the tenant has processed
	// since its newest snapshot (bounded by the SnapshotEvery cadence).
	SnapshotAgeQuanta int `json:"snapshot_age_quanta,omitempty"`
	// WALErrors counts failed snapshot/compaction passes.
	WALErrors uint64 `json:"wal_errors,omitempty"`
	// ArchiveSegments / ArchiveEvents size the evicted-event history;
	// ArchiveErrors counts append failures (events lost to the archive)
	// and ArchiveGaps ordinal holes skipped over (records lost to a
	// crash that replay could not regenerate).
	ArchiveSegments int    `json:"archive_segments,omitempty"`
	ArchiveEvents   int    `json:"archive_events,omitempty"`
	ArchiveErrors   uint64 `json:"archive_errors,omitempty"`
	ArchiveGaps     uint64 `json:"archive_gaps,omitempty"`
	// ArchiveColumnarSegments counts sealed segments already in the v2
	// columnar format; the Compact* counters are the background
	// compactor's lifetime totals for this tenant (committed steps,
	// input segments consumed, and bytes reclaimed, data + sidecars).
	ArchiveColumnarSegments  int    `json:"archive_columnar_segments,omitempty"`
	ArchiveCompactions       uint64 `json:"archive_compactions,omitempty"`
	ArchiveSegmentsCompacted uint64 `json:"archive_segments_compacted,omitempty"`
	ArchiveBytesReclaimed    uint64 `json:"archive_bytes_reclaimed,omitempty"`

	// SLO / admission-control counters. AcceptedBatches counts batches
	// (and flush markers) admitted to the queue; ShedRateLimit and
	// ShedQueueDepth count batches turned away by the token bucket and
	// the queue-depth gate respectively (each rejected HTTP request bumps
	// exactly one), with ShedMessages the message total across both.
	// Always emitted — a dashboard must distinguish "zero sheds" from
	// "admission off" via AdmissionEnabled.
	AdmissionEnabled bool   `json:"admission_enabled"`
	AcceptedBatches  uint64 `json:"accepted_batches"`
	ShedRateLimit    uint64 `json:"shed_rate_limit"`
	ShedQueueDepth   uint64 `json:"shed_queue_depth"`
	ShedMessages     uint64 `json:"shed_messages"`

	// Storage-degradation surface. Degraded says whether ingest is
	// currently shed read-only (the reason is on /readyz); WALReopens
	// and StorageRetries are lifetime recovery counters (supervised
	// quarantine-and-reopens of a fail-stopped WAL, inline retry turns
	// after transient device errors); QuarantinedSegments counts archive
	// segments sidelined for structural corruption.
	Degraded            bool   `json:"degraded"`
	WALReopens          uint64 `json:"wal_reopens,omitempty"`
	StorageRetries      uint64 `json:"storage_retries,omitempty"`
	QuarantinedSegments uint64 `json:"quarantined_segments,omitempty"`
}

// MetricsTotals aggregates the per-tenant metrics for dashboards that
// only want one line per process.
type MetricsTotals struct {
	Tenants         int    `json:"tenants"`
	Messages        uint64 `json:"messages"`
	Quanta          int    `json:"quanta"`
	QueuedMessages  int64  `json:"queued_messages"`
	WALSegments     int    `json:"wal_segments"`
	ArchiveSegments int    `json:"archive_segments"`
	ArchiveEvents   int    `json:"archive_events"`
	// ArchiveBytesReclaimed sums what background compaction has shaved
	// off the archives' on-disk footprint across all tenants.
	ArchiveBytesReclaimed uint64 `json:"archive_bytes_reclaimed"`
	ShedBatches           uint64 `json:"shed_batches"`
	ShedMessages          uint64 `json:"shed_messages"`
	// DegradedTenants counts tenants currently in read-only degraded
	// mode — the pool-level "is storage sick anywhere" alert line.
	DegradedTenants int `json:"degraded_tenants"`
}

// PoolMetrics is the GET /metrics response body.
type PoolMetrics struct {
	Tenants []TenantMetrics `json:"tenants"`
	Totals  MetricsTotals   `json:"totals"`
}

// Metrics returns the tenant's monitoring + durability snapshot.
func (t *Tenant) Metrics() TenantMetrics {
	m := TenantMetrics{TenantStats: t.Stats()}
	m.AdmissionEnabled = t.admit != nil
	m.AcceptedBatches = t.accepted.Load()
	m.ShedRateLimit = t.shedRateLimit.Load()
	m.ShedQueueDepth = t.shedQueue.Load()
	m.ShedMessages = t.shedMsgs.Load()
	m.Degraded, _ = t.Degraded()
	m.WALReopens = t.health.walReopens.Load()
	m.StorageRetries = t.health.storageRetries.Load()
	if wl := t.walLog(); wl != nil {
		m.WALEnabled = true
		m.WALSegments = wl.SegmentCount()
		m.WALLastSeq = wl.LastSeq()
		m.WALSnapshotSeq = wl.SnapshotSeq()
		m.WALErrors = t.storage.walErrs.Load()
		// Clamp at zero: after recovery the snapshot can be ahead of the
		// published epoch (lastSnapQuantum seeds from the checkpointed
		// quantum while Quanta starts from the replayed snapshot), and a
		// negative age would read as a uint underflow on dashboards.
		if age := m.Quanta - int(t.lastSnapQuantum.Load()); age > 0 {
			m.SnapshotAgeQuanta = age
		}
	}
	if ar := t.archLog(); ar != nil {
		m.ArchiveEnabled = true
		m.ArchiveSegments = ar.SegmentCount()
		m.ArchiveEvents = ar.EventCount()
		m.ArchiveErrors = t.storage.archErrs.Load()
		m.ArchiveGaps = ar.Gaps()
		m.ArchiveColumnarSegments = ar.ColumnarSegmentCount()
		m.ArchiveCompactions, m.ArchiveSegmentsCompacted, _, m.ArchiveBytesReclaimed = ar.CompactTotals()
		m.QuarantinedSegments = ar.QuarantinedSegments()
	}
	return m
}

// tenantsSorted snapshots the tenant list under the read lock,
// name-sorted.
func (p *Pool) tenantsSorted() []*Tenant {
	p.mu.RLock()
	tenants := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.RUnlock()
	sortTenants(tenants)
	return tenants
}

// totalsOf folds per-tenant metrics into the one-line process summary.
func totalsOf(tenants []TenantMetrics) MetricsTotals {
	var tot MetricsTotals
	for i := range tenants {
		m := &tenants[i]
		tot.Tenants++
		tot.Messages += m.Messages
		tot.Quanta += m.Quanta
		tot.QueuedMessages += m.QueuedMessages
		tot.WALSegments += m.WALSegments
		tot.ArchiveSegments += m.ArchiveSegments
		tot.ArchiveEvents += m.ArchiveEvents
		tot.ArchiveBytesReclaimed += m.ArchiveBytesReclaimed
		tot.ShedBatches += m.ShedRateLimit + m.ShedQueueDepth
		tot.ShedMessages += m.ShedMessages
		if m.Degraded {
			tot.DegradedTenants++
		}
	}
	return tot
}

// metricsOf assembles the /metrics body for an explicit tenant set.
func metricsOf(tenants []*Tenant) PoolMetrics {
	out := PoolMetrics{Tenants: make([]TenantMetrics, 0, len(tenants))}
	for _, t := range tenants {
		out.Tenants = append(out.Tenants, t.Metrics())
	}
	out.Totals = totalsOf(out.Tenants)
	return out
}

// Metrics returns every tenant's metrics (name-sorted) plus totals.
func (p *Pool) Metrics() PoolMetrics {
	return metricsOf(p.tenantsSorted())
}

// MetricsFor returns the /metrics body restricted to one tenant (the
// ?tenant= filter); ok is false when the tenant does not exist.
func (p *Pool) MetricsFor(name string) (PoolMetrics, bool) {
	t, ok := p.Tenant(name)
	if !ok {
		return PoolMetrics{}, false
	}
	return metricsOf([]*Tenant{t}), true
}
