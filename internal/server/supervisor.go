package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Degradation reasons, surfaced on /readyz and in DegradedError. The
// vocabulary is deliberately small: dashboards alert on the flag, the
// reason only says which probe has to succeed before recovery.
const (
	// degradedNoSpace: the device returned ENOSPC (or a quota error).
	// More retries cannot help until space is freed; the supervisor
	// probes with a small write until one lands.
	degradedNoSpace = "no_space"
	// degradedIO: a device IO error persisted past the inline retry
	// budget, or a group-commit flush fail-stopped the WAL. The
	// supervisor repairs the log in place (Reopen) on its cadence.
	degradedIO = "io_error"
)

// DegradedError reports that the tenant is in read-only degraded mode:
// its storage is sick, ingest is shed to protect the acked history, and
// queries keep serving from the live epoch snapshot. Handlers map it to
// 503 Service Unavailable with a Retry-After hint — the supervisor's
// probe cadence, since that is when the answer can change.
type DegradedError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("server: tenant %s degraded (%s): ingest is read-only; retry after %s",
		e.Tenant, e.Reason, e.RetryAfter)
}

// tenantHealth is one tenant's storage-degradation state. The degraded
// flag is the ingest hot path's only touchpoint — one atomic load per
// Enqueue; everything else is read by /metrics and /readyz.
type tenantHealth struct {
	degraded atomicDegraded

	// walReopens counts supervised quarantine-and-reopen recoveries of
	// the tenant's fail-stopped WAL; storageRetries counts inline
	// retry turns after transient device errors on the ingest path.
	walReopens     atomic.Uint64
	storageRetries atomic.Uint64
}

// DegradedInfo is one degraded tenant's entry in the /readyz body.
type DegradedInfo struct {
	Tenant string `json:"tenant"`
	Reason string `json:"reason"`
	// SinceSeconds is how long the tenant has been degraded.
	SinceSeconds float64 `json:"since_seconds"`
}

// Degraded reports whether the tenant is currently in read-only
// degraded mode, and why.
func (t *Tenant) Degraded() (bool, string) {
	return t.health.degraded.get()
}

// DegradedCheck returns the shed error ingest must be answered with
// while the tenant is degraded, nil when it is healthy. The ingest
// handler calls it before decoding the request body; Enqueue and Flush
// re-check it authoritatively.
func (t *Tenant) DegradedCheck() *DegradedError {
	down, reason := t.health.degraded.get()
	if !down {
		return nil
	}
	return &DegradedError{Tenant: t.name, Reason: reason, RetryAfter: t.probeEvery}
}

// enterDegraded flips the tenant read-only (idempotent — the first
// reason wins until recovery) and returns the shed error to answer the
// triggering request with.
func (t *Tenant) enterDegraded(reason string) *DegradedError {
	t.health.degraded.set(reason)
	return &DegradedError{Tenant: t.name, Reason: reason, RetryAfter: t.probeEvery}
}

// storageFailed classifies a storage error that escaped the inline
// retry budget and converts it into the tenant's degraded mode: the
// caller sheds this request, the supervisor owns recovery. Device
// conditions (ENOSPC, persistent EIO) degrade; anything else — logic
// errors, a closed log — is returned as-is for the normal error path.
func (t *Tenant) storageFailed(err error) error {
	switch vfs.Classify(err) {
	case vfs.ClassNoSpace:
		return t.enterDegraded(degradedNoSpace)
	case vfs.ClassIO:
		return t.enterDegraded(degradedIO)
	}
	// Not a device condition — but if the WAL fail-stopped (a group
	// commit covering this batch failed on another tenant's turn, say),
	// the supervisor still owns the reopen; shed rather than surface a
	// raw internal error the client cannot act on.
	if wl := t.walLog(); wl != nil && wl.Failed() != nil {
		return t.enterDegraded(degradedIO)
	}
	return err
}

// errReopenBusy defers a supervised reopen: a batch whose record the
// reopen would discard is still mid-apply. Its Commit is guaranteed to
// fail while the log stays fail-stopped (that is what drops it), so the
// next probe turn finds the queue clean.
var errReopenBusy = errors.New("server: wal reopen deferred: discarded batch still draining")

// reopenWALLocked recovers a fail-stopped WAL in place and evicts every
// queued batch whose record the reopen discards (seq past the acked
// prefix). Those batches were never acknowledged — their producer's
// Commit failed — so dropping them keeps the detector consistent with
// what replay rebuilds; leaving them queued would let a post-reopen
// append reuse their seq and apply them under another record's
// durability. Caller holds t.qmu, which also serializes this against
// Enqueue's append-then-commit window.
func (t *Tenant) reopenWALLocked(wl *wal.Log) error {
	committed := wl.CommittedSeq()
	if t.inflightSeq > committed {
		return errReopenBusy
	}
	w := t.pendHead
	for i := t.pendHead; i < len(t.pending); i++ {
		b := t.pending[i]
		if b.seq > committed {
			t.queuedMsgs.Add(-int64(len(b.msgs)))
			t.applied.Add(1)
			continue
		}
		t.pending[w] = b
		w++
	}
	for i := w; i < len(t.pending); i++ {
		t.pending[i] = walBatch{} // release the msgs for GC
	}
	t.pending = t.pending[:w]
	t.finishDrainLocked()
	return wl.Reopen()
}

// probeStorage is one supervisor turn for this tenant: repair a
// fail-stopped WAL in place, and when the tenant is degraded, verify
// the device actually works again (a real write probe — not just the
// absence of recent errors) before accepting ingest again.
func (t *Tenant) probeStorage(fsys vfs.FS, walDir string) {
	wl := t.walLog()
	if wl != nil && wl.Failed() != nil {
		start := time.Now()
		t.qmu.Lock()
		err := t.reopenWALLocked(wl)
		t.qmu.Unlock()
		if err == errReopenBusy {
			return // drains in microseconds; repair next turn
		}
		if err != nil {
			// Still sick. Stay (or become) degraded so ingest sheds
			// instead of burning its retry budget per request.
			switch vfs.Classify(err) {
			case vfs.ClassNoSpace:
				t.enterDegraded(degradedNoSpace)
			default:
				t.enterDegraded(degradedIO)
			}
			return
		}
		t.health.walReopens.Add(1)
		t.obs.Observe(obs.StageWALReopen, time.Since(start))
	}
	if down, _ := t.health.degraded.get(); !down {
		return
	}
	if walDir != "" {
		if err := probeWrite(fsys, filepath.Join(walDir, t.name)); err != nil {
			return // device still sick; stay degraded, probe again next turn
		}
	}
	t.health.degraded.clear()
}

// probeWrite proves the device under dir accepts and persists a small
// write: create, write, fsync, remove. ENOSPC recovery hinges on this
// being a real write — free space reported by statfs can be reserved,
// and an EIO path can pass metadata ops while failing data ones.
func probeWrite(fsys vfs.FS, dir string) error {
	path := filepath.Join(dir, ".probe")
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("ok\n"))
	serr := f.Sync()
	cerr := f.Close()
	fsys.Remove(path) //nolint:errcheck // best effort; next probe truncates
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// superviseLoop is the pool's degradation supervisor: on a fixed probe
// cadence (or immediately when kicked by a storage failure) it walks
// the tenants, reopens fail-stopped WALs, and clears degraded mode once
// a write probe proves the device recovered. One goroutine for the
// whole pool — degradation is rare and the probe is cheap, so per-
// tenant probers would only multiply shutdown edges.
func (p *Pool) superviseLoop() {
	defer close(p.superviseDone)
	tick := time.NewTicker(p.cfg.DegradedProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.superviseStop:
			return
		case <-p.superviseKick:
		case <-tick.C:
		}
		for _, t := range p.tenantsSorted() {
			select {
			case <-p.superviseStop:
				return
			default:
			}
			t.probeStorage(p.fs, p.cfg.WALDir)
		}
	}
}

// kickSupervisor nudges the supervisor to probe now instead of waiting
// out the cadence — called when a storage failure flips a tenant
// degraded, so short outages recover on the next probe, not the next
// tick. Non-blocking; a kick while one is pending coalesces.
func (p *Pool) kickSupervisor() {
	if p.superviseKick == nil {
		return
	}
	select {
	case p.superviseKick <- struct{}{}:
	default:
	}
}

// stopSupervisor halts the supervisor and waits for an in-flight probe
// pass to finish; idempotent, and a no-op when it never started. Must
// run before tenant WALs close so a probe never races a Close.
func (p *Pool) stopSupervisor() {
	if p.superviseStop == nil {
		return
	}
	p.superviseOff.Do(func() { close(p.superviseStop) })
	<-p.superviseDone
}

// DegradedTenants returns every degraded tenant's entry, name-sorted —
// the /readyz body.
func (p *Pool) DegradedTenants() []DegradedInfo {
	var out []DegradedInfo
	for _, t := range p.tenantsSorted() {
		if down, reason := t.health.degraded.get(); down {
			out = append(out, DegradedInfo{
				Tenant:       t.name,
				Reason:       reason,
				SinceSeconds: time.Since(t.health.degraded.since()).Seconds(),
			})
		}
	}
	return out
}

// atomicDegraded is a flag + reason + start time under one small
// mutex, with a lock-free fast path for the healthy case.
type atomicDegraded struct {
	flag atomic.Bool
	mu   sync.Mutex
	why  string
	at   time.Time
}

func (d *atomicDegraded) get() (bool, string) {
	if !d.flag.Load() {
		return false, ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return true, d.why
}

func (d *atomicDegraded) set(reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.flag.Load() {
		d.why, d.at = reason, time.Now()
		d.flag.Store(true)
	}
}

func (d *atomicDegraded) clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flag.Store(false)
	d.why = ""
}

func (d *atomicDegraded) since() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.at
}
