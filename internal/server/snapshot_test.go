package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/tracegen"
)

// TestSnapshotQueriesMatchDetector is the refactor's fidelity gate: every
// query answered from the epoch snapshot must be byte-identical to what
// the pre-refactor lock-based read (a direct detector call) produces on
// the same stream.
func TestSnapshotQueriesMatchDetector(t *testing.T) {
	const n = 8000
	msgs, _ := tracegen.Generate(tracegen.TWConfig(7, n))
	cfg := detect.Config{} // paper nominal parameters

	pool, err := NewPool(PoolConfig{Detector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(pool))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tw/messages", msgs)
	if resp.StatusCode != 202 {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/tw/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Reference: a detector fed the same stream, queried directly (the
	// pre-refactor read path).
	ref := detect.New(cfg)
	for _, m := range msgs {
		ref.IngestAll(m)
	}
	ref.Flush()

	compare := func(name string, got, want any) {
		t.Helper()
		rawGot, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		rawWant, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(rawGot) != string(rawWant) {
			t.Fatalf("%s: snapshot read diverges from detector read:\ngot  %s\nwant %s",
				name, rawGot, rawWant)
		}
	}

	all := getEvents(t, ts.URL, "tw", "?all=1")
	if len(all.Events) == 0 {
		t.Fatal("no events served; stream too tame")
	}
	compare("events?all=1", all.Events, viewsOf(ref.AllEvents()))
	compare("events", getEvents(t, ts.URL, "tw", "").Events, viewsOf(ref.TopK(0)))
	compare("events?k=3", getEvents(t, ts.URL, "tw", "?k=3").Events, viewsOf(ref.TopK(3)))

	var related struct {
		Related []detect.RelatedPair `json:"related"`
	}
	resp, err = http.Get(ts.URL + "/v1/tw/related?min=0.01")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &related)
	wantRelated := ref.RelatedEvents(0.01)
	if len(related.Related) != len(wantRelated) {
		t.Fatalf("related: %d pairs, want %d", len(related.Related), len(wantRelated))
	}
	if len(wantRelated) > 0 {
		compare("related", related.Related, wantRelated)
	}

	// Single-event lookup and the keyword inverted index agree with the
	// full views.
	for _, want := range all.Events[:min(4, len(all.Events))] {
		tn, _ := pool.Tenant("tw")
		got, ok := tn.Event(want.ID)
		if !ok {
			t.Fatalf("event %d not found via snapshot", want.ID)
		}
		compare(fmt.Sprintf("events/%d", want.ID), got, want)
	}
	if top := getEvents(t, ts.URL, "tw", "").Events; len(top) > 0 {
		kw := top[0].Keywords[0]
		filtered := getEvents(t, ts.URL, "tw", "?keyword="+kw)
		if len(filtered.Events) == 0 {
			t.Fatalf("keyword %q matched nothing", kw)
		}
		for _, ev := range filtered.Events {
			found := false
			for _, k := range ev.Keywords {
				if k == kw {
					found = true
				}
			}
			if !found {
				t.Fatalf("keyword filter returned event %d without %q", ev.ID, kw)
			}
		}
	}
}

// TestQueriesDoNotBlockOnApply pins the lock-free property down: with
// the apply lock held (a batch frozen mid-application), every query
// endpoint must still answer. Before the refactor each of these reads
// took t.mu and would hang here.
func TestQueriesDoNotBlockOnApply(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())
	tn, err := pool.GetOrCreate("frozen")
	if err != nil {
		t.Fatal(err)
	}
	// Two quanta of history, then freeze the apply lock.
	if err := tn.Enqueue(quantumOf(0, "earthquake struck eastern turkey")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Enqueue(quantumOf(8, "earthquake struck eastern turkey")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		tn.Events(0, true)
		tn.Events(5, false)
		tn.Event(1)
		tn.Related(0.1)
		tn.Stats()
		tn.Metrics()
		tn.Snapshot()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("a query blocked on the apply lock")
	}
}

// TestSchedulerFairness floods one tenant with a deep backlog, then
// enqueues a single batch for a second tenant, on a one-worker
// scheduler. Round-robin (one batch per turn) must serve the cold
// tenant after at most a handful of hot batches — a hot tenant cannot
// starve the rest of the pool.
func TestSchedulerFairness(t *testing.T) {
	pool, err := NewPool(PoolConfig{Detector: testDetectConfig(), Workers: 1, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown(context.Background())

	var mu sync.Mutex
	var order []string
	pool.sched.mu.Lock()
	pool.sched.onBatch = func(tenant string) {
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
	}
	pool.sched.mu.Unlock()

	hot, err := pool.GetOrCreate("hot")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pool.GetOrCreate("cold")
	if err != nil {
		t.Fatal(err)
	}
	const hotBatches = 64
	for i := 0; i < hotBatches; i++ {
		if err := hot.Enqueue(quantumOf(i*8, "hot tenant message flood")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cold.Enqueue(quantumOf(0, "cold tenant single batch")); err != nil {
		t.Fatal(err)
	}
	if err := cold.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	coldPos := -1
	for i, name := range order {
		if name == "cold" {
			coldPos = i
			break
		}
	}
	if coldPos == -1 {
		t.Fatalf("cold tenant batch never applied; order = %v", order)
	}
	hotBefore := 0
	for _, name := range order[:coldPos] {
		if name == "hot" {
			hotBefore++
		}
	}
	if hotBefore >= hotBatches {
		t.Fatalf("cold tenant starved: all %d hot batches ran first", hotBatches)
	}
	// Round-robin bounds the wait by (hot batches applied before cold was
	// submitted) + 1; the enqueue loop is far faster than 32 quantum
	// applies, so anything close to the full backlog means FIFO-per-
	// tenant leaked back in.
	if hotBefore > hotBatches/2 {
		t.Fatalf("scheduler not round-robinning: %d of %d hot batches before cold's turn",
			hotBefore, hotBatches)
	}
}

// TestSSEDropSlowestClient: a subscriber that never reads must be
// dropped (its channel closed) once it falls subBuffer events behind —
// and the publisher must never block on it.
func TestSSEDropSlowestClient(t *testing.T) {
	b := newBroker()
	ch, cancel := b.subscribe()
	defer cancel()

	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 0; i < subBuffer+1; i++ {
			b.publish(&StreamEvent{Tenant: "x", Quantum: i})
		}
	}()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a stalled subscriber")
	}

	// The client was unsubscribed: the buffered backlog is readable, then
	// the channel closes.
	got := 0
	for range ch {
		got++
	}
	if got != subBuffer {
		t.Fatalf("drained %d buffered events, want %d", got, subBuffer)
	}
	b.mu.Lock()
	remaining := len(b.subs)
	b.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("stalled subscriber still registered (%d subs)", remaining)
	}

	// A fresh, prompt subscriber is unaffected by the drop of the stale one.
	ch2, cancel2 := b.subscribe()
	defer cancel2()
	b.publish(&StreamEvent{Tenant: "x", Quantum: 99})
	select {
	case payload := <-ch2:
		var ev StreamEvent
		if err := json.Unmarshal(payload, &ev); err != nil || ev.Quantum != 99 {
			t.Fatalf("payload = %s, err = %v", payload, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live subscriber missed the event")
	}
}

// TestConcurrentIngestQueriesShutdown runs full-rate ingest, concurrent
// queries on every endpoint, and a SIGTERM-style checkpoint shutdown on
// one tenant — the scenario the race-detector CI job exists for. After
// restart, the checkpointed tenant must be present and queryable.
func TestConcurrentIngestQueriesShutdown(t *testing.T) {
	dir := t.TempDir()
	pool, err := NewPool(PoolConfig{
		Detector:      testDetectConfig(),
		CheckpointDir: dir,
		RetainEvents:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(pool)

	if _, err := pool.GetOrCreate("busy"); err != nil {
		t.Fatal(err)
	}
	tn, _ := pool.Tenant("busy")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries atomic.Int64

	wg.Add(1)
	go func() { // full-rate ingest until shutdown rejects it
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := tn.Enqueue(quantumOf(i*8, "storm warning coast evacuation"))
			if err == ErrClosed {
				return
			}
			if err == ErrQueueFull {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	paths := []string{
		"/v1/busy/events", "/v1/busy/events?all=1", "/v1/busy/events?k=2",
		"/v1/busy/related?min=0.05", "/statsz", "/metrics", "/healthz",
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(i+g)%len(paths)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != 200 {
					t.Errorf("%s: status %d", path, rec.Code)
					return
				}
				queries.Add(1)
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	// SIGTERM path: drain + checkpoint while queries and ingest still run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the run")
	}

	// The checkpoint restores.
	pool2, err := NewPool(PoolConfig{Detector: testDetectConfig(), CheckpointDir: dir, RetainEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	tn2, ok := pool2.Tenant("busy")
	if !ok {
		t.Fatal("tenant not restored")
	}
	if tn2.Stats().Messages == 0 {
		t.Fatal("restored tenant lost its stream position")
	}
}
