package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// httpPage is the client-visible part of a /query or /archive response.
// Stats are deliberately dropped before comparison: segment and block
// counts legitimately change when the archive is compacted; the events
// and the cursor must not.
type httpPage struct {
	Events json.RawMessage `json:"events"`
	Cursor string          `json:"cursor"`
}

func fetchPage(t *testing.T, url string) httpPage {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var page httpPage
	decodeBody(t, resp, &page)
	return page
}

// fetchWalk follows the cursor chain to exhaustion and returns every
// page as a byte-comparable string.
func fetchWalk(t *testing.T, base string) []string {
	t.Helper()
	var pages []string
	url := base
	for i := 0; ; i++ {
		page := fetchPage(t, url)
		pages = append(pages, string(page.Events)+"|"+page.Cursor)
		if page.Cursor == "" {
			return pages
		}
		if i > 100 {
			t.Fatal("cursor walk did not terminate")
		}
		url = base + "&cursor=" + page.Cursor
	}
}

// TestArchiveCompactionHTTPIdentity is the tentpole acceptance check at
// the HTTP layer: a server restarted with the background compactor
// enabled must keep serving byte-identical /archive and /query pages
// while (and after) its archive is rewritten from v1 JSONL into the v2
// columnar format, and the compactor's work must show up on /metrics in
// both JSON and Prometheus form.
func TestArchiveCompactionHTTPIdentity(t *testing.T) {
	dir := t.TempDir()
	pcfg := PoolConfig{
		Detector:             persistCfg(),
		RetainEvents:         1,
		WALDir:               filepath.Join(dir, "wal"),
		ArchiveDir:           filepath.Join(dir, "archive"),
		ArchiveSegmentEvents: 1, // every archived event seals a v1 segment
	}
	pool1, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := pool1.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range burstBatches() {
		if err := tn.Enqueue(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := tn.Metrics().ArchiveSegments; n < 3 {
		t.Fatalf("stream too tame: only %d archive segments to compact", n)
	}

	endpoints := []string{
		"/v1/t/archive?from=0&limit=500",
		"/v1/t/archive?from=0&keyword=earthquake&limit=500",
		"/v1/t/query?from=0&limit=500",
		"/v1/t/archive?from=0&limit=3", // cursor-walked
	}
	baseline := make([][]string, len(endpoints))
	ts1 := httptest.NewServer(NewHandler(pool1))
	for i, ep := range endpoints {
		baseline[i] = fetchWalk(t, ts1.URL+ep)
	}
	ts1.Close()
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directories with merge-friendly bounds and a
	// fast background compactor. Queries race live compaction steps
	// here; the final comparison runs over the fully columnar archive.
	pcfg.ArchiveSegmentEvents = 64
	pcfg.ArchiveBucketQuanta = 1 << 20
	pcfg.ArchiveBlockEvents = 4
	pcfg.ArchiveCompactInterval = 2 * time.Millisecond
	pool2, err := NewPool(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Shutdown(context.Background())
	ts2 := httptest.NewServer(NewHandler(pool2))
	defer ts2.Close()
	tn2, err := pool2.GetOrCreate("t")
	if err != nil {
		t.Fatal(err)
	}

	// The background loop must commit at least one step on its own ...
	deadline := time.Now().Add(10 * time.Second)
	for tn2.Metrics().ArchiveCompactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compactor never committed a step")
		}
		fetchPage(t, ts2.URL+endpoints[0]) // exercise scans mid-compaction
		time.Sleep(2 * time.Millisecond)
	}
	// ... then converge deterministically (CompactAll serializes with the
	// loop on the archive's compaction mutex).
	if _, err := tn2.archLog().CompactAll(); err != nil {
		t.Fatal(err)
	}

	m := tn2.Metrics()
	if m.ArchiveColumnarSegments == 0 || m.ArchiveCompactions == 0 ||
		m.ArchiveSegmentsCompacted == 0 || m.ArchiveBytesReclaimed == 0 {
		t.Fatalf("compaction counters missing from metrics: %+v", m)
	}

	for i, ep := range endpoints {
		pages := fetchWalk(t, ts2.URL+ep)
		if len(pages) != len(baseline[i]) {
			t.Fatalf("%s paginates differently after compaction: %d pages vs %d",
				ep, len(pages), len(baseline[i]))
		}
		for p := range pages {
			if pages[p] != baseline[i][p] {
				t.Fatalf("%s page %d diverges after compaction:\n was %s\n now %s",
					ep, p, baseline[i][p], pages[p])
			}
		}
	}

	// The counters must surface through both exposition formats.
	var pm PoolMetrics
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &pm)
	if pm.Totals.ArchiveBytesReclaimed == 0 {
		t.Fatalf("totals missing reclaimed bytes: %+v", pm.Totals)
	}
	resp, err = http.Get(ts2.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prom := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`eventdetect_archive_compactions_total{tenant="t"} %d`, m.ArchiveCompactions),
		`eventdetect_archive_columnar_segments{tenant="t"}`,
		`eventdetect_archive_bytes_reclaimed_total{tenant="t"}`,
		`eventdetect_pool_archive_bytes_reclaimed_total`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}
