// Package minhash implements the bottom-p min-hash sketches the paper uses
// to screen keyword pairs for edge correlation (Section 3.2.2).
//
// Each user id is mapped to a 64-bit hash drawn effectively uniformly from
// the full range (avoiding the birthday-paradox collisions the paper warns
// about), and each keyword keeps the p smallest hash values among the user
// ids in its id set. Two keywords whose sketches share at least one value
// are candidates for an edge; the probability of the single-minimum match
// equals their Jaccard coefficient, and keeping p minima instead of one
// both suppresses false negatives and yields a direct Jaccard estimator
// (the bottom-k estimator of Cohen's size-estimation framework [6,7]).
package minhash

// Hash64 maps a user id to a pseudo-random 64-bit value using the
// splitmix64 finalizer, a strong 64-bit mixer with full avalanche. The
// seed selects a member of the hash family so independent sketches can be
// drawn (used in accuracy tests).
func Hash64(id uint64, seed uint64) uint64 {
	z := id + seed*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Sketch holds the p smallest hash values seen so far, in ascending order.
// The zero value is not usable; call New.
type Sketch struct {
	vals []uint64 // sorted ascending, len ≤ p
	p    int
	seed uint64
}

// New returns an empty sketch retaining the p smallest hashes. p must be
// at least 1.
func New(p int, seed uint64) *Sketch {
	if p < 1 {
		p = 1
	}
	return &Sketch{vals: make([]uint64, 0, p), p: p, seed: seed}
}

// P returns the sketch capacity.
func (s *Sketch) P() int { return s.p }

// Len returns the number of retained values (≤ p).
func (s *Sketch) Len() int { return len(s.vals) }

// Reset empties the sketch in place.
func (s *Sketch) Reset() { s.vals = s.vals[:0] }

// Add hashes id and inserts it if it ranks among the p smallest. Duplicate
// ids are idempotent. It reports whether the sketch changed.
func (s *Sketch) Add(id uint64) bool {
	return s.insert(Hash64(id, s.seed))
}

// AddHash inserts a precomputed hash value (callers that sketch one id into
// many keyword sketches hash once and fan out).
func (s *Sketch) AddHash(h uint64) bool {
	return s.insert(h)
}

func (s *Sketch) insert(h uint64) bool {
	n := len(s.vals)
	if n == s.p && h >= s.vals[n-1] {
		return false
	}
	// Binary search for insertion point.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if s.vals[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && s.vals[lo] == h {
		return false // already present (same user id)
	}
	if n < s.p {
		s.vals = append(s.vals, 0)
		copy(s.vals[lo+1:], s.vals[lo:])
		s.vals[lo] = h
		return true
	}
	copy(s.vals[lo+1:], s.vals[lo:n-1])
	s.vals[lo] = h
	return true
}

// Values returns the retained hash values in ascending order. The slice
// aliases sketch state and must not be mutated.
func (s *Sketch) Values() []uint64 { return s.vals }

// SharesValue reports whether the two sketches have at least one common
// hash value — the paper's edge-candidate test ("at least one common entry
// in their p Min-Hash values").
func SharesValue(a, b *Sketch) bool {
	i, j := 0, 0
	for i < len(a.vals) && j < len(b.vals) {
		switch {
		case a.vals[i] == b.vals[j]:
			return true
		case a.vals[i] < b.vals[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// EstimateJaccard estimates the Jaccard coefficient of the underlying sets
// using the bottom-k estimator: merge the two sketches, keep the k = min(p,
// |union sketch|) smallest values of the union, and count how many of them
// appear in both sketches. Exact when both sets have at most p elements.
func EstimateJaccard(a, b *Sketch) float64 {
	if len(a.vals) == 0 || len(b.vals) == 0 {
		return 0
	}
	k := a.p
	if b.p < k {
		k = b.p
	}
	shared, unionSeen := 0, 0
	i, j := 0, 0
	for unionSeen < k && (i < len(a.vals) || j < len(b.vals)) {
		switch {
		case j >= len(b.vals) || (i < len(a.vals) && a.vals[i] < b.vals[j]):
			i++
		case i >= len(a.vals) || b.vals[j] < a.vals[i]:
			j++
		default: // equal
			shared++
			i++
			j++
		}
		unionSeen++
	}
	if unionSeen == 0 {
		return 0
	}
	return float64(shared) / float64(unionSeen)
}

// RecommendedP returns the sketch size the paper prescribes,
// p = min(τ/(2β), 1/β) rounded up, clamped to at least 2, where τ is the
// high-state threshold and β the edge-correlation threshold. Larger p
// lowers the false-negative rate of the candidate screen at slightly
// higher cost.
func RecommendedP(tau int, beta float64) int {
	if beta <= 0 {
		return 2
	}
	a := float64(tau) / (2 * beta)
	b := 1 / beta
	m := a
	if b < m {
		m = b
	}
	p := int(m + 0.9999)
	if p < 2 {
		p = 2
	}
	return p
}
