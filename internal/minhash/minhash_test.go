package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42, 7) != Hash64(42, 7) {
		t.Fatalf("hash not deterministic")
	}
	if Hash64(42, 7) == Hash64(42, 8) {
		t.Fatalf("seed has no effect")
	}
	if Hash64(42, 7) == Hash64(43, 7) {
		t.Fatalf("id has no effect")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	totalBits := 0
	samples := 200
	for i := 0; i < samples; i++ {
		a := Hash64(uint64(i), 1)
		b := Hash64(uint64(i)^1, 1)
		diff := a ^ b
		for diff != 0 {
			totalBits++
			diff &= diff - 1
		}
	}
	avg := float64(totalBits) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: avg %v bits flipped, want ≈32", avg)
	}
}

func TestSketchKeepsPSmallest(t *testing.T) {
	s := New(3, 0)
	hashes := []uint64{50, 10, 40, 20, 30}
	for _, h := range hashes {
		s.AddHash(h)
	}
	got := s.Values()
	want := []uint64{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestSketchDuplicateIdempotent(t *testing.T) {
	s := New(4, 9)
	if !s.Add(1) {
		t.Fatalf("first add should change sketch")
	}
	if s.Add(1) {
		t.Fatalf("duplicate add should not change sketch")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSketchRejectsLargeWhenFull(t *testing.T) {
	s := New(2, 0)
	s.AddHash(10)
	s.AddHash(20)
	if s.AddHash(30) {
		t.Fatalf("larger hash accepted into full sketch")
	}
	if !s.AddHash(5) {
		t.Fatalf("smaller hash rejected")
	}
	vals := s.Values()
	if vals[0] != 5 || vals[1] != 10 {
		t.Fatalf("Values = %v, want [5 10]", vals)
	}
}

func TestSketchReset(t *testing.T) {
	s := New(2, 0)
	s.Add(1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Reset did not empty sketch")
	}
	if s.P() != 2 {
		t.Fatalf("P changed on reset")
	}
}

func TestNewClampsP(t *testing.T) {
	if New(0, 0).P() != 1 {
		t.Fatalf("p not clamped to 1")
	}
}

func TestSharesValue(t *testing.T) {
	a := New(3, 0)
	b := New(3, 0)
	for _, h := range []uint64{1, 5, 9} {
		a.AddHash(h)
	}
	for _, h := range []uint64{2, 5, 8} {
		b.AddHash(h)
	}
	if !SharesValue(a, b) {
		t.Fatalf("shared value 5 not detected")
	}
	c := New(3, 0)
	c.AddHash(100)
	if SharesValue(a, c) {
		t.Fatalf("false positive share")
	}
}

// TestExactJaccardSmallSets: with sets smaller than p the estimator is
// exact.
func TestExactJaccardSmallSets(t *testing.T) {
	a := New(16, 3)
	b := New(16, 3)
	// A = {1..6}, B = {4..9}: |∩|=3, |∪|=9, J=1/3.
	for id := uint64(1); id <= 6; id++ {
		a.Add(id)
	}
	for id := uint64(4); id <= 9; id++ {
		b.Add(id)
	}
	if got := EstimateJaccard(a, b); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("exact Jaccard = %v, want 1/3", got)
	}
	empty := New(16, 3)
	if EstimateJaccard(a, empty) != 0 {
		t.Fatalf("empty set Jaccard should be 0")
	}
}

// TestEstimateJaccardAccuracy: bottom-k estimate converges to the true
// Jaccard for large sets.
func TestEstimateJaccardAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, wantJ := range []float64{0.1, 0.25, 0.5, 0.8} {
		const union = 4000
		inter := int(float64(union) * wantJ)
		only := (union - inter) / 2
		a := New(256, 77)
		b := New(256, 77)
		id := uint64(1)
		for i := 0; i < inter; i++ {
			a.Add(id)
			b.Add(id)
			id++
		}
		for i := 0; i < only; i++ {
			a.Add(id)
			id++
		}
		for i := 0; i < only; i++ {
			b.Add(id)
			id++
		}
		got := EstimateJaccard(a, b)
		trueJ := float64(inter) / float64(inter+2*only)
		if math.Abs(got-trueJ) > 0.08 {
			t.Fatalf("estimate %v too far from true %v", got, trueJ)
		}
		_ = rng
	}
}

// TestMatchProbabilityEqualsJaccard verifies the paper's core claim: the
// probability that two keywords share their minimum hash value equals
// their Jaccard coefficient (Section 3.2.2).
func TestMatchProbabilityEqualsJaccard(t *testing.T) {
	const trials = 3000
	matches := 0
	// A and B share 1 of 4 union elements -> J = 0.25.
	for seed := uint64(0); seed < trials; seed++ {
		a := New(1, seed)
		b := New(1, seed)
		a.Add(1)
		a.Add(2)
		b.Add(1)
		b.Add(3)
		b.Add(4)
		// union {1,2,3,4}, inter {1}: J = 1/4
		if SharesValue(a, b) {
			matches++
		}
	}
	got := float64(matches) / trials
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("min-hash match rate %v, want ≈0.25", got)
	}
}

func TestRecommendedP(t *testing.T) {
	cases := []struct {
		tau  int
		beta float64
		want int
	}{
		{4, 0.2, 5},   // min(10, 5) = 5
		{4, 0.1, 10},  // min(20, 10) = 10
		{1, 0.25, 2},  // min(2, 4) = 2
		{4, 0, 2},     // degenerate beta
		{100, 0.9, 2}, // min(55.6,1.11)→2 after clamp
	}
	for _, tc := range cases {
		if got := RecommendedP(tc.tau, tc.beta); got != tc.want {
			t.Errorf("RecommendedP(%d,%v) = %d, want %d", tc.tau, tc.beta, got, tc.want)
		}
	}
}

// TestSketchSortedInvariant property-checks that Values stays sorted and
// bounded by p under arbitrary insertions.
func TestSketchSortedInvariant(t *testing.T) {
	f := func(ids []uint64) bool {
		s := New(8, 1)
		for _, id := range ids {
			s.Add(id)
		}
		vals := s.Values()
		if len(vals) > 8 {
			return false
		}
		for i := 1; i < len(vals); i++ {
			if vals[i-1] >= vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
