package quasi

import (
	"sort"

	"repro/internal/dygraph"
)

// MaximalMQCs exhaustively enumerates the node sets of maximal majority
// quasi cliques (strict majority degree within the induced subgraph,
// connected, ≥ 3 nodes) in a small graph. Exponential — intended for
// cross-validation only: the engine's completeness test uses it to verify
// the paper's claim that clustering by the short-cycle property "ensures
// that no MQC based clique is missed" (Section 4.2). Inputs beyond ~16
// nodes are rejected.
func MaximalMQCs(s *Subgraph) [][]dygraph.NodeID {
	nodes := s.Nodes()
	n := len(nodes)
	if n > 16 {
		panic("quasi: MaximalMQCs is exponential; use ≤16 nodes")
	}
	var mqcs []uint32 // bitmasks over nodes index
	for mask := uint32(7); mask < 1<<n; mask++ {
		cnt := popcount(mask)
		if cnt < 3 {
			continue
		}
		if isMQCMask(s, nodes, mask, cnt) {
			mqcs = append(mqcs, mask)
		}
	}
	// Keep only maximal sets.
	var maximal []uint32
	for _, m := range mqcs {
		isMax := true
		for _, o := range mqcs {
			if o != m && m&o == m {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, m)
		}
	}
	out := make([][]dygraph.NodeID, 0, len(maximal))
	for _, m := range maximal {
		var set []dygraph.NodeID
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				set = append(set, nodes[i])
			}
		}
		out = append(out, set)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// isMQCMask checks the strict-majority degree condition and connectivity
// of the induced subgraph selected by mask.
func isMQCMask(s *Subgraph, nodes []dygraph.NodeID, mask uint32, cnt int) bool {
	need := (cnt-1)/2 + 1
	idx := make(map[dygraph.NodeID]int, cnt)
	for i, node := range nodes {
		if mask&(1<<i) != 0 {
			idx[node] = i
		}
	}
	// Degree check.
	for node, i := range idx {
		deg := 0
		for other := range s.adj[node] {
			if j, ok := idx[other]; ok && j != i {
				deg++
			}
		}
		if deg < need {
			return false
		}
	}
	// Connectivity of the induced subgraph (strict majority implies it
	// for cnt ≥ 3, but verify to stay independent of that argument).
	var start dygraph.NodeID
	//repro:order-insensitive arbitrary start node; the connectivity verdict is the same from any node
	for node := range idx {
		start = node
		break
	}
	visited := map[dygraph.NodeID]struct{}{start: {}}
	stack := []dygraph.NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range s.adj[cur] { //repro:order-insensitive DFS frontier; the visited set is visit-order independent
			if _, in := idx[nb]; !in {
				continue
			}
			if _, ok := visited[nb]; !ok {
				visited[nb] = struct{}{}
				stack = append(stack, nb)
			}
		}
	}
	return len(visited) == cnt
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
