package quasi

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
)

func clique(n int) *Subgraph {
	s := NewSubgraph()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddEdge(dygraph.NodeID(i), dygraph.NodeID(j))
		}
	}
	return s
}

func cycle(n int) *Subgraph {
	s := NewSubgraph()
	for i := 0; i < n; i++ {
		s.AddEdge(dygraph.NodeID(i), dygraph.NodeID((i+1)%n))
	}
	return s
}

func path(n int) *Subgraph {
	s := NewSubgraph()
	for i := 0; i+1 < n; i++ {
		s.AddEdge(dygraph.NodeID(i), dygraph.NodeID(i+1))
	}
	return s
}

func TestBasicCounts(t *testing.T) {
	s := clique(4)
	if s.NodeCount() != 4 || s.EdgeCount() != 6 {
		t.Fatalf("K4 counts wrong: %d nodes %d edges", s.NodeCount(), s.EdgeCount())
	}
	if s.Degree(0) != 3 || s.Degree(dygraph.NodeID(99)) != 0 {
		t.Fatalf("degree wrong")
	}
	if len(s.Nodes()) != 4 || len(s.Edges()) != 6 {
		t.Fatalf("listing wrong")
	}
	if !s.HasEdge(0, 1) || s.HasEdge(0, 9) {
		t.Fatalf("HasEdge wrong")
	}
}

func TestFromEdgesAndEdgeSet(t *testing.T) {
	edges := []dygraph.Edge{dygraph.NewEdge(1, 2), dygraph.NewEdge(2, 3)}
	if FromEdges(edges).EdgeCount() != 2 {
		t.Fatalf("FromEdges wrong")
	}
	set := map[dygraph.Edge]struct{}{dygraph.NewEdge(1, 2): {}}
	if FromEdgeSet(set).EdgeCount() != 1 {
		t.Fatalf("FromEdgeSet wrong")
	}
	s := NewSubgraph()
	s.AddEdge(1, 1) // self loop ignored
	if s.EdgeCount() != 0 {
		t.Fatalf("self loop stored")
	}
}

func TestGammaQuasiClique(t *testing.T) {
	k5 := clique(5)
	if !k5.IsGammaQuasiClique(1.0) {
		t.Fatalf("K5 should be a 1-quasi clique")
	}
	c5 := cycle(5)
	// Each node in C5 has degree 2; (N-1)/2 = 2, so it's exactly a ½-QC.
	if !c5.IsGammaQuasiClique(0.5) {
		t.Fatalf("C5 should be a ½-quasi clique")
	}
	if c5.IsGammaQuasiClique(0.75) {
		t.Fatalf("C5 should not be a ¾-quasi clique")
	}
	p4 := path(4)
	if p4.IsGammaQuasiClique(0.5) {
		t.Fatalf("P4 endpoints have degree 1 < 1.5")
	}
	single := NewSubgraph()
	single.AddNode(1)
	if !single.IsGammaQuasiClique(1.0) {
		t.Fatalf("single node is trivially a clique")
	}
}

func TestIsMQC(t *testing.T) {
	if !clique(7).IsMQC() {
		t.Fatalf("K7 is an MQC")
	}
	if !cycle(3).IsMQC() {
		t.Fatalf("triangle is an MQC")
	}
	// C5: all degrees exactly (N-1)/2 = 2, not a strict majority.
	// This is the Theorem 1 boundary case; see IsMQC doc comment.
	if cycle(5).IsMQC() {
		t.Fatalf("C5 must not count as MQC (strict majority)")
	}
	if cycle(7).IsMQC() {
		t.Fatalf("C7 is not an MQC")
	}
	if path(4).IsMQC() {
		t.Fatalf("P4 is not an MQC")
	}
	if path(3).IsMQC() {
		t.Fatalf("P3 must not count as MQC (strict majority)")
	}
	// Diamond (K4 minus an edge): degrees 2,3,3,2, need 2 -> MQC.
	d := clique(4)
	d = NewSubgraph()
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 0)
	d.AddEdge(0, 2)
	if !d.IsMQC() {
		t.Fatalf("diamond is an MQC")
	}
}

func TestSatisfiesSCP(t *testing.T) {
	cases := []struct {
		name string
		s    *Subgraph
		want bool
	}{
		{"triangle", cycle(3), true},
		{"square", cycle(4), true},
		{"pentagon", cycle(5), false},
		{"K4", clique(4), true},
		{"path", path(3), false},
		{"empty", NewSubgraph(), true},
	}
	for _, tc := range cases {
		if got := tc.s.SatisfiesSCP(); got != tc.want {
			t.Errorf("%s: SCP = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Two squares sharing an edge: every edge on a 4-cycle.
	s := cycle(4)
	s.AddEdge(0, 4)
	s.AddEdge(4, 5)
	s.AddEdge(5, 1)
	if !s.SatisfiesSCP() {
		t.Fatalf("glued squares should satisfy SCP")
	}
	// Dangling edge breaks SCP.
	s.AddEdge(5, 9)
	if s.SatisfiesSCP() {
		t.Fatalf("dangling edge must violate SCP")
	}
}

// TestTheorem1 property-checks the paper's Theorem 1: every majority quasi
// clique satisfies the short-cycle property. Random graphs are generated
// and filtered to MQCs; each must pass SCP.
func TestTheorem1MQCImpliesSCP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 4000 && checked < 300; trial++ {
		n := 3 + rng.Intn(7)
		s := NewSubgraph()
		for i := 0; i < n; i++ {
			s.AddNode(dygraph.NodeID(i))
		}
		p := 0.4 + rng.Float64()*0.5
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					s.AddEdge(dygraph.NodeID(i), dygraph.NodeID(j))
				}
			}
		}
		if !s.IsMQC() || !s.IsConnected() {
			continue
		}
		checked++
		if !s.SatisfiesSCP() {
			t.Fatalf("MQC without SCP found: %v", s.Edges())
		}
		if n >= 3 && s.Diameter() > 2 {
			t.Fatalf("MQC with diameter > 2 found (Pei et al. property): %v", s.Edges())
		}
	}
	if checked < 50 {
		t.Fatalf("generated too few MQCs to be meaningful: %d", checked)
	}
}

// TestSCPDoesNotImplyMQC: the paper's Figure 3(b) point — SCP clusters
// need not be MQCs. Two squares sharing one edge (6 nodes): corner nodes
// have degree 2 < ceil(5/2)=3.
func TestSCPDoesNotImplyMQC(t *testing.T) {
	s := NewSubgraph()
	// square 0-1-2-3, square 2-3-4-5 sharing edge 2-3
	s.AddEdge(0, 1)
	s.AddEdge(1, 2)
	s.AddEdge(2, 3)
	s.AddEdge(3, 0)
	s.AddEdge(2, 4)
	s.AddEdge(4, 5)
	s.AddEdge(5, 3)
	if !s.SatisfiesSCP() {
		t.Fatalf("construction should satisfy SCP")
	}
	if s.IsMQC() {
		t.Fatalf("construction should not be an MQC")
	}
}

func TestConnectivity(t *testing.T) {
	s := NewSubgraph()
	if !s.IsConnected() {
		t.Fatalf("empty graph counts as connected")
	}
	s.AddNode(1)
	if !s.IsConnected() {
		t.Fatalf("single node connected")
	}
	s.AddNode(2)
	if s.IsConnected() {
		t.Fatalf("two isolated nodes are disconnected")
	}
	s.AddEdge(1, 2)
	if !s.IsConnected() {
		t.Fatalf("edge connects them")
	}
}

func TestIsBiconnected(t *testing.T) {
	if !cycle(4).IsBiconnected() || !clique(5).IsBiconnected() {
		t.Fatalf("cycles and cliques are biconnected")
	}
	if path(3).IsBiconnected() {
		t.Fatalf("path has articulation point")
	}
	// Two triangles sharing a node: articulation point.
	s := NewSubgraph()
	s.AddEdge(0, 1)
	s.AddEdge(1, 2)
	s.AddEdge(0, 2)
	s.AddEdge(2, 3)
	s.AddEdge(3, 4)
	s.AddEdge(2, 4)
	if s.IsBiconnected() {
		t.Fatalf("bowtie is not biconnected")
	}
	if pts := s.ArticulationPoints(); len(pts) != 1 || pts[0] != 2 {
		t.Fatalf("articulation points = %v, want [2]", pts)
	}
	two := NewSubgraph()
	two.AddEdge(0, 1)
	if two.IsBiconnected() {
		t.Fatalf("K2 not biconnected by our definition")
	}
	if cycle(4).ArticulationPoints() != nil {
		t.Fatalf("cycle has no articulation points")
	}
}

func TestDiameter(t *testing.T) {
	if d := clique(4).Diameter(); d != 1 {
		t.Fatalf("K4 diameter = %d, want 1", d)
	}
	if d := cycle(6).Diameter(); d != 3 {
		t.Fatalf("C6 diameter = %d, want 3", d)
	}
	if d := path(5).Diameter(); d != 4 {
		t.Fatalf("P5 diameter = %d, want 4", d)
	}
	if d := NewSubgraph().Diameter(); d != -1 {
		t.Fatalf("empty diameter = %d, want -1", d)
	}
	disc := NewSubgraph()
	disc.AddNode(1)
	disc.AddNode(2)
	if d := disc.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}
