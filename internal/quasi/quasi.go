// Package quasi provides verification predicates for the cluster classes
// discussed in the paper: γ-quasi cliques and majority quasi cliques
// (Section 1.1), the short-cycle property (Section 4.1), biconnectivity
// (Theorem 2) and graph diameter (Definition 1).
//
// These checks are intentionally simple and exhaustive — they run on small
// cluster subgraphs (a handful of nodes) in tests, analyses and the
// MQC-vs-aMQC experiments, never on the full stream graph.
package quasi

import (
	"sort"

	"repro/internal/dygraph"
)

// Subgraph is a small standalone undirected graph, typically one cluster,
// on which the predicates in this package operate.
type Subgraph struct {
	adj map[dygraph.NodeID]map[dygraph.NodeID]struct{}
}

// NewSubgraph returns an empty subgraph.
func NewSubgraph() *Subgraph {
	return &Subgraph{adj: make(map[dygraph.NodeID]map[dygraph.NodeID]struct{})}
}

// FromEdges builds a subgraph from an edge list.
func FromEdges(edges []dygraph.Edge) *Subgraph {
	s := NewSubgraph()
	for _, e := range edges {
		s.AddEdge(e.U, e.V)
	}
	return s
}

// FromEdgeSet builds a subgraph from a cluster's edge set.
func FromEdgeSet(edges map[dygraph.Edge]struct{}) *Subgraph {
	s := NewSubgraph()
	//repro:order-insensitive set insertion; AddEdge is idempotent and commutative
	for e := range edges {
		s.AddEdge(e.U, e.V)
	}
	return s
}

// AddNode inserts an isolated node if absent.
func (s *Subgraph) AddNode(n dygraph.NodeID) {
	if _, ok := s.adj[n]; !ok {
		s.adj[n] = make(map[dygraph.NodeID]struct{})
	}
}

// AddEdge inserts an undirected edge, creating endpoints as needed.
func (s *Subgraph) AddEdge(a, b dygraph.NodeID) {
	if a == b {
		return
	}
	s.AddNode(a)
	s.AddNode(b)
	s.adj[a][b] = struct{}{}
	s.adj[b][a] = struct{}{}
}

// HasEdge reports whether the edge exists.
func (s *Subgraph) HasEdge(a, b dygraph.NodeID) bool {
	_, ok := s.adj[a][b]
	return ok
}

// NodeCount returns the number of nodes.
func (s *Subgraph) NodeCount() int { return len(s.adj) }

// EdgeCount returns the number of edges.
func (s *Subgraph) EdgeCount() int {
	total := 0
	for _, nbrs := range s.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Nodes returns the nodes sorted ascending.
func (s *Subgraph) Nodes() []dygraph.NodeID {
	out := make([]dygraph.NodeID, 0, len(s.adj))
	for n := range s.adj {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns the edges in canonical orientation, sorted.
func (s *Subgraph) Edges() []dygraph.Edge {
	var out []dygraph.Edge
	for a, nbrs := range s.adj { //repro:order-insensitive collects each canonical edge once; out is sorted below
		for b := range nbrs {
			if a < b {
				out = append(out, dygraph.Edge{U: a, V: b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Degree returns the degree of n.
func (s *Subgraph) Degree(n dygraph.NodeID) int { return len(s.adj[n]) }

// IsGammaQuasiClique reports whether every node is adjacent to at least
// γ·(N−1) other nodes of the subgraph, the paper's γ-quasi clique
// definition. γ=1 means complete clique.
func (s *Subgraph) IsGammaQuasiClique(gamma float64) bool {
	n := len(s.adj)
	if n < 2 {
		return n == 1 // a single node is trivially a clique
	}
	need := gamma * float64(n-1)
	for _, nbrs := range s.adj {
		if float64(len(nbrs)) < need {
			return false
		}
	}
	return true
}

// IsMQC reports whether the subgraph is a majority quasi clique: every
// node adjacent to a strict majority (> (N−1)/2) of the remaining nodes.
// This is the O(N²) membership check described in Section 4.2.
//
// Note on the boundary: the paper states Theorem 1 for γ ≥ ½, but at
// exactly half the theorem fails (C5 has all degrees equal to (N−1)/2 yet
// contains no cycle shorter than 5, and P3 similarly). The theorem's
// pigeonhole argument — |Su|+|Sv| > |Su∪Sv| forces a second common
// neighbor — needs the strict inequality, which also matches the paper's
// own reading of MQC as "connected with a majority of the remaining
// nodes". We therefore use the strict form; see DESIGN.md.
func (s *Subgraph) IsMQC() bool {
	n := len(s.adj)
	if n < 2 {
		return n == 1
	}
	need := (n-1)/2 + 1 // smallest integer strictly greater than (n-1)/2
	for _, nbrs := range s.adj {
		if len(nbrs) < need {
			return false
		}
	}
	return true
}

// IsMQCEdges is IsMQC evaluated directly on an edge list, for hot-path
// callers: the detector re-verifies exact-MQC membership for every
// dirty cluster every quantum, and building a Subgraph (a map of maps)
// per check dominated that cost. degrees is caller-owned scratch,
// cleared and reused across calls. edges must be duplicate-free (a
// cluster's edge set always is); then the result matches
// FromEdges(edges).IsMQC() exactly.
func IsMQCEdges(edges []dygraph.Edge, degrees map[dygraph.NodeID]int) bool {
	clear(degrees)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		degrees[e.U]++
		degrees[e.V]++
	}
	n := len(degrees)
	if n < 2 {
		return n == 1
	}
	need := (n-1)/2 + 1
	for _, d := range degrees {
		if d < need {
			return false
		}
	}
	return true
}

// SatisfiesSCP reports whether every edge of the subgraph lies on a cycle
// of length at most 4 using only subgraph edges — the short-cycle property
// of Section 4.1. A subgraph with no edges satisfies SCP vacuously.
func (s *Subgraph) SatisfiesSCP() bool {
	for a, nbrs := range s.adj { //repro:order-insensitive ∀-predicate over edges; same verdict in any order
		for b := range nbrs {
			if a > b {
				continue
			}
			if !s.edgeOnShortCycle(a, b) {
				return false
			}
		}
	}
	return true
}

// edgeOnShortCycle reports whether edge (a,b) closes a cycle of length 3
// or 4, i.e. a second path of length ≤ 3 exists between a and b.
func (s *Subgraph) edgeOnShortCycle(a, b dygraph.NodeID) bool {
	// Length-3 cycle: common neighbor.
	na, nb := s.adj[a], s.adj[b]
	if len(na) > len(nb) {
		na, nb = nb, na
	}
	for x := range na {
		if _, ok := nb[x]; ok {
			return true
		}
	}
	// Length-4 cycle: n3 ~ a, n4 ~ b, n3–n4 an edge.
	for n3 := range s.adj[a] { //repro:order-insensitive ∃-predicate; any order finds a witness iff one exists
		if n3 == b {
			continue
		}
		for n4 := range s.adj[b] { //repro:order-insensitive ∃-predicate; any order finds a witness iff one exists
			if n4 == a || n4 == n3 {
				continue
			}
			if s.HasEdge(n3, n4) {
				return true
			}
		}
	}
	return false
}

// IsConnected reports whether the subgraph is connected (true for empty
// and single-node subgraphs).
func (s *Subgraph) IsConnected() bool {
	if len(s.adj) <= 1 {
		return true
	}
	var start dygraph.NodeID
	//repro:order-insensitive arbitrary start node; the connectivity verdict is the same from any node
	for n := range s.adj {
		start = n
		break
	}
	return s.reachableFrom(start, nil) == len(s.adj)
}

// IsBiconnected reports whether the subgraph is biconnected: connected,
// at least 3 nodes, and no articulation point. Theorem 2 of the paper
// states every SCP cluster passes this check. The implementation removes
// each node in turn and verifies connectivity — O(N·(N+E)), fine for
// cluster-sized inputs.
func (s *Subgraph) IsBiconnected() bool {
	n := len(s.adj)
	if n < 3 {
		return false
	}
	if !s.IsConnected() {
		return false
	}
	for skip := range s.adj { //repro:order-insensitive ∀-predicate: every node is tried as the removed one
		var start dygraph.NodeID
		found := false
		for cand := range s.adj { //repro:order-insensitive arbitrary surviving start; reachability count is start-independent
			if cand != skip {
				start = cand
				found = true
				break
			}
		}
		if !found {
			continue
		}
		skipSet := map[dygraph.NodeID]struct{}{skip: {}}
		if s.reachableFrom(start, skipSet) != n-1 {
			return false
		}
	}
	return true
}

// ArticulationPoints returns the nodes whose removal disconnects the
// subgraph, sorted. Used by node-deletion tests mirroring the paper's
// Figure 6 example.
func (s *Subgraph) ArticulationPoints() []dygraph.NodeID {
	var out []dygraph.NodeID
	if len(s.adj) < 3 {
		return nil
	}
	full := s.componentCount(nil)
	//repro:order-insensitive each candidate is judged independently; out is sorted below
	for cand := range s.adj {
		skipSet := map[dygraph.NodeID]struct{}{cand: {}}
		if s.componentCount(skipSet) > full {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// componentCount returns the number of connected components after skipping
// the given nodes.
func (s *Subgraph) componentCount(skip map[dygraph.NodeID]struct{}) int {
	visited := make(map[dygraph.NodeID]struct{}, len(s.adj))
	count := 0
	for n := range s.adj { //repro:order-insensitive flood fill; the component count is visit-order independent
		if _, sk := skip[n]; sk {
			continue
		}
		if _, ok := visited[n]; ok {
			continue
		}
		count++
		stack := []dygraph.NodeID{n}
		visited[n] = struct{}{}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for nb := range s.adj[cur] { //repro:order-insensitive DFS frontier; the visited set is visit-order independent
				if _, sk := skip[nb]; sk {
					continue
				}
				if _, ok := visited[nb]; !ok {
					visited[nb] = struct{}{}
					stack = append(stack, nb)
				}
			}
		}
	}
	return count
}

// reachableFrom returns how many nodes (excluding skipped ones) are
// reachable from start.
func (s *Subgraph) reachableFrom(start dygraph.NodeID, skip map[dygraph.NodeID]struct{}) int {
	visited := map[dygraph.NodeID]struct{}{start: {}}
	stack := []dygraph.NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range s.adj[cur] { //repro:order-insensitive DFS frontier; the visited set is visit-order independent
			if _, sk := skip[nb]; sk {
				continue
			}
			if _, ok := visited[nb]; !ok {
				visited[nb] = struct{}{}
				stack = append(stack, nb)
			}
		}
	}
	return len(visited)
}

// Diameter returns the longest shortest-path distance between any pair of
// nodes (Definition 1), or -1 if the subgraph is disconnected or empty.
// The paper uses the fact that γ ≥ ½ quasi cliques have diameter ≤ 2
// in the Theorem 1 proof.
func (s *Subgraph) Diameter() int {
	if len(s.adj) == 0 {
		return -1
	}
	diameter := 0
	for src := range s.adj { //repro:order-insensitive max over all sources; max is commutative
		dist := map[dygraph.NodeID]int{src: 0}
		queue := []dygraph.NodeID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for nb := range s.adj[cur] { //repro:order-insensitive BFS layer; distances are set at first discovery, always the true layer
				if _, ok := dist[nb]; !ok {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		if len(dist) != len(s.adj) {
			return -1
		}
		for _, d := range dist { //repro:order-insensitive max accumulation; max is commutative
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}
