// Package tablefmt renders the experiment harness's tables and figure
// series as aligned ASCII, so `cmd/experiments` output reads like the
// paper's evaluation section.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) *Table {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series is one labelled line of a "figure": y values over shared x ticks.
type Series struct {
	Label string
	Y     []float64
}

// Figure renders figure data as a grid: one column per x tick, one row per
// series — the textual analogue of the paper's recall/precision plots.
func Figure(title, xlabel string, xs []string, series []Series) string {
	t := New(title, append([]string{xlabel}, xs...)...)
	for _, s := range series {
		vals := make([]any, 0, len(s.Y)+1)
		vals = append(vals, s.Label)
		for _, y := range s.Y {
			vals = append(vals, y)
		}
		t.Row(vals...)
	}
	return t.String()
}
