package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := New("Title", "A", "LongHeader").
		Row("x", 1).
		Row("longer", 2.5).
		String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title missing: %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// All data lines should have equal width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Fatalf("ragged line %q (want width %d)\n%s", l, w, out)
		}
	}
	if !strings.Contains(out, "2.5") {
		t.Fatalf("float formatting lost value:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0:    "1",
		0.5:    "0.5",
		0.25:   "0.25",
		0.1239: "0.124",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	out := New("", "H").Row("v").String()
	if strings.HasPrefix(out, "\n") {
		t.Fatalf("empty title produced leading newline")
	}
}

func TestRowWiderThanHeaders(t *testing.T) {
	out := New("t", "only").Row("a", "b", "c").String()
	if !strings.Contains(out, "c") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestFigure(t *testing.T) {
	out := Figure("Fig", "recall", []string{"Δ=80", "Δ=160"}, []Series{
		{Label: "β=0.10", Y: []float64{0.5, 1}},
		{Label: "β=0.25", Y: []float64{0.25, 0.75}},
	})
	for _, want := range []string{"Fig", "Δ=80", "β=0.10", "0.75", "recall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q:\n%s", want, out)
		}
	}
}
