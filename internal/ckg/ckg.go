// Package ckg maintains the full Correlated Keyword Graph: every keyword
// in the current sliding window is a node, and two keywords share an edge
// when some user used both within one quantum (Section 1.1).
//
// The detector itself never clusters on the CKG — that is the point of the
// paper's AKG reduction — but the Section 7.4 experiment needs the CKG's
// size to demonstrate the reduction (AKG edges < 2% of CKG, < 5% of nodes
// bursty), so this package tracks it with reference-counted nodes and
// edges over the window ring.
package ckg

import (
	"repro/internal/dygraph"
)

// UserKeywords is one user's distinct keywords within one quantum.
type UserKeywords struct {
	User     uint64
	Keywords []dygraph.NodeID
}

// Graph is the windowed CKG. It counts, per node and per edge, how many
// (quantum, user) observations support it; observations expire as the
// window slides.
type Graph struct {
	window int
	ring   [][]UserKeywords // one entry per live quantum
	nodes  map[dygraph.NodeID]int
	edges  map[dygraph.Edge]int
	// dirty is the set of keywords whose reference counts moved during
	// the last AddQuantum (observed this quantum or expired out of the
	// window) — the CKG-level analogue of the AKG's support-dirty set,
	// so harnesses measuring the full graph can also confine their
	// per-quantum work to the touched region.
	dirty dygraph.DirtySet
}

// New returns a CKG over a window of w quanta. w must be ≥ 1.
func New(w int) *Graph {
	if w < 1 {
		w = 1
	}
	return &Graph{
		window: w,
		nodes:  make(map[dygraph.NodeID]int),
		edges:  make(map[dygraph.Edge]int),
	}
}

// AddQuantum ingests one quantum of per-user keyword sets and slides the
// window, expiring the oldest quantum if the window is full.
func (g *Graph) AddQuantum(batch []UserKeywords) {
	g.dirty.Reset()
	if len(g.ring) == g.window {
		g.expire(g.ring[0])
		copy(g.ring, g.ring[1:])
		g.ring = g.ring[:len(g.ring)-1]
	}
	// Keep our own copy: callers reuse batch slices.
	cp := make([]UserKeywords, len(batch))
	for i, uk := range batch {
		kws := make([]dygraph.NodeID, len(uk.Keywords))
		copy(kws, uk.Keywords)
		cp[i] = UserKeywords{User: uk.User, Keywords: kws}
	}
	g.ring = append(g.ring, cp)
	for _, uk := range cp {
		g.apply(uk, +1)
	}
}

func (g *Graph) expire(batch []UserKeywords) {
	for _, uk := range batch {
		g.apply(uk, -1)
	}
}

func (g *Graph) apply(uk UserKeywords, delta int) {
	for _, k := range uk.Keywords {
		g.dirty.Mark(k)
		g.nodes[k] += delta
		if g.nodes[k] <= 0 {
			delete(g.nodes, k)
		}
	}
	for i := 0; i < len(uk.Keywords); i++ {
		for j := i + 1; j < len(uk.Keywords); j++ {
			a, b := uk.Keywords[i], uk.Keywords[j]
			if a == b {
				continue
			}
			e := dygraph.NewEdge(a, b)
			g.edges[e] += delta
			if g.edges[e] <= 0 {
				delete(g.edges, e)
			}
		}
	}
}

// NodeCount returns the number of keywords in the windowed CKG.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of co-occurrence edges in the windowed CKG.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// HasNode reports whether keyword k is in the window.
func (g *Graph) HasNode(k dygraph.NodeID) bool {
	_, ok := g.nodes[k]
	return ok
}

// HasEdge reports whether the co-occurrence edge exists in the window.
func (g *Graph) HasEdge(a, b dygraph.NodeID) bool {
	_, ok := g.edges[dygraph.NewEdge(a, b)]
	return ok
}

// QuantaHeld returns how many quanta are currently inside the window.
func (g *Graph) QuantaHeld() int { return len(g.ring) }

// DirtyNodes returns the keywords touched (observed or expired) by the
// last AddQuantum, in mark order; valid until the next AddQuantum.
func (g *Graph) DirtyNodes() []dygraph.NodeID { return g.dirty.Nodes() }
