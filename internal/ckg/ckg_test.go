package ckg

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
)

func uk(user uint64, kws ...dygraph.NodeID) UserKeywords {
	return UserKeywords{User: user, Keywords: kws}
}

func TestNodesAndEdgesFromCoOccurrence(t *testing.T) {
	g := New(3)
	g.AddQuantum([]UserKeywords{uk(1, 10, 11, 12), uk(2, 10, 13)})
	if g.NodeCount() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NodeCount())
	}
	// user1 contributes edges (10,11),(10,12),(11,12); user2 (10,13).
	if g.EdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4", g.EdgeCount())
	}
	if !g.HasEdge(11, 10) || g.HasEdge(11, 13) {
		t.Fatalf("edge membership wrong")
	}
	if !g.HasNode(13) || g.HasNode(99) {
		t.Fatalf("node membership wrong")
	}
}

func TestWindowExpiry(t *testing.T) {
	g := New(2)
	g.AddQuantum([]UserKeywords{uk(1, 10, 11)})
	g.AddQuantum([]UserKeywords{uk(2, 20, 21)})
	if g.NodeCount() != 4 || g.QuantaHeld() != 2 {
		t.Fatalf("setup wrong: %d nodes %d quanta", g.NodeCount(), g.QuantaHeld())
	}
	g.AddQuantum([]UserKeywords{uk(3, 30, 31)})
	// First quantum expired: 10,11 gone.
	if g.HasNode(10) || g.HasNode(11) {
		t.Fatalf("expired keywords survive")
	}
	if g.HasEdge(10, 11) {
		t.Fatalf("expired edge survives")
	}
	if g.NodeCount() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NodeCount())
	}
}

func TestRefCountAcrossQuanta(t *testing.T) {
	g := New(2)
	g.AddQuantum([]UserKeywords{uk(1, 10, 11)})
	g.AddQuantum([]UserKeywords{uk(2, 10, 11)})
	g.AddQuantum([]UserKeywords{uk(3, 99)})
	// (10,11) was observed in quantum 2 which is still in the window.
	if !g.HasEdge(10, 11) {
		t.Fatalf("edge with live support expired early")
	}
	g.AddQuantum([]UserKeywords{uk(4, 98)})
	if g.HasEdge(10, 11) || g.HasNode(10) {
		t.Fatalf("edge survived past its last observation")
	}
}

func TestDuplicateKeywordInSetIgnored(t *testing.T) {
	g := New(2)
	// Self pair (10,10) must not create a self edge.
	g.AddQuantum([]UserKeywords{uk(1, 10, 10, 11)})
	if g.HasEdge(10, 10) {
		t.Fatalf("self edge created")
	}
}

// TestCountsMatchBruteForce replays random quanta and verifies node/edge
// counts against a brute-force recomputation over the live window.
func TestCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const w = 4
	g := New(w)
	var history [][]UserKeywords
	for q := 0; q < 40; q++ {
		batch := make([]UserKeywords, 1+rng.Intn(5))
		for i := range batch {
			kws := make([]dygraph.NodeID, 0, 4)
			seen := map[dygraph.NodeID]struct{}{}
			for j := 0; j < 2+rng.Intn(3); j++ {
				k := dygraph.NodeID(rng.Intn(15))
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					kws = append(kws, k)
				}
			}
			batch[i] = UserKeywords{User: uint64(rng.Intn(6)), Keywords: kws}
		}
		history = append(history, batch)
		g.AddQuantum(batch)

		// Brute force over the last w quanta.
		lo := len(history) - w
		if lo < 0 {
			lo = 0
		}
		nodes := map[dygraph.NodeID]struct{}{}
		edges := map[dygraph.Edge]struct{}{}
		for _, b := range history[lo:] {
			for _, u := range b {
				for _, k := range u.Keywords {
					nodes[k] = struct{}{}
				}
				for i := 0; i < len(u.Keywords); i++ {
					for j := i + 1; j < len(u.Keywords); j++ {
						edges[dygraph.NewEdge(u.Keywords[i], u.Keywords[j])] = struct{}{}
					}
				}
			}
		}
		if g.NodeCount() != len(nodes) || g.EdgeCount() != len(edges) {
			t.Fatalf("quantum %d: got %d/%d nodes/edges, want %d/%d",
				q, g.NodeCount(), g.EdgeCount(), len(nodes), len(edges))
		}
	}
}

func TestWindowClamp(t *testing.T) {
	g := New(0)
	g.AddQuantum([]UserKeywords{uk(1, 1, 2)})
	if g.QuantaHeld() != 1 {
		t.Fatalf("window not clamped to 1")
	}
}

func TestCKGStateRoundTrip(t *testing.T) {
	g := New(3)
	g.AddQuantum([]UserKeywords{uk(1, 10, 11)})
	g.AddQuantum([]UserKeywords{uk(2, 11, 12)})
	s := g.State()
	g2 := FromState(s)
	if g2.NodeCount() != g.NodeCount() || g2.EdgeCount() != g.EdgeCount() {
		t.Fatalf("counts differ after restore: %d/%d vs %d/%d",
			g2.NodeCount(), g2.EdgeCount(), g.NodeCount(), g.EdgeCount())
	}
	if g2.QuantaHeld() != g.QuantaHeld() {
		t.Fatalf("quanta held differ")
	}
	// Both must expire identically as the window slides on.
	g.AddQuantum([]UserKeywords{uk(3, 13)})
	g2.AddQuantum([]UserKeywords{uk(3, 13)})
	g.AddQuantum([]UserKeywords{uk(4, 14)})
	g2.AddQuantum([]UserKeywords{uk(4, 14)})
	if g2.HasNode(10) != g.HasNode(10) || g2.HasEdge(11, 12) != g.HasEdge(11, 12) {
		t.Fatalf("post-restore evolution diverged")
	}
}
