package ckg

// State is a serialisable snapshot of the windowed CKG: the window length
// and the raw per-quantum observations (counts are rebuilt on restore).
type State struct {
	Window int
	Ring   [][]UserKeywords
}

// State captures the graph.
func (g *Graph) State() State {
	s := State{Window: g.window}
	for _, batch := range g.ring {
		cp := make([]UserKeywords, len(batch))
		copy(cp, batch)
		s.Ring = append(s.Ring, cp)
	}
	return s
}

// FromState reconstructs the graph by replaying the ring.
func FromState(s State) *Graph {
	g := New(s.Window)
	for _, batch := range s.Ring {
		g.AddQuantum(batch)
	}
	return g
}
