// Package vfs is the storage-fault seam of the persistence layer: a
// minimal filesystem interface threaded through the WAL, the archive,
// and server checkpoints so tests can inject EIO, ENOSPC, torn writes
// and slow IO at any file operation, and the serving layer can degrade
// gracefully instead of fail-stopping until a restart.
//
// The default implementation (OS) is a zero-state pass-through to the
// os package: the only cost on the hot append path is an interface
// method dispatch — no allocation, no locking, no bookkeeping. The
// fault-injecting implementation lives in fault.go.
//
// Classification helpers (Classify, IsNoSpace) turn raw syscall errors
// into the degradation policy's vocabulary: out-of-space errors flip a
// tenant read-only until a probe succeeds, IO errors are retried with
// backoff before being treated as persistent.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the subset of *os.File the storage layer uses. *os.File
// implements it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem seam. Every method mirrors the os (or filepath)
// function of the same name; implementations must preserve those
// semantics exactly — in particular the error values (fs.ErrNotExist,
// fs.ErrExist) callers branch on.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	Glob(pattern string) ([]string, error)
}

// OS is the pass-through filesystem — the production default.
var OS FS = osFS{}

// Default returns f, or the pass-through OS filesystem when f is nil —
// the one-line option plumbing every storage layer uses.
func Default(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// ErrClass buckets a storage error by the degradation policy it calls
// for.
type ErrClass int

const (
	// ClassNone: no error.
	ClassNone ErrClass = iota
	// ClassNoSpace: the device is out of space (ENOSPC or quota). More
	// retries cannot help until space is freed — flip read-only and
	// probe.
	ClassNoSpace
	// ClassIO: the device reported an IO error (EIO and kin). Often
	// transient (a path blip, a controller hiccup) — retry with capped
	// backoff before treating it as persistent.
	ClassIO
	// ClassOther: anything else (corruption, logic errors, closed
	// files). Not a device condition; retrying is not the answer.
	ClassOther
)

// Classify buckets err for the degradation supervisor.
func Classify(err error) ErrClass {
	switch {
	case err == nil:
		return ClassNone
	case IsNoSpace(err):
		return ClassNoSpace
	case errors.Is(err, syscall.EIO):
		return ClassIO
	default:
		return ClassOther
	}
}

// IsNoSpace reports whether err is an out-of-space condition (ENOSPC,
// or the quota-exceeded variant some filesystems return instead).
func IsNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}
