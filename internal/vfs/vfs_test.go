package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	entries, err := OS.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "b.txt" {
		t.Fatalf("ReadDir after rename = %v, %v", entries, err)
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("Glob = %v, %v", matches, err)
	}
}

func TestDefault(t *testing.T) {
	if Default(nil) != OS {
		t.Fatal("Default(nil) should be the OS filesystem")
	}
	ff := NewFaultFS(nil)
	if Default(ff) != FS(ff) {
		t.Fatal("Default must pass a non-nil FS through")
	}
}

func TestFaultErrorByPattern(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Inject(Rule{Op: OpWrite, Path: ".wal", Err: syscall.ENOSPC})

	// Writes to a non-matching path pass.
	ok, err := ff.OpenFile(filepath.Join(dir, "x.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Write([]byte("fine")); err != nil {
		t.Fatalf("non-matching write failed: %v", err)
	}
	ok.Close()

	// Writes to a matching path fail with the configured error.
	bad, err := ff.OpenFile(filepath.Join(dir, "seg-1.wal"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching write error = %v, want ENOSPC", err)
	}
	if got := ff.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestFaultFailAfterN(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Inject(Rule{Op: OpWrite, After: 2, Count: 1}) // 3rd write fails with EIO, rest pass

	f, err := ff.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 1; i <= 4; i++ {
		_, err := f.Write([]byte("x"))
		wantFail := i == 3
		if gotFail := err != nil; gotFail != wantFail {
			t.Fatalf("write %d: err=%v, want failure=%v", i, err, wantFail)
		}
		if wantFail && !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d: err=%v, want EIO default", i, err)
		}
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Inject(Rule{Op: OpWrite, TornBytes: 3, Count: 1})

	path := filepath.Join(dir, "torn")
	f, err := ff.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdef"))
	f.Close()
	if werr == nil || n != 3 {
		t.Fatalf("torn write = (%d, %v), want (3, EIO)", n, werr)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("on-disk torn prefix = %q, want \"abc\"", data)
	}
}

func TestFaultSlowIO(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Inject(Rule{Op: OpSync, Delay: 30 * time.Millisecond, Count: 1, Err: syscall.EIO})

	f, err := ff.OpenFile(filepath.Join(dir, "slow"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 30ms delay", d)
	}
	// Rule consumed: next sync is fast and clean.
	if err := f.Sync(); err != nil {
		t.Fatalf("post-recovery sync: %v", err)
	}
}

func TestFaultClear(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	r := ff.Inject(Rule{Op: OpWrite})
	ff.Inject(Rule{Op: OpSync})

	f, err := ff.OpenFile(filepath.Join(dir, "c"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write should fail before ClearRule")
	}
	ff.ClearRule(r)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after ClearRule: %v", err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync rule should still be active")
	}
	ff.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ClassNone},
		{syscall.ENOSPC, ClassNoSpace},
		{syscall.EDQUOT, ClassNoSpace},
		{syscall.EIO, ClassIO},
		{errors.New("something else"), ClassOther},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, ClassNoSpace},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.EIO}, ClassIO},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if !IsNoSpace(syscall.ENOSPC) || IsNoSpace(syscall.EIO) {
		t.Error("IsNoSpace misclassifies")
	}
}
