package vfs

import (
	"io/fs"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names one interceptable file operation.
type Op uint8

const (
	// OpAny matches every operation.
	OpAny Op = iota
	// OpOpen covers read opens (Open, and OpenFile without O_CREATE).
	OpOpen
	// OpCreate covers file creation (OpenFile with O_CREATE, CreateTemp,
	// WriteFile, MkdirAll).
	OpCreate
	// OpWrite covers File.Write and WriteFile bodies.
	OpWrite
	// OpSync covers File.Sync.
	OpSync
	// OpRename covers Rename.
	OpRename
	// OpRemove covers Remove.
	OpRemove
	// OpRead covers File.Read/ReadAt and ReadFile.
	OpRead
	// OpTruncate covers Truncate (path and file forms).
	OpTruncate
)

var opNames = map[Op]string{
	OpAny: "any", OpOpen: "open", OpCreate: "create", OpWrite: "write",
	OpSync: "sync", OpRename: "rename", OpRemove: "remove", OpRead: "read",
	OpTruncate: "truncate",
}

func (o Op) String() string { return opNames[o] }

// Rule is one fault-injection rule: which calls it matches (operation +
// path substring) and what happens to them (an injected error after a
// countdown, optionally tearing a write short or delaying the call).
// The zero error defaults to EIO.
type Rule struct {
	// Op restricts the rule to one operation kind; OpAny matches all.
	Op Op
	// Path, when non-empty, requires the call's path to contain it.
	Path string
	// After skips the first After matching calls before injecting — the
	// fail-after-N knob. Zero injects from the first match.
	After int
	// Count, when positive, injects into at most Count calls and then
	// lets the rest through — a transient fault. Zero injects forever
	// (persistent).
	Count int
	// Err is the injected error; nil selects EIO.
	Err error
	// TornBytes, on a matched OpWrite, writes this many bytes of the
	// buffer through to the real file before failing — a torn write.
	// It also applies to OpSync: the write preceding the failed fsync
	// stays, exactly like a real power-cut mid-fsync.
	TornBytes int
	// Delay sleeps before the operation proceeds (or fails) — slow IO.
	// A rule with Delay and a nil outcome (Count consumed) still sleeps.
	Delay time.Duration

	seen int // matching calls observed (guarded by the FaultFS mutex)
}

// FaultFS wraps another FS and injects faults per a mutable rule set.
// Safe for concurrent use. With no rules installed every call passes
// straight through, so a test can flip a healthy filesystem sick and
// back mid-run — exactly what the degradation supervisor's recovery
// probes need.
type FaultFS struct {
	base FS

	mu       sync.Mutex
	rules    []*Rule
	injected uint64
}

// NewFaultFS wraps base (nil selects the real filesystem).
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{base: Default(base)}
}

// Inject installs a rule and returns its handle for ClearRule.
func (f *FaultFS) Inject(r Rule) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	rule := r
	f.rules = append(f.rules, &rule)
	return &rule
}

// ClearRule removes one rule; unknown handles are ignored.
func (f *FaultFS) ClearRule(r *Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, have := range f.rules {
		if have == r {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			return
		}
	}
}

// Clear removes every rule — the "disk healed" switch.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns how many faults have been injected so far.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// check matches one call against the rule set. It returns the error to
// inject (nil = proceed) and, for writes, how many bytes to let through
// first (-1 = all). The first matching rule that decides to inject
// wins; rules that merely delay still sleep.
func (f *FaultFS) check(op Op, path string) (error, int) {
	f.mu.Lock()
	var inject error
	torn := -1
	var delay time.Duration
	for _, r := range f.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.Delay > delay {
			delay = r.Delay
		}
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.seen > r.After+r.Count {
			continue
		}
		if inject == nil {
			inject = r.Err
			if inject == nil {
				inject = syscall.EIO
			}
			if op == OpWrite || op == OpSync {
				torn = r.TornBytes
			}
			f.injected++
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return inject, torn
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	op := OpOpen
	if flag&(syscall.O_CREAT) != 0 {
		op = OpCreate
	}
	if err, _ := f.check(op, name); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.check(OpCreate, dir+"/"+pattern); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: pattern, Err: err}
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: file.Name()}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, newpath); err != nil {
		return &fs.PathError{Op: "rename", Path: newpath, Err: err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.check(OpRemove, name); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err, _ := f.check(OpTruncate, name); err != nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.check(OpCreate, path); err != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := f.check(OpRead, name); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.base.ReadDir(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpRead, name); err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err, _ := f.check(OpWrite, name); err != nil {
		return &fs.PathError{Op: "write", Path: name, Err: err}
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	return f.base.Stat(name)
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	return f.base.Glob(pattern)
}

// faultFile interposes the per-handle operations.
type faultFile struct {
	f    File
	fs   *FaultFS
	path string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err, _ := ff.fs.check(OpRead, ff.path); err != nil {
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := ff.fs.check(OpRead, ff.path); err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, torn := ff.fs.check(OpWrite, ff.path)
	if err == nil {
		return ff.f.Write(p)
	}
	n := 0
	if torn > 0 {
		if torn > len(p) {
			torn = len(p)
		}
		// Write the torn prefix through for real: the bytes are in the
		// file, the caller sees the error — the exact shape a torn write
		// leaves on disk.
		n, _ = ff.f.Write(p[:torn])
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync, ff.path); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.fs.check(OpTruncate, ff.path); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error               { return ff.f.Close() }
func (ff *faultFile) Name() string               { return ff.f.Name() }
func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.f.Stat() }
