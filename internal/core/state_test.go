package core

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
)

func TestEngineStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	en := NewEngine(Hooks{})
	for i := 0; i < 200; i++ {
		a := dygraph.NodeID(rng.Intn(20))
		b := dygraph.NodeID(rng.Intn(20))
		if rng.Float64() < 0.7 {
			en.AddEdge(a, b, rng.Float64())
		} else {
			en.RemoveEdge(a, b)
		}
	}
	s := en.State()
	en2, err := EngineFromState(s, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !SameClustering(en.Snapshot(), en2.Snapshot()) {
		t.Fatalf("clustering lost in round trip")
	}
	if en2.Ops() != en.Ops() {
		t.Fatalf("ops lost: %d vs %d", en2.Ops(), en.Ops())
	}
	// The restored engine must keep evolving identically.
	for i := 0; i < 100; i++ {
		a := dygraph.NodeID(rng.Intn(20))
		b := dygraph.NodeID(rng.Intn(20))
		add := rng.Float64() < 0.6
		w := rng.Float64()
		if add {
			c1 := en.AddEdge(a, b, w)
			c2 := en2.AddEdge(a, b, w)
			if (c1 == nil) != (c2 == nil) {
				t.Fatalf("divergence on AddEdge(%d,%d)", a, b)
			}
			if c1 != nil && c1.ID() != c2.ID() {
				t.Fatalf("cluster IDs diverged: %d vs %d", c1.ID(), c2.ID())
			}
		} else {
			en.RemoveEdge(a, b)
			en2.RemoveEdge(a, b)
		}
		if !SameClustering(en.Snapshot(), en2.Snapshot()) {
			t.Fatalf("post-restore divergence at step %d", i)
		}
	}
}

func TestEngineStateValidation(t *testing.T) {
	en := NewEngine(Hooks{})
	en.AddEdge(1, 2, 1)
	en.AddEdge(2, 3, 1)
	en.AddEdge(1, 3, 1)
	good := en.State()

	bad := good
	bad.Clusters = append([]ClusterState(nil), good.Clusters...)
	bad.Clusters[0] = ClusterState{ID: 99, Birth: 0, Edges: good.Clusters[0].Edges}
	if _, err := EngineFromState(bad, Hooks{}); err == nil {
		t.Fatalf("out-of-range cluster ID accepted")
	}

	bad = good
	bad.Clusters = []ClusterState{{
		ID:    good.Clusters[0].ID,
		Edges: []dygraph.Edge{dygraph.NewEdge(7, 8)},
	}}
	if _, err := EngineFromState(bad, Hooks{}); err == nil {
		t.Fatalf("missing-edge cluster accepted")
	}

	bad = good
	bad.Clusters = []ClusterState{{
		ID:    good.Clusters[0].ID,
		Edges: good.Clusters[0].Edges[:2],
	}}
	if _, err := EngineFromState(bad, Hooks{}); err == nil {
		t.Fatalf("sub-triangle cluster accepted")
	}

	bad = good
	bad.Clusters = append(append([]ClusterState(nil), good.Clusters...), good.Clusters[0])
	if _, err := EngineFromState(bad, Hooks{}); err == nil {
		t.Fatalf("duplicate cluster accepted")
	}
}

func TestGraphStateRoundTrip(t *testing.T) {
	g := dygraph.New()
	g.AddEdge(1, 2, 0.25)
	g.AddEdge(2, 3, 0.75)
	g.AddNode(9) // isolated node must survive
	s := g.State()
	g2, err := dygraph.FromState(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasNode(9) || g2.EdgeCount() != 2 {
		t.Fatalf("round trip lost content")
	}
	if w, _ := g2.Weight(1, 2); w != 0.25 {
		t.Fatalf("weight lost")
	}
	// Corrupt states rejected.
	s.Weights = s.Weights[:1]
	if _, err := dygraph.FromState(s); err == nil {
		t.Fatalf("mismatched weights accepted")
	}
	if _, err := dygraph.FromState(dygraph.State{
		Edges:   []dygraph.Edge{{U: 4, V: 4}},
		Weights: []float64{1},
	}); err == nil {
		t.Fatalf("self loop accepted")
	}
}
