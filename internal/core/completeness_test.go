package core

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
	"repro/internal/quasi"
)

// TestNoMQCMissed verifies the paper's completeness claim (Section 4.2):
// "The aMQCs based on SCP ensure that no MQC based clique is missed."
// For random small graphs we exhaustively enumerate maximal majority
// quasi cliques and require every one to be fully contained in a single
// engine cluster.
func TestNoMQCMissed(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	graphs := 0
	mqcsChecked := 0
	for trial := 0; trial < 400 && mqcsChecked < 400; trial++ {
		n := 5 + rng.Intn(8) // 5..12 nodes
		p := 0.25 + rng.Float64()*0.45
		en := NewEngine(Hooks{})
		sub := quasi.NewSubgraph()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					en.AddEdge(dygraph.NodeID(i), dygraph.NodeID(j), 1)
					sub.AddEdge(dygraph.NodeID(i), dygraph.NodeID(j))
				}
			}
		}
		graphs++
		for _, mqc := range quasi.MaximalMQCs(sub) {
			mqcsChecked++
			if !containedInOneCluster(en, mqc) {
				t.Fatalf("trial %d: MQC %v not contained in any single cluster\nedges: %v",
					trial, mqc, sub.Edges())
			}
		}
	}
	if mqcsChecked < 50 {
		t.Fatalf("only %d MQCs encountered across %d graphs — raise density", mqcsChecked, graphs)
	}
	t.Logf("verified %d maximal MQCs across %d random graphs", mqcsChecked, graphs)
}

// containedInOneCluster reports whether some engine cluster contains every
// node of the set AND every induced edge among them.
func containedInOneCluster(en *Engine, nodes []dygraph.NodeID) bool {
	for _, c := range en.Clusters() {
		all := true
		for _, n := range nodes {
			if !c.HasNode(n) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		// Every graph edge among the MQC's nodes must be a cluster edge:
		// SCP puts the whole quasi-clique inside one cluster, not just
		// its vertices.
		ok := true
		for i := 0; i < len(nodes) && ok; i++ {
			for j := i + 1; j < len(nodes) && ok; j++ {
				if en.Graph().HasEdge(nodes[i], nodes[j]) && !c.HasEdge(dygraph.NewEdge(nodes[i], nodes[j])) {
					ok = false
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestMQCSurvivesDeletionsAroundIt: deleting edges outside an embedded
// MQC never removes it from the clustering.
func TestMQCSurvivesDeletionsAroundIt(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	en := NewEngine(Hooks{})
	// Embed K5 over nodes 0..4.
	buildClique(en, 5)
	// Surround with random noise edges among nodes 5..14.
	var noise [][2]dygraph.NodeID
	for i := 0; i < 40; i++ {
		a := dygraph.NodeID(5 + rng.Intn(10))
		b := dygraph.NodeID(rng.Intn(15))
		if a != b {
			en.AddEdge(a, b, 1)
			noise = append(noise, [2]dygraph.NodeID{a, b})
		}
	}
	mqc := []dygraph.NodeID{0, 1, 2, 3, 4}
	for _, e := range noise {
		en.RemoveEdge(e[0], e[1])
		if !containedInOneCluster(en, mqc) {
			t.Fatalf("embedded K5 lost after deleting noise edge %v", e)
		}
	}
}
