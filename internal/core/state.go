package core

import (
	"fmt"

	"repro/internal/dygraph"
)

// ClusterState is the serialisable form of one cluster.
type ClusterState struct {
	ID    ClusterID
	Birth uint64
	Edges []dygraph.Edge
}

// EngineState is a serialisable snapshot of an Engine, sufficient to
// resume incremental maintenance exactly where it stopped.
type EngineState struct {
	Graph    dygraph.State
	Clusters []ClusterState
	NextID   ClusterID
	Ops      uint64
}

// State captures the engine. Clusters appear in ID order.
func (en *Engine) State() EngineState {
	s := EngineState{
		Graph:  en.g.State(),
		NextID: en.nextID,
		Ops:    en.ops,
	}
	for _, c := range en.Clusters() {
		s.Clusters = append(s.Clusters, ClusterState{
			ID:    c.id,
			Birth: c.birth,
			Edges: c.Edges(),
		})
	}
	return s
}

// EngineFromState reconstructs an engine. The snapshot is validated:
// cluster edges must exist in the graph, be disjoint across clusters, and
// cluster IDs must not exceed NextID.
func EngineFromState(s EngineState, hooks Hooks) (*Engine, error) {
	g, err := dygraph.FromState(s.Graph)
	if err != nil {
		return nil, err
	}
	en := &Engine{
		g:            g,
		clusters:     make(map[ClusterID]*Cluster, len(s.Clusters)),
		edgeCluster:  make(map[dygraph.Edge]ClusterID),
		nodeClusters: make(map[dygraph.NodeID]map[ClusterID]struct{}),
		nextID:       s.NextID,
		ops:          s.Ops,
		hooks:        hooks,
	}
	for _, cs := range s.Clusters {
		if cs.ID == 0 || cs.ID > s.NextID {
			return nil, fmt.Errorf("core: cluster ID %d out of range (next %d)", cs.ID, s.NextID)
		}
		if _, dup := en.clusters[cs.ID]; dup {
			return nil, fmt.Errorf("core: duplicate cluster ID %d", cs.ID)
		}
		c := &Cluster{
			id:    cs.ID,
			birth: cs.Birth,
			nodes: make(map[dygraph.NodeID]int),
			edges: make(map[dygraph.Edge]struct{}, len(cs.Edges)),
		}
		for _, e := range cs.Edges {
			if !g.HasEdge(e.U, e.V) {
				return nil, fmt.Errorf("core: cluster %d references missing edge %v", cs.ID, e)
			}
			if owner, taken := en.edgeCluster[e]; taken {
				return nil, fmt.Errorf("core: edge %v claimed by clusters %d and %d", e, owner, cs.ID)
			}
			c.addEdge(e)
			en.edgeCluster[e] = cs.ID
			en.addMembership(e.U, cs.ID)
			en.addMembership(e.V, cs.ID)
		}
		if len(c.edges) < 3 {
			return nil, fmt.Errorf("core: cluster %d has %d edges; minimum cluster is a triangle", cs.ID, len(c.edges))
		}
		en.clusters[cs.ID] = c
	}
	return en, nil
}
