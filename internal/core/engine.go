package core

import (
	"sort"

	"repro/internal/dygraph"
)

// Engine maintains the canonical SCP clustering of a dynamic graph under
// node and edge additions and deletions, performing only local computation
// per update (Sections 4 and 5 of the paper).
//
// The engine owns its graph: all mutations must go through the engine so
// that clusters stay consistent. Read access is available via Graph.
type Engine struct {
	g           *dygraph.Graph
	clusters    map[ClusterID]*Cluster
	edgeCluster map[dygraph.Edge]ClusterID
	// nodeClusters indexes, for every node, the clusters it belongs to.
	// Needed because a node may sit in several edge-disjoint clusters.
	nodeClusters map[dygraph.NodeID]map[ClusterID]struct{}
	nextID       ClusterID
	ops          uint64
	hooks        Hooks

	// touched collects the IDs of clusters whose node set, edge set or
	// any edge weight changed since the last BeginQuantum — the exact
	// set a downstream consumer must revisit (rank, support and keyword
	// listings of an untouched cluster cannot have changed through the
	// engine). IDs of clusters that were merged away or dissolved may
	// linger in the set; consumers iterate live clusters and use touched
	// as a membership filter, so stale IDs are harmless.
	touched map[ClusterID]struct{}

	// stats for the harness (Section 7.4).
	statCycleChecks int64
	statMerges      int64
	statSplits      int64
}

// NewEngine returns an engine over an empty graph.
func NewEngine(hooks Hooks) *Engine {
	return &Engine{
		g:            dygraph.New(),
		clusters:     make(map[ClusterID]*Cluster),
		edgeCluster:  make(map[dygraph.Edge]ClusterID),
		nodeClusters: make(map[dygraph.NodeID]map[ClusterID]struct{}),
		hooks:        hooks,
	}
}

// Graph exposes the underlying graph for read-only use. Mutating it
// directly corrupts the clustering.
func (en *Engine) Graph() *dygraph.Graph { return en.g }

// BeginQuantum resets the touched-cluster set. The AKG layer calls it
// at the top of every ProcessQuantum so TouchedClusters describes
// exactly one quantum's structural churn.
func (en *Engine) BeginQuantum() { clear(en.touched) }

// TouchedClusters returns the set of cluster IDs mutated since the
// last BeginQuantum (see the touched field for the exact contract).
// The map is owned by the engine and valid until the next
// BeginQuantum; callers may add IDs of their own (the set is cleared
// wholesale) but must not delete.
func (en *Engine) TouchedClusters() map[ClusterID]struct{} {
	if en.touched == nil {
		en.touched = make(map[ClusterID]struct{})
	}
	return en.touched
}

func (en *Engine) markTouched(id ClusterID) {
	if en.touched == nil {
		en.touched = make(map[ClusterID]struct{})
	}
	en.touched[id] = struct{}{}
}

// ForEachClusterOf calls fn with the ID of every cluster containing n,
// in unspecified order — the allocation-free companion of
// ClustersOfNode for dirty-set consumers.
func (en *Engine) ForEachClusterOf(n dygraph.NodeID, fn func(id ClusterID)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use ClustersOfNode
	for id := range en.nodeClusters[n] {
		fn(id)
	}
}

// AppendClusterIDs appends every live cluster ID to dst (unsorted),
// reusing its capacity — the allocation-amortised companion of
// Clusters for per-quantum iteration.
func (en *Engine) AppendClusterIDs(dst []ClusterID) []ClusterID {
	//repro:order-insensitive documented-unsorted API; the sole replay-path caller sorts the result before use
	for id := range en.clusters {
		dst = append(dst, id)
	}
	return dst
}

// Ops returns the number of mutating operations performed so far. Cluster
// birth times are expressed in this sequence.
func (en *Engine) Ops() uint64 { return en.ops }

// ClusterCount returns the number of live clusters.
func (en *Engine) ClusterCount() int { return len(en.clusters) }

// Cluster returns the live cluster with the given ID, or nil.
func (en *Engine) Cluster(id ClusterID) *Cluster { return en.clusters[id] }

// ClusterOfEdge returns the cluster owning edge (a,b), or nil.
func (en *Engine) ClusterOfEdge(a, b dygraph.NodeID) *Cluster {
	id, ok := en.edgeCluster[dygraph.NewEdge(a, b)]
	if !ok {
		return nil
	}
	return en.clusters[id]
}

// ClustersOfNode returns the clusters containing n, sorted by ID.
func (en *Engine) ClustersOfNode(n dygraph.NodeID) []*Cluster {
	set := en.nodeClusters[n]
	if len(set) == 0 {
		return nil
	}
	ids := make([]ClusterID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Cluster, len(ids))
	for i, id := range ids {
		out[i] = en.clusters[id]
	}
	return out
}

// InAnyCluster reports whether node n currently belongs to any cluster.
// The AKG layer uses this for its lazy-removal rule: a keyword stays in the
// AKG while it is part of any event cluster (Section 3.1).
func (en *Engine) InAnyCluster(n dygraph.NodeID) bool {
	return len(en.nodeClusters[n]) > 0
}

// Clusters returns all live clusters sorted by ID.
func (en *Engine) Clusters() []*Cluster {
	ids := make([]ClusterID, 0, len(en.clusters))
	for id := range en.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Cluster, len(ids))
	for i, id := range ids {
		out[i] = en.clusters[id]
	}
	return out
}

// ForEachCluster calls fn for every live cluster in unspecified order.
func (en *Engine) ForEachCluster(fn func(c *Cluster)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use Clusters
	for _, c := range en.clusters {
		fn(c)
	}
}

// AddNode inserts a node with no edges. No clusters can form.
func (en *Engine) AddNode(n dygraph.NodeID) {
	en.ops++
	en.g.AddNode(n)
}

// AddEdge inserts the edge (a,b) with weight w (creating endpoints as
// needed) and updates the clustering: all short cycles through the new edge
// are discovered (paper's EdgeAddition, Section 5.2) and the clusters they
// touch are merged per Lemma 6. If the edge already exists only its weight
// is updated. It returns the cluster now owning the edge, or nil.
func (en *Engine) AddEdge(a, b dygraph.NodeID, w float64) *Cluster {
	if a == b {
		return nil
	}
	en.ops++
	e := dygraph.NewEdge(a, b)
	if !en.g.AddEdge(a, b, w) {
		// Weight refresh only; clustering is threshold-free at this layer.
		if id, ok := en.edgeCluster[e]; ok {
			en.markTouched(id) // the owning cluster's rank inputs changed
			return en.clusters[id]
		}
		return nil
	}
	seeds := en.cycleEdgesThrough(a, b)
	if len(seeds) == 0 {
		return nil // edge participates in no short cycle yet
	}
	seeds = append(seeds, e)
	return en.absorb(seeds)
}

// AddNodeWithEdges adds node n together with edges to each listed neighbor,
// following the paper's NodeAddition (Section 5.1). Neighbors absent from
// the graph are created. Equivalent to AddNode followed by AddEdge for each
// neighbor (Lemma 5: the result is order-independent); provided as a single
// call because the AKG layer learns a new keyword's correlations in one
// batch at a quantum boundary.
func (en *Engine) AddNodeWithEdges(n dygraph.NodeID, nbrs []dygraph.NodeID, weights []float64) {
	en.g.AddNode(n)
	for i, m := range nbrs {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		en.AddEdge(n, m, w)
	}
}

// SetWeight updates an edge weight without touching the clustering.
func (en *Engine) SetWeight(a, b dygraph.NodeID, w float64) bool {
	if !en.g.SetWeight(a, b, w) {
		return false
	}
	if id, ok := en.edgeCluster[dygraph.NewEdge(a, b)]; ok {
		en.markTouched(id) // rank depends on cluster edge weights
	}
	return true
}

// RemoveEdge deletes the edge (a,b) and repairs the owning cluster, if any
// (paper's EdgeDeletion, Section 5.4: cycle check for broken short cycles,
// then articulation check). It reports whether the edge existed.
func (en *Engine) RemoveEdge(a, b dygraph.NodeID) bool {
	en.ops++
	e := dygraph.NewEdge(a, b)
	if !en.g.RemoveEdge(a, b) {
		return false
	}
	id, ok := en.edgeCluster[e]
	if !ok {
		return true
	}
	delete(en.edgeCluster, e)
	c := en.clusters[id]
	en.markTouched(id)
	for _, n := range c.removeEdge(e) {
		en.dropMembership(n, id)
	}
	en.repair(c)
	return true
}

// RemoveNode deletes node n and all incident edges, repairing every cluster
// the node participated in (paper's NodeDeletion, Section 5.3). It reports
// whether the node existed.
func (en *Engine) RemoveNode(n dygraph.NodeID) bool {
	en.ops++
	if !en.g.HasNode(n) {
		return false
	}
	removed := en.g.RemoveNode(n)
	// Group removed edges by owning cluster so each cluster is repaired
	// exactly once no matter how many of its edges died.
	affected := make(map[ClusterID]*Cluster)
	for _, e := range removed {
		id, ok := en.edgeCluster[e]
		if !ok {
			continue
		}
		delete(en.edgeCluster, e)
		c := en.clusters[id]
		en.markTouched(id)
		for _, gone := range c.removeEdge(e) {
			en.dropMembership(gone, id)
		}
		affected[id] = c
	}
	// Repair in ID order: split parts receive fresh IDs, so the repair
	// order must be deterministic for checkpoint/resume equivalence.
	ids := make([]ClusterID, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		en.repair(affected[id])
	}
	return true
}

// cycleEdgesThrough enumerates every cycle of length 3 or 4 that passes
// through the (already inserted) edge (a,b) and returns the union of their
// edges, excluding (a,b) itself. This is the discovery step of the paper's
// EdgeAddition: triangles come from common neighbors (rule R2 shape) and
// 4-cycles from adjacent pairs (n3,n4) with n3~a, n4~b, n3–n4 an edge
// (rule R1 shape).
func (en *Engine) cycleEdgesThrough(a, b dygraph.NodeID) []dygraph.Edge {
	var out []dygraph.Edge
	g := en.g
	// Triangles a–b–c.
	g.CommonNeighbors(a, b, func(c dygraph.NodeID) {
		en.statCycleChecks++
		out = append(out, dygraph.NewEdge(a, c), dygraph.NewEdge(b, c))
	})
	// 4-cycles a–n3–n4–b. Iterate from the lower-degree endpoint.
	g.Neighbors(a, func(n3 dygraph.NodeID, _ float64) {
		if n3 == b {
			return
		}
		g.Neighbors(b, func(n4 dygraph.NodeID, _ float64) {
			if n4 == a || n4 == n3 {
				return
			}
			en.statCycleChecks++
			if g.HasEdge(n3, n4) {
				out = append(out,
					dygraph.NewEdge(a, n3),
					dygraph.NewEdge(n3, n4),
					dygraph.NewEdge(n4, b))
			}
		})
	})
	return out
}

// absorb places all seed edges into a single cluster, merging every
// existing cluster that owns any of them (Lemma 6: aMQCs sharing an edge
// merge into one aMQC). The largest touched cluster survives; a new
// cluster is created when none exist. Returns the surviving cluster.
func (en *Engine) absorb(seeds []dygraph.Edge) *Cluster {
	var touched []*Cluster
	seen := make(map[ClusterID]struct{})
	for _, e := range seeds {
		if id, ok := en.edgeCluster[e]; ok {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				touched = append(touched, en.clusters[id])
			}
		}
	}
	var target *Cluster
	isNew := false
	if len(touched) == 0 {
		target = en.newCluster()
		isNew = true
	} else {
		// Deterministic survivor: most edges, ties to the oldest ID —
		// seed discovery order comes from map iteration, so the choice
		// must not depend on it (checkpoint/resume equivalence).
		target = touched[0]
		for _, c := range touched[1:] {
			if c.EdgeCount() > target.EdgeCount() ||
				(c.EdgeCount() == target.EdgeCount() && c.id < target.id) {
				target = c
			}
		}
	}
	grew := false
	for _, c := range touched {
		if c == target {
			continue
		}
		en.statMerges++
		//repro:order-insensitive set union into the target cluster; per-edge inserts commute
		for e := range c.edges {
			target.addEdge(e)
			en.edgeCluster[e] = target.id
			grew = true
		}
		//repro:order-insensitive per-node membership moves commute; each node is handled once
		for n := range c.nodes {
			en.dropMembership(n, c.id)
			en.addMembership(n, target.id)
		}
		delete(en.clusters, c.id)
		en.hooks.merged(target, c.id)
	}
	for _, e := range seeds {
		if _, ok := target.edges[e]; ok {
			continue
		}
		target.addEdge(e)
		en.edgeCluster[e] = target.id
		en.addMembership(e.U, target.id)
		en.addMembership(e.V, target.id)
		grew = true
	}
	if isNew {
		en.hooks.formed(target)
	} else if grew {
		en.hooks.updated(target)
	}
	en.markTouched(target.id)
	return target
}

func (en *Engine) newCluster() *Cluster {
	en.nextID++
	c := &Cluster{
		id:    en.nextID,
		nodes: make(map[dygraph.NodeID]int),
		edges: make(map[dygraph.Edge]struct{}),
		birth: en.ops,
	}
	en.clusters[c.id] = c
	return c
}

func (en *Engine) addMembership(n dygraph.NodeID, id ClusterID) {
	set, ok := en.nodeClusters[n]
	if !ok {
		set = make(map[ClusterID]struct{}, 1)
		en.nodeClusters[n] = set
	}
	set[id] = struct{}{}
}

func (en *Engine) dropMembership(n dygraph.NodeID, id ClusterID) {
	set := en.nodeClusters[n]
	delete(set, id)
	if len(set) == 0 {
		delete(en.nodeClusters, n)
	}
}

// Stats returns counters describing the work the engine has done: short
// cycle existence checks, cluster merges and cluster splits. Used by the
// Section 7.4 experiment to show the computation stays local.
func (en *Engine) Stats() (cycleChecks, merges, splits int64) {
	return en.statCycleChecks, en.statMerges, en.statSplits
}
