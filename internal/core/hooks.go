package core

// Hooks receives cluster lifecycle notifications from an Engine. Any field
// may be nil. Callbacks run synchronously inside the engine update; they
// must not mutate the engine, and cluster pointers they receive are only
// valid until the callback returns (take a snapshot if needed).
//
// The detector pipeline (internal/detect) uses these to maintain event
// lifecycles: birth, evolution, merge, split and death of events map 1:1 to
// these callbacks.
type Hooks struct {
	// OnFormed fires when a brand-new cluster appears.
	OnFormed func(c *Cluster)
	// OnUpdated fires when an existing cluster gains or loses nodes/edges
	// but survives (including the surviving side of a merge or split).
	OnUpdated func(c *Cluster)
	// OnMerged fires once per absorbed cluster; into is the survivor and
	// already contains the absorbed content.
	OnMerged func(into *Cluster, absorbed ClusterID)
	// OnSplit fires when a deletion partitions a cluster. from is the old
	// ID (which lives on in parts[0], the largest piece); parts holds all
	// resulting clusters, largest first.
	OnSplit func(from ClusterID, parts []*Cluster)
	// OnDissolved fires when a cluster disappears entirely (no remaining
	// short cycle among its edges).
	OnDissolved func(id ClusterID)
}

func (h *Hooks) formed(c *Cluster) {
	if h != nil && h.OnFormed != nil {
		h.OnFormed(c)
	}
}

func (h *Hooks) updated(c *Cluster) {
	if h != nil && h.OnUpdated != nil {
		h.OnUpdated(c)
	}
}

func (h *Hooks) merged(into *Cluster, absorbed ClusterID) {
	if h != nil && h.OnMerged != nil {
		h.OnMerged(into, absorbed)
	}
}

func (h *Hooks) split(from ClusterID, parts []*Cluster) {
	if h != nil && h.OnSplit != nil {
		h.OnSplit(from, parts)
	}
}

func (h *Hooks) dissolved(id ClusterID) {
	if h != nil && h.OnDissolved != nil {
		h.OnDissolved(id)
	}
}
