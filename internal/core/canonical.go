package core

import (
	"sort"

	"repro/internal/dygraph"
)

// EdgeSet is a cluster expressed purely as its member edges, used when
// comparing clusterings from different implementations.
type EdgeSet map[dygraph.Edge]struct{}

// NodesOf returns the distinct endpoints of the edge set, sorted.
func (s EdgeSet) NodesOf() []dygraph.NodeID {
	seen := make(map[dygraph.NodeID]struct{}, len(s)*2)
	for e := range s {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	out := make([]dygraph.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Canonical computes the canonical SCP clustering of g from scratch: every
// cycle of length 3 or 4 is a seed, and seeds sharing an edge merge
// (Lemma 6) until fixpoint. The result is the unique clustering that the
// incremental Engine maintains (Theorem 3); this function is the global
// reference implementation used as a correctness oracle in tests and as
// the "global computation" arm of the ablation benchmarks.
//
// Cost is O(Σ_(u,v)∈E deg(u)·deg(v)) — quadratic in local density — which
// is exactly the cost the paper's local technique avoids paying on every
// update.
func Canonical(g *dygraph.Graph) []EdgeSet {
	edges := g.Edges()
	index := make(map[dygraph.Edge]int, len(edges))
	for i, e := range edges {
		index[e] = i
	}
	uf := newUnionFind(len(edges))
	onCycle := make([]bool, len(edges))
	mark := func(a, b dygraph.Edge) {
		i, j := index[a], index[b]
		onCycle[i], onCycle[j] = true, true
		uf.union(i, j)
	}
	for _, e := range edges {
		u, v := e.U, e.V
		g.CommonNeighbors(u, v, func(x dygraph.NodeID) {
			mark(e, dygraph.NewEdge(u, x))
			mark(e, dygraph.NewEdge(v, x))
		})
		g.Neighbors(u, func(n3 dygraph.NodeID, _ float64) {
			if n3 == v {
				return
			}
			g.Neighbors(v, func(n4 dygraph.NodeID, _ float64) {
				if n4 == u || n4 == n3 {
					return
				}
				if g.HasEdge(n3, n4) {
					mark(e, dygraph.NewEdge(u, n3))
					mark(e, dygraph.NewEdge(n3, n4))
					mark(e, dygraph.NewEdge(n4, v))
				}
			})
		})
	}
	groups := make(map[int]EdgeSet)
	for i, e := range edges {
		if !onCycle[i] {
			continue
		}
		root := uf.find(i)
		set, ok := groups[root]
		if !ok {
			set = make(EdgeSet)
			groups[root] = set
		}
		set[e] = struct{}{}
	}
	out := make([]EdgeSet, 0, len(groups))
	for _, set := range groups {
		out = append(out, set)
	}
	sortEdgeSets(out)
	return out
}

// Snapshot returns the engine's live clusters as edge sets, in the same
// normalised order as Canonical, so the two can be compared directly.
func (en *Engine) Snapshot() []EdgeSet {
	out := make([]EdgeSet, 0, len(en.clusters))
	//repro:order-insensitive each cluster's set is built independently; out is normalised by sortEdgeSets below
	for _, c := range en.clusters {
		set := make(EdgeSet, len(c.edges))
		for e := range c.edges {
			set[e] = struct{}{}
		}
		out = append(out, set)
	}
	sortEdgeSets(out)
	return out
}

// SameClustering reports whether two clusterings contain exactly the same
// edge sets. Both arguments must be normalised (as produced by Canonical
// or Snapshot).
func SameClustering(a, b []EdgeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for e := range a[i] {
			if _, ok := b[i][e]; !ok {
				return false
			}
		}
	}
	return true
}

// sortEdgeSets orders clusterings deterministically: by size descending,
// then by smallest edge.
func sortEdgeSets(sets []EdgeSet) {
	key := func(s EdgeSet) dygraph.Edge {
		var best dygraph.Edge
		first := true
		for e := range s { //repro:order-insensitive minimum selection under a total order; the min is unique
			if first || less(e, best) {
				best = e
				first = false
			}
		}
		return best
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) > len(sets[j])
		}
		return less(key(sets[i]), key(sets[j]))
	})
}

func less(a, b dygraph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}
