package core

import (
	"math/rand"
	"testing"

	"repro/internal/dygraph"
	"repro/internal/quasi"
)

// addEdges is a test helper inserting unit-weight edges.
func addEdges(en *Engine, pairs ...[2]dygraph.NodeID) {
	for _, p := range pairs {
		en.AddEdge(p[0], p[1], 1)
	}
}

func TestTriangleFormsCluster(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en, [2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3})
	if en.ClusterCount() != 0 {
		t.Fatalf("cluster before any cycle exists")
	}
	c := en.AddEdge(1, 3, 1)
	if c == nil {
		t.Fatalf("closing triangle formed no cluster")
	}
	if c.NodeCount() != 3 || c.EdgeCount() != 3 {
		t.Fatalf("cluster = %d nodes %d edges, want 3/3", c.NodeCount(), c.EdgeCount())
	}
}

func TestFourCycleFormsCluster(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2},
		[2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{3, 4})
	if en.ClusterCount() != 0 {
		t.Fatalf("premature cluster")
	}
	c := en.AddEdge(4, 1, 1)
	if c == nil || c.NodeCount() != 4 || c.EdgeCount() != 4 {
		t.Fatalf("4-cycle cluster wrong: %+v", c)
	}
}

func TestFiveCycleIsNotCluster(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2},
		[2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{3, 4},
		[2]dygraph.NodeID{4, 5},
		[2]dygraph.NodeID{5, 1})
	if en.ClusterCount() != 0 {
		t.Fatalf("a 5-cycle has no short cycle and must not cluster")
	}
}

// TestPaperFigure1 reproduces the earthquake example: a 4-node cluster
// exists and the keyword "5.9" (node 6) joins via a triangle with
// earthquake(1) and turkey(4).
func TestPaperFigure1(t *testing.T) {
	// 1=earthquake 2=struck 3=eastern 4=turkey
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2},
		[2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{1, 4},
		[2]dygraph.NodeID{2, 4},
		[2]dygraph.NodeID{3, 4})
	if en.ClusterCount() != 1 {
		t.Fatalf("want 1 cluster, got %d", en.ClusterCount())
	}
	base := en.Clusters()[0]
	if base.NodeCount() != 4 {
		t.Fatalf("base cluster has %d nodes", base.NodeCount())
	}
	// "5.9" arrives correlated with earthquake and turkey.
	en.AddEdge(6, 1, 1)
	c := en.AddEdge(6, 4, 1)
	if c == nil || c.NodeCount() != 5 || !c.HasNode(6) {
		t.Fatalf("new keyword did not join the cluster: %+v", c)
	}
	if en.ClusterCount() != 1 {
		t.Fatalf("joining should not create a second cluster")
	}
}

// TestPaperFigure2 covers both R1 and R2 initialisation shapes from the
// paper's Figure 2: incoming node n correlated with n1 and n2.
func TestPaperFigure2(t *testing.T) {
	t.Run("R1 common neighbor", func(t *testing.T) {
		en := NewEngine(Hooks{})
		// n1 and n2 share neighbor nc but no direct edge.
		addEdges(en, [2]dygraph.NodeID{1, 3}, [2]dygraph.NodeID{2, 3}) // nc=3
		en.AddNodeWithEdges(9, []dygraph.NodeID{1, 2}, nil)
		if en.ClusterCount() != 1 {
			t.Fatalf("want 1 cluster, got %d", en.ClusterCount())
		}
		c := en.Clusters()[0]
		if c.NodeCount() != 4 {
			t.Fatalf("R1 cluster should have 4 nodes, got %d", c.NodeCount())
		}
	})
	t.Run("R2 direct edge", func(t *testing.T) {
		en := NewEngine(Hooks{})
		addEdges(en, [2]dygraph.NodeID{1, 2})
		en.AddNodeWithEdges(9, []dygraph.NodeID{1, 2}, nil)
		if en.ClusterCount() != 1 {
			t.Fatalf("want 1 cluster, got %d", en.ClusterCount())
		}
		c := en.Clusters()[0]
		if c.NodeCount() != 3 {
			t.Fatalf("R2 cluster should be a triangle, got %d nodes", c.NodeCount())
		}
	})
	t.Run("single correlation does nothing", func(t *testing.T) {
		en := NewEngine(Hooks{})
		addEdges(en, [2]dygraph.NodeID{1, 2})
		en.AddNodeWithEdges(9, []dygraph.NodeID{1}, nil)
		if en.ClusterCount() != 0 {
			t.Fatalf("node with one edge must not cluster")
		}
	})
}

// TestPaperFigure5a replays the edge-addition example: edge (1,2) arrives
// into a graph where phase-1 clusters (1,2,4), (1,2,4,5), (1,2,3,4) merge
// into a single cluster C3 = {1..5}.
func TestPaperFigure5a(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 4},
		[2]dygraph.NodeID{2, 4},
		[2]dygraph.NodeID{1, 5},
		[2]dygraph.NodeID{2, 5},
		[2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 4})
	before := en.ClusterCount()
	c := en.AddEdge(1, 2, 1)
	if c == nil {
		t.Fatalf("no cluster after edge addition")
	}
	if en.ClusterCount() != 1 {
		t.Fatalf("want single merged cluster, got %d (before: %d)", en.ClusterCount(), before)
	}
	if c.NodeCount() != 5 {
		t.Fatalf("merged cluster has %d nodes, want 5", c.NodeCount())
	}
}

// TestPaperFigure5cd: removing node n from the 5-node cluster leaves no
// short cycles (cluster discarded); removing only edge (n,1) leaves the
// triangle (3,4,n).
func paperFig5Graph() *Engine {
	en := NewEngine(Hooks{})
	// n=9; edges: n-1, n-3, n-4, 1-2, 2-5, 5-... per Figure 5(c)/(d):
	// pentagon 1-2-5-4?-... The figure: nodes 1..5 and n; edges n-1, n-3,
	// n-4, 3-4, 1-2, 2-5, 4-5 (so n-3-4-n triangle and cycle n-1-2-5-4-n).
	addEdges(en,
		[2]dygraph.NodeID{9, 1},
		[2]dygraph.NodeID{9, 3},
		[2]dygraph.NodeID{9, 4},
		[2]dygraph.NodeID{3, 4},
		[2]dygraph.NodeID{1, 2},
		[2]dygraph.NodeID{2, 5},
		[2]dygraph.NodeID{4, 5})
	return en
}

func TestPaperFigure5d_EdgeDeparture(t *testing.T) {
	en := paperFig5Graph()
	if !en.RemoveEdge(9, 1) {
		t.Fatalf("edge removal failed")
	}
	// Triangle 9-3-4 must survive; 1,2,5 fall out of any cluster.
	var tri *Cluster
	for _, c := range en.Clusters() {
		if c.HasNode(9) {
			tri = c
		}
	}
	if tri == nil || tri.NodeCount() != 3 || !tri.HasNode(3) || !tri.HasNode(4) {
		t.Fatalf("expected surviving triangle (9,3,4); clusters=%d", en.ClusterCount())
	}
	for _, n := range []dygraph.NodeID{1, 2, 5} {
		if en.InAnyCluster(n) {
			t.Fatalf("node %d should be cluster-less", n)
		}
	}
}

func TestPaperFigure5c_NodeDeparture(t *testing.T) {
	en := paperFig5Graph()
	if !en.RemoveNode(9) {
		t.Fatalf("node removal failed")
	}
	if en.ClusterCount() != 0 {
		t.Fatalf("no short cycle remains; clusters=%d", en.ClusterCount())
	}
}

// TestPaperFigure6 reproduces the articulation-point split: deleting node
// 9 splits the single cluster into {0,1,2,3,10,11} and {3,4,5,6,7,8} with
// node 3 shared (the articulation point).
func TestPaperFigure6(t *testing.T) {
	en := NewEngine(Hooks{})
	// Left block: 0-1-2-3 + 10,11 forming short cycles; right block:
	// 3-4-5-6-7-8; node 9 bridges 2/10-side to 8-side per the figure.
	// We construct a concrete graph with the same shape:
	addEdges(en,
		// left ring with chords
		[2]dygraph.NodeID{0, 1},
		[2]dygraph.NodeID{1, 11},
		[2]dygraph.NodeID{11, 10},
		[2]dygraph.NodeID{10, 2},
		[2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{0, 10}, // chord: 0-1-11-10 4-cycle
		[2]dygraph.NodeID{10, 3}, // chord: 10-2-3 triangle
		[2]dygraph.NodeID{0, 2},  // chord
		// right ring with chords
		[2]dygraph.NodeID{3, 4},
		[2]dygraph.NodeID{4, 5},
		[2]dygraph.NodeID{5, 8},
		[2]dygraph.NodeID{8, 7},
		[2]dygraph.NodeID{7, 6},
		[2]dygraph.NodeID{6, 3},
		[2]dygraph.NodeID{4, 8}, // chord
		[2]dygraph.NodeID{3, 7}, // chord
		[2]dygraph.NodeID{6, 7},
		// node 9 ties the two halves together with short cycles
		[2]dygraph.NodeID{9, 2},
		[2]dygraph.NodeID{9, 4},
		[2]dygraph.NodeID{9, 3},
	)
	if en.ClusterCount() != 1 {
		t.Fatalf("setup should be one cluster, got %d", en.ClusterCount())
	}
	en.RemoveNode(9)
	if en.ClusterCount() != 2 {
		t.Fatalf("deleting 9 should split cluster at articulation node 3, got %d clusters", en.ClusterCount())
	}
	for _, c := range en.Clusters() {
		if !c.HasNode(3) {
			t.Fatalf("both split parts must contain articulation node 3")
		}
	}
}

// TestLemma6MergeOnSharedEdge: two clusters acquiring a shared edge merge.
func TestLemma6MergeOnSharedEdge(t *testing.T) {
	en := NewEngine(Hooks{})
	// Triangle A: 1,2,3. Triangle B: 4,5,6. Connect so a short cycle forms
	// across: add edges 3-4 then 2-4 creating triangle (2,3,4) sharing
	// edges with both? Edge 2-3 in A, edge ... Build explicitly:
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{4, 5}, [2]dygraph.NodeID{5, 6}, [2]dygraph.NodeID{4, 6})
	if en.ClusterCount() != 2 {
		t.Fatalf("setup: want 2 clusters, got %d", en.ClusterCount())
	}
	en.AddEdge(3, 4, 1)
	if en.ClusterCount() != 2 {
		t.Fatalf("bridge edge alone must not merge")
	}
	// Closing triangle (3,4,2) uses edge 2-3 (cluster A) and 3-4; new
	// cluster shares an edge with A, merging. Then 4-cycle via B edges?
	c := en.AddEdge(2, 4, 1)
	if c == nil {
		t.Fatalf("no cluster after closing cross triangle")
	}
	if !c.HasNode(1) || !c.HasNode(2) || !c.HasNode(3) || !c.HasNode(4) {
		t.Fatalf("merged cluster missing nodes: %v", c.Nodes())
	}
	// B stays separate: its edges share no short cycle with the new edges.
	foundB := false
	for _, cl := range en.Clusters() {
		if cl.HasEdge(dygraph.NewEdge(5, 6)) {
			foundB = true
			if cl.HasNode(1) {
				t.Fatalf("cluster B wrongly merged")
			}
		}
	}
	if !foundB {
		t.Fatalf("cluster B disappeared")
	}
}

// TestNodeInMultipleClusters: two triangles sharing only a node remain
// distinct clusters and the shared node reports both.
func TestNodeInMultipleClusters(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{4, 5}, [2]dygraph.NodeID{3, 5})
	if en.ClusterCount() != 2 {
		t.Fatalf("want 2 clusters, got %d", en.ClusterCount())
	}
	cs := en.ClustersOfNode(3)
	if len(cs) != 2 {
		t.Fatalf("node 3 should be in 2 clusters, got %d", len(cs))
	}
	if !en.InAnyCluster(3) || en.InAnyCluster(99) {
		t.Fatalf("InAnyCluster wrong")
	}
}

func TestWeightUpdateKeepsClustering(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en, [2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3})
	before := en.Snapshot()
	en.AddEdge(1, 2, 0.9) // duplicate: weight refresh
	en.SetWeight(2, 3, 0.8)
	if !SameClustering(before, en.Snapshot()) {
		t.Fatalf("weight updates changed clustering")
	}
	if w, _ := en.Graph().Weight(1, 2); w != 0.9 {
		t.Fatalf("weight not refreshed")
	}
}

func TestRemoveAbsent(t *testing.T) {
	en := NewEngine(Hooks{})
	if en.RemoveEdge(1, 2) {
		t.Fatalf("removing absent edge reported true")
	}
	if en.RemoveNode(7) {
		t.Fatalf("removing absent node reported true")
	}
}

func TestClusterAccessors(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en, [2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3})
	c := en.ClusterOfEdge(1, 2)
	if c == nil {
		t.Fatalf("ClusterOfEdge nil")
	}
	if c.ID() == 0 {
		t.Fatalf("cluster id zero")
	}
	if en.Cluster(c.ID()) != c {
		t.Fatalf("Cluster lookup mismatch")
	}
	if got := c.Density(); got != 1.0 {
		t.Fatalf("triangle density = %v, want 1", got)
	}
	if !c.HasEdge(dygraph.NewEdge(3, 1)) || c.HasEdge(dygraph.NewEdge(1, 9)) {
		t.Fatalf("HasEdge wrong")
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0] != 1 || nodes[2] != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
	edges := c.Edges()
	if len(edges) != 3 || edges[0] != dygraph.NewEdge(1, 2) {
		t.Fatalf("Edges = %v", edges)
	}
	count := 0
	c.ForEachNode(func(dygraph.NodeID) { count++ })
	c.ForEachEdge(func(dygraph.Edge) { count++ })
	if count != 6 {
		t.Fatalf("ForEach visited %d", count)
	}
	if en.ClusterOfEdge(1, 99) != nil {
		t.Fatalf("ClusterOfEdge for absent edge should be nil")
	}
}

func TestHooksLifecycle(t *testing.T) {
	var formed, updated, merged, split, dissolved int
	en := NewEngine(Hooks{
		OnFormed:    func(*Cluster) { formed++ },
		OnUpdated:   func(*Cluster) { updated++ },
		OnMerged:    func(*Cluster, ClusterID) { merged++ },
		OnSplit:     func(ClusterID, []*Cluster) { split++ },
		OnDissolved: func(ClusterID) { dissolved++ },
	})
	// Two triangles -> 2 formed.
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{4, 5}, [2]dygraph.NodeID{5, 6}, [2]dygraph.NodeID{4, 6})
	if formed != 2 {
		t.Fatalf("formed = %d, want 2", formed)
	}
	// Bridge, then grow A across the bridge: triangle 2-3-4 only touches
	// cluster A (its edge 2-3), so this is an update, not a merge.
	addEdges(en, [2]dygraph.NodeID{3, 4})
	addEdges(en, [2]dygraph.NodeID{2, 4})
	if merged != 0 {
		t.Fatalf("premature merge: triangle touches only one cluster")
	}
	if updated == 0 {
		t.Fatalf("growing cluster A did not fire OnUpdated")
	}
	// Triangle 3-4-5 uses edge 3-4 (now in A) and 4-5 (in B): true merge.
	addEdges(en, [2]dygraph.NodeID{3, 5})
	if merged == 0 {
		t.Fatalf("merge not observed")
	}
	if en.ClusterCount() != 1 {
		t.Fatalf("expected one merged cluster, got %d", en.ClusterCount())
	}
	// Tear down to trigger dissolution.
	for _, n := range []dygraph.NodeID{1, 2, 3, 4, 5, 6} {
		en.RemoveNode(n)
	}
	if dissolved == 0 {
		t.Fatalf("no dissolution observed")
	}
	if updated == 0 {
		t.Fatalf("no updates observed")
	}
}

func TestBirthAndOps(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en, [2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3})
	c := en.AddEdge(1, 3, 1)
	if c.Birth() != 3 {
		t.Fatalf("birth = %d, want 3", c.Birth())
	}
	if en.Ops() != 3 {
		t.Fatalf("ops = %d", en.Ops())
	}
}

// --- Invariant checking over randomized operation sequences ---

// checkInvariants verifies the engine's structural invariants:
// 1. every cluster satisfies SCP within its own edges;
// 2. every cluster is biconnected (Theorem 2);
// 3. clusters are edge-disjoint and edgeCluster/nodeClusters maps agree;
// 4. every short cycle in the graph lies inside a single cluster;
// 5. the clustering equals the canonical recompute (Theorem 3 / Lemma 2).
func checkInvariants(t *testing.T, en *Engine) {
	t.Helper()
	seenEdges := make(map[dygraph.Edge]ClusterID)
	for _, c := range en.Clusters() {
		sub := quasi.FromEdges(c.Edges())
		if !sub.SatisfiesSCP() {
			t.Fatalf("cluster %d violates SCP: %v", c.ID(), c.Edges())
		}
		if !sub.IsBiconnected() {
			t.Fatalf("cluster %d not biconnected: %v", c.ID(), c.Edges())
		}
		for _, e := range c.Edges() {
			if prev, dup := seenEdges[e]; dup {
				t.Fatalf("edge %v in clusters %d and %d", e, prev, c.ID())
			}
			seenEdges[e] = c.ID()
			if got := en.ClusterOfEdge(e.U, e.V); got == nil || got.ID() != c.ID() {
				t.Fatalf("edgeCluster map inconsistent for %v", e)
			}
			if !en.Graph().HasEdge(e.U, e.V) {
				t.Fatalf("cluster edge %v missing from graph", e)
			}
		}
		for _, n := range c.Nodes() {
			found := false
			for _, cn := range en.ClustersOfNode(n) {
				if cn.ID() == c.ID() {
					found = true
				}
			}
			if !found {
				t.Fatalf("nodeClusters missing node %d -> cluster %d", n, c.ID())
			}
		}
	}
	if !SameClustering(en.Snapshot(), Canonical(en.Graph())) {
		t.Fatalf("incremental clustering diverged from canonical recompute")
	}
}

// TestRandomOpsMatchCanonical is the central property test: after every
// operation in a random add/remove sequence, the incrementally maintained
// clustering must equal the canonical global recomputation and satisfy all
// structural invariants.
func TestRandomOpsMatchCanonical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 1234} {
		rng := rand.New(rand.NewSource(seed))
		en := NewEngine(Hooks{})
		const nodes = 14
		for i := 0; i < 300; i++ {
			a := dygraph.NodeID(rng.Intn(nodes))
			b := dygraph.NodeID(rng.Intn(nodes))
			switch r := rng.Float64(); {
			case r < 0.55:
				en.AddEdge(a, b, rng.Float64())
			case r < 0.85:
				en.RemoveEdge(a, b)
			default:
				en.RemoveNode(a)
			}
			if i%10 == 0 {
				checkInvariants(t, en)
			}
		}
		checkInvariants(t, en)
	}
}

// TestDenseRandomOps uses a smaller node universe so the graph gets dense
// and merges/splits churn constantly.
func TestDenseRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	en := NewEngine(Hooks{})
	const nodes = 8
	for i := 0; i < 400; i++ {
		a := dygraph.NodeID(rng.Intn(nodes))
		b := dygraph.NodeID(rng.Intn(nodes))
		if rng.Float64() < 0.6 {
			en.AddEdge(a, b, 1)
		} else {
			en.RemoveEdge(a, b)
		}
		if i%20 == 0 {
			checkInvariants(t, en)
		}
	}
	checkInvariants(t, en)
}

// TestLemma5OrderIndependence: inserting the same edge set in different
// orders yields the same clustering.
func TestLemma5OrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges [][2]dygraph.NodeID
	for i := 0; i < 40; i++ {
		a := dygraph.NodeID(rng.Intn(12))
		b := dygraph.NodeID(rng.Intn(12))
		if a != b {
			edges = append(edges, [2]dygraph.NodeID{a, b})
		}
	}
	build := func(order []int) []EdgeSet {
		en := NewEngine(Hooks{})
		for _, idx := range order {
			e := edges[idx]
			en.AddEdge(e[0], e[1], 1)
		}
		return en.Snapshot()
	}
	base := make([]int, len(edges))
	for i := range base {
		base[i] = i
	}
	ref := build(base)
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(edges))
		if !SameClustering(ref, build(perm)) {
			t.Fatalf("insertion order changed clustering (trial %d)", trial)
		}
	}
}

// TestStatsAdvance sanity-checks the work counters.
func TestStatsAdvance(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3}, [2]dygraph.NodeID{1, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{2, 4})
	en.RemoveNode(4)
	checks, merges, splits := en.Stats()
	if checks == 0 {
		t.Fatalf("no cycle checks recorded")
	}
	_ = merges
	_ = splits
}

// TestLongMergeChain grows a path of triangles one at a time: every new
// triangle shares an edge with the previous one, so the cluster absorbs
// each extension and survives as a single identity throughout.
func TestLongMergeChain(t *testing.T) {
	en := NewEngine(Hooks{})
	en.AddEdge(0, 1, 1)
	c := en.AddEdge(0, 2, 1)
	en.AddEdge(1, 2, 1)
	first := en.Clusters()[0].ID()
	for i := dygraph.NodeID(3); i < 40; i++ {
		en.AddEdge(i, i-1, 1)
		c = en.AddEdge(i, i-2, 1)
		if c == nil {
			t.Fatalf("extension %d did not cluster", i)
		}
		if en.ClusterCount() != 1 {
			t.Fatalf("extension %d split the chain: %d clusters", i, en.ClusterCount())
		}
		if c.ID() != first {
			t.Fatalf("chain lost its identity at %d: %d vs %d", i, c.ID(), first)
		}
	}
	if c.NodeCount() != 40 {
		t.Fatalf("chain has %d nodes", c.NodeCount())
	}
	// The chain is an aMQC but certainly not an MQC (degree 2–4 of 39).
	sub := quasi.FromEdges(c.Edges())
	if !sub.SatisfiesSCP() || sub.IsMQC() {
		t.Fatalf("chain classification wrong: SCP=%v MQC=%v", sub.SatisfiesSCP(), sub.IsMQC())
	}
}

// TestInterleavedAddRemoveSameEdge hammers one edge on and off inside a
// cluster; the cluster must flap between 4 and 5 edges without corruption.
func TestInterleavedAddRemoveSameEdge(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{4, 1})
	for i := 0; i < 50; i++ {
		en.AddEdge(1, 3, 1)
		if c := en.ClusterOfEdge(1, 3); c == nil || c.EdgeCount() != 5 {
			t.Fatalf("iter %d: diagonal not absorbed", i)
		}
		en.RemoveEdge(1, 3)
		if en.ClusterCount() != 1 || en.Clusters()[0].EdgeCount() != 4 {
			t.Fatalf("iter %d: square did not survive diagonal removal", i)
		}
	}
	checkInvariants(t, en)
}
