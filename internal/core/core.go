// Package core implements the paper's primary contribution: discovery and
// maintenance of dense clusters (approximate majority quasi-cliques, aMQCs)
// in a highly dynamic graph using the short-cycle property (SCP).
//
// # Short-cycle property
//
// A cluster C satisfies SCP if every edge of C lies on a cycle of length at
// most 4 whose edges all belong to C (Section 4.1 of the paper). SCP is a
// necessary condition for ½-quasi cliques (Theorem 1) and a sufficient
// condition for biconnectivity (Theorem 2), which makes SCP clusters a
// practical middle ground between complete cliques (too strict for evolving
// events) and biconnected components (too loose).
//
// # Canonical clustering
//
// The clustering maintained here is canonical: take every cycle of length 3
// or 4 in the graph as a seed edge set, then repeatedly merge seeds and
// clusters that share an edge (Lemma 6). The resulting clusters are the
// connected components of the "edges related by a common short cycle"
// relation; edges on no short cycle belong to no cluster. This object is
// unique for a given graph (Theorem 3), which is what makes purely local
// maintenance possible: Canonical in this package computes it from scratch
// and is used both as a reference implementation and as the oracle for the
// engine's property tests.
//
// # Incremental maintenance
//
// Engine maintains the canonical clustering under node/edge addition and
// deletion with work proportional to the neighborhood of the change:
//
//   - Edge addition: every new short cycle passes through the new edge, so
//     enumerating triangles and 4-cycles through it (O(deg·deg)) finds all
//     new seeds; clusters owning any seed edge are merged (Lemma 6).
//   - Node addition: the node is added with its incident edges one at a
//     time; Lemma 5 (order independence) guarantees the same result as the
//     paper's pairwise R1/R2 formulation, which is also provided.
//   - Deletion: only the owning cluster is affected. Repair re-derives the
//     canonical components inside the cluster's remaining edge set: the
//     paper's cycle check (drop edges that lost their last short cycle) and
//     articulation check (split parts that met only at the deleted element)
//     both fall out of this construction.
//
// A node may participate in several clusters; an edge belongs to at most
// one. All short cycles of the graph are always fully contained in a single
// cluster — the invariant that keeps repair local.
package core

import (
	"repro/internal/dygraph"
)

// ClusterID identifies a live cluster. IDs are never reused within an
// Engine's lifetime. The zero value means "no cluster".
type ClusterID uint64

// Cluster is a set of nodes and edges satisfying the short-cycle property.
// Clusters are owned and mutated by their Engine; callers must treat them
// as read-only snapshots that are only valid until the next engine update.
type Cluster struct {
	id ClusterID
	// nodes maps each member node to the number of cluster edges incident
	// to it, so membership can be withdrawn when the count drops to zero.
	nodes map[dygraph.NodeID]int
	edges map[dygraph.Edge]struct{}
	// birth is the engine operation sequence number at which the cluster
	// was formed; used by higher layers to track event lifetime.
	birth uint64
}

// ID returns the cluster's identifier.
func (c *Cluster) ID() ClusterID { return c.id }

// Birth returns the engine operation sequence number at which this cluster
// was formed. Merges keep the birth of the surviving (larger) cluster.
func (c *Cluster) Birth() uint64 { return c.birth }

// NodeCount returns the number of member nodes.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// EdgeCount returns the number of member edges.
func (c *Cluster) EdgeCount() int { return len(c.edges) }

// HasNode reports whether n belongs to the cluster.
func (c *Cluster) HasNode(n dygraph.NodeID) bool {
	_, ok := c.nodes[n]
	return ok
}

// HasEdge reports whether e belongs to the cluster.
func (c *Cluster) HasEdge(e dygraph.Edge) bool {
	_, ok := c.edges[e]
	return ok
}

// Nodes returns the member nodes sorted ascending.
func (c *Cluster) Nodes() []dygraph.NodeID {
	out := make([]dygraph.NodeID, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	dygraph.SortNodes(out)
	return out
}

// Edges returns the member edges sorted by (U,V).
func (c *Cluster) Edges() []dygraph.Edge {
	out := make([]dygraph.Edge, 0, len(c.edges))
	for e := range c.edges {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

// AppendNodes appends the member nodes (sorted ascending) to dst,
// reusing its capacity — the allocation-amortised companion of Nodes
// for per-quantum consumers.
func (c *Cluster) AppendNodes(dst []dygraph.NodeID) []dygraph.NodeID {
	start := len(dst)
	for n := range c.nodes {
		dst = append(dst, n)
	}
	dygraph.SortNodes(dst[start:])
	return dst
}

// AppendEdges appends the member edges (canonical orientation, sorted
// by (U,V)) to dst, reusing its capacity.
func (c *Cluster) AppendEdges(dst []dygraph.Edge) []dygraph.Edge {
	start := len(dst)
	for e := range c.edges {
		dst = append(dst, e)
	}
	sortEdges(dst[start:])
	return dst
}

// ForEachNode calls fn for every member node in unspecified order.
func (c *Cluster) ForEachNode(fn func(n dygraph.NodeID)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use Nodes/AppendNodes
	for n := range c.nodes {
		fn(n)
	}
}

// ForEachEdge calls fn for every member edge in unspecified order.
func (c *Cluster) ForEachEdge(fn func(e dygraph.Edge)) {
	//repro:order-insensitive documented unordered-callback API; callers needing order use Edges/AppendEdges
	for e := range c.edges {
		fn(e)
	}
}

// Density returns 2|E| / (|V|·(|V|−1)), the fraction of possible edges
// present in the cluster. A complete clique has density 1.
func (c *Cluster) Density() float64 {
	n := len(c.nodes)
	if n < 2 {
		return 0
	}
	return 2 * float64(len(c.edges)) / float64(n*(n-1))
}

func (c *Cluster) addEdge(e dygraph.Edge) {
	if _, ok := c.edges[e]; ok {
		return
	}
	c.edges[e] = struct{}{}
	c.nodes[e.U]++
	c.nodes[e.V]++
}

// removeEdge drops e and returns any endpoints whose incident cluster-edge
// count reached zero (they leave the cluster).
func (c *Cluster) removeEdge(e dygraph.Edge) []dygraph.NodeID {
	if _, ok := c.edges[e]; !ok {
		return nil
	}
	delete(c.edges, e)
	var gone []dygraph.NodeID
	for _, n := range [2]dygraph.NodeID{e.U, e.V} {
		c.nodes[n]--
		if c.nodes[n] == 0 {
			delete(c.nodes, n)
			gone = append(gone, n)
		}
	}
	return gone
}

func sortEdges(es []dygraph.Edge) { dygraph.SortEdges(es) }
