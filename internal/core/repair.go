package core

import (
	"sort"

	"repro/internal/dygraph"
)

// repair restores the canonical clustering inside a cluster after one or
// more of its edges were deleted. It implements the paper's NodeDeletion /
// EdgeDeletion post-processing (Section 5.3–5.4):
//
//   - cycle check: edges that no longer lie on any cycle of length ≤ 4
//     within the cluster are expelled;
//   - articulation check: surviving edges are regrouped into the connected
//     components of the "share a short cycle" relation, so pieces that met
//     only at the deleted node/edge (an articulation point, as in the
//     paper's Figure 6) split into separate clusters.
//
// Because every short cycle of the graph lies entirely inside one cluster
// (engine invariant), the computation never needs to look beyond the
// cluster's own edges — this is the locality the paper's Lemma 7 argues
// for; we realise it by recomputing the canonical construction on the
// cluster subgraph, which is small (about 7 nodes on average, Section 7.4).
func (en *Engine) repair(c *Cluster) {
	if len(c.edges) < 3 {
		en.dissolve(c)
		return
	}

	// Local adjacency over the cluster's surviving edges.
	adj := make(map[dygraph.NodeID]map[dygraph.NodeID]struct{}, len(c.nodes))
	link := func(a, b dygraph.NodeID) {
		m, ok := adj[a]
		if !ok {
			m = make(map[dygraph.NodeID]struct{}, 4)
			adj[a] = m
		}
		m[b] = struct{}{}
	}
	edges := make([]dygraph.Edge, 0, len(c.edges))
	index := make(map[dygraph.Edge]int, len(c.edges))
	//repro:order-insensitive edge indices are arbitrary labels; grouping is by connectivity and the groups are canonicalised below
	for e := range c.edges {
		index[e] = len(edges)
		edges = append(edges, e)
		link(e.U, e.V)
		link(e.V, e.U)
	}

	uf := newUnionFind(len(edges))
	onCycle := make([]bool, len(edges))
	mark := func(a, b dygraph.Edge) {
		i, j := index[a], index[b]
		onCycle[i], onCycle[j] = true, true
		uf.union(i, j)
	}
	for _, e := range edges {
		u, v := e.U, e.V
		// Triangles u–v–x within the cluster.
		nu, nv := adj[u], adj[v]
		if len(nu) > len(nv) {
			nu, nv = nv, nu
			u, v = v, u
		}
		for x := range nu { //repro:order-insensitive marks and unions are idempotent; the final components are order-independent
			en.statCycleChecks++
			if _, ok := nv[x]; ok {
				mark(e, dygraph.NewEdge(u, x))
				mark(e, dygraph.NewEdge(v, x))
			}
		}
		// 4-cycles u–n3–n4–v within the cluster.
		for n3 := range adj[u] { //repro:order-insensitive marks and unions are idempotent; the final components are order-independent
			if n3 == v {
				continue
			}
			for n4 := range adj[v] { //repro:order-insensitive marks and unions are idempotent; the final components are order-independent
				if n4 == u || n4 == n3 {
					continue
				}
				en.statCycleChecks++
				if _, ok := adj[n3][n4]; ok {
					mark(e, dygraph.NewEdge(u, n3))
					mark(e, dygraph.NewEdge(n3, n4))
					mark(e, dygraph.NewEdge(n4, v))
				}
			}
		}
	}

	// Group surviving edges by union-find root.
	groups := make(map[int][]dygraph.Edge)
	survivors := 0
	for i, e := range edges {
		if !onCycle[i] {
			continue
		}
		root := uf.find(i)
		groups[root] = append(groups[root], e)
		survivors++
	}

	if len(groups) == 0 {
		en.dissolve(c)
		return
	}
	if len(groups) == 1 && survivors == len(edges) {
		// Every edge still sits on a short cycle and the cluster held
		// together: nothing to restructure.
		en.hooks.updated(c)
		return
	}

	// Restructure: the largest component keeps the original identity so
	// that event history survives partial decay; the rest become new
	// clusters; expelled edges become cluster-less.
	comps := make([][]dygraph.Edge, 0, len(groups))
	//repro:order-insensitive each component is sorted here and comps is fully ordered by the sort below
	for _, g := range groups {
		sortEdges(g) // must precede the tie-break below
		comps = append(comps, g)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		// Deterministic tie-break for reproducible splits: compare the
		// smallest edge of each (already sorted) component.
		a, b := comps[i][0], comps[j][0]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})

	oldID := c.id
	//repro:order-insensitive per-node membership drops commute; each node is handled once
	for n := range c.nodes {
		en.dropMembership(n, oldID)
	}
	for e := range c.edges {
		delete(en.edgeCluster, e)
	}
	c.nodes = make(map[dygraph.NodeID]int)
	c.edges = make(map[dygraph.Edge]struct{})

	parts := make([]*Cluster, 0, len(comps))
	for i, comp := range comps {
		target := c
		if i > 0 {
			target = en.newCluster()
		}
		// Every part changed shape — the original identity lost nodes or
		// edges, fresh parts are new. Dirty-set consumers must revisit
		// them all even when a part contains no vertex the caller marked
		// (an expelled edge can strand a part that holds neither endpoint
		// of the deleted element).
		en.markTouched(target.id)
		for _, e := range comp {
			target.addEdge(e)
			en.edgeCluster[e] = target.id
			en.addMembership(e.U, target.id)
			en.addMembership(e.V, target.id)
		}
		parts = append(parts, target)
	}

	if len(parts) == 1 {
		en.hooks.updated(c)
		return
	}
	en.statSplits++
	en.hooks.split(oldID, parts)
}

// dissolve removes a cluster entirely: its edges stay in the graph but are
// no longer part of any cluster.
func (en *Engine) dissolve(c *Cluster) {
	for e := range c.edges {
		delete(en.edgeCluster, e)
	}
	//repro:order-insensitive per-node membership drops commute; each node is handled once
	for n := range c.nodes {
		en.dropMembership(n, c.id)
	}
	delete(en.clusters, c.id)
	en.hooks.dissolved(c.id)
}

// unionFind is a minimal weighted quick-union with path halving, used to
// group cluster edges by connected short-cycle component.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
