package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dygraph"
	"repro/internal/quasi"
)

// buildClique inserts a complete clique over nodes [0,n).
func buildClique(en *Engine, n int) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			en.AddEdge(dygraph.NodeID(i), dygraph.NodeID(j), 1)
		}
	}
}

func TestCliqueIsSingleCluster(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8} {
		en := NewEngine(Hooks{})
		buildClique(en, n)
		if en.ClusterCount() != 1 {
			t.Fatalf("K%d: %d clusters", n, en.ClusterCount())
		}
		c := en.Clusters()[0]
		if c.NodeCount() != n || c.EdgeCount() != n*(n-1)/2 {
			t.Fatalf("K%d cluster wrong: %d nodes %d edges", n, c.NodeCount(), c.EdgeCount())
		}
		if c.Density() != 1 {
			t.Fatalf("K%d density %v", n, c.Density())
		}
	}
}

// TestCliqueDeletionCascade tears a K6 down edge by edge; at every step
// the engine must agree with the canonical recompute, and the final graph
// has no clusters.
func TestCliqueDeletionCascade(t *testing.T) {
	en := NewEngine(Hooks{})
	buildClique(en, 6)
	edges := en.Graph().Edges()
	for _, e := range edges {
		en.RemoveEdge(e.U, e.V)
		if !SameClustering(en.Snapshot(), Canonical(en.Graph())) {
			t.Fatalf("divergence after removing %v", e)
		}
	}
	if en.ClusterCount() != 0 {
		t.Fatalf("%d clusters left on empty graph", en.ClusterCount())
	}
}

// TestSplitKeepsLargestIdentity: when a deletion splits a cluster, the
// larger component must retain the original cluster ID (event history
// continuity in the detector).
func TestSplitKeepsLargestIdentity(t *testing.T) {
	en := NewEngine(Hooks{})
	// Big block: K4 over {0,1,2,3}; small block: triangle {10,11,12};
	// joined through node 5 with short cycles on both sides.
	buildClique(en, 4)
	addEdges(en,
		[2]dygraph.NodeID{10, 11}, [2]dygraph.NodeID{11, 12}, [2]dygraph.NodeID{10, 12})
	// Bridge node 5: triangle with the K4 side (0,1) and with the
	// triangle side (10,11) — all one cluster via shared node-5 edges?
	// Shared edges are what merge clusters; build them explicitly.
	addEdges(en,
		[2]dygraph.NodeID{5, 0}, [2]dygraph.NodeID{5, 1}, // triangle 5-0-1
		[2]dygraph.NodeID{5, 10}, [2]dygraph.NodeID{5, 11}) // triangle 5-10-11
	// Now: cluster A = K4 + node 5 (via triangle 5-0-1 sharing edge 0-1),
	// cluster B = triangle + node 5. Glue A and B into one by an edge
	// pair that puts 5's edges on a common cycle: 0-10 edge creates
	// 4-cycle 5-0-10(-5)? 5-0, 0-10, 10-5: that's a triangle through 5.
	en.AddEdge(0, 10, 1)
	if en.ClusterCount() != 1 {
		t.Skipf("construction yielded %d clusters; geometry changed", en.ClusterCount())
	}
	id := en.Clusters()[0].ID()
	// Deleting 0-10 and node 5 disconnects the blocks again.
	en.RemoveEdge(0, 10)
	en.RemoveNode(5)
	if en.ClusterCount() != 2 {
		t.Fatalf("want 2 clusters after split, got %d", en.ClusterCount())
	}
	var big, small *Cluster
	for _, c := range en.Clusters() {
		if c.HasNode(0) {
			big = c
		}
		if c.HasNode(10) {
			small = c
		}
	}
	if big == nil || small == nil {
		t.Fatalf("blocks lost")
	}
	if big.ID() != id {
		t.Fatalf("largest component lost original identity: %d vs %d", big.ID(), id)
	}
	if small.ID() == id {
		t.Fatalf("both parts share an ID")
	}
}

// TestNodeDeletionHeavy removes random nodes from random graphs and checks
// canonical equality after every removal.
func TestNodeDeletionHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		en := NewEngine(Hooks{})
		const n = 16
		for i := 0; i < 80; i++ {
			a := dygraph.NodeID(rng.Intn(n))
			b := dygraph.NodeID(rng.Intn(n))
			en.AddEdge(a, b, 1)
		}
		order := rng.Perm(n)
		for _, v := range order {
			en.RemoveNode(dygraph.NodeID(v))
			if !SameClustering(en.Snapshot(), Canonical(en.Graph())) {
				t.Fatalf("trial %d: divergence after removing node %d", trial, v)
			}
		}
		if en.ClusterCount() != 0 || en.Graph().NodeCount() != 0 {
			t.Fatalf("trial %d: leftovers after full teardown", trial)
		}
	}
}

// TestQuickCanonicalEquality is a testing/quick property: for arbitrary
// edge lists, building incrementally equals the canonical recompute, and
// every resulting cluster is a biconnected aMQC.
func TestQuickCanonicalEquality(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		en := NewEngine(Hooks{})
		for _, p := range pairs {
			a := dygraph.NodeID(p[0] % 24)
			b := dygraph.NodeID(p[1] % 24)
			if a != b {
				en.AddEdge(a, b, 1)
			}
		}
		if !SameClustering(en.Snapshot(), Canonical(en.Graph())) {
			return false
		}
		for _, c := range en.Clusters() {
			sub := quasi.FromEdges(c.Edges())
			if !sub.SatisfiesSCP() || !sub.IsBiconnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRepairExpelsDanglingEdges: an edge that loses its only short cycle
// leaves the cluster but stays in the graph.
func TestRepairExpelsDanglingEdges(t *testing.T) {
	en := NewEngine(Hooks{})
	// Square 1-2-3-4 plus pendant path 4-5 (clusterless).
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{4, 1},
		[2]dygraph.NodeID{4, 5})
	if en.ClusterCount() != 1 {
		t.Fatalf("setup wrong")
	}
	en.RemoveEdge(1, 2)
	if en.ClusterCount() != 0 {
		t.Fatalf("square minus one edge should dissolve")
	}
	// All surviving edges are still in the graph, just clusterless.
	if en.Graph().EdgeCount() != 4 {
		t.Fatalf("graph edges = %d, want 4", en.Graph().EdgeCount())
	}
	for _, e := range en.Graph().Edges() {
		if en.ClusterOfEdge(e.U, e.V) != nil {
			t.Fatalf("edge %v still assigned to a cluster", e)
		}
	}
}

// TestReclusterAfterDissolve: clusterless edges can seed a new cluster
// when a later insertion closes a short cycle through them.
func TestReclusterAfterDissolve(t *testing.T) {
	en := NewEngine(Hooks{})
	addEdges(en,
		[2]dygraph.NodeID{1, 2}, [2]dygraph.NodeID{2, 3},
		[2]dygraph.NodeID{3, 4}, [2]dygraph.NodeID{4, 1})
	en.RemoveEdge(1, 2) // dissolves
	if en.ClusterCount() != 0 {
		t.Fatalf("setup: cluster should be gone")
	}
	c := en.AddEdge(1, 2, 1) // restores the square
	if c == nil || c.NodeCount() != 4 {
		t.Fatalf("re-closing the square did not recluster: %+v", c)
	}
}

// TestAddNodeWithEdgesWeights verifies weights are applied per edge.
func TestAddNodeWithEdgesWeights(t *testing.T) {
	en := NewEngine(Hooks{})
	en.AddEdge(1, 2, 0.9)
	en.AddNodeWithEdges(7, []dygraph.NodeID{1, 2}, []float64{0.3, 0.4})
	if w, _ := en.Graph().Weight(7, 1); w != 0.3 {
		t.Fatalf("weight(7,1) = %v", w)
	}
	if w, _ := en.Graph().Weight(7, 2); w != 0.4 {
		t.Fatalf("weight(7,2) = %v", w)
	}
	if en.ClusterCount() != 1 {
		t.Fatalf("triangle expected")
	}
}

// TestEdgeSetNodesOf covers the EdgeSet helper.
func TestEdgeSetNodesOf(t *testing.T) {
	s := EdgeSet{
		dygraph.NewEdge(3, 1): {},
		dygraph.NewEdge(1, 2): {},
	}
	nodes := s.NodesOf()
	if len(nodes) != 3 || nodes[0] != 1 || nodes[2] != 3 {
		t.Fatalf("NodesOf = %v", nodes)
	}
}

// TestSameClusteringNegative covers the comparison helper's failure paths.
func TestSameClusteringNegative(t *testing.T) {
	a := []EdgeSet{{dygraph.NewEdge(1, 2): {}}}
	b := []EdgeSet{{dygraph.NewEdge(1, 3): {}}}
	if SameClustering(a, b) {
		t.Fatalf("different edge sets reported equal")
	}
	if SameClustering(a, nil) {
		t.Fatalf("different lengths reported equal")
	}
	c := []EdgeSet{{dygraph.NewEdge(1, 2): {}, dygraph.NewEdge(2, 3): {}}}
	if SameClustering(a, c) {
		t.Fatalf("different sizes reported equal")
	}
}
