package core

import (
	"testing"

	"repro/internal/dygraph"
	"repro/internal/quasi"
)

// FuzzEngineOps drives the engine with an op script decoded from fuzz
// bytes (2 bits op, 2×5 bits node ids per 2-byte step) and checks the full
// invariant set: canonical equality, SCP, biconnectivity, edge-disjoint
// clusters.
func FuzzEngineOps(f *testing.F) {
	f.Add([]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x12, 0x34})
	f.Add([]byte("incremental dense cluster maintenance"))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 400 {
			script = script[:400] // bound canonical-recompute cost
		}
		en := NewEngine(Hooks{})
		for i := 0; i+1 < len(script); i += 2 {
			a := dygraph.NodeID(script[i] & 0x1f)
			b := dygraph.NodeID(script[i+1] & 0x1f)
			switch script[i] >> 6 {
			case 0, 1:
				en.AddEdge(a, b, 1)
			case 2:
				en.RemoveEdge(a, b)
			case 3:
				en.RemoveNode(a)
			}
		}
		if !SameClustering(en.Snapshot(), Canonical(en.Graph())) {
			t.Fatalf("incremental diverged from canonical")
		}
		for _, c := range en.Clusters() {
			sub := quasi.FromEdges(c.Edges())
			if !sub.SatisfiesSCP() {
				t.Fatalf("cluster %d violates SCP", c.ID())
			}
			if !sub.IsBiconnected() {
				t.Fatalf("cluster %d not biconnected", c.ID())
			}
		}
	})
}
