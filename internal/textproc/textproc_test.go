package textproc

import (
	"strings"
	"testing"

	"repro/internal/dygraph"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Earthquake struck eastern Turkey")
	got := texts(toks)
	want := []string{"earthquake", "struck", "eastern", "turkey"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !toks[0].Capitalized || toks[1].Capitalized {
		t.Fatalf("capitalization flags wrong: %+v", toks)
	}
}

func TestTokenizeDropsStopWords(t *testing.T) {
	got := texts(Tokenize("the quick and the dead"))
	want := []string{"quick", "dead"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeDropsURLsAndMentions(t *testing.T) {
	got := texts(Tokenize("@friend check https://example.com/x www.foo.bar breaking story"))
	want := []string{"check", "breaking", "story"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeHashtag(t *testing.T) {
	toks := Tokenize("#earthquake hits city")
	if toks[0].Text != "earthquake" || !toks[0].Hashtag {
		t.Fatalf("hashtag handling wrong: %+v", toks[0])
	}
}

func TestTokenizeDecimalNumber(t *testing.T) {
	toks := Tokenize("magnitude 5.9 quake")
	found := false
	for _, tok := range toks {
		if tok.Text == "5.9" {
			found = true
			if !tok.Numeric {
				t.Fatalf("5.9 not flagged numeric")
			}
		}
	}
	if !found {
		t.Fatalf("decimal token lost: %v", texts(toks))
	}
}

func TestTokenizePunctuationTrim(t *testing.T) {
	got := texts(Tokenize("breaking: earthquake!!! (turkey)"))
	want := []string{"breaking", "earthquake", "turkey"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeInteriorApostrophe(t *testing.T) {
	got := texts(Tokenize("Rick's house"))
	if got[0] != "ricks" || got[1] != "house" {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeDedupes(t *testing.T) {
	got := texts(Tokenize("fire fire fire downtown"))
	if len(got) != 2 {
		t.Fatalf("duplicates kept: %v", got)
	}
}

func TestTokenizeEmptyAndJunk(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty message produced tokens: %v", got)
	}
	if got := Tokenize("!!! ??? ..."); len(got) != 0 {
		t.Fatalf("punctuation-only produced tokens: %v", got)
	}
	if got := Tokenize("a I"); len(got) != 0 {
		t.Fatalf("single chars / stop words survived: %v", got)
	}
}

func TestKeywords(t *testing.T) {
	got := Keywords("Tornado pounds MidWest")
	if len(got) != 3 || got[0] != "tornado" {
		t.Fatalf("got %v", got)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "rt", "youre"} {
		if !IsStopWord(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"earthquake", "turkey"} {
		if IsStopWord(w) {
			t.Errorf("%q should not be a stop word", w)
		}
	}
	if StopWordCount() < 150 {
		t.Fatalf("stop word list suspiciously small: %d", StopWordCount())
	}
}

func TestLikelyNoun(t *testing.T) {
	cases := []struct {
		tok  Token
		want bool
	}{
		{Token{Text: "turkey", Capitalized: true}, true},
		{Token{Text: "earthquake"}, true},          // quake suffix
		{Token{Text: "election"}, true},            // tion suffix
		{Token{Text: "5.9", Numeric: true}, false}, // numbers are not nouns
		{Token{Text: "quickly"}, false},            // ly suffix
		{Token{Text: "running"}, false},            // ing suffix
		{Token{Text: "struck"}, false},             // verb lexicon
		{Token{Text: "massive"}, false},            // adjective lexicon
		{Token{Text: "jobs", Hashtag: true}, true}, // hashtags behave like topics
		{Token{Text: "senator"}, true},             // default noun
	}
	for _, tc := range cases {
		if got := LikelyNoun(tc.tok); got != tc.want {
			t.Errorf("LikelyNoun(%q) = %v, want %v", tc.tok.Text, got, tc.want)
		}
	}
}

func TestHasNoun(t *testing.T) {
	if !HasNoun(Tokenize("earthquake struck")) {
		t.Fatalf("earthquake cluster must pass the noun filter")
	}
	if HasNoun([]Token{{Text: "quickly"}, {Text: "running"}}) {
		t.Fatalf("all-non-noun set passed the filter")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatalf("distinct words share an ID")
	}
	if a2 := in.Intern("alpha"); a2 != a {
		t.Fatalf("re-intern changed ID")
	}
	if in.Word(a) != "alpha" || in.Word(9999) != "" {
		t.Fatalf("Word lookup wrong")
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup wrong")
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Fatalf("Lookup invented a word")
	}
	if in.Size() != 2 {
		t.Fatalf("Size = %d", in.Size())
	}
	ws := in.Words([]dygraph.NodeID{b, a})
	if len(ws) != 2 || ws[0] != "beta" || ws[1] != "alpha" {
		t.Fatalf("Words = %v", ws)
	}
}

// TestTokenizerMatchesTokenize pins the zero-alloc tokenizer to the
// allocating reference form (they share the implementation, but the
// RawToken→Token projection and buffer reuse must not drift).
func TestTokenizerMatchesTokenize(t *testing.T) {
	msgs := []string{
		"Massive 5.9 earthquake struck eastern Turkey #quake http://x.co @user",
		"ünïcödé Wörds ßtraße 日本語 テスト!!",
		"rick's earthquake,struck (parenthetical) #tags #tags dup dup",
		"", "   ", "a b c",
	}
	var tk Tokenizer
	for _, msg := range msgs {
		want := Tokenize(msg)
		raw := tk.Tokenize(msg)
		if len(raw) != len(want) {
			t.Fatalf("%q: %d raw tokens, want %d", msg, len(raw), len(want))
		}
		for i, r := range raw {
			got := Token{Text: string(r.Text), Capitalized: r.Capitalized, Hashtag: r.Hashtag, Numeric: r.Numeric}
			if got != want[i] {
				t.Fatalf("%q token %d = %+v, want %+v", msg, i, got, want[i])
			}
			if LikelyNounRaw(r) != LikelyNoun(want[i]) {
				t.Fatalf("%q token %d: LikelyNounRaw diverges from LikelyNoun", msg, i)
			}
		}
	}
}

// TestTokenizeSteadyStateAllocs pins the ingest pipeline's zero-alloc
// claim: once the vocabulary is interned, tokenizing a message and
// interning every token allocates nothing.
func TestTokenizeSteadyStateAllocs(t *testing.T) {
	msgs := []string{
		"Massive 5.9 earthquake struck eastern Turkey #quake",
		"flood river rising rapidly tonight",
		"storm warning coast evacuation ordered",
	}
	var tk Tokenizer
	in := NewInterner()
	for _, msg := range msgs { // warm: intern the vocabulary, size buffers
		for _, tok := range tk.Tokenize(msg) {
			in.InternBytes(tok.Text)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, msg := range msgs {
			for _, tok := range tk.Tokenize(msg) {
				if !LikelyNounRaw(tok) && IsStopWordBytes(tok.Text) {
					t.Fatal("unreachable; defeats dead-code elimination")
				}
				in.InternBytes(tok.Text)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state tokenize+intern allocates %.1f times per message set, want 0", allocs)
	}
}
