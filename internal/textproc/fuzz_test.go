package textproc

import (
	"strings"
	"testing"
)

// FuzzTokenize asserts tokenizer invariants over arbitrary input: no
// panics, lower-cased output, no stop words, no empty or 1-rune tokens,
// no duplicates within a message.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"",
		"Massive earthquake struck eastern Turkey",
		"#quake 5.9 @user https://x.co !!",
		"ünïcödé wörds ßtraße 日本語 テスト",
		"a b c d e f g h",
		strings.Repeat("loooong ", 100),
		"\x00\x01\x02 binary junk \xff",
		"RT @x: breaking NEWS!!!! (developing)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, msg string) {
		toks := Tokenize(msg)
		seen := map[string]struct{}{}
		for _, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("empty token from %q", msg)
			}
			if len([]rune(tok.Text)) < 2 {
				t.Fatalf("1-rune token %q from %q", tok.Text, msg)
			}
			if IsStopWord(tok.Text) {
				t.Fatalf("stop word %q survived from %q", tok.Text, msg)
			}
			// Lower-casing must be a fixed point. (Some upper-case runes
			// such as U+03D2 have no lower-case mapping, so asserting
			// !IsUpper would be wrong.)
			if tok.Text != strings.ToLower(tok.Text) {
				t.Fatalf("token %q not lower-case fixed point from %q", tok.Text, msg)
			}
			if _, dup := seen[tok.Text]; dup {
				t.Fatalf("duplicate token %q from %q", tok.Text, msg)
			}
			seen[tok.Text] = struct{}{}
			// LikelyNoun must be total (no panics) on any token.
			_ = LikelyNoun(tok)
		}
	})
}
