package textproc

import "strings"

// The paper filters discovered clusters with "at least one noun keyword"
// using the Stanford POS tagger (Section 7.2.2). A full tagger is outside
// stdlib scope, so LikelyNoun applies a conservative shape heuristic that
// plays the same role as that filter: it only has to separate
// content-bearing nouns from verbs/adjectives/adverbs well enough that
// real-event clusters (which contain proper nouns and concrete objects)
// pass and all-function-word clusters fail. DESIGN.md records this
// substitution.

// nounSuffixes are derivational suffixes that almost always mark English
// nouns.
var nounSuffixes = []string{
	"tion", "sion", "ment", "ness", "ance", "ence", "ship", "hood",
	"ism", "ist", "dom", "ure", "age", "cy", "quake", "storm", "fire",
}

// nonNounSuffixes mark words that are very likely not nouns (adverbs,
// participles, comparatives and plain adjectives).
var nonNounSuffixes = []string{
	"ly", "ing", "ed", "est", "ous", "ive", "able", "ible", "ful",
}

// Suffix tables indexed by the word's final byte, so the hot path
// checks only the handful of suffixes that could possibly match instead
// of scanning both lists for every token.
var (
	nounSufByLast    [256][]string
	nonNounSufByLast [256][]string
)

// verbish lists frequent microblog verbs/adjectives that the suffix rules
// miss. The set only needs to cover common words; rare words default to
// noun, which matches how proper nouns and fresh event terms behave.
var verbish = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"watch", "watches", "break", "breaks", "struck", "strike",
		"strikes", "hit", "hits", "kill", "kills", "found", "find",
		"finds", "made", "make", "makes", "run", "runs", "ran", "won",
		"win", "wins", "lost", "lose", "loses", "dead", "big", "small",
		"huge", "massive", "moderate", "awesome", "great", "good", "bad",
		"live", "issued", "issue", "issues", "seek", "seeks", "pound",
		"pounds", "hold", "holds", "held", "come", "comes", "came",
		"take", "takes", "took", "give", "gives", "gave", "think",
		"thinks", "thought",
	} {
		verbish[w] = struct{}{}
	}
	for _, suf := range nounSuffixes {
		last := suf[len(suf)-1]
		nounSufByLast[last] = append(nounSufByLast[last], suf)
	}
	for _, suf := range nonNounSuffixes {
		last := suf[len(suf)-1]
		nonNounSufByLast[last] = append(nonNounSufByLast[last], suf)
	}
}

// LikelyNoun reports whether the token is probably a noun. Decision order:
// numbers are not nouns; capitalized or hashtag tokens are (proper nouns
// and topic tags); known verb/adjective lexicon entries are not; noun
// suffixes win over non-noun suffixes; everything else of length ≥ 3
// defaults to noun.
func LikelyNoun(t Token) bool {
	if t.Numeric {
		return false
	}
	if t.Capitalized || t.Hashtag {
		return true
	}
	if _, ok := verbish[t.Text]; ok {
		return false
	}
	if len(t.Text) == 0 {
		return false
	}
	last := t.Text[len(t.Text)-1]
	for _, suf := range nounSufByLast[last] {
		if strings.HasSuffix(t.Text, suf) && len(t.Text) > len(suf) {
			return true
		}
	}
	for _, suf := range nonNounSufByLast[last] {
		if strings.HasSuffix(t.Text, suf) && len(t.Text) > len(suf)+1 {
			return false
		}
	}
	return len(t.Text) >= 3
}

// LikelyNounRaw is LikelyNoun for the zero-alloc tokenizer output; it
// must match LikelyNoun on the same text and flags exactly (tested).
func LikelyNounRaw(t RawToken) bool {
	if t.Numeric {
		return false
	}
	if t.Capitalized || t.Hashtag {
		return true
	}
	if _, ok := verbish[string(t.Text)]; ok { // non-allocating map probe
		return false
	}
	if len(t.Text) == 0 {
		return false
	}
	last := t.Text[len(t.Text)-1]
	for _, suf := range nounSufByLast[last] {
		if hasSuffixBytes(t.Text, suf) && len(t.Text) > len(suf) {
			return true
		}
	}
	for _, suf := range nonNounSufByLast[last] {
		if hasSuffixBytes(t.Text, suf) && len(t.Text) > len(suf)+1 {
			return false
		}
	}
	return len(t.Text) >= 3
}

func hasSuffixBytes(b []byte, suf string) bool {
	return len(b) >= len(suf) && string(b[len(b)-len(suf):]) == suf
}

// HasNoun reports whether any token in the slice is a likely noun — the
// cluster-level precision filter from Section 7.2.2.
func HasNoun(tokens []Token) bool {
	for _, t := range tokens {
		if LikelyNoun(t) {
			return true
		}
	}
	return false
}
