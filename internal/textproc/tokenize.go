// Package textproc provides the light text-processing substrate the
// detector needs: tokenization of microblog messages into keywords, stop
// word removal (Section 3.1), a noun-likeness heuristic standing in for
// the Stanford POS tagger the paper uses as a precision filter
// (Section 7.2.2), and keyword interning to compact node IDs.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a normalised keyword extracted from a message, along with the
// shape information the noun heuristic uses.
type Token struct {
	Text        string // lower-cased keyword
	Capitalized bool   // first rune was upper case in the source
	Hashtag     bool   // token was written as #tag
	Numeric     bool   // token is a number such as "5.9"
}

// Tokenize splits a raw message into keyword tokens:
//
//   - URLs and @mentions are dropped (they identify resources and users,
//     not event vocabulary);
//   - a leading '#' is stripped but remembered, since hashtags behave like
//     keywords in the CKG;
//   - everything is lower-cased; punctuation is trimmed; decimal numbers
//     like "5.9" survive as single tokens (the paper's earthquake example
//     depends on this);
//   - stop words and single-character fragments are removed;
//   - duplicate keywords within one message are collapsed.
func Tokenize(msg string) []Token {
	fields := strings.Fields(msg)
	out := make([]Token, 0, len(fields))
	seen := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		if isURL(f) || strings.HasPrefix(f, "@") {
			continue
		}
		hashtag := false
		if strings.HasPrefix(f, "#") {
			hashtag = true
			f = f[1:]
		}
		f = strings.TrimFunc(f, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		})
		if f == "" {
			continue
		}
		first, _ := firstRune(f)
		cap := unicode.IsUpper(first)
		lower := strings.ToLower(f)
		numeric := isNumeric(lower)
		if !numeric {
			// Strip interior punctuation except apostrophes already gone;
			// split tokens like "earthquake,struck" conservatively: keep
			// the longest clean prefix of letters/digits.
			lower = cleanInterior(lower)
		}
		if utf8.RuneCountInString(lower) < 2 {
			continue
		}
		if IsStopWord(lower) {
			continue
		}
		if _, dup := seen[lower]; dup {
			continue
		}
		seen[lower] = struct{}{}
		out = append(out, Token{Text: lower, Capitalized: cap, Hashtag: hashtag, Numeric: numeric})
	}
	return out
}

// Keywords returns just the token texts of Tokenize(msg).
func Keywords(msg string) []string {
	toks := Tokenize(msg)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func firstRune(s string) (rune, int) {
	for i, r := range s {
		return r, i
	}
	return 0, 0
}

func isURL(s string) bool {
	return strings.HasPrefix(s, "http://") ||
		strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

// isNumeric reports whether s is a plain or decimal number ("5", "5.9").
func isNumeric(s string) bool {
	dot := false
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' && !dot && digits > 0:
			dot = true
		default:
			return false
		}
	}
	return digits > 0
}

// cleanInterior removes non-alphanumeric runes from inside a token,
// keeping letters and digits only ("rick's" -> "ricks").
func cleanInterior(s string) string {
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		}
	}
	return b.String()
}
