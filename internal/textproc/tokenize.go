// Package textproc provides the light text-processing substrate the
// detector needs: tokenization of microblog messages into keywords, stop
// word removal (Section 3.1), a noun-likeness heuristic standing in for
// the Stanford POS tagger the paper uses as a precision filter
// (Section 7.2.2), and keyword interning to compact node IDs.
package textproc

import (
	"bytes"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a normalised keyword extracted from a message, along with the
// shape information the noun heuristic uses.
type Token struct {
	Text        string // lower-cased keyword
	Capitalized bool   // first rune was upper case in the source
	Hashtag     bool   // token was written as #tag
	Numeric     bool   // token is a number such as "5.9"
}

// RawToken is a Token whose text aliases the Tokenizer's internal
// scratch buffer: valid only until the Tokenizer's next call. The
// ingest hot path consumes RawTokens immediately (interning is the only
// retained copy), so tokenizing a message allocates nothing in steady
// state.
type RawToken struct {
	Text        []byte // lower-cased keyword; owned by the Tokenizer
	Capitalized bool
	Hashtag     bool
	Numeric     bool
}

// Tokenizer tokenizes messages into caller-visible RawTokens while
// reusing all of its internal storage across calls. Not safe for
// concurrent use; give each worker its own.
type Tokenizer struct {
	buf  []byte // lower-cased token bytes for the current message
	refs []rawRef
	toks []RawToken
}

type rawRef struct {
	off, end    int32
	capitalized bool
	hashtag     bool
	numeric     bool
}

// Tokenize splits a raw message into keyword tokens:
//
//   - URLs and @mentions are dropped (they identify resources and users,
//     not event vocabulary);
//   - a leading '#' is stripped but remembered, since hashtags behave like
//     keywords in the CKG;
//   - everything is lower-cased; punctuation is trimmed; decimal numbers
//     like "5.9" survive as single tokens (the paper's earthquake example
//     depends on this);
//   - stop words and single-character fragments are removed;
//   - duplicate keywords within one message are collapsed (first
//     occurrence's shape flags win, as before).
//
// The returned slice and the token texts are owned by the Tokenizer and
// valid until its next call.
func (tk *Tokenizer) Tokenize(msg string) []RawToken {
	tk.buf = tk.buf[:0]
	tk.refs = tk.refs[:0]
	// Fields: split around runs of white space (strings.Fields
	// semantics), without materialising the field slice. ASCII bytes —
	// the vast majority of microblog text — skip the rune decoder.
	for i := 0; i < len(msg); {
		if b := msg[i]; b < utf8.RuneSelf {
			if asciiSpace[b] {
				i++
				continue
			}
		} else {
			r, size := utf8.DecodeRuneInString(msg[i:])
			if unicode.IsSpace(r) {
				i += size
				continue
			}
		}
		j := i
		for j < len(msg) {
			if b := msg[j]; b < utf8.RuneSelf {
				if asciiSpace[b] {
					break
				}
				j++
				continue
			}
			r, size := utf8.DecodeRuneInString(msg[j:])
			if unicode.IsSpace(r) {
				break
			}
			j += size
		}
		tk.field(msg[i:j])
		i = j
	}
	if cap(tk.toks) < len(tk.refs) {
		tk.toks = make([]RawToken, 0, len(tk.refs))
	}
	tk.toks = tk.toks[:len(tk.refs)]
	for i, rf := range tk.refs {
		tk.toks[i] = RawToken{
			Text:        tk.buf[rf.off:rf.end],
			Capitalized: rf.capitalized,
			Hashtag:     rf.hashtag,
			Numeric:     rf.numeric,
		}
	}
	return tk.toks
}

// asciiSpace mirrors strings.Fields' ASCII white-space set.
var asciiSpace = [128]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// field processes one whitespace-delimited field of the message.
func (tk *Tokenizer) field(f string) {
	if isURL(f) || strings.HasPrefix(f, "@") {
		return
	}
	hashtag := false
	if strings.HasPrefix(f, "#") {
		hashtag = true
		f = f[1:]
	}
	ascii := true
	for i := 0; i < len(f); i++ {
		if f[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	var (
		capd    bool
		start   = int32(len(tk.buf))
		numeric bool
	)
	if ascii {
		// ASCII specialisation of the general path below: identical
		// semantics (unicode.IsLetter/IsDigit/IsUpper/ToLower restricted
		// to ASCII), none of the per-rune decoding.
		i, j := 0, len(f)
		for i < j && !isAlnumASCII(f[i]) {
			i++
		}
		for j > i && !isAlnumASCII(f[j-1]) {
			j--
		}
		f = f[i:j]
		if f == "" {
			return
		}
		capd = f[0] >= 'A' && f[0] <= 'Z'
		// Lowering is the identity on digits and '.', so numeric can be
		// decided before the lower+clean pass.
		numeric = isNumericASCII(f)
		if numeric {
			tk.buf = append(tk.buf, f...)
		} else {
			for i := 0; i < len(f); i++ {
				switch b := f[i]; {
				case b >= 'A' && b <= 'Z':
					tk.buf = append(tk.buf, b+'a'-'A')
				case b >= 'a' && b <= 'z' || b >= '0' && b <= '9':
					tk.buf = append(tk.buf, b)
				}
			}
		}
		if len(tk.buf)-int(start) < 2 {
			tk.buf = tk.buf[:start]
			return
		}
	} else {
		f = strings.TrimFunc(f, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		})
		if f == "" {
			return
		}
		first, _ := firstRune(f)
		capd = unicode.IsUpper(first)
		// Lower-case into the scratch buffer (per-rune unicode.ToLower —
		// exactly what strings.ToLower does, without its allocation).
		for _, r := range f {
			tk.buf = utf8.AppendRune(tk.buf, unicode.ToLower(r))
		}
		lower := tk.buf[start:]
		numeric = isNumericBytes(lower)
		if !numeric {
			// Strip interior punctuation in place, keeping letters/digits
			// (splitting tokens like "earthquake,struck" conservatively).
			w := 0
			for r := 0; r < len(lower); {
				rn, size := utf8.DecodeRune(lower[r:])
				if unicode.IsLetter(rn) || unicode.IsDigit(rn) {
					w += copy(lower[w:], lower[r:r+size])
				}
				r += size
			}
			lower = lower[:w]
			tk.buf = tk.buf[:int(start)+w]
		}
		if utf8.RuneCount(lower) < 2 {
			tk.buf = tk.buf[:start]
			return
		}
	}
	lower := tk.buf[start:]
	if IsStopWordBytes(lower) {
		tk.buf = tk.buf[:start]
		return
	}
	for _, rf := range tk.refs {
		if bytes.Equal(tk.buf[rf.off:rf.end], lower) {
			tk.buf = tk.buf[:start]
			return
		}
	}
	tk.refs = append(tk.refs, rawRef{
		off:         start,
		end:         int32(len(tk.buf)),
		capitalized: capd,
		hashtag:     hashtag,
		numeric:     numeric,
	})
}

func isAlnumASCII(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// isNumericASCII matches isNumericBytes on ASCII input (lowering is the
// identity on its accepted alphabet).
func isNumericASCII(s string) bool {
	dot := false
	digits := 0
	for i := 0; i < len(s); i++ {
		switch b := s[i]; {
		case b >= '0' && b <= '9':
			digits++
		case b == '.' && !dot && digits > 0:
			dot = true
		default:
			return false
		}
	}
	return digits > 0
}

// Tokenize is the allocating convenience form: a fresh Tokenizer per
// call, token texts copied into ordinary strings. Hot paths hold a
// Tokenizer and consume RawTokens instead.
func Tokenize(msg string) []Token {
	var tk Tokenizer
	raw := tk.Tokenize(msg)
	out := make([]Token, len(raw))
	for i, t := range raw {
		out[i] = Token{
			Text:        string(t.Text),
			Capitalized: t.Capitalized,
			Hashtag:     t.Hashtag,
			Numeric:     t.Numeric,
		}
	}
	return out
}

// Keywords returns just the token texts of Tokenize(msg).
func Keywords(msg string) []string {
	toks := Tokenize(msg)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func firstRune(s string) (rune, int) {
	for i, r := range s {
		return r, i
	}
	return 0, 0
}

func isURL(s string) bool {
	return strings.HasPrefix(s, "http://") ||
		strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

// isNumericBytes reports whether s is a plain or decimal number
// ("5", "5.9").
func isNumericBytes(s []byte) bool {
	dot := false
	digits := 0
	for _, b := range s {
		switch {
		case b >= '0' && b <= '9':
			digits++
		case b == '.' && !dot && digits > 0:
			dot = true
		default:
			return false
		}
	}
	return digits > 0
}
