package textproc

// stopWords is a compact English stop word list tuned for microblog text:
// function words, auxiliaries, pronouns, common contractions with the
// apostrophe stripped (as the tokenizer does), and a handful of
// twitter-isms ("rt", "via") that carry no event information.
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "also",
		"am", "an", "and", "any", "are", "arent", "as", "at",
		"be", "because", "been", "before", "being", "below", "between",
		"both", "but", "by",
		"can", "cant", "cannot", "could", "couldnt",
		"did", "didnt", "do", "does", "doesnt", "doing", "dont", "down",
		"during",
		"each", "else", "ever", "every",
		"few", "for", "from", "further",
		"get", "gets", "getting", "got", "go", "goes", "going", "gonna",
		"had", "hadnt", "has", "hasnt", "have", "havent", "having", "he",
		"hed", "hell", "her", "here", "heres", "hers", "herself", "hes",
		"him", "himself", "his", "how", "hows",
		"i", "id", "if", "ill", "im", "in", "into", "is", "isnt", "it",
		"its", "itself", "ive",
		"just",
		"know",
		"let", "lets", "like", "lol",
		"may", "me", "might", "more", "most", "much", "must", "mustnt",
		"my", "myself",
		"new", "no", "nor", "not", "now",
		"of", "off", "oh", "ok", "okay", "on", "once", "one", "only", "or",
		"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
		"per", "please",
		"really", "rt",
		"said", "same", "say", "says", "see", "shant", "she", "shed",
		"shell", "shes", "should", "shouldnt", "so", "some", "still", "such",
		"than", "that", "thats", "the", "their", "theirs", "them",
		"themselves", "then", "there", "theres", "these", "they", "theyd",
		"theyll", "theyre", "theyve", "this", "those", "through", "till",
		"to", "too",
		"under", "until", "up", "upon", "us", "use",
		"very", "via",
		"want", "was", "wasnt", "we", "wed", "well", "were", "werent",
		"weve", "what", "whats", "when", "whens", "where", "wheres",
		"which", "while", "who", "whom", "whos", "why", "whys", "will",
		"with", "wont", "would", "wouldnt",
		"yeah", "yes", "yet", "you", "youd", "youll", "your", "youre",
		"yours", "yourself", "yourselves", "youve",
	} {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the lower-cased keyword is a stop word.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}

// IsStopWordBytes is IsStopWord without the string conversion (the
// compiler elides the allocation for a direct map probe).
func IsStopWordBytes(w []byte) bool {
	_, ok := stopWords[string(w)]
	return ok
}

// StopWordCount returns the size of the stop word list (for sanity tests).
func StopWordCount() int { return len(stopWords) }
