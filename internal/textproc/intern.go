package textproc

import "repro/internal/dygraph"

// Interner maps keyword strings to dense dygraph.NodeIDs and back. The
// graph layers work exclusively with NodeIDs; only event reporting needs
// the reverse mapping. IDs are never reused, matching the append-only
// nature of a stream vocabulary.
type Interner struct {
	ids   map[string]dygraph.NodeID
	words []string
}

// NewInterner returns an empty interner. The zero NodeID is reserved so
// that "no node" can be expressed; the first interned word gets ID 1.
func NewInterner() *Interner {
	return &Interner{
		ids:   make(map[string]dygraph.NodeID),
		words: []string{""},
	}
}

// Intern returns the ID for word, assigning a new one on first sight.
func (in *Interner) Intern(word string) dygraph.NodeID {
	if id, ok := in.ids[word]; ok {
		return id
	}
	id := dygraph.NodeID(len(in.words))
	in.ids[word] = id
	in.words = append(in.words, word)
	return id
}

// InternBytes is Intern for a byte-slice keyword: the lookup is
// allocation-free (the compiler elides the map-key conversion), and the
// string copy is made only on first sight — the single retained
// allocation of the steady-state ingest pipeline.
func (in *Interner) InternBytes(word []byte) dygraph.NodeID {
	if id, ok := in.ids[string(word)]; ok {
		return id
	}
	w := string(word)
	id := dygraph.NodeID(len(in.words))
	in.ids[w] = id
	in.words = append(in.words, w)
	return id
}

// Lookup returns the ID for word without assigning, and whether it exists.
func (in *Interner) Lookup(word string) (dygraph.NodeID, bool) {
	id, ok := in.ids[word]
	return id, ok
}

// Word returns the keyword for an ID ("" if unknown).
func (in *Interner) Word(id dygraph.NodeID) string {
	if int(id) >= len(in.words) {
		return ""
	}
	return in.words[id]
}

// Words maps a slice of IDs to their keywords.
func (in *Interner) Words(ids []dygraph.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = in.Word(id)
	}
	return out
}

// Size returns the number of interned keywords.
func (in *Interner) Size() int { return len(in.words) - 1 }

// WordList returns all interned words in ID order (excluding the reserved
// zero entry), for checkpointing.
func (in *Interner) WordList() []string {
	out := make([]string, len(in.words)-1)
	copy(out, in.words[1:])
	return out
}

// FromWordList reconstructs an interner so that each word receives the
// same ID it had when WordList was taken.
func FromWordList(words []string) *Interner {
	in := NewInterner()
	for _, w := range words {
		in.Intern(w)
	}
	return in
}
