package wal

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// TestAppendMessagesJSONMatchesMarshal is the differential guarantee:
// the hand-rolled encoder must be byte-identical to json.Marshal for
// every batch, including the escaping corners (control bytes, HTML
// characters, invalid UTF-8, U+2028/U+2029).
func TestAppendMessagesJSONMatchesMarshal(t *testing.T) {
	texts := []string{
		"",
		"earthquake struck eastern turkey",
		`quotes " and \ backslashes`,
		"tabs\tnewlines\nreturns\r",
		"control \x00\x01\x1f bytes",
		"html <b>&amp;</b> escaping",
		"unicode ünïcödé 日本語 🦀",
		"invalid \xff\xfe utf8 \xc3(",
		"line\u2028and\u2029separators",
		"trailing invalid \xf0",
	}
	var msgs []stream.Message
	for i, txt := range texts {
		msgs = append(msgs, stream.Message{ID: uint64(i), User: uint64(i * 7), Time: int64(-i), Text: txt})
	}
	cases := [][]stream.Message{nil, {}, msgs[:1], msgs}
	for _, c := range cases {
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		got := appendMessagesJSON(nil, c)
		if string(got) != string(want) {
			t.Fatalf("encoding diverges:\ngot  %q\nwant %q", got, want)
		}
	}

	// Randomized differential sweep over byte soup.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		raw := make([]byte, rng.Intn(64))
		for j := range raw {
			raw[j] = byte(rng.Intn(256))
		}
		m := []stream.Message{{ID: rng.Uint64(), User: rng.Uint64(), Time: rng.Int63() - rng.Int63(), Text: string(raw)}}
		want, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendMessagesJSON(nil, m); string(got) != string(want) {
			t.Fatalf("case %d: encoding diverges for %q:\ngot  %q\nwant %q", i, raw, got, want)
		}
	}
}

// TestAppendMessagesJSONZeroAlloc pins the zero-alloc claim of the WAL
// append encode path: with a warm caller-owned buffer, encoding a batch
// allocates nothing.
func TestAppendMessagesJSONZeroAlloc(t *testing.T) {
	msgs := batch(1, 64)
	buf := appendMessagesJSON(nil, msgs) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendMessagesJSON(buf[:0], msgs)
	})
	if allocs != 0 {
		t.Fatalf("encode path allocates %.1f times per batch, want 0", allocs)
	}
}
