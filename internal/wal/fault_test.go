package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/vfs"
)

// TestReopenAfterTornWrite: a torn synchronous append fail-stops the
// log; Reopen truncates back to the acked prefix and appends resume.
// Replay after a real close/reopen must equal exactly the acked
// records — the torn bytes and the failed record must be gone.
func TestReopenAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	ff := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{SyncEvery: 1, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]stream.Message{}
	for i := 1; i <= 3; i++ {
		seq, err := l.Append(batch(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = batch(i, 2)
	}

	// Tear the next write 5 bytes in, then break the rollback truncate
	// too so the log actually fail-stops (a successful rollback keeps a
	// synchronous log healthy).
	wr := ff.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".wal", TornBytes: 5, Count: 1})
	tr := ff.Inject(vfs.Rule{Op: vfs.OpTruncate, Path: ".wal", Count: 1})
	if _, err := l.Append(batch(4, 2)); err == nil {
		t.Fatal("append through torn write should fail")
	}
	ff.ClearRule(wr)
	ff.ClearRule(tr)
	if l.Failed() == nil {
		t.Fatal("log should be fail-stopped after torn write + failed rollback")
	}
	if _, err := l.Append(batch(5, 2)); err == nil {
		t.Fatal("fail-stopped log must refuse appends")
	}

	if err := l.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("Failed after reopen = %v", l.Failed())
	}
	if got := l.CommittedSeq(); got != 3 {
		t.Fatalf("CommittedSeq after reopen = %d, want 3", got)
	}
	for i := 4; i <= 6; i++ {
		seq, err := l.Append(batch(i, 2))
		if err != nil {
			t.Fatalf("append %d after reopen: %v", i, err)
		}
		want[seq] = batch(i, 2)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestReopenAfterGroupFsyncFailure: a failed group-commit fsync
// fail-stops the log and fails every Commit waiter; Reopen recovers
// in-process and the re-submitted batch is not duplicated.
func TestReopenAfterGroupFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	ff := vfs.NewFaultFS(nil)
	gc := NewGroupCommitter(200 * time.Microsecond)
	defer gc.Stop()
	l, err := Open(dir, Options{GroupCommit: gc, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]stream.Message{}
	for i := 1; i <= 2; i++ {
		seq, err := l.Append(batch(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(seq); err != nil {
			t.Fatal(err)
		}
		want[seq] = batch(i, 2)
	}

	rule := ff.Inject(vfs.Rule{Op: vfs.OpSync, Path: ".wal"})
	seq, err := l.Append(batch(3, 2))
	if err != nil {
		t.Fatalf("group append buffers in memory, got %v", err)
	}
	if err := l.Commit(seq); err == nil {
		t.Fatal("commit through failed fsync should fail")
	}
	ff.ClearRule(rule)
	if l.Failed() == nil {
		t.Fatal("log should be fail-stopped after group fsync failure")
	}

	if err := l.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	// The client retries the failed batch; it must appear exactly once.
	seq, err = l.Append(batch(3, 2))
	if err != nil {
		t.Fatalf("retry after reopen: %v", err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("commit retry: %v", err)
	}
	if seq != 3 {
		t.Fatalf("retried batch landed at seq %d, want 3 (no duplicate)", seq)
	}
	want[seq] = batch(3, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestReopenENOSPCFirstWrite: the very first write of a fresh segment
// hits ENOSPC (plus a failed rollback). Reopen must recover even though
// the poisoned segment holds no acked record at all.
func TestReopenENOSPCFirstWrite(t *testing.T) {
	dir := t.TempDir()
	ff := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{SyncEvery: 1, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	wr := ff.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".wal", Err: syscall.ENOSPC, Count: 1})
	tr := ff.Inject(vfs.Rule{Op: vfs.OpTruncate, Path: ".wal", Err: syscall.ENOSPC, Count: 1})
	if _, err := l.Append(batch(1, 2)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append = %v, want ENOSPC", err)
	}
	ff.ClearRule(wr)
	ff.ClearRule(tr)
	if l.Failed() == nil {
		t.Fatal("log should be fail-stopped")
	}
	if err := l.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	seq, err := l.Append(batch(1, 2))
	if err != nil || seq != 1 {
		t.Fatalf("append after reopen = (%d, %v), want (1, nil)", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 1 || !reflect.DeepEqual(got[1], batch(1, 2)) {
		t.Fatalf("replay = %v, want just batch 1", got)
	}
}

// TestReopenStaysFailedWhileDiskSick: Reopen on a still-broken disk
// returns an error and leaves the log fail-stopped; a later Reopen
// after the fault clears succeeds — the probe loop's contract.
func TestReopenStaysFailedWhileDiskSick(t *testing.T) {
	dir := t.TempDir()
	ff := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{SyncEvery: 1, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Persistent EIO on every wal write and truncate: the append fails,
	// the rollback fails (fail-stop), and Reopen's own truncate fails.
	rule := ff.Inject(vfs.Rule{Op: vfs.OpTruncate, Path: ".wal"})
	wr := ff.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".wal", Count: 1})
	if _, err := l.Append(batch(2, 2)); err == nil {
		t.Fatal("append should fail")
	}
	ff.ClearRule(wr)
	if l.Failed() == nil {
		t.Fatal("log should be fail-stopped")
	}
	if err := l.Reopen(); err == nil {
		t.Fatal("reopen with sick disk should fail")
	}
	if l.Failed() == nil {
		t.Fatal("failed reopen must leave the log fail-stopped")
	}
	ff.ClearRule(rule)
	if err := l.Reopen(); err != nil {
		t.Fatalf("reopen after disk heals: %v", err)
	}
	seq, err := l.Append(batch(2, 2))
	if err != nil || seq != 2 {
		t.Fatalf("append after recovery = (%d, %v), want (2, nil)", seq, err)
	}
	l.Close()
}

// TestSnapshotENOSPCLeavesPreviousIntact: a snapshot write that runs
// out of space must leave the previous snapshot byte-identical, leave
// no temp-file debris, keep the log healthy, and keep recovery (replay
// from the old snapshot) exact.
func TestSnapshotENOSPCLeavesPreviousIntact(t *testing.T) {
	dir := t.TempDir()
	ff := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{SyncEvery: 1, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]stream.Message{}
	for i := 1; i <= 3; i++ {
		seq, _ := l.Append(batch(i, 2))
		want[seq] = batch(i, 2)
	}
	state := []byte("detector state after seq 3")
	if err := l.Snapshot(3, func(w io.Writer) error {
		_, err := w.Write(state)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(filepath.Join(dir, "snap-00000000000000000003.snap"))
	if err != nil || string(prev) != string(state) {
		t.Fatalf("baseline snapshot = %q, %v", prev, err)
	}

	for i := 4; i <= 5; i++ {
		seq, _ := l.Append(batch(i, 2))
		want[seq] = batch(i, 2)
	}
	rule := ff.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "snap-tmp", Err: syscall.ENOSPC})
	err = l.Snapshot(5, func(w io.Writer) error {
		_, werr := w.Write([]byte("state after seq 5 — must not survive"))
		return werr
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snapshot = %v, want ENOSPC", err)
	}
	ff.ClearRule(rule)

	// No temp debris, previous snapshot byte-identical.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-tmp-") {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
	after, err := os.ReadFile(filepath.Join(dir, "snap-00000000000000000003.snap"))
	if err != nil || string(after) != string(state) {
		t.Fatalf("previous snapshot corrupted: %q, %v", after, err)
	}

	// The log is still healthy — a failed snapshot is not a WAL fault.
	if l.Failed() != nil {
		t.Fatalf("log failed after snapshot ENOSPC: %v", l.Failed())
	}
	seq, err := l.Append(batch(6, 2))
	if err != nil || seq != 6 {
		t.Fatalf("append after failed snapshot = (%d, %v)", seq, err)
	}
	want[seq] = batch(6, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: latest snapshot is still seq 3, and replaying the tail
	// reproduces every acked batch exactly.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rc, snapSeq, err := l2.LatestSnapshot()
	if err != nil || snapSeq != 3 {
		t.Fatalf("LatestSnapshot = seq %d, %v; want 3", snapSeq, err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != string(state) {
		t.Fatalf("recovered snapshot = %q, want %q", data, state)
	}
	got := collect(t, l2, snapSeq)
	wantTail := map[uint64][]stream.Message{4: want[4], 5: want[5], 6: want[6]}
	if !reflect.DeepEqual(got, wantTail) {
		t.Fatalf("tail replay mismatch:\ngot  %v\nwant %v", got, wantTail)
	}
}

// TestReopenHealthyNoOp: Reopen on a healthy log does nothing.
func TestReopenHealthyNoOp(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(batch(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Reopen(); err != nil {
		t.Fatalf("healthy reopen: %v", err)
	}
	if seq, err := l.Append(batch(2, 1)); err != nil || seq != 2 {
		t.Fatalf("append after no-op reopen = (%d, %v)", seq, err)
	}
}
