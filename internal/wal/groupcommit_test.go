package wal

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestGroupCommitRoundTrip: appends on two logs sharing one committer
// are acknowledged by Commit, durable across reopen, and replay in
// order — the synchronous contract, group-committed.
func TestGroupCommitRoundTrip(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	defer gc.Stop()
	dirs := []string{t.TempDir(), t.TempDir()}
	logs := make([]*Log, 2)
	for i, dir := range dirs {
		l, err := Open(dir, Options{GroupCommit: gc})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	var wg sync.WaitGroup
	for i, l := range logs {
		wg.Add(1)
		go func(i int, l *Log) {
			defer wg.Done()
			for n := 1; n <= 20; n++ {
				seq, err := l.Append(batch(100*i+n, 2))
				if err != nil {
					t.Errorf("log %d append %d: %v", i, n, err)
					return
				}
				if err := l.Commit(seq); err != nil {
					t.Errorf("log %d commit %d: %v", i, seq, err)
					return
				}
			}
		}(i, l)
	}
	wg.Wait()
	for i, l := range logs {
		if l.LastSeq() != 20 {
			t.Fatalf("log %d LastSeq = %d, want 20", i, l.LastSeq())
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen without the committer: every committed record is there.
		l2, err := Open(dirs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, l2, 0)
		if len(got) != 20 {
			t.Fatalf("log %d replayed %d records, want 20", i, len(got))
		}
		if !reflect.DeepEqual(got[3], batch(100*i+3, 2)) {
			t.Fatalf("log %d record 3 mismatch", i)
		}
		l2.Close()
	}
}

// TestGroupCommitFlushRecord: flush markers ride group commit too and
// keep their position relative to batches.
func TestGroupCommitFlushRecord(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	defer gc.Stop()
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(1, 2)); err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendFlush()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(3); err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("flush seq = %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var kinds []string
	if err := l2.Replay(0, func(seq uint64, msgs []stream.Message, flush bool) error {
		if flush {
			kinds = append(kinds, "flush")
		} else {
			kinds = append(kinds, fmt.Sprintf("batch%d", len(msgs)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kinds, []string{"batch2", "flush", "batch2"}) {
		t.Fatalf("replay order = %v", kinds)
	}
}

// TestGroupCommitSnapshotFlushes: taking a snapshot at a seq that is
// still sitting in the pending buffer must flush it first — a snapshot
// must never outlive the records it claims to cover.
func TestGroupCommitSnapshotFlushes(t *testing.T) {
	gc := NewGroupCommitter(time.Hour) // never fires on its own
	defer gc.Stop()
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(batch(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Commit(seq) }()
	if err := l.Snapshot(seq, func(w io.Writer) error {
		_, err := w.Write([]byte("state"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit did not observe the snapshot-forced flush")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 1 || l2.SnapshotSeq() != 1 {
		t.Fatalf("after reopen: last %d snap %d, want 1/1", l2.LastSeq(), l2.SnapshotSeq())
	}
}

// TestGroupCommitAfterStopDegradesToSync: once the committer stops,
// appends flush synchronously instead of stranding records.
func TestGroupCommitAfterStopDegradesToSync(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	gc.Stop()
	seq, err := l.Append(batch(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

// TestAppendSteadyStateAllocs pins the pooled-buffer claim on the whole
// synchronous append path (encode + frame + write): steady state must
// not allocate.
func TestAppendSteadyStateAllocs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 40}) // never rotate
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	msgs := batch(1, 64)
	if _, err := l.Append(msgs); err != nil { // warm the encode buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := l.Append(msgs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f times per batch, want 0", allocs)
	}
}

// TestGroupCommitFailStop injects a flush failure (the segment file
// closed under the log) and requires fail-stop semantics: the batch
// whose flush failed is never acknowledged — a parked Commit waiter is
// woken with the error, not left hanging and not lied to — the log
// refuses every further append, and a reopen sees exactly the
// acknowledged prefix.
func TestGroupCommitFailStop(t *testing.T) {
	gc := NewGroupCommitter(time.Hour) // flushes only when the test says so
	defer gc.Stop()
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}

	// First batch: flushed cleanly (creating the segment), acknowledged.
	seq1, err := l.Append(batch(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	l.flushCommit()
	if err := l.Commit(seq1); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	// Second batch: buffered, with a waiter parked on its durability.
	seq2, err := l.Append(batch(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error, 1)
	go func() { waiter <- l.Commit(seq2) }()
	for i := 0; ; i++ {
		l.mu.Lock()
		parked := l.commitCh != nil
		l.mu.Unlock()
		if parked {
			break
		}
		if i > 5000 {
			t.Fatal("Commit waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// Fault injection: the active segment vanishes under the log, so
	// the next group flush's write must fail.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	l.flushCommit()

	select {
	case err := <-waiter:
		if err == nil {
			t.Fatal("Commit acknowledged a batch whose flush failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit waiter never woken by the failure")
	}
	if err := l.Commit(seq2); err == nil {
		t.Fatal("a failed log must keep refusing the lost batch's commit")
	}
	if _, err := l.Append(batch(3, 2)); err == nil {
		t.Fatal("a failed log accepted a further append")
	}

	// Recovery sees exactly what was acknowledged: batch 1, nothing else.
	l.Close() //nolint:errcheck // the log is already fail-stopped
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []uint64
	err = l2.Replay(0, func(seq uint64, msgs []stream.Message, flush bool) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{seq1}) {
		t.Fatalf("replay after fail-stop = %v, want [%d]", got, seq1)
	}
}
