package wal

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestGroupCommitRoundTrip: appends on two logs sharing one committer
// are acknowledged by Commit, durable across reopen, and replay in
// order — the synchronous contract, group-committed.
func TestGroupCommitRoundTrip(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	defer gc.Stop()
	dirs := []string{t.TempDir(), t.TempDir()}
	logs := make([]*Log, 2)
	for i, dir := range dirs {
		l, err := Open(dir, Options{GroupCommit: gc})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	var wg sync.WaitGroup
	for i, l := range logs {
		wg.Add(1)
		go func(i int, l *Log) {
			defer wg.Done()
			for n := 1; n <= 20; n++ {
				seq, err := l.Append(batch(100*i+n, 2))
				if err != nil {
					t.Errorf("log %d append %d: %v", i, n, err)
					return
				}
				if err := l.Commit(seq); err != nil {
					t.Errorf("log %d commit %d: %v", i, seq, err)
					return
				}
			}
		}(i, l)
	}
	wg.Wait()
	for i, l := range logs {
		if l.LastSeq() != 20 {
			t.Fatalf("log %d LastSeq = %d, want 20", i, l.LastSeq())
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen without the committer: every committed record is there.
		l2, err := Open(dirs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, l2, 0)
		if len(got) != 20 {
			t.Fatalf("log %d replayed %d records, want 20", i, len(got))
		}
		if !reflect.DeepEqual(got[3], batch(100*i+3, 2)) {
			t.Fatalf("log %d record 3 mismatch", i)
		}
		l2.Close()
	}
}

// TestGroupCommitFlushRecord: flush markers ride group commit too and
// keep their position relative to batches.
func TestGroupCommitFlushRecord(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	defer gc.Stop()
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(1, 2)); err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendFlush()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(3); err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("flush seq = %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var kinds []string
	if err := l2.Replay(0, func(seq uint64, msgs []stream.Message, flush bool) error {
		if flush {
			kinds = append(kinds, "flush")
		} else {
			kinds = append(kinds, fmt.Sprintf("batch%d", len(msgs)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kinds, []string{"batch2", "flush", "batch2"}) {
		t.Fatalf("replay order = %v", kinds)
	}
}

// TestGroupCommitSnapshotFlushes: taking a snapshot at a seq that is
// still sitting in the pending buffer must flush it first — a snapshot
// must never outlive the records it claims to cover.
func TestGroupCommitSnapshotFlushes(t *testing.T) {
	gc := NewGroupCommitter(time.Hour) // never fires on its own
	defer gc.Stop()
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(batch(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Commit(seq) }()
	if err := l.Snapshot(seq, func(w io.Writer) error {
		_, err := w.Write([]byte("state"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit did not observe the snapshot-forced flush")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 1 || l2.SnapshotSeq() != 1 {
		t.Fatalf("after reopen: last %d snap %d, want 1/1", l2.LastSeq(), l2.SnapshotSeq())
	}
}

// TestGroupCommitAfterStopDegradesToSync: once the committer stops,
// appends flush synchronously instead of stranding records.
func TestGroupCommitAfterStopDegradesToSync(t *testing.T) {
	gc := NewGroupCommitter(500 * time.Microsecond)
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: gc})
	if err != nil {
		t.Fatal(err)
	}
	gc.Stop()
	seq, err := l.Append(batch(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

// TestAppendSteadyStateAllocs pins the pooled-buffer claim on the whole
// synchronous append path (encode + frame + write): steady state must
// not allocate.
func TestAppendSteadyStateAllocs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 40}) // never rotate
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	msgs := batch(1, 64)
	if _, err := l.Append(msgs); err != nil { // warm the encode buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := l.Append(msgs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f times per batch, want 0", allocs)
	}
}
